"""Population-scale block FETI solves — grouped multi-RHS PCPG.

Two claims of the block/batched solve path are reproduced and gated:

* **Launch reduction** — on a structured 6x6 decomposition (36 subdomains
  collapsing to 9 exact pattern classes) the grouped dual operator runs
  every PCPG iteration in one kernel chain per class: simulated launches
  per iteration drop by the 4x grouping ratio, gated at >= 2x.
* **Iteration parity + solution equality** — the block solve needs at
  most one iteration more than single-RHS PCPG (usually fewer: the block
  Krylov space shares information across columns), and its multiplier /
  primal panels match k independent sequential solves at <= 1e-10, across
  every 2-D mesh-zoo workload (square, jittered, lshape, strip).

Raw wall seconds are informational; the gated metrics are the
deterministic launch counters and the parity/equality flags
(``tools/check_bench.py``).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PAPER_SCALE

RTOL, ATOL = 1e-9, 1e-10
N_RHS = 4


def _structured_case():
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    cells, grid = (48, (8, 8)) if PAPER_SCALE else (24, (6, 6))
    problem = heat_transfer_2d(cells, dirichlet=("left", "right"))
    return decompose(problem, grid=grid)


def _zoo_cases():
    from repro.dd import decompose
    from repro.fem import heat_problem
    from repro.part import make_mesh

    cells = 16 if PAPER_SCALE else 12
    for mesh in ("jittered", "lshape", "strip"):
        problem = heat_problem(make_mesh(mesh, cells, seed=0), dirichlet=("boundary",))
        yield mesh, decompose(problem, n_subdomains=6, partitioner="rcb", seed=0)


def _solve_pair(dec, n_rhs):
    """(scalar single-RHS result, grouped block solve, sequential solve)."""
    from repro.feti import FetiSolver

    scalar = FetiSolver(dec, approach="impl_mkl", preconditioner="lumped").solve()
    block = FetiSolver(dec, approach="impl_mkl", preconditioner="lumped").solve_block(
        n_rhs=n_rhs, block=True, grouped=True, seed=0
    )
    seq = FetiSolver(dec, approach="impl_mkl", preconditioner="lumped").solve_block(
        n_rhs=n_rhs, block=False, grouped=False, seed=0
    )
    return scalar, block, seq


def _panels_match(block, seq) -> bool:
    lam_seq = np.stack([r.lam for r in seq.infos], axis=1)
    lscale = max(1.0, float(np.abs(lam_seq).max()))
    uscale = max(1.0, float(np.abs(seq.u).max()))
    return bool(
        np.allclose(block.infos[0].lam, lam_seq, rtol=RTOL, atol=ATOL * lscale)
        and np.allclose(block.u, seq.u, rtol=RTOL, atol=ATOL * uscale)
    )


def test_block_solve_launch_reduction_and_parity(benchmark):
    dec = _structured_case()
    scalar, block, seq = benchmark.pedantic(
        lambda: _solve_pair(dec, N_RHS), rounds=1, iterations=1
    )
    stats = block.stats

    # Grouped execution: one launch chain per pattern class per iteration.
    assert block.converged and scalar.info.converged and seq.converged
    assert stats.n_rhs == N_RHS
    assert stats.launches_per_iteration == 6 * stats.n_groups
    assert stats.launches_sequential_per_iteration == 6 * stats.n_subdomains
    assert stats.launches_per_iteration * 2 <= stats.launches_sequential_per_iteration
    assert stats.launch_reduction >= 2.0, (
        f"launch reduction only {stats.launch_reduction:.2f}x"
    )

    # Iteration parity with single-RHS PCPG, solutions equal to sequential.
    gap = block.iterations - scalar.info.iterations
    assert gap <= 1, f"block took {gap} more iterations than scalar PCPG"
    assert _panels_match(block, seq)

    # Mesh-zoo sweep: parity and equality on every unstructured workload.
    zoo_parity, zoo_matches, worst_gap = 1, 1, gap
    for mesh, zdec in _zoo_cases():
        zscalar, zblock, zseq = _solve_pair(zdec, 3)
        assert zblock.converged and zseq.converged, mesh
        zgap = zblock.iterations - zscalar.info.iterations
        worst_gap = max(worst_gap, zgap)
        if zgap > 1:
            zoo_parity = 0
        if not _panels_match(zblock, zseq):
            zoo_matches = 0
    assert zoo_parity, f"a mesh-zoo case exceeded the 1-iteration gap ({worst_gap})"
    assert zoo_matches, "a mesh-zoo block solve diverged from its sequential twin"

    benchmark.extra_info["n_subdomains"] = stats.n_subdomains
    benchmark.extra_info["solve_n_groups"] = stats.n_groups
    benchmark.extra_info["solve_launches_per_iteration"] = stats.launches_per_iteration
    benchmark.extra_info["solve_launches_sequential"] = (
        stats.launches_sequential_per_iteration
    )
    benchmark.extra_info["solve_launch_reduction"] = stats.launch_reduction
    benchmark.extra_info["solve_block_iterations"] = block.iterations
    benchmark.extra_info["solve_scalar_iterations"] = scalar.info.iterations
    benchmark.extra_info["solve_iteration_gap_max"] = worst_gap
    benchmark.extra_info["solve_iteration_parity"] = zoo_parity
    benchmark.extra_info["solve_solution_matches"] = zoo_matches
    benchmark.extra_info["solve_apply_s"] = stats.apply_seconds  # informational

    print()
    print("block vs scalar FETI solve (structured grid + mesh zoo)")
    print(stats.summary())
    print(
        f"iterations: block {block.iterations} vs scalar {scalar.info.iterations} "
        f"(worst zoo gap {worst_gap:+d})"
    )


def test_block_deflation_and_lowrank_knob(benchmark):
    """The deflation bookkeeping and the low-rank rank knob stay live at
    benchmark scale: all columns deflate by convergence, and the rank-8
    corrected solve reaches the same panel within an iteration of the
    uncorrected one."""
    dec = _structured_case()

    def run():
        from repro.feti import FetiSolver

        plain = FetiSolver(
            dec, approach="impl_mkl", preconditioner="lumped"
        ).solve_block(n_rhs=N_RHS, block=True, grouped=True, lowrank_rank=0, seed=0)
        corrected = FetiSolver(
            dec, approach="impl_mkl", preconditioner="lumped"
        ).solve_block(n_rhs=N_RHS, block=True, grouped=True, lowrank_rank=8, seed=0)
        return plain, corrected

    plain, corrected = benchmark.pedantic(run, rounds=1, iterations=1)
    assert plain.converged and corrected.converged
    assert np.all(plain.infos[0].deflated_at >= 0)
    assert corrected.iterations <= plain.iterations + 1
    scale = max(1.0, float(np.abs(plain.u).max()))
    assert np.allclose(corrected.u, plain.u, rtol=1e-8, atol=1e-9 * scale)

    benchmark.extra_info["solve_n_deflated"] = plain.stats.n_deflated
    benchmark.extra_info["solve_lowrank_iteration_gap"] = (
        corrected.iterations - plain.iterations
    )
    print()
    print(
        f"deflated columns: {plain.stats.n_deflated}/{N_RHS} | "
        f"low-rank(8) iterations {corrected.iterations} vs {plain.iterations}"
    )
