"""Table 1 — optimal splitting of the matrices.

Sweeps block size (S) and block count (C) per algorithm x CPU/GPU x 2D/3D
on representative subdomains and reports the best setting next to the
paper's (Table 1 of the paper)."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_table1_optimal_splitting(benchmark):
    res = run_and_report(benchmark, "table1")
    table = res.tables[0][1]
    # Every algorithm row found *some* optimum in the swept grid.
    assert table.count("S ") + table.count("C ") >= 16
