"""Shared benchmark configuration.

``REPRO_PAPER_SCALE=1`` extends the sweeps towards the paper's full size
ladders (minutes to hours); the default quick mode finishes in a few
minutes on a laptop.  Rendered result tables are written to
``benchmarks/results/`` and printed (run with ``-s`` to see them live).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "0") == "1"

#: Set by the CI bench job: traced benchmarks drop Chrome trace-event JSON
#: here, uploaded next to the ``BENCH_<run_id>`` result artifact.
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR", "")


def save_trace_artifact(trace, name: str):
    """Write *trace* to ``$REPRO_TRACE_DIR/TRACE_<name>.json`` when the
    environment opts in (no-op otherwise); returns the path or ``None``."""
    if not TRACE_DIR or trace is None:
        return None
    os.makedirs(TRACE_DIR, exist_ok=True)
    path = os.path.join(TRACE_DIR, f"TRACE_{name}.json")
    trace.save(path)
    return path


def run_and_report(benchmark, name: str, **kwargs):
    """Run an experiment driver once under pytest-benchmark, persist + print."""
    from repro.bench import results_dir, run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(name, quick=not PAPER_SCALE, **kwargs),
        rounds=1,
        iterations=1,
    )
    path = result.save(results_dir())
    print()
    print(result.render())
    print(f"[saved to {path}]")
    return result


def _bench_rows(session) -> list[dict]:
    """Flatten pytest-benchmark's collected fixtures into stable JSON rows."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return []
    rows = []
    for bench in bench_session.benchmarks:
        stats = getattr(bench, "stats", None)
        row = {
            "name": bench.name,
            "fullname": bench.fullname,
            "group": bench.group,
            "params": bench.params,
            "extra_info": dict(bench.extra_info),
        }
        if stats is not None:
            row["stats"] = {
                field: getattr(stats, field, None)
                for field in ("min", "max", "mean", "stddev", "median", "rounds")
            }
        rows.append(row)
    return rows


def pytest_sessionfinish(session, exitstatus):
    """Consolidate the session's benchmarks into one perf-trajectory
    artifact, ``$REPRO_BENCH_DIR/BENCH_<run_id>.json``.

    One file per CI run (run id from ``$REPRO_RUN_ID``) holding every
    benchmark's timing stats and extra_info — the cross-run trajectory CI
    uploads so regressions are diffable without stitching the per-suite
    ``--benchmark-json`` files.  No-op unless ``REPRO_BENCH_DIR`` is set.
    """
    bench_dir = os.environ.get("REPRO_BENCH_DIR", "")
    if not bench_dir:
        return
    rows = _bench_rows(session)
    if not rows:
        return
    run_id = os.environ.get("REPRO_RUN_ID", "local")
    payload = {
        "run_id": run_id,
        "paper_scale": PAPER_SCALE,
        "exit_status": int(exitstatus),
        "n_benchmarks": len(rows),
        "benchmarks": sorted(rows, key=lambda r: r["fullname"]),
    }
    os.makedirs(bench_dir, exist_ok=True)
    path = os.path.join(bench_dir, f"BENCH_{run_id}.json")
    from repro.util.atomic import atomic_write_json

    # Merge with an existing consolidated file so the CI job's several
    # pytest invocations (one per bench suite) accumulate into one artifact.
    if os.path.exists(path):
        import json

        try:
            with open(path) as fh:
                previous = json.load(fh)
        except (OSError, ValueError):
            previous = {}
        seen = {r["fullname"] for r in payload["benchmarks"]}
        old = [
            r for r in previous.get("benchmarks", []) if r["fullname"] not in seen
        ]
        payload["benchmarks"] = sorted(
            payload["benchmarks"] + old, key=lambda r: r["fullname"]
        )
        payload["n_benchmarks"] = len(payload["benchmarks"])
    atomic_write_json(path, payload)
    print(f"\n[consolidated bench artifact: {path} "
          f"({payload['n_benchmarks']} benchmark(s))]")
