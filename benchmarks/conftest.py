"""Shared benchmark configuration.

``REPRO_PAPER_SCALE=1`` extends the sweeps towards the paper's full size
ladders (minutes to hours); the default quick mode finishes in a few
minutes on a laptop.  Rendered result tables are written to
``benchmarks/results/`` and printed (run with ``-s`` to see them live).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

PAPER_SCALE = os.environ.get("REPRO_PAPER_SCALE", "0") == "1"

#: Set by the CI bench job: traced benchmarks drop Chrome trace-event JSON
#: here, uploaded next to the ``BENCH_<run_id>`` result artifact.
TRACE_DIR = os.environ.get("REPRO_TRACE_DIR", "")


def save_trace_artifact(trace, name: str):
    """Write *trace* to ``$REPRO_TRACE_DIR/TRACE_<name>.json`` when the
    environment opts in (no-op otherwise); returns the path or ``None``."""
    if not TRACE_DIR or trace is None:
        return None
    os.makedirs(TRACE_DIR, exist_ok=True)
    path = os.path.join(TRACE_DIR, f"TRACE_{name}.json")
    trace.save(path)
    return path


def run_and_report(benchmark, name: str, **kwargs):
    """Run an experiment driver once under pytest-benchmark, persist + print."""
    from repro.bench import results_dir, run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(name, quick=not PAPER_SCALE, **kwargs),
        rounds=1,
        iterations=1,
    )
    path = result.save(results_dir())
    print()
    print(result.render())
    print(f"[saved to {path}]")
    return result
