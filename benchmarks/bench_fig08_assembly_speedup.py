"""Figure 8 — whole explicit SC assembly in the ``sep`` (kernels only) and
``mix`` (factorization overlapped) configurations, orig vs opt.

Reproduced claims: GPU-section (sep) speedup exceeds the whole-assembly
(mix) speedup because the delayed GPU start dilutes the optimization; CPU
sep == mix; 3-D speedups larger than 2-D; headline numbers up to 5.1 (sep)
and 3.3 (mix) in the paper."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig08_assembly_speedup(benchmark):
    res = run_and_report(benchmark, "fig08")
    # sep >= mix for the GPU path (3-D, where assembly dominates).
    assert (
        res.metrics["gpu_sep_speedup_max_3d"]
        >= res.metrics["gpu_mix_speedup_max_3d"]
    )
    # 3-D whole-assembly acceleration is substantial.
    assert res.metrics["gpu_sep_speedup_max_3d"] > 2.0
    assert res.metrics["gpu_mix_speedup_max_3d"] > 1.5
    # 2-D gains are modest but present at the largest sizes.
    assert res.metrics["gpu_sep_speedup_max_2d"] > 1.0
