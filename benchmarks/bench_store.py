"""Persistent artifact store — cold vs. warm analysis-phase speedup.

The same decomposition is assembled twice through fresh
:class:`~repro.store.tiered.TieredPatternCache` handles over one shared
:class:`~repro.store.store.ArtifactStore` — the assembly-as-a-service
scenario where a new worker process starts against a store another worker
already warmed.  Reproduced claims: the warm run serves every pattern
from the persistent tier (100% hit rate, zero symbolic analyses charged),
the analysis phase speeds up by at least 2x (typically it vanishes
entirely; the ratio is capped at 100 for the gate), the numerics are
bitwise-identical, and a torn store entry self-heals (quarantined,
recomputed, re-committed) without affecting the results.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PAPER_SCALE

#: The warm run charges ~0 analysis seconds; the speedup ratio is capped
#: here so the baseline JSON stays finite and comparable.
SPEEDUP_CAP = 100.0


def _items(cells: int, grid: tuple[int, int]):
    from repro.batch import items_from_decomposition
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(cells, dirichlet=())
    return items_from_decomposition(decompose(problem, grid=grid))


def test_store_warm_run_speeds_up_analysis(benchmark, tmp_path):
    from repro.batch import BatchAssembler
    from repro.core import default_config
    from repro.store import ArtifactStore, TieredPatternCache

    cells = 48 if PAPER_SCALE else 24
    grid = (6, 6) if PAPER_SCALE else (4, 4)
    items = _items(cells, grid)
    cfg = default_config("gpu", 2)
    store = ArtifactStore(tmp_path / "store")

    def run(label: str):
        # A fresh cache per run = a fresh worker process; only the store
        # persists between them.
        engine = BatchAssembler(config=cfg, cache=TieredPatternCache(store))
        return engine.assemble_batch(items)

    cold = run("cold")
    warm = benchmark.pedantic(lambda: run("warm"), rounds=1, iterations=1)

    # The cold run misses the store everywhere and commits every group;
    # the warm run is served entirely from the persistent tier.
    assert cold.stats.store_misses == cold.stats.n_groups
    assert cold.stats.store_hits == 0
    assert warm.stats.store_misses == 0
    assert warm.stats.store_hits == warm.stats.n_groups
    assert warm.stats.hit_rate == 1.0
    assert warm.stats.n_quarantined == 0

    # Analysis phase: charged once per group cold, not at all warm.
    cold_analysis = cold.stats.analysis_seconds
    warm_analysis = warm.stats.analysis_seconds
    speedup = min(SPEEDUP_CAP, cold_analysis / max(warm_analysis, cold_analysis / SPEEDUP_CAP))
    assert cold_analysis > 0
    assert speedup >= 2.0, (cold_analysis, warm_analysis)

    # Bitwise-identical numerics across the tiers.
    for a, b in zip(cold.results, warm.results):
        assert np.array_equal(a.f, b.f)

    benchmark.extra_info["n_subdomains"] = len(items)
    benchmark.extra_info["store_hit_rate"] = (
        warm.stats.store_hits / (warm.stats.store_hits + warm.stats.store_misses)
    )
    benchmark.extra_info["store_cold_analysis_s"] = cold_analysis
    benchmark.extra_info["store_warm_analysis_s"] = warm_analysis
    benchmark.extra_info["store_analysis_speedup"] = speedup
    benchmark.extra_info["n_quarantined"] = warm.stats.n_quarantined

    print()
    print("persistent store: cold vs warm worker")
    print(f"cold analysis: {cold_analysis * 1e3:.3f} ms "
          f"({cold.stats.store_misses} store miss(es))")
    print(f"warm analysis: {warm_analysis * 1e3:.3f} ms "
          f"({warm.stats.store_hits} store hit(s))")
    print(f"speedup:       {speedup:.1f}x (capped at {SPEEDUP_CAP:.0f})")


def test_store_torn_entry_self_heals(benchmark, tmp_path):
    """A corrupted store entry is quarantined and recomputed mid-batch;
    the run completes with identical numerics and a clean store."""
    from repro.batch import BatchAssembler
    from repro.core import default_config
    from repro.store import ArtifactStore, FaultInjector, TieredPatternCache

    items = _items(16, (3, 3))
    cfg = default_config("gpu", 2)

    def run():
        torn = ArtifactStore(tmp_path / "store", faults=FaultInjector("store.put.torn:1"))
        cold = BatchAssembler(
            config=cfg, cache=TieredPatternCache(torn)
        ).assemble_batch(items)
        clean = ArtifactStore(tmp_path / "store")
        warm = BatchAssembler(
            config=cfg, cache=TieredPatternCache(clean)
        ).assemble_batch(items)
        return cold, warm, clean

    cold, warm, store = benchmark.pedantic(run, rounds=1, iterations=1)
    # Exactly the torn entry was quarantined and rebuilt on the warm run.
    assert warm.stats.n_quarantined == 1
    assert warm.stats.store_misses == 1
    assert warm.stats.store_hits == warm.stats.n_groups - 1
    for a, b in zip(cold.results, warm.results):
        assert np.array_equal(a.f, b.f)
    # The rebuilt entry was re-committed: the store verifies clean.
    assert store.verify() == (warm.stats.n_groups, 0)

    benchmark.extra_info["n_quarantined"] = warm.stats.n_quarantined

    print()
    print(f"torn entry quarantined and healed; store verify: "
          f"{warm.stats.n_groups} ok / 0 bad")
