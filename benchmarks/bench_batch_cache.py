"""Batch engine — symbolic pattern cache vs. per-subdomain analysis.

A structured decomposition with N identical subdomains (the paper's uniform
grids) is assembled through :class:`repro.batch.BatchAssembler` twice: once
with the pattern cache (one symbolic analysis per fingerprint group) and
once with caching disabled (the per-subdomain baseline the seed code
performed).  Reproduced claims: the cache hit rate is (N-1)/N, the numerics
are identical to independent assemblies, and the simulated preprocessing
time drops by the de-duplicated analysis cost.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PAPER_SCALE


def _run_batch(n_subdomains: int, dim: int, target_dofs: int):
    from repro.batch import BatchAssembler, BatchItem, PatternCache
    from repro.bench import make_workload
    from repro.core import default_config

    wl = make_workload(dim=dim, target_dofs=target_dofs)
    items = [BatchItem(wl.factor, wl.bt) for _ in range(n_subdomains)]
    cfg = default_config("gpu", dim)
    cached = BatchAssembler(config=cfg).assemble_batch(items)
    baseline = BatchAssembler(config=cfg, cache=PatternCache(max_entries=0)).assemble_batch(
        items
    )
    return wl, cached, baseline


def test_batch_cache_reduces_preprocessing(benchmark):
    n = 64 if PAPER_SCALE else 16
    dofs = 2178 if PAPER_SCALE else 578
    wl, cached, baseline = benchmark.pedantic(
        lambda: _run_batch(n, 2, dofs), rounds=1, iterations=1
    )

    # One symbolic analysis for the whole population.
    assert cached.stats.n_groups == 1
    assert cached.stats.misses == 1
    assert cached.stats.hit_rate == (n - 1) / n
    assert baseline.stats.hits == 0

    # Numerically identical to independent SchurAssembler.assemble calls.
    from repro.core import SchurAssembler, default_config

    ref = SchurAssembler(config=default_config("gpu", 2)).assemble(wl.factor, wl.bt)
    for res in cached.results:
        assert np.array_equal(res.f, ref.f)

    # Simulated preprocessing shrinks by the de-duplicated analysis time.
    saved = baseline.stats.preprocessing_seconds - cached.stats.preprocessing_seconds
    assert saved > 0
    assert cached.stats.analysis_seconds_saved > 0
    assert cached.stats.preprocessing_seconds < baseline.stats.preprocessing_seconds

    benchmark.extra_info["n_subdomains"] = n
    benchmark.extra_info["hit_rate"] = cached.stats.hit_rate
    benchmark.extra_info["prep_cached_s"] = cached.stats.preprocessing_seconds
    benchmark.extra_info["prep_baseline_s"] = baseline.stats.preprocessing_seconds

    print()
    print("batch cache vs no-cache baseline")
    print(cached.stats.summary())
    print(f"baseline preprocessing: {baseline.stats.preprocessing_seconds * 1e3:.3f} ms")
    print(f"simulated saved:        {saved * 1e3:.3f} ms")


def test_batch_pipeline_throughput(benchmark):
    """Cached batch work through the mix-mode multi-stream pipeline."""
    n = 64 if PAPER_SCALE else 16

    def run():
        from repro.batch import BatchAssembler, BatchItem
        from repro.bench import make_workload
        from repro.core import default_config

        wl = make_workload(dim=2, target_dofs=578)
        engine = BatchAssembler(config=default_config("gpu", 2))
        batch = engine.assemble_batch(
            [BatchItem(wl.factor, wl.bt) for _ in range(n)], execute=False
        )
        pipe = engine.schedule(batch.work, mode="mix", n_threads=8, n_streams=8)
        return batch, pipe

    batch, pipe = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pipe.makespan > 0
    # Multi-stream overlap beats the serial preprocessing total.
    assert pipe.makespan < batch.stats.preprocessing_seconds
    benchmark.extra_info["makespan_s"] = pipe.makespan
    benchmark.extra_info["throughput"] = batch.stats.throughput(pipe.makespan)
    print()
    print(f"pipeline makespan:  {pipe.makespan * 1e3:.3f} ms")
    print(f"throughput:         {batch.stats.throughput(pipe.makespan):.1f} subdomains/s")
