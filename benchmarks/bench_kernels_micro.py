"""Micro-benchmarks of the *numeric* kernels (real wall time, not simulated).

These exercise the actual NumPy/SciPy execution paths under
pytest-benchmark with several rounds — the complement of the figure benches
(which measure the simulated device model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.workloads import make_workload
from repro.core import (
    SchurAssembler,
    baseline_config,
    by_size,
    default_config,
    stepped_permutation,
    trsm_factor_split,
    trsm_rhs_split,
)
from repro.gpu import A100_40GB, Executor
from repro.sparse import cholesky, schur_augmented


@pytest.fixture(scope="module")
def wl3d():
    return make_workload(3, 2744)


@pytest.fixture(scope="module")
def wl2d():
    return make_workload(2, 4232)


def test_numeric_cholesky_3d(benchmark, wl3d):
    benchmark(lambda: cholesky(wl3d.k_reg, ordering="nd", coords=wl3d.coords))


def test_numeric_assembly_baseline_3d(benchmark, wl3d):
    asm = SchurAssembler(config=baseline_config("sparse"), spec=A100_40GB)
    result = benchmark(lambda: asm.assemble(wl3d.factor, wl3d.bt))
    assert result.f.shape == (wl3d.n_multipliers,) * 2


def test_numeric_assembly_optimized_3d(benchmark, wl3d):
    asm = SchurAssembler(config=default_config("gpu", 3), spec=A100_40GB)
    result = benchmark(lambda: asm.assemble(wl3d.factor, wl3d.bt))
    assert result.f.shape == (wl3d.n_multipliers,) * 2


def test_numeric_assembly_optimized_2d(benchmark, wl2d):
    asm = SchurAssembler(config=default_config("gpu", 2), spec=A100_40GB)
    result = benchmark(lambda: asm.assemble(wl2d.factor, wl2d.bt))
    assert result.f.shape == (wl2d.n_multipliers,) * 2


def test_numeric_trsm_factor_split(benchmark, wl3d):
    bt_rows = wl3d.bt.tocsr()[wl3d.factor.perm].tocsc()
    col_perm, shape = stepped_permutation(bt_rows)
    x0 = np.asarray(bt_rows[:, col_perm].todense())

    def run():
        x = x0.copy()
        trsm_factor_split(
            Executor(A100_40GB), wl3d.factor.l, x, shape, by_size(500),
            storage="dense", prune=True,
        )
        return x

    benchmark(run)


def test_numeric_trsm_rhs_split(benchmark, wl3d):
    bt_rows = wl3d.bt.tocsr()[wl3d.factor.perm].tocsc()
    col_perm, shape = stepped_permutation(bt_rows)
    x0 = np.asarray(bt_rows[:, col_perm].todense())

    def run():
        x = x0.copy()
        trsm_rhs_split(
            Executor(A100_40GB), wl3d.factor.l, x, shape, by_size(1000),
            storage="sparse",
        )
        return x

    benchmark(run)


def test_numeric_augmented_schur_2d(benchmark, wl2d):
    result = benchmark(
        lambda: schur_augmented(wl2d.k_reg, wl2d.bt, factor=wl2d.factor)
    )
    assert result.schur.shape == (wl2d.n_multipliers,) * 2
