"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures — these isolate the knobs behind them:

* fill-reducing ordering (the METIS/nested-dissection dependence of §3),
* factor storage x pruning (the §4.1 recommendations),
* generality: the same kernels on elasticity subdomains (§6's claim).
"""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_ablation_ordering(benchmark):
    res = run_and_report(benchmark, "ablation_ordering")
    # Nested dissection clearly reduces fill and the baseline assembly time.
    assert res.metrics["fill_natural_over_nd"] > 2.0
    assert res.metrics["orig_natural_over_nd"] > 1.5
    # The optimized kernels are comparatively ordering-insensitive (they
    # skip zeros wherever the ordering put them).
    assert res.metrics["opt_spread_across_orderings"] < 2.0


def test_ablation_pruning(benchmark):
    res = run_and_report(benchmark, "ablation_pruning")
    # Pruning must pay off in 3-D with the recommended dense blocks.
    assert res.metrics["prune_gain_3d"] > 1.3
    # ...and at least not hurt badly in 2-D with sparse blocks.
    assert res.metrics["prune_gain_2d"] > 0.7


def test_elasticity_generality(benchmark):
    res = run_and_report(benchmark, "elasticity")
    # The optimization wins on elasticity too (any B K^{-1} B^T SC).
    speedups = [v for k, v in res.metrics.items() if k.startswith("speedup_3d")]
    assert all(s > 1.0 for s in speedups)
