"""Figure 10 — total dual-operator time vs iteration count and the
amortization points.

Reproduced claims: the amortization point of ``expl_gpu_opt`` against the
best implicit CPU approach sits around ~10 iterations for 3-D subdomains
from about 1k DOFs up (the paper's headline), and the best approach
transitions from implicit (few iterations) to explicit (many iterations)."""

from __future__ import annotations

import math

from benchmarks.conftest import run_and_report


def test_fig10_amortization(benchmark):
    res = run_and_report(benchmark, "fig10")
    amort = res.metrics["amortization_3d_largest"]
    assert math.isfinite(amort)
    # Paper: "about 10 iterations"; accept the same order of magnitude.
    assert 3 <= amort <= 40
    # The crossover table must show implicit winning at 10 iterations for
    # tiny subdomains and explicit GPU winning at 1000 for large ones.
    table_3d = next(t for name, t in res.tables if "amortization table (3D)" in name)
    lines = [ln.strip() for ln in table_3d.splitlines() if ln.strip()[:1].isdigit()]
    assert "impl" in lines[0]  # smallest subdomain, best@10 column
    assert "expl_gpu_opt" in lines[-1]  # largest subdomain, best@1000
