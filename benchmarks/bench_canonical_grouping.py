"""Canonical frames on a real structured grid — group count and time saved.

Two layers of canonicalization are measured on a floating N x N grid:

* **Translation** (PR 2): absolute coordinates used to leak into the
  fixing-DOF choice and the geometric nested dissection, so even
  translate-identical interior subdomains fingerprinted apart (observed:
  5x5 grid → 25 groups).  The canonical local frame collapses the 5x5
  decomposition to its 9 translate-classes.
* **Orientation** (this benchmark's headline): with the canonical
  *relabeling* (:class:`repro.sparse.canonical.CanonicalRelabeling`)
  threaded through factorization and the batch engine, mirror- and
  rotation-identical classes share one artifact set and one stacked
  numeric group — the 9 translate-classes **execute as 3 canonical
  groups** (interior / edge / corner), the symbolic analysis is charged 3
  times instead of 9, and every member's un-relabeled Schur complement
  matches per-member assembly at tight tolerance.

The CI ``bench`` job uploads the numbers (group counts, hit rate, analysis
speedup) as the ``BENCH_<run_id>`` artifact; see ``docs/batching.md``.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PAPER_SCALE

RTOL, ATOL = 1e-9, 1e-10


def _interior_indices(decomposition) -> list[int]:
    """Members whose bounding box touches no mesh boundary."""
    mesh = decomposition.problem.mesh
    lo, hi = mesh.coords.min(axis=0), mesh.coords.max(axis=0)
    out = []
    for i, sub in enumerate(decomposition.subdomains):
        slo, shi = sub.coords.min(axis=0), sub.coords.max(axis=0)
        if np.all(slo > lo + 1e-12) and np.all(shi < hi - 1e-12):
            out.append(i)
    return out


def _build(n_grid: int, cells: int):
    from repro.batch import BatchAssembler, PatternCache, items_from_decomposition
    from repro.core import default_config
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(cells, dirichlet=())
    decomposition = decompose(problem, grid=(n_grid, n_grid))
    cfg = default_config("gpu", 2)
    # Orientation-canonical items: mirror classes share artifacts + groups.
    items = items_from_decomposition(decomposition)
    canonical = BatchAssembler(config=cfg).assemble_batch(items, execution="grouped")
    # Translation-only baseline: the PR-2 behaviour (9 executed groups).
    items_exact = items_from_decomposition(decomposition, canonicalize=False)
    exact = BatchAssembler(config=cfg).assemble_batch(items_exact, execute=False)
    # No-cache baseline: every member pays its own symbolic analysis.
    nocache = BatchAssembler(config=cfg, cache=PatternCache(max_entries=0)).assemble_batch(
        items, execute=False
    )
    return decomposition, items, canonical, exact, nocache


def test_canonical_grouping_5x5(benchmark):
    n_grid, cells = (5, 40) if PAPER_SCALE else (5, 20)
    decomposition, items, canonical, exact, nocache = benchmark.pedantic(
        lambda: _build(n_grid, cells), rounds=1, iterations=1
    )
    n = decomposition.n_subdomains
    assert n == n_grid * n_grid

    # Translation-only: the 25 subdomains collapse to the 9 translate-classes.
    assert exact.stats.n_groups == 9

    # Orientation-canonical sharing: 3 executed groups (interior/edge/corner),
    # 6 mirror classes riding on another class's artifacts, 3 cache misses.
    assert canonical.stats.n_groups == 3
    assert canonical.stats.n_exact_groups == 9
    assert canonical.stats.mirrors_shared == 6
    assert canonical.stats.hits == n - 3 and canonical.stats.misses == 3
    assert canonical.stats.n_grouped == n  # every member ran stacked
    assert len(canonical.stats.group_launches) == 3

    # All 9 interior subdomains form one canonical group of their own.
    interior = _interior_indices(decomposition)
    assert len(interior) == (n_grid - 2) ** 2
    interior_groups = [
        sorted(members)
        for members in canonical.groups.values()
        if set(members) & set(interior)
    ]
    assert interior_groups == [sorted(interior)]

    # The executed canonical groups coincide with the geometric classes.
    assert canonical.stats.n_geometric_groups == 3
    assert sorted(map(sorted, canonical.groups.values())) == sorted(
        map(sorted, canonical.geometric_groups.values())
    )

    # plan_population groups the same way from the relabelings.
    from repro.feti.planner import plan_population

    pop = plan_population(
        [(it.factor, it.bt) for it in items],
        dim=2,
        expected_iterations=50,
        relabelings=[it.relabeling for it in items],
    )
    assert pop.n_members == n
    assert pop.n_groups == 3

    # Every member's un-relabeled SC matches per-member assembly (allclose —
    # the shared stepped column order changes kernel association only).
    from repro.core import SchurAssembler, default_config

    ref = SchurAssembler(config=default_config("gpu", 2))
    for it, res in zip(items, canonical.results):
        expect = ref.assemble(it.factor, it.bt).f
        scale = max(1.0, float(np.abs(expect).max(initial=0.0)))
        assert np.allclose(res.f, expect, rtol=RTOL, atol=ATOL * scale)

    # End-to-end: orientation sharing charges the symbolic analysis 3x
    # instead of 9x — at least a 2x analysis-time speedup over the
    # translation-only run, and the cache saves time vs no cache at all.
    analysis_speedup = exact.stats.analysis_seconds / canonical.stats.analysis_seconds
    assert analysis_speedup >= 2.0, f"analysis speedup only {analysis_speedup:.2f}x"
    saved = nocache.stats.analysis_seconds - canonical.stats.analysis_seconds
    assert saved > 0
    assert canonical.stats.analysis_seconds_saved > 0

    benchmark.extra_info["n_subdomains"] = n
    benchmark.extra_info["n_groups"] = canonical.stats.n_groups
    benchmark.extra_info["n_exact_groups"] = canonical.stats.n_exact_groups
    benchmark.extra_info["n_geometric_groups"] = canonical.stats.n_geometric_groups
    benchmark.extra_info["n_plan_groups"] = pop.n_groups
    benchmark.extra_info["hit_rate"] = canonical.stats.hit_rate
    benchmark.extra_info["analysis_saved_s"] = canonical.stats.analysis_seconds_saved
    benchmark.extra_info["canonical_analysis_speedup"] = analysis_speedup

    print()
    print(f"{n_grid}x{n_grid} grid, {cells}x{cells} cells")
    print(canonical.stats.summary())
    print(f"translation-only analysis: {exact.stats.analysis_seconds * 1e3:.3f} ms "
          f"({exact.stats.n_groups} groups)")
    print(f"no-cache analysis:         {nocache.stats.analysis_seconds * 1e3:.3f} ms")
    print(f"canonical analysis:        {canonical.stats.analysis_seconds * 1e3:.3f} ms "
          f"({analysis_speedup:.2f}x vs translation-only)")


def test_canonical_grouping_scales_with_grid(benchmark):
    """Executed group count stays at the 3 canonical classes as the grid
    grows, so the hit rate climbs towards 1 with the population size."""
    n_grid, cells = (7, 28) if PAPER_SCALE else (6, 24)

    def run():
        _, _, canonical, exact, _ = _build(n_grid, cells)
        return canonical, exact

    canonical, exact = benchmark.pedantic(run, rounds=1, iterations=1)
    n = n_grid * n_grid
    assert canonical.stats.n_subdomains == n
    assert canonical.stats.n_groups == 3
    assert canonical.stats.n_exact_groups == 9
    assert exact.stats.n_groups == 9
    assert canonical.stats.hit_rate == (n - 3) / n
    benchmark.extra_info["n_subdomains"] = n
    benchmark.extra_info["n_groups"] = canonical.stats.n_groups
    benchmark.extra_info["n_exact_groups"] = canonical.stats.n_exact_groups
    benchmark.extra_info["hit_rate"] = canonical.stats.hit_rate
    print()
    print(canonical.stats.summary())
