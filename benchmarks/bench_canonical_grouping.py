"""Canonical frames on a real structured grid — group count and time saved.

Before this optimization the batch cache only paid off on replicated-input
demos: on a *real* N x N grid decomposition, absolute node coordinates
leaked into the fixing-DOF choice and the geometric nested dissection, so
even translate-identical interior subdomains fingerprinted apart (observed:
5x5 grid → 25 groups).  With the canonical local frame
(:mod:`repro.sparse.canonical`) the 5x5 decomposition must collapse to the
9 translate-classes exactly — all 9 interior subdomains in one group — and
the orientation-invariant geometric fingerprint used by
:func:`repro.feti.planner.plan_population` further merges mirror-identical
boundary classes to at most 4 groups (interior / edge / corner on a square
grid).  Assembled Schur complements stay numerically identical to the
per-subdomain path.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PAPER_SCALE


def _interior_indices(decomposition) -> list[int]:
    """Members whose bounding box touches no mesh boundary."""
    mesh = decomposition.problem.mesh
    lo, hi = mesh.coords.min(axis=0), mesh.coords.max(axis=0)
    out = []
    for i, sub in enumerate(decomposition.subdomains):
        slo, shi = sub.coords.min(axis=0), sub.coords.max(axis=0)
        if np.all(slo > lo + 1e-12) and np.all(shi < hi - 1e-12):
            out.append(i)
    return out


def _build(n_grid: int, cells: int):
    from repro.batch import BatchAssembler, PatternCache, items_from_decomposition
    from repro.core import default_config
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d

    problem = heat_transfer_2d(cells, dirichlet=())
    decomposition = decompose(problem, grid=(n_grid, n_grid))
    items = items_from_decomposition(decomposition)
    cfg = default_config("gpu", 2)
    cached = BatchAssembler(config=cfg).assemble_batch(items)
    baseline = BatchAssembler(config=cfg, cache=PatternCache(max_entries=0)).assemble_batch(
        items, execute=False
    )
    return decomposition, items, cached, baseline


def test_canonical_grouping_5x5(benchmark):
    n_grid, cells = (5, 40) if PAPER_SCALE else (5, 20)
    decomposition, items, cached, baseline = benchmark.pedantic(
        lambda: _build(n_grid, cells), rounds=1, iterations=1
    )
    n = decomposition.n_subdomains
    assert n == n_grid * n_grid

    # The 25 subdomains collapse to the 9 translate-classes of a 5x5 grid.
    assert cached.stats.n_groups == 9
    assert cached.stats.hits == n - 9 and cached.stats.misses == 9

    # All 9 interior subdomains share one exact pattern group.
    interior = _interior_indices(decomposition)
    assert len(interior) == (n_grid - 2) ** 2
    interior_groups = [
        sorted(members)
        for members in cached.groups.values()
        if set(members) & set(interior)
    ]
    assert interior_groups == [sorted(interior)]

    # Orientation canonicalization merges mirror-identical boundary classes:
    # at most 4 geometric classes (interior/edge/corner on a square grid).
    assert 0 < cached.stats.n_geometric_groups <= 4
    assert cached.stats.n_geometric_groups <= cached.stats.n_groups

    # plan_population groups by the geometric fingerprint when coords are given.
    from repro.feti.planner import plan_population

    pop = plan_population(
        [(it.factor, it.bt) for it in items],
        dim=2,
        expected_iterations=50,
        coords=[it.coords for it in items],
    )
    assert pop.n_members == n
    assert pop.n_groups == cached.stats.n_geometric_groups

    # Numerically identical to the per-subdomain path.
    from repro.core import SchurAssembler, default_config

    ref = SchurAssembler(config=default_config("gpu", 2))
    for it, res in zip(items, cached.results):
        assert np.array_equal(res.f, ref.assemble(it.factor, it.bt).f)

    # The cache saves the de-duplicated symbolic analysis time.
    saved = baseline.stats.analysis_seconds - cached.stats.analysis_seconds
    assert saved > 0
    assert cached.stats.analysis_seconds_saved > 0

    benchmark.extra_info["n_subdomains"] = n
    benchmark.extra_info["n_groups"] = cached.stats.n_groups
    benchmark.extra_info["n_geometric_groups"] = cached.stats.n_geometric_groups
    benchmark.extra_info["n_plan_groups"] = pop.n_groups
    benchmark.extra_info["hit_rate"] = cached.stats.hit_rate
    benchmark.extra_info["analysis_saved_s"] = cached.stats.analysis_seconds_saved

    print()
    print(f"{n_grid}x{n_grid} grid, {cells}x{cells} cells")
    print(cached.stats.summary())
    print(f"baseline analysis:  {baseline.stats.analysis_seconds * 1e3:.3f} ms")
    print(f"analysis saved:     {saved * 1e3:.3f} ms")


def test_canonical_grouping_scales_with_grid(benchmark):
    """Group count stays at the 9 translate-classes as the grid grows, so the
    hit rate climbs towards 1 with the population size."""
    n_grid, cells = (7, 28) if PAPER_SCALE else (6, 24)

    def run():
        _, _, cached, _ = _build(n_grid, cells)
        return cached

    cached = benchmark.pedantic(run, rounds=1, iterations=1)
    n = n_grid * n_grid
    assert cached.stats.n_subdomains == n
    assert cached.stats.n_groups == 9
    assert cached.stats.hit_rate == (n - 9) / n
    benchmark.extra_info["n_subdomains"] = n
    benchmark.extra_info["n_groups"] = cached.stats.n_groups
    benchmark.extra_info["hit_rate"] = cached.stats.hit_rate
    print()
    print(cached.stats.summary())
