"""Figure 7 — pure TRSM and SYRK kernel times and orig/opt speedups,
including the PARDISO/CHOLMOD forward-substitution comparison lines.

Reproduced claims: speedups grow with subdomain size; SYRK speedup is
similar in 2-D and 3-D (bounded by the ~3x dense pyramid/prism argument);
TRSM gains more in 3-D; the optimized TRSM beats the libraries' full-RHS
forward substitution for 3-D."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig07_kernel_speedup(benchmark):
    res = run_and_report(benchmark, "fig07")
    # SYRK speedup bounded by and approaching the theoretical ~3.
    for dim in (2, 3):
        s = res.metrics[f"gpu_syrk_speedup_max_{dim}d"]
        assert 1.2 < s < 3.5
    # TRSM speedup larger in 3-D than 2-D (paper: more RHS + denser factor).
    assert (
        res.metrics["gpu_trsm_speedup_max_3d"]
        > res.metrics["gpu_trsm_speedup_max_2d"]
    )
    assert res.metrics["gpu_trsm_speedup_max_3d"] > 3.0
