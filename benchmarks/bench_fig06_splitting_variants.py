"""Figure 6 — comparison of TRSM (rhs / factor / factor+prune) and SYRK
(input / output) splitting variants on CPU and GPU, 2-D and 3-D.

Reproduced claims: pruning helps increasingly with subdomain size (3-D);
factor splitting with pruning is the best TRSM variant at large sizes; the
SYRK variants are close to each other."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig06_splitting_variants(benchmark):
    res = run_and_report(benchmark, "fig06")
    # Pruning pays off at the largest 3-D size (paper: "for large
    # subdomains, pruning always has a positive effect").
    assert res.metrics["trsm_3d_prune_gain_at_max"] > 1.5
    # In 2-D (sparse blocks throughout) the effect is small but >= ~1.
    assert res.metrics["trsm_2d_prune_gain_at_max"] > 0.8
