"""Batched numeric execution — grouped vs per-member wall clock.

An 8x8 *floating* structured decomposition (64 subdomains, 9 exact
fingerprint classes collapsed by orientation-canonical relabeling into 3
executed groups: 4 corners, 24 edge members, one interior class of 36) is
assembled twice through the batch engine:

* ``execution="per-member"`` — each member pays its own sequence of small
  TRSM/SYRK kernel calls (the PR-1/2 behaviour), and
* ``execution="grouped"`` — each fingerprint group runs end-to-end through
  stacked batched kernels, **single-threaded** so the measured win comes
  from batching alone, not parallelism.

Reproduced claims: identical Schur complements (allclose at tight
tolerance), per-group kernel launches shrink by the group size, and the
host wall clock of the numeric phase improves by >= 2x.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PAPER_SCALE, save_trace_artifact

RTOL, ATOL = 1e-9, 1e-10


def _numeric_wall(result) -> float:
    """Host wall of the numeric phase, from the run's own obs spans: the
    per-member path times each ``batch.member`` span, the grouped path each
    ``batch.group`` span — comparable across execution modes (the hand
    measurement these spans replaced timed whole assemble_batch calls,
    analysis included)."""
    return result.trace.total("batch.member") + result.trace.total("batch.group")


def _run(cells: int):
    from repro.batch import BatchAssembler, items_from_decomposition
    from repro.core import default_config
    from repro.dd import decompose
    from repro.fem import heat_transfer_2d
    from repro.obs import tracing

    problem = heat_transfer_2d(cells, dirichlet=())  # floating: maximal grouping
    decomposition = decompose(problem, grid=(8, 8))
    items = items_from_decomposition(decomposition)
    cfg = default_config("gpu", 2)
    with tracing():
        per_member = BatchAssembler(config=cfg).assemble_batch(
            items, execution="per-member"
        )
    with tracing():
        grouped = BatchAssembler(config=cfg).assemble_batch(
            items, execution="grouped", n_workers=1
        )
    return per_member, grouped


def test_grouped_execution_speedup(benchmark):
    cells = 64 if PAPER_SCALE else 32

    per_member, grouped = benchmark.pedantic(
        lambda: _run(cells), rounds=1, iterations=1
    )
    if _numeric_wall(per_member) < 2.0 * _numeric_wall(grouped):
        # One retry damps scheduler noise on busy CI runners.
        per_member, grouped = _run(cells)

    # Same population, same grouping, fully batched; mirror classes merged.
    assert grouped.stats.n_subdomains == 64
    assert grouped.stats.n_groups == 3
    assert grouped.stats.n_exact_groups == 9
    assert grouped.stats.n_grouped == 64

    # Numerics: grouped == per-member at tight tolerance.
    for a, b in zip(per_member.results, grouped.results):
        scale = max(1.0, float(np.abs(a.f).max(initial=0.0)))
        assert np.allclose(b.f, a.f, rtol=RTOL, atol=ATOL * scale)

    # Launches: every group shrinks by at least its member count.
    for key, members in per_member.groups.items():
        g = len(members)
        assert (
            grouped.stats.group_launches[key] * g
            <= per_member.stats.group_launches[key]
        )

    # Wall clock: single-threaded batching alone gives >= 2x.  Timed from
    # the runs' own obs spans (batch.member vs batch.group).
    speedup = _numeric_wall(per_member) / _numeric_wall(grouped)
    assert speedup >= 2.0, f"grouped speedup only {speedup:.2f}x"
    trace_path = save_trace_artifact(grouped.trace, "batched_numeric_grouped")

    benchmark.extra_info["n_subdomains"] = grouped.stats.n_subdomains
    benchmark.extra_info["n_groups"] = grouped.stats.n_groups
    benchmark.extra_info["grouped_speedup"] = speedup
    benchmark.extra_info["launches_per_member"] = per_member.stats.kernel_launches
    benchmark.extra_info["launches_grouped"] = grouped.stats.kernel_launches
    benchmark.extra_info["exec_per_member_s"] = _numeric_wall(per_member)
    benchmark.extra_info["exec_grouped_s"] = _numeric_wall(grouped)

    print()
    print("grouped vs per-member numeric execution (8x8 floating grid)")
    print(grouped.stats.summary())
    print(
        f"per-member: {_numeric_wall(per_member) * 1e3:8.3f} ms host wall, "
        f"{per_member.stats.kernel_launches} launches"
    )
    print(
        f"grouped:    {_numeric_wall(grouped) * 1e3:8.3f} ms host wall, "
        f"{grouped.stats.kernel_launches} launches"
    )
    print(f"speedup:    {speedup:.2f}x (single thread — batching only)")
    if trace_path:
        print(f"[trace written to {trace_path}]")


def test_grouped_parallel_workers(benchmark):
    """Grouped + thread fan-out stays bitwise-equal to serial grouped."""
    cells = 64 if PAPER_SCALE else 32

    def run():
        from repro.batch import BatchAssembler, items_from_decomposition
        from repro.core import default_config
        from repro.dd import decompose
        from repro.fem import heat_transfer_2d

        problem = heat_transfer_2d(cells, dirichlet=())
        decomposition = decompose(problem, grid=(8, 8))
        items = items_from_decomposition(decomposition)
        cfg = default_config("gpu", 2)
        serial = BatchAssembler(config=cfg).assemble_batch(
            items, execution="grouped", n_workers=1
        )
        parallel = BatchAssembler(config=cfg).assemble_batch(
            items, execution="grouped", n_workers=None
        )
        return serial, parallel

    serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    for a, b in zip(serial.results, parallel.results):
        assert np.array_equal(a.f, b.f)
    assert parallel.stats.kernel_launches == serial.stats.kernel_launches
    benchmark.extra_info["exec_serial_s"] = serial.stats.execute_seconds
    benchmark.extra_info["exec_parallel_s"] = parallel.stats.execute_seconds
    print()
    print(
        f"grouped serial:   {serial.stats.execute_seconds * 1e3:8.3f} ms | "
        f"parallel: {parallel.stats.execute_seconds * 1e3:8.3f} ms"
    )
