"""Figure 9 — preprocessing time per subdomain for all eight Table-2
dual-operator approaches, 2-D and 3-D.

Reproduced claims: implicit approaches are the fastest preprocessing (they
only factorize); PARDISO's augmented factorization (expl_mkl) remains the
fastest *explicit* approach in 2-D; expl_gpu_opt is the fastest explicit
approach for non-tiny 3-D subdomains (paper: up to 9.8x over expl_mkl) and
lands within a small factor of the implicit preprocessing."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig09_preprocessing(benchmark):
    res = run_and_report(benchmark, "fig09")
    # 2-D: expl_mkl beats expl_gpu_opt (ratio < 1).
    assert res.metrics["gpu_opt_vs_expl_mkl_2d"] < 1.0
    # 3-D: expl_gpu_opt beats expl_mkl by a growing factor.
    assert res.metrics["gpu_opt_vs_expl_mkl_3d"] > 3.0
    # 3-D: explicit GPU preprocessing within ~3x of the implicit baseline
    # (paper: 2.3x at large subdomains).
    assert res.metrics["gpu_opt_vs_impl_cholmod_3d"] < 3.5
