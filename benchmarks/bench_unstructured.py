"""Unstructured workload: partition quality, grouping quality, speedup.

The first workload where grouping is *not* free: a jittered, irregularly
split unit square (:mod:`repro.part.meshes`) decomposed by the METIS-like
dual-graph partitioner (:mod:`repro.part.partitioner`) into 32 connected,
balanced subdomains.  No two subdomains are exact translates — every exact
fingerprint class is a singleton — so the only leverage left is the
rotation-invariant *pricing* layer of :mod:`repro.sparse.canonical`:

* **Grouping quality** (the headline assert): the near-match signature
  (``signature_mode="near"``) groups the 32 singleton exact classes into
  at most half as many pricing classes (observed: 13-15 on seeds 0-4), so
  approach planning and cost estimation are charged per *class* again.
* **Union execution** (the PR-7 assert): ``execution="union"`` pads the
  members of each near class into the structural union of their patterns
  and batches them exactly — the pricing-only classes above become
  *executed* groups.  The run must execute at least one padded class, cut
  total kernel launches by at least 2x vs per-member execution, and match
  per-member numerics to tight allclose.
* **Correctness**: grouped (stacked-kernel) execution matches per-member
  execution to tight allclose even when every group is a singleton.
* **Speedup reporting**: grouped-vs-per-member wall clock and the
  grouping-efficiency counters (members per executed group, singleton
  share) land in the CI ``BENCH_<run_id>`` artifact.

``docs/unstructured.md`` documents the workload and its knobs.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PAPER_SCALE

RTOL, ATOL = 1e-9, 1e-10


def _build(n_parts: int, cells: int, seed: int):
    from repro.batch import BatchAssembler, items_from_decomposition
    from repro.core import default_config
    from repro.dd import decompose
    from repro.fem import heat_problem
    from repro.part import jittered_square_mesh, partition_mesh

    mesh = jittered_square_mesh(cells, jitter=0.25, seed=seed)
    problem = heat_problem(mesh)  # floating: every subdomain is singular
    decomposition = decompose(
        problem, n_subdomains=n_parts, partitioner="rcb", seed=seed
    )
    baseline_cut = partition_mesh(mesh, n_parts, method="rcb", refine=False).edge_cut
    items = items_from_decomposition(decomposition)
    cfg = default_config("gpu", 2)

    # Timed through repro.obs spans instead of hand-rolled perf_counter
    # pairs: batch.group covers the grouped (stacked-kernel) numerics,
    # batch.member the streamed per-member numerics — the comparable
    # numeric-phase walls across execution modes.
    from repro.obs import tracing

    with tracing():
        grouped = BatchAssembler(config=cfg, signature_mode="near").assemble_batch(
            items, execution="grouped"
        )
    grouped_wall = grouped.trace.total("batch.group") + grouped.trace.total(
        "batch.member"
    )
    with tracing():
        member = BatchAssembler(config=cfg, signature_mode="near").assemble_batch(
            items, execution="per-member"
        )
    member_wall = member.trace.total("batch.member")
    with tracing():
        union = BatchAssembler(config=cfg, signature_mode="near").assemble_batch(
            items, execution="union"
        )
    return decomposition, baseline_cut, grouped, member, union, grouped_wall, member_wall


def test_unstructured_grouping_and_execution(benchmark):
    n_parts, cells = (32, 32) if PAPER_SCALE else (32, 24)
    seed = 0
    decomposition, baseline_cut, grouped, member, union, grouped_wall, member_wall = (
        benchmark.pedantic(
            lambda: _build(n_parts, cells, seed), rounds=1, iterations=1
        )
    )
    stats = grouped.stats
    n = decomposition.n_subdomains
    assert n == n_parts >= 32

    # Partition quality: connected balanced parts, refinement didn't hurt.
    report = decomposition.partition
    assert report.counts.min() >= 1
    assert report.edge_cut <= baseline_cut
    assert report.balance <= 1.1 + 1e-9

    # Exact fingerprints are useless here: every class is a singleton.
    assert stats.n_exact_groups == n
    assert stats.singleton_share == 1.0
    assert stats.members_per_group == 1.0

    # Headline: rotation-invariant near-match pricing classes shrink the 32
    # exact classes by at least 2x.
    n_near = stats.n_geometric_groups
    grouping_ratio = stats.n_exact_groups / n_near
    assert grouping_ratio >= 2.0, (
        f"near pricing classes {n_near} vs {stats.n_exact_groups} exact — "
        f"only {grouping_ratio:.2f}x"
    )

    # Grouped (stacked) execution matches per-member execution.
    for res_g, res_m in zip(grouped.results, member.results):
        scale = max(1.0, float(np.abs(res_m.f).max(initial=0.0)))
        assert np.allclose(res_g.f, res_m.f, rtol=RTOL, atol=ATOL * scale)

    # Union execution turns pricing-only near classes into executed groups:
    # at least one class runs padded, total kernel launches drop at least
    # 2x vs per-member, and the padded numerics stay exact.
    ustats = union.stats
    union_launches = ustats.kernel_launches
    member_launches = member.stats.kernel_launches
    assert ustats.n_union_groups > 0, "no near class accepted for union execution"
    assert union_launches * 2 <= member_launches, (
        f"union execution launched {union_launches} kernel(s) vs "
        f"{member_launches} per-member — less than the required 2x reduction"
    )
    for res_u, res_m in zip(union.results, member.results):
        scale = max(1.0, float(np.abs(res_m.f).max(initial=0.0)))
        assert np.allclose(res_u.f, res_m.f, rtol=RTOL, atol=ATOL * scale)

    speedup = member_wall / grouped_wall if grouped_wall > 0 else float("inf")
    launch_reduction = (
        member_launches / union_launches if union_launches else float("inf")
    )

    benchmark.extra_info["n_subdomains"] = n
    benchmark.extra_info["n_exact_groups"] = stats.n_exact_groups
    benchmark.extra_info["n_near_groups"] = n_near
    benchmark.extra_info["grouping_ratio"] = grouping_ratio
    benchmark.extra_info["singleton_share"] = stats.singleton_share
    benchmark.extra_info["edge_cut"] = report.edge_cut
    benchmark.extra_info["partition_balance"] = report.balance
    benchmark.extra_info["unstructured_grouped_speedup"] = speedup
    benchmark.extra_info["n_union_groups"] = ustats.n_union_groups
    benchmark.extra_info["n_union_members"] = ustats.n_union_members
    benchmark.extra_info["n_union_skipped"] = ustats.n_union_skipped
    benchmark.extra_info["union_fill_ratio"] = ustats.union_fill_ratio
    benchmark.extra_info["union_launches"] = union_launches
    benchmark.extra_info["member_launches"] = member_launches
    benchmark.extra_info["union_launch_reduction"] = launch_reduction

    print()
    print(f"jittered {cells}x{cells} square, {n} rcb subdomains (seed {seed})")
    print(f"partition:      {report.summary()} (unrefined cut {baseline_cut})")
    print(stats.summary())
    print(f"pricing:        {stats.n_exact_groups} exact -> {n_near} near "
          f"class(es) ({grouping_ratio:.2f}x)")
    print(f"execution wall: grouped {grouped_wall * 1e3:.1f} ms, "
          f"per-member {member_wall * 1e3:.1f} ms ({speedup:.2f}x)")
    print(f"union:          {ustats.n_union_members} member(s) in "
          f"{ustats.n_union_groups} padded class(es) at "
          f"{ustats.union_fill_ratio:.2f}x fill, launches "
          f"{member_launches} -> {union_launches} ({launch_reduction:.2f}x)")


def test_unstructured_near_planning_collapses(benchmark):
    """plan_population with the near signature prices one plan per near
    class instead of one per subdomain (only the planning is timed)."""
    from repro.batch import items_from_decomposition, near_fingerprint
    from repro.dd import decompose
    from repro.fem import heat_problem
    from repro.feti.planner import plan_population
    from repro.part import jittered_square_mesh

    mesh = jittered_square_mesh(24, jitter=0.25, seed=1)
    decomposition = decompose(
        heat_problem(mesh), n_subdomains=32, partitioner="rcb", seed=1
    )
    items = items_from_decomposition(decomposition)

    pop = benchmark.pedantic(
        lambda: plan_population(
            [(it.factor, it.bt) for it in items],
            dim=2,
            expected_iterations=60,
            coords=[it.coords for it in items],
            signature="near",
        ),
        rounds=1,
        iterations=1,
    )
    assert pop.n_members == 32
    n_near = len({near_fingerprint(it.coords, it.bt).key for it in items})
    assert pop.n_groups == n_near
    assert pop.n_groups * 2 <= pop.n_members
    benchmark.extra_info["n_plan_groups"] = pop.n_groups
    print()
    print(f"near planning: {pop.n_members} members -> {pop.n_groups} plan(s)")
