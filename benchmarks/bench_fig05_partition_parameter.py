"""Figure 5 — SC assembly time vs partition parameter (3-D, GPU, factor
splitting).

Reproduced claims: U-shaped dependency (tiny blocks launch-bound, huge
blocks waste FLOPs on zeros); the *fixed block size* optimum is independent
of subdomain size while the *fixed count* optimum grows with it."""

from __future__ import annotations

from benchmarks.conftest import run_and_report


def test_fig05_partition_parameter(benchmark):
    res = run_and_report(benchmark, "fig05")
    # U-shape: block size 1 is at least 5x worse than the optimum.
    assert res.metrics["u_shape_penalty_small_3k"] > 5
    assert res.metrics["u_shape_penalty_small_35k"] > 5
    # Size optimum is (approximately) subdomain-size independent: the two
    # optima lie within one grid step of each other.
    grid = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 100000]
    i3 = grid.index(int(res.metrics["best_block_size_3k"]))
    i35 = grid.index(int(res.metrics["best_block_size_35k"]))
    assert abs(i3 - i35) <= 1
    # And it sits in the few-hundreds range the paper reports (~500).
    assert 100 <= res.metrics["best_block_size_35k"] <= 2000
