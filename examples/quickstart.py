#!/usr/bin/env python
"""Quickstart: assemble one Schur complement with and without sparsity.

Builds a floating 3-D heat-transfer subdomain, factorizes it, assembles the
local FETI dual operator ``F = B K^+ B^T`` with (a) the baseline kernels of
[9] and (b) this paper's sparsity-aware kernels, verifies both against a
dense reference, and prints the simulated GPU timings.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import make_workload
from repro.core import SchurAssembler, baseline_config, default_config
from repro.sparse import solve_lower
from repro.util import format_si

def main() -> None:
    # A ~2.7k-DOF floating cube subdomain with its whole surface glued.
    wl = make_workload(dim=3, target_dofs=2744)
    print(f"subdomain: {wl.n_dofs} DOFs, {wl.n_multipliers} Lagrange multipliers")
    print(f"factor: {wl.factor.nnz} nonzeros, {format_si(wl.factor.flops)}flop")

    # Baseline of [9]: full TRSM + full SYRK on the (simulated) GPU.
    base = SchurAssembler(config=baseline_config("sparse"))
    res_base = base.assemble(wl.factor, wl.bt)

    # This paper: stepped permutation + factor-split TRSM (pruned) +
    # input-split SYRK, tuned block sizes from Table 1.
    opt = SchurAssembler(config=default_config("gpu", 3))
    res_opt = opt.assemble(wl.factor, wl.bt)

    # Both must equal the dense reference F = Y^T Y, Y = L^{-1} P B^T.
    y = solve_lower(wl.factor.l, wl.bt.tocsr()[wl.factor.perm].toarray())
    f_ref = y.T @ y
    err_base = np.abs(res_base.f - f_ref).max()
    err_opt = np.abs(res_opt.f - f_ref).max()
    print(f"\nmax |F - F_ref|: baseline {err_base:.2e}, optimized {err_opt:.2e}")
    assert err_base < 1e-8 and err_opt < 1e-8

    print("\nsimulated GPU timings (per subdomain):")
    for name, res in (("baseline [9]", res_base), ("optimized", res_opt)):
        b = res.breakdown
        print(
            f"  {name:13s} total {res.elapsed * 1e3:8.3f} ms  "
            f"(transfer {b['transfer']*1e3:.3f}, permute {b['permute']*1e3:.3f}, "
            f"trsm {b['trsm']*1e3:.3f}, syrk {b['syrk']*1e3:.3f})"
        )
    print(f"\nGPU-section speedup: {res_base.elapsed / res_opt.elapsed:.2f}x")
    print(f"stepped density of B^T: {res_opt.shape.density():.3f} "
          f"(fraction of structurally nonzero entries)")


if __name__ == "__main__":
    main()
