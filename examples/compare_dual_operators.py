#!/usr/bin/env python
"""Compare all eight Table-2 dual-operator approaches on one problem.

Runs the full FETI solver once per approach on the same 2-D decomposition:
every approach must converge to the same solution; the simulated timings
show the preprocessing/apply trade-off the paper's Figure 9/10 quantify.

Run:  python examples/compare_dual_operators.py
"""

from __future__ import annotations

import numpy as np

from repro.dd import decompose
from repro.fem import heat_transfer_2d
from repro.feti import APPROACHES, solve_feti
from repro.util import Table


def main() -> None:
    problem = heat_transfer_2d(24, dirichlet=("left",))
    decomposition = decompose(problem, grid=(3, 3))
    u_direct = problem.solve_direct()
    print(
        f"problem: {problem.n_dofs} DOFs, {decomposition.n_subdomains} subdomains, "
        f"{decomposition.n_multipliers} multipliers\n"
    )

    table = Table(
        ["approach", "iters", "max error", "prep/sub [ms]", "apply/sub [ms]"],
        title="Table-2 dual-operator approaches (simulated timings)",
    )
    for name in APPROACHES:
        sol = solve_feti(decomposition, approach=name, tol=1e-10)
        err = float(np.abs(sol.u - u_direct).max())
        assert err < 1e-6, f"{name} diverged"
        t = sol.timings
        table.add_row(
            [
                name,
                sol.iterations,
                err,
                t.preprocessing_per_subdomain * 1e3,
                t.apply_mean_per_subdomain * 1e3,
            ]
        )
    print(table.render())
    print(
        "\nAll approaches produce the same solution; they differ in where "
        "the time goes (preprocessing vs per-iteration application)."
    )


if __name__ == "__main__":
    main()
