#!/usr/bin/env python
"""Generality demo: the same sparsity-aware assembly on linear elasticity.

The paper closes with "the approach can be successfully used in other
methods where SC of the form B K^{-1} B^T are computed" (§6).  This example
assembles the dual operator of a floating *elasticity* subdomain — denser
factor, three displacement DOFs per node, a 3-/6-dimensional rigid-body
kernel — with the unchanged kernels, verifies exactness, and reports the
simulated speedup.

Run:  python examples/elasticity_subdomain.py
"""

from __future__ import annotations

import numpy as np

from repro.bench.workloads import make_elasticity_workload, make_workload
from repro.core import SchurAssembler, baseline_config, default_config
from repro.sparse import solve_lower
from repro.util import Table


def main() -> None:
    table = Table(
        ["workload", "dofs", "m", "kernel", "orig [ms]", "opt [ms]", "speedup", "max err"],
        title="heat transfer vs elasticity, simulated GPU assembly",
    )
    for label, wl, kdim in (
        ("heat 3D", make_workload(3, 2744), 1),
        ("elasticity 2D", make_elasticity_workload(2, 2000), 3),
        ("elasticity 3D", make_elasticity_workload(3, 2000), 6),
    ):
        dim = wl.dim
        orig = SchurAssembler(config=baseline_config("sparse")).assemble(wl.factor, wl.bt)
        opt = SchurAssembler(config=default_config("gpu", dim)).assemble(wl.factor, wl.bt)
        y = solve_lower(wl.factor.l, wl.bt.tocsr()[wl.factor.perm].toarray())
        err = max(
            np.abs(orig.f - y.T @ y).max(),
            np.abs(opt.f - y.T @ y).max(),
        )
        table.add_row(
            [
                label,
                wl.n_dofs,
                wl.n_multipliers,
                kdim,
                orig.elapsed * 1e3,
                opt.elapsed * 1e3,
                orig.elapsed / opt.elapsed,
                err,
            ]
        )
        assert err < 1e-8
    print(table.render())
    print(
        "\nNo elasticity-specific code paths exist in repro.core — the "
        "stepped permutation and split kernels only see a factor and a "
        "sparse B^T, exactly the generality the paper claims."
    )


if __name__ == "__main__":
    main()
