#!/usr/bin/env python
"""Amortization study: when does explicit GPU assembly pay off?

For a ladder of 3-D subdomain sizes, compares the implicit CPU dual operator
(factorize only, slow iterations) against the explicit GPU operator of the
paper (extra assembly, fast iterations) and prints the amortization points —
the paper's headline is "about 10 iterations" across 1k-70k DOFs.

Run:  python examples/amortization_study.py
"""

from __future__ import annotations

from repro.bench import make_workload
from repro.feti import amortization_point, estimate_approach_timing
from repro.util import Table


def main() -> None:
    table = Table(
        [
            "DOFs",
            "multipliers",
            "prep impl [ms]",
            "prep expl_gpu_opt [ms]",
            "apply impl [ms]",
            "apply expl [ms]",
            "amortization [iters]",
        ],
        title="3-D heat transfer, impl_mkl vs expl_gpu_opt (simulated)",
    )
    for dofs in (729, 1331, 2744, 4913, 9261, 17576):
        wl = make_workload(3, dofs)
        impl = estimate_approach_timing("impl_mkl", wl.factor, wl.bt, dim=3)
        expl = estimate_approach_timing("expl_gpu_opt", wl.factor, wl.bt, dim=3)
        table.add_row(
            [
                wl.n_dofs,
                wl.n_multipliers,
                impl.preprocessing * 1e3,
                expl.preprocessing * 1e3,
                impl.apply_per_iteration * 1e3,
                expl.apply_per_iteration * 1e3,
                amortization_point(impl, expl),
            ]
        )
    print(table.render())
    print(
        "\nReading: after ~the amortization point, the explicit GPU dual "
        "operator is the faster overall choice; the paper reports ~10 "
        "iterations across 3-D subdomain sizes."
    )


if __name__ == "__main__":
    main()
