#!/usr/bin/env python
"""Block-size tuning study (the Figure 5 experiment in miniature).

Sweeps the block-size and block-count parameters of the factor-splitting
TRSM + input-splitting SYRK on a 3-D subdomain and prints the U-shaped
simulated-time curve: tiny blocks drown in kernel-launch overhead, huge
blocks waste FLOPs on the structural zeros of the stepped RHS.

Run:  python examples/tuning_block_size.py
"""

from __future__ import annotations

from repro.bench import make_workload
from repro.core import SchurAssembler, by_count, by_size, default_config
from repro.gpu import A100_40GB
from repro.util import Table


def main() -> None:
    wl = make_workload(3, 2744)
    print(f"subdomain: {wl.n_dofs} DOFs, {wl.n_multipliers} multipliers\n")
    base = default_config("gpu", 3)
    table = Table(
        ["parameter", "fixed size [ms]", "fixed count [ms]"],
        title="SC assembly time vs partition parameter (simulated GPU)",
    )
    params = [1, 5, 10, 50, 100, 500, 1000, 5000]
    best = (None, float("inf"))
    for v in params:
        times = {}
        for mode, spec in (("size", by_size(v)), ("count", by_count(v))):
            cfg = base.with_overrides(trsm_blocks=spec, syrk_blocks=spec)
            t = SchurAssembler(config=cfg, spec=A100_40GB).estimate(wl.factor, wl.bt)[
                "total"
            ]
            times[mode] = t * 1e3
            if t < best[1]:
                best = (f"{mode} {v}", t)
        table.add_row([v, times["size"], times["count"]])
    print(table.render())
    print(f"\nbest setting: {best[0]}  ({best[1] * 1e3:.3f} ms)")
    print("paper (Table 1, GPU 3D): TRSM S 500, SYRK S 1000")


if __name__ == "__main__":
    main()
