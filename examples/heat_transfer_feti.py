#!/usr/bin/env python
"""End-to-end FETI solve of a 2-D heat-transfer problem.

Mirrors the paper's workflow: assemble the global problem, tear it into
subdomains, preprocess the dual operator with one of the Table-2 approaches
(default: the paper's ``expl_gpu_opt``), solve the dual problem with PCPG,
recover the temperature field, and compare against a direct solve.

Run:  python examples/heat_transfer_feti.py [approach]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.dd import decompose
from repro.fem import heat_transfer_2d
from repro.feti import APPROACHES, FetiSolver


def main(approach: str = "expl_gpu_opt") -> None:
    if approach not in APPROACHES:
        raise SystemExit(f"unknown approach {approach!r}; pick one of {sorted(APPROACHES)}")

    # Unit square, 32x32 cells, Dirichlet on the left face, unit heat source.
    problem = heat_transfer_2d(32, dirichlet=("left",))
    decomposition = decompose(problem, grid=(4, 4))
    n_float = sum(s.floating for s in decomposition.subdomains)
    print(
        f"problem: {problem.n_dofs} DOFs -> {decomposition.n_subdomains} subdomains "
        f"({n_float} floating), {decomposition.n_multipliers} multipliers"
    )

    solver = FetiSolver(decomposition, approach=approach, tol=1e-10)
    timings = solver.preprocess()
    solution = solver.solve()

    print(f"\napproach: {approach}")
    print(f"PCPG iterations: {solution.iterations} (converged={solution.info.converged})")
    print(f"final projected residual: {solution.info.final_residual:.3e}")

    u_direct = problem.solve_direct()
    err = np.abs(solution.u - u_direct).max()
    print(f"max |u_feti - u_direct| = {err:.3e}")
    assert err < 1e-7

    print("\nsimulated timings (totals over subdomains):")
    print(f"  factorization: {sum(timings.factorization) * 1e3:9.3f} ms")
    print(f"  SC assembly:   {sum(timings.assembly) * 1e3:9.3f} ms")
    print(f"  transfers:     {sum(timings.transfer) * 1e3:9.3f} ms")
    print(f"  apply/iter:    {timings.apply_total_per_iteration * 1e3:9.3f} ms")
    total = timings.preprocessing_total + solution.iterations * timings.apply_total_per_iteration
    print(f"  dual operator total ({solution.iterations} iterations): {total * 1e3:9.3f} ms")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "expl_gpu_opt")
