#!/usr/bin/env python3
"""Benchmark regression gate: diff a fresh CI bench run against the
committed baseline.

The CI ``bench`` job runs the benchmark suite with
``--benchmark-json BENCH_<run_id>.json`` and then::

    python tools/check_bench.py diff BENCH_<run_id>.json

which compares every gated metric (the ``extra_info`` quality counters
the benchmarks export: grouping ratios, kernel-launch counts, cache hit
rates, simulated preprocessing seconds, ...) against
``benchmarks/baseline.json`` and exits 1 when any metric moved in its bad
direction by more than its tolerance.  Host wall-clock numbers are
reported but never gated — CI runners are too noisy for that; the gated
metrics are the deterministic outputs of the simulated cost model and the
structural grouping counters.

Re-baselining (after a change that legitimately moves a metric)::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json fresh.json
    python tools/check_bench.py extract fresh.json -o benchmarks/baseline.json

then commit the regenerated ``benchmarks/baseline.json`` and say in the
PR which metrics moved and why.  ``docs/ci.md`` documents the workflow.

No third-party dependencies — stdlib ``json`` only.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO / "benchmarks" / "baseline.json"

#: Baseline schema version (bump when the extract format changes).
SCHEMA = 1

#: Gate directions.  ``higher``/``lower`` name the *good* direction;
#: ``equal`` flags any change (structural counters that only move when the
#: workload itself changes — that is a re-baseline, not noise).
HIGHER, LOWER, EQUAL = "higher", "lower", "equal"


@dataclass(frozen=True)
class Gate:
    """Direction + relative tolerance of one gated metric."""

    direction: str
    rel_tol: float = 0.0


#: Per-metric gates.  Metrics absent from this table are reported as
#: informational (host wall clock, raw host ``exec_*_s`` walls) and never
#: fail the diff.  Tolerances are relative to the baseline value:
#: deterministic counters get 0, simulated-seconds metrics a float-noise
#: allowance, host-wall speedups a generous CI-noise band.
GATES: dict[str, Gate] = {
    # structural workload counters: any drift means the workload changed
    "n_subdomains": Gate(EQUAL),
    "n_exact_groups": Gate(EQUAL),
    # grouping quality: fewer classes / more sharing is better
    "n_groups": Gate(LOWER),
    "n_geometric_groups": Gate(LOWER),
    "n_near_groups": Gate(LOWER),
    "n_plan_groups": Gate(LOWER),
    "hit_rate": Gate(HIGHER),
    "grouping_ratio": Gate(HIGHER, 0.02),
    "singleton_share": Gate(LOWER, 0.02),
    # partition quality (deterministic given the seed)
    "edge_cut": Gate(LOWER),
    "partition_balance": Gate(LOWER, 0.01),
    # simulated cost model (deterministic; small float allowance)
    "analysis_saved_s": Gate(HIGHER, 0.02),
    "canonical_analysis_speedup": Gate(HIGHER, 0.02),
    "prep_cached_s": Gate(LOWER, 0.02),
    "prep_baseline_s": Gate(LOWER, 0.02),
    "makespan_s": Gate(LOWER, 0.02),
    "throughput": Gate(HIGHER, 0.02),
    # kernel-launch accounting (deterministic)
    "launches_per_member": Gate(LOWER),
    "launches_grouped": Gate(LOWER),
    "union_launches": Gate(LOWER),
    "member_launches": Gate(LOWER),
    "union_launch_reduction": Gate(HIGHER, 0.01),
    # union-execution coverage and padding cost (deterministic)
    "n_union_groups": Gate(HIGHER),
    "n_union_members": Gate(HIGHER),
    "n_union_skipped": Gate(LOWER),
    "union_fill_ratio": Gate(LOWER, 0.01),
    # block multi-RHS solve path (benchmarks/bench_block_solve.py): launch
    # accounting is deterministic, iteration counts get a small band (CG
    # rounding can move them by one), parity/equality flags must hold
    # exactly; the raw solve walls stay informational
    "solve_n_groups": Gate(LOWER),
    "solve_launches_per_iteration": Gate(LOWER),
    "solve_launches_sequential": Gate(EQUAL),
    "solve_launch_reduction": Gate(HIGHER, 0.01),
    "solve_block_iterations": Gate(EQUAL, 0.05),
    "solve_scalar_iterations": Gate(EQUAL, 0.05),
    "solve_iteration_gap_max": Gate(LOWER),
    "solve_iteration_parity": Gate(EQUAL),
    "solve_solution_matches": Gate(EQUAL),
    "solve_n_deflated": Gate(EQUAL),
    "solve_lowrank_iteration_gap": Gate(LOWER),
    # host wall-clock speedups: gated, but with a wide CI-noise band
    "grouped_speedup": Gate(HIGHER, 0.50),
    "unstructured_grouped_speedup": Gate(HIGHER, 0.50),
    # persistent artifact store (benchmarks/bench_store.py): a warm run
    # serves every pattern from the store, so it charges exactly zero
    # analysis seconds and the speedup is deterministically its cap; the
    # raw cold/warm wall times stay info-only like every other wall time
    "store_analysis_speedup": Gate(HIGHER, 0.02),
    "store_hit_rate": Gate(HIGHER),
    "n_quarantined": Gate(EQUAL),
}


@dataclass
class Delta:
    """One compared metric of one benchmark."""

    bench: str
    metric: str
    base: float
    new: float
    gated: bool
    regressed: bool

    @property
    def change(self) -> float:
        """Relative change vs baseline (0.0 when the baseline is 0)."""
        return (self.new - self.base) / self.base if self.base else 0.0

    @property
    def status(self) -> str:
        if self.regressed:
            return "REGRESSED"
        return "ok" if self.gated else "info"


def load_report(path: str | Path) -> dict:
    """Load a ``pytest-benchmark`` JSON report."""
    with open(path) as fh:
        report = json.load(fh)
    if "benchmarks" not in report:
        raise ValueError(f"{path}: not a pytest-benchmark report (no 'benchmarks')")
    return report


def extract_baseline(report: dict, source: str = "") -> dict:
    """Reduce a full bench report to the committed-baseline shape.

    Keeps, per benchmark ``name``: the mean wall seconds (informational)
    and every ``extra_info`` metric (the gated quality counters).
    """
    benches = {}
    for b in report["benchmarks"]:
        extra = {
            k: v
            for k, v in b.get("extra_info", {}).items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        benches[b["name"]] = {"mean_s": b["stats"]["mean"], "extra_info": extra}
    return {"schema": SCHEMA, "source": source, "benchmarks": benches}


def _regressed(gate: Gate, base: float, new: float) -> bool:
    """Did *new* move past the tolerance band in the bad direction?"""
    band = abs(base) * gate.rel_tol
    if gate.direction == EQUAL:
        return abs(new - base) > band
    if gate.direction == HIGHER:
        return new < base - band
    return new > base + band


def diff(baseline: dict, report: dict) -> tuple[list[Delta], list[str]]:
    """Compare *report* against *baseline*.

    Returns ``(deltas, errors)``: one :class:`Delta` per compared metric
    and a list of hard errors (missing benchmarks, schema drift).  The
    diff regressed iff any delta has ``regressed`` or ``errors`` is
    non-empty.
    """
    errors: list[str] = []
    if baseline.get("schema") != SCHEMA:
        errors.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA}; "
            "re-extract with tools/check_bench.py extract"
        )
        return [], errors
    fresh = {b["name"]: b for b in report["benchmarks"]}
    deltas: list[Delta] = []
    for name, base in baseline["benchmarks"].items():
        if name not in fresh:
            errors.append(f"benchmark disappeared from the run: {name}")
            continue
        new_extra = fresh[name].get("extra_info", {})
        deltas.append(
            Delta(name, "mean_s", base["mean_s"], fresh[name]["stats"]["mean"],
                  gated=False, regressed=False)
        )
        for metric, base_val in base["extra_info"].items():
            if metric not in new_extra:
                errors.append(f"{name}: metric disappeared from the run: {metric}")
                continue
            gate = GATES.get(metric)
            new_val = float(new_extra[metric])
            regressed = bool(gate) and _regressed(gate, float(base_val), new_val)
            deltas.append(
                Delta(name, metric, float(base_val), new_val,
                      gated=gate is not None, regressed=regressed)
            )
    return deltas, errors


def render_table(deltas: list[Delta], errors: list[str]) -> str:
    """Markdown delta table (lands in the CI job summary)."""
    lines = [
        "| benchmark | metric | baseline | current | change | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for d in deltas:
        mark = "**REGRESSED**" if d.regressed else d.status
        lines.append(
            f"| {d.bench} | {d.metric} | {d.base:.6g} | {d.new:.6g} "
            f"| {d.change:+.1%} | {mark} |"
        )
    for err in errors:
        lines.append(f"| — | — | — | — | — | **ERROR: {err}** |")
    n_reg = sum(d.regressed for d in deltas) + len(errors)
    n_gated = sum(d.gated for d in deltas)
    verdict = (
        f"\n{n_reg} regression(s) across {n_gated} gated metric(s)."
        if n_reg
        else f"\nNo regressions across {n_gated} gated metric(s)."
    )
    return "\n".join(lines) + "\n" + verdict


def _atomic_write_text(path: Path, text: str) -> None:
    """tmp + fsync + rename (standalone twin of ``repro.util.atomic`` —
    this tool stays importable without ``src`` on the path)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.tmp-")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def cmd_extract(args) -> int:
    report = load_report(args.report)
    baseline = extract_baseline(report, source=Path(args.report).name)
    out = Path(args.out)
    _atomic_write_text(out, json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    n_metrics = sum(len(b["extra_info"]) for b in baseline["benchmarks"].values())
    print(f"baseline written to {out}: "
          f"{len(baseline['benchmarks'])} benchmark(s), {n_metrics} metric(s)")
    return 0


def cmd_diff(args) -> int:
    baseline = json.loads(Path(args.baseline).read_text())
    report = load_report(args.report)
    deltas, errors = diff(baseline, report)
    table = render_table(deltas, errors)
    print(table)
    if args.delta_out:
        _atomic_write_text(Path(args.delta_out), table + "\n")
        print(f"\n[delta table written to {args.delta_out}]")
    regressed = any(d.regressed for d in deltas) or bool(errors)
    if regressed:
        print("\nbench gate FAILED — if the movement is intended, re-baseline:")
        print("  python tools/check_bench.py extract <fresh.json> "
              "-o benchmarks/baseline.json")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_bench", description="benchmark regression gate"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_extract = sub.add_parser(
        "extract", help="reduce a bench report to a committed baseline"
    )
    p_extract.add_argument("report", help="pytest-benchmark JSON report")
    p_extract.add_argument(
        "-o", "--out", default=str(DEFAULT_BASELINE),
        help="baseline path (default: benchmarks/baseline.json)",
    )
    p_diff = sub.add_parser("diff", help="gate a fresh report against the baseline")
    p_diff.add_argument("report", help="pytest-benchmark JSON report")
    p_diff.add_argument(
        "--baseline", default=str(DEFAULT_BASELINE),
        help="baseline to diff against (default: benchmarks/baseline.json)",
    )
    p_diff.add_argument(
        "--delta-out", default=None, metavar="FILE",
        help="also write the markdown delta table to FILE",
    )
    args = parser.parse_args(argv)
    return {"extract": cmd_extract, "diff": cmd_diff}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
