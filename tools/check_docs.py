#!/usr/bin/env python3
"""Documentation checks: intra-repo links and documented CLI flags.

Two checks, no third-party dependencies:

1. **Links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must resolve to an existing file or directory (external
   ``http(s)://`` links and pure ``#anchors`` are skipped; a ``#fragment``
   on a relative link is stripped before checking).
2. **Flags** — every ``--flag`` token mentioned in the flag-checked docs
   (``README.md``, ``docs/batching.md``, ``docs/service.md``, ...) must
   appear in the help output of one of the checked subcommands
   (``repro batch``, ``repro solve``, ``repro work submit/run/status``,
   ``repro store verify``), so the docs cannot drift from the CLI.

Run from the repository root (CI runs it in the ``docs`` job)::

    python tools/check_docs.py

Exit status 0 on success; failures are listed one per line.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Long CLI flags as they appear in prose/code blocks.
FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]+)")

#: Markdown files whose links are checked.
DOC_FILES = (
    "README.md",
    "docs/architecture.md",
    "docs/pipeline.md",
    "docs/batching.md",
    "docs/unstructured.md",
    "docs/observability.md",
    "docs/service.md",
    "docs/solving.md",
    "docs/ci.md",
)

#: Files whose ``--flags`` must exist in one of the checked CLI helps.
FLAG_DOC_FILES = (
    "README.md",
    "docs/batching.md",
    "docs/unstructured.md",
    "docs/observability.md",
    "docs/service.md",
    "docs/solving.md",
    "docs/ci.md",
)

#: Subcommands whose ``--help`` output the documented flags are checked
#: against (a flag may live in any of them).
HELP_COMMANDS = (
    ("batch", "--help"),
    ("solve", "--help"),
    ("trace", "--help"),
    ("obs", "report", "--help"),
    ("work", "submit", "--help"),
    ("work", "run", "--help"),
    ("work", "status", "--help"),
    ("store", "verify", "--help"),
)

#: Documented flags that belong to other subcommands or to pytest, not to
#: ``repro batch``.
FLAG_ALLOWLIST = {
    "--paper-scale",
    "--out",
    # flags of tools/check_bench.py and pytest-benchmark (docs/ci.md)
    "--baseline",
    "--delta-out",
    "--benchmark-json",
}


def iter_links(md_path: Path):
    """Yield (line_number, target) for every inline link in *md_path*."""
    for lineno, line in enumerate(md_path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_links(repo: Path = REPO, files=DOC_FILES) -> list[str]:
    """Return a list of broken-link descriptions (empty = all good)."""
    errors = []
    for rel in files:
        md = repo / rel
        if not md.exists():
            errors.append(f"{rel}: file missing")
            continue
        for lineno, target in iter_links(md):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure anchor
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def documented_flags(repo: Path = REPO, files=FLAG_DOC_FILES) -> set[str]:
    """All ``--flag`` tokens mentioned in *files*, minus the allowlist."""
    flags: set[str] = set()
    for rel in files:
        md = repo / rel
        if md.exists():
            flags.update(FLAG_RE.findall(md.read_text()))
    return flags - FLAG_ALLOWLIST


def cli_help_text(repo: Path = REPO) -> str:
    """Concatenated ``--help`` output of every checked subcommand."""
    texts = []
    for command in HELP_COMMANDS:
        proc = subprocess.run(
            [sys.executable, "-m", "repro", *command],
            capture_output=True,
            text=True,
            cwd=repo,
            env={**__import__("os").environ, "PYTHONPATH": str(repo / "src")},
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"repro {' '.join(command)} failed:\n{proc.stderr}"
            )
        texts.append(proc.stdout)
    return "\n".join(texts)


def check_flags(repo: Path = REPO) -> list[str]:
    """Return descriptions of documented flags missing from the CLI help."""
    help_text = cli_help_text(repo)
    return [
        f"documented flag {flag} not in any checked `python -m repro` help"
        for flag in sorted(documented_flags(repo))
        if flag not in help_text
    ]


def main() -> int:
    errors = check_links()
    errors += check_flags()
    if errors:
        print("documentation checks FAILED:")
        for err in errors:
            print(f"  {err}")
        return 1
    n_links = sum(len(list(iter_links(REPO / f))) for f in DOC_FILES if (REPO / f).exists())
    print(f"docs OK: {n_links} links resolved, "
          f"{len(documented_flags())} documented flags present in CLI help")
    return 0


if __name__ == "__main__":
    sys.exit(main())
