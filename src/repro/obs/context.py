"""Trace-context propagation across process boundaries.

A :class:`TraceContext` is the portable identity of one logical trace:
a fleet-wide ``trace_id`` plus the id of the span under which follow-up
work should hang.  It is what crosses the process boundary that a
:class:`~repro.obs.span.Span` itself cannot: the submitter serializes its
context into the job row (``repro.store.queue`` stores ``trace_id`` /
``parent_span`` columns), any worker — in any process, on any machine,
even one re-leasing the job after the original worker crashed — reads it
back and opens its ``worker.job`` span *as a child of the submitter's
context*.  The fleet merge (:mod:`repro.obs.fleet`) then stitches the
per-process traces into one timeline keyed by those ids.

Span ids are only unique within one tracer, so a context's ``span_id``
is namespaced by the tracer's process tag (``<tag>:<local id>``) — two
workers can never mint colliding context ids.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass

#: Job-row / JSON keys under which a context travels.
TRACE_ID_KEY = "trace_id"
PARENT_SPAN_KEY = "parent_span"


def new_trace_id() -> str:
    """A fresh fleet-wide trace id (128-bit random hex)."""
    return uuid.uuid4().hex


def process_tag() -> str:
    """A short tag distinguishing span-id namespaces across processes."""
    return f"{os.getpid():x}-{uuid.uuid4().hex[:6]}"


@dataclass(frozen=True)
class TraceContext:
    """Portable trace identity: ``(trace_id, span_id)``.

    ``span_id`` is the globally-namespaced id of the span this context
    points at (``""`` for a root context with no recorded parent span —
    e.g. a job submitted with tracing off still gets a ``trace_id`` so
    the whole fleet timeline of that job stays linkable).
    """

    trace_id: str
    span_id: str = ""

    @classmethod
    def root(cls) -> "TraceContext":
        """A fresh parentless context (new trace id, no parent span)."""
        return cls(trace_id=new_trace_id())

    def child_attrs(self) -> dict:
        """Span attributes a child in *another process* should carry so
        the merged trace can link it back (``trace_id``/``remote_parent``)."""
        attrs = {TRACE_ID_KEY: self.trace_id}
        if self.span_id:
            attrs["remote_parent"] = self.span_id
        return attrs

    def to_pair(self) -> tuple[str, str | None]:
        """``(trace_id, parent_span-or-None)`` — the queue-schema shape."""
        return self.trace_id, (self.span_id or None)

    @classmethod
    def from_pair(
        cls, trace_id: str | None, span_id: str | None
    ) -> "TraceContext | None":
        """Rebuild a context from queue columns (``None`` when absent)."""
        if not trace_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id or "")


__all__ = [
    "TraceContext",
    "new_trace_id",
    "process_tag",
    "TRACE_ID_KEY",
    "PARENT_SPAN_KEY",
]
