"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per :class:`~repro.obs.span.Tracer` puts
simulated-device numbers (:class:`~repro.gpu.costmodel.CostLedger` totals,
absorbed by :func:`record_cost_ledger`) and measured host counters
(:class:`~repro.batch.stats.BatchStats`, absorbed by
:func:`record_batch_stats`) on one timeline next to the spans — the "where
did this run spend its time" artifact the fragmented per-module stopwatches
could not produce.  Everything here is stdlib-only and guarded by a single
lock; the expected write rate (one update per kernel launch / per batch) is
far below contention territory.

Metric naming convention (see ``docs/observability.md`` for the full
table): dotted lowercase paths, ``batch.*`` for host-side batch counters,
``gpu.*`` for simulated-device totals, with histograms suffixed by their
unit (``gpu.kernel_sim_seconds``).
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field, fields, is_dataclass

#: Default histogram boundaries for durations in seconds (log-spaced).
DEFAULT_TIME_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


#: Percentiles included in histogram exports and summaries.
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class Histogram:
    """Fixed-boundary histogram: ``counts[i]`` holds observations ``<=
    boundaries[i]``, the final bucket is the overflow.  The observed
    min/max are tracked so percentile estimates can clamp the open-ended
    first and overflow buckets to real values."""

    boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0
    vmin: float | None = None
    vmax: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.n += 1
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the *q*-th percentile (0..100) from the buckets.

        Linear interpolation inside the containing bucket; the open-ended
        first/overflow buckets are clamped to the tracked min/max, so a
        histogram whose observations all land in one bucket still reports
        a value inside the observed range (exact when n <= 1).
        """
        if self.n == 0:
            return 0.0
        rank = max(1.0, (q / 100.0) * self.n)
        cum = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            if cum + count >= rank:
                lo = self.boundaries[i - 1] if i > 0 else 0.0
                hi = (
                    self.boundaries[i]
                    if i < len(self.boundaries)
                    else (self.vmax if self.vmax is not None else lo)
                )
                if self.vmin is not None:
                    lo = max(lo, min(self.vmin, hi))
                if self.vmax is not None:
                    hi = min(hi, self.vmax)
                frac = (rank - cum) / count
                return lo + frac * max(0.0, hi - lo)
            cum += count
        return self.vmax if self.vmax is not None else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold *other* (same boundaries) into this histogram — cell-wise
        addition, so merging is associative and commutative."""
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.n += other.n
        for v in (other.vmin,):
            if v is not None:
                self.vmin = v if self.vmin is None else min(self.vmin, v)
        for v in (other.vmax,):
            if v is not None:
                self.vmax = v if self.vmax is None else max(self.vmax, v)

    def to_dict(self) -> dict:
        out = {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "total": self.total,
            "n": self.n,
            "min": self.vmin,
            "max": self.vmax,
        }
        for q in SUMMARY_PERCENTILES:
            out[f"p{q:g}"] = self.percentile(q)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Rebuild from a :meth:`to_dict` snapshot (derived percentile
        keys are ignored; pre-percentile snapshots load fine)."""
        return cls(
            boundaries=tuple(data["boundaries"]),
            counts=list(data["counts"]),
            total=float(data.get("total", 0.0)),
            n=int(data.get("n", 0)),
            vmin=data.get("min"),
            vmax=data.get("max"),
        )


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms.

    Counters accumulate (``count``), gauges hold the last value (``gauge``),
    histograms bucket observations (``observe``).  ``to_dict`` flattens the
    registry for the JSON/CSV dumps of :mod:`repro.obs.export`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writes ------------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(boundaries=boundaries)
            hist.observe(value)

    # -- reads -------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def to_dict(self) -> dict:
        """Snapshot: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    k: h.to_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters/histogram cells add,
        gauges take the other's value — last write wins)."""
        self.merge_dict(other.to_dict())

    def merge_dict(self, snap: dict) -> None:
        """Fold a :meth:`to_dict` snapshot into this registry.

        This is the fleet-merge primitive (per-worker snapshots arrive as
        JSON, not live registries).  Counter and histogram merging is
        cell-wise addition — associative and commutative, so any merge
        order over any partition of workers yields the same registry
        (asserted by ``tests/test_fleet.py``).  Gauges are last-write-wins
        and a histogram re-registered with different boundaries restarts
        from the incoming snapshot's boundaries.
        """
        with self._lock:
            for k, v in snap.get("counters", {}).items():
                self._counters[k] = self._counters.get(k, 0.0) + v
            self._gauges.update(snap.get("gauges", {}))
            for k, h in snap.get("histograms", {}).items():
                incoming = Histogram.from_dict(h)
                mine = self._histograms.get(k)
                if mine is None or list(mine.boundaries) != list(incoming.boundaries):
                    self._histograms[k] = incoming
                else:
                    mine.merge(incoming)

    @classmethod
    def from_dict(cls, snap: dict) -> "MetricsRegistry":
        """Rebuild a registry from a :meth:`to_dict` snapshot."""
        registry = cls()
        registry.merge_dict(snap)
        return registry


def record_cost_ledger(registry: MetricsRegistry, ledger, prefix: str = "gpu.") -> None:
    """Absorb a :class:`~repro.gpu.costmodel.CostLedger` total into counters.

    Duck-typed (``ledger.total.flops`` etc.) so :mod:`repro.obs` stays free
    of intra-repo imports.
    """
    registry.count(prefix + "sim_seconds", ledger.elapsed)
    registry.count(prefix + "calls", ledger.calls)
    registry.count(prefix + "flops", ledger.total.flops)
    registry.count(prefix + "bytes_moved", ledger.total.bytes_moved)
    registry.count(prefix + "launches", ledger.total.launches)


def record_batch_stats(registry: MetricsRegistry, stats, prefix: str = "batch.") -> None:
    """Absorb every numeric :class:`~repro.batch.stats.BatchStats` field.

    Introspects the dataclass so new counters added to ``BatchStats`` land
    in the registry automatically; dict-valued fields contribute their value
    sum, string fields are skipped.
    """
    if not is_dataclass(stats):
        raise TypeError(f"expected a dataclass, got {type(stats)!r}")
    for f in fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, bool) or isinstance(value, str):
            continue
        if isinstance(value, dict):
            registry.count(prefix + f.name, float(sum(value.values())))
        elif isinstance(value, (int, float)):
            registry.count(prefix + f.name, float(value))


__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "SUMMARY_PERCENTILES",
    "Histogram",
    "MetricsRegistry",
    "record_cost_ledger",
    "record_batch_stats",
]
