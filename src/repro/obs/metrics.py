"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per :class:`~repro.obs.span.Tracer` puts
simulated-device numbers (:class:`~repro.gpu.costmodel.CostLedger` totals,
absorbed by :func:`record_cost_ledger`) and measured host counters
(:class:`~repro.batch.stats.BatchStats`, absorbed by
:func:`record_batch_stats`) on one timeline next to the spans — the "where
did this run spend its time" artifact the fragmented per-module stopwatches
could not produce.  Everything here is stdlib-only and guarded by a single
lock; the expected write rate (one update per kernel launch / per batch) is
far below contention territory.

Metric naming convention (see ``docs/observability.md`` for the full
table): dotted lowercase paths, ``batch.*`` for host-side batch counters,
``gpu.*`` for simulated-device totals, with histograms suffixed by their
unit (``gpu.kernel_sim_seconds``).
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field, fields, is_dataclass

#: Default histogram boundaries for durations in seconds (log-spaced).
DEFAULT_TIME_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


@dataclass
class Histogram:
    """Fixed-boundary histogram: ``counts[i]`` holds observations ``<=
    boundaries[i]``, the final bucket is the overflow."""

    boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.n += 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "total": self.total,
            "n": self.n,
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms.

    Counters accumulate (``count``), gauges hold the last value (``gauge``),
    histograms bucket observations (``observe``).  ``to_dict`` flattens the
    registry for the JSON/CSV dumps of :mod:`repro.obs.export`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writes ------------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        boundaries: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(boundaries=boundaries)
            hist.observe(value)

    # -- reads -------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def to_dict(self) -> dict:
        """Snapshot: ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    k: h.to_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters/histogram cells add,
        gauges take the other's value — last write wins)."""
        snap = other.to_dict()
        with self._lock:
            for k, v in snap["counters"].items():
                self._counters[k] = self._counters.get(k, 0.0) + v
            self._gauges.update(snap["gauges"])
            for k, h in snap["histograms"].items():
                mine = self._histograms.get(k)
                if mine is None or list(mine.boundaries) != h["boundaries"]:
                    mine = self._histograms[k] = Histogram(
                        boundaries=tuple(h["boundaries"])
                    )
                mine.counts = [a + b for a, b in zip(mine.counts, h["counts"])]
                mine.total += h["total"]
                mine.n += h["n"]


def record_cost_ledger(registry: MetricsRegistry, ledger, prefix: str = "gpu.") -> None:
    """Absorb a :class:`~repro.gpu.costmodel.CostLedger` total into counters.

    Duck-typed (``ledger.total.flops`` etc.) so :mod:`repro.obs` stays free
    of intra-repo imports.
    """
    registry.count(prefix + "sim_seconds", ledger.elapsed)
    registry.count(prefix + "calls", ledger.calls)
    registry.count(prefix + "flops", ledger.total.flops)
    registry.count(prefix + "bytes_moved", ledger.total.bytes_moved)
    registry.count(prefix + "launches", ledger.total.launches)


def record_batch_stats(registry: MetricsRegistry, stats, prefix: str = "batch.") -> None:
    """Absorb every numeric :class:`~repro.batch.stats.BatchStats` field.

    Introspects the dataclass so new counters added to ``BatchStats`` land
    in the registry automatically; dict-valued fields contribute their value
    sum, string fields are skipped.
    """
    if not is_dataclass(stats):
        raise TypeError(f"expected a dataclass, got {type(stats)!r}")
    for f in fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, bool) or isinstance(value, str):
            continue
        if isinstance(value, dict):
            registry.count(prefix + f.name, float(sum(value.values())))
        elif isinstance(value, (int, float)):
            registry.count(prefix + f.name, float(value))


__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "record_cost_ledger",
    "record_batch_stats",
]
