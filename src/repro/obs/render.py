"""Terminal rendering: phase-breakdown trees and schedule timelines.

:func:`phase_tree` aggregates spans into a tree keyed by span-name path
(spans with the same name under the same parent path merge into one node
with a count), and :func:`render_phase_tree` prints it with inclusive
wall / CPU time per phase — the ``python -m repro trace`` report.

:func:`render_schedule` and :func:`gantt` (simulated-schedule renderings,
formerly ``repro.runtime.trace``) live here so every human-readable
timeline view comes out of one module; the old import path re-exports them
with a deprecation warning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.span import Span
from repro.util import Table, format_si, require


@dataclass
class PhaseNode:
    """One aggregated phase: all spans sharing a name path."""

    name: str
    count: int = 0
    inclusive: float = 0.0
    cpu: float = 0.0
    children: dict[str, "PhaseNode"] = field(default_factory=dict)

    @property
    def self_seconds(self) -> float:
        """Inclusive time not covered by child phases (clamped at 0: child
        spans on other threads can overlap their parent phase)."""
        return max(0.0, self.inclusive - sum(c.inclusive for c in self.children.values()))

    def walk(self, depth: int = 0):
        """Yield ``(node, depth)`` pairs, children by descending inclusive."""
        yield self, depth
        for child in sorted(
            self.children.values(), key=lambda c: -c.inclusive
        ):
            yield from child.walk(depth + 1)


def phase_tree(spans: list[Span]) -> PhaseNode:
    """Aggregate *spans* into a phase tree under a synthetic ``total`` root.

    Spans without a recorded parent (main-thread roots, worker-thread
    top-level spans, simulated-device kernels) become children of the root;
    the root's inclusive time sums only those, so phases running on
    parallel tracks appear side by side rather than double-counted under
    one another.
    """
    by_id = {s.span_id: s for s in spans}
    root = PhaseNode(name="total")
    for s in spans:
        path = [s.name]
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        while parent is not None:
            path.append(parent.name)
            parent = (
                by_id.get(parent.parent_id) if parent.parent_id is not None else None
            )
        node = root
        for name in reversed(path):
            node = node.children.setdefault(name, PhaseNode(name=name))
        node.count += 1
        node.inclusive += s.duration
        node.cpu += s.cpu
        if s.parent_id is None or s.parent_id not in by_id:
            root.count += 1
            root.inclusive += s.duration
            root.cpu += s.cpu
    return root


def render_phase_tree(root: PhaseNode, max_depth: int | None = None) -> str:
    """ASCII tree of phases with inclusive wall and CPU time."""
    lines = [f"{'phase':44s} {'count':>6s} {'inclusive':>11s} {'cpu':>11s}"]
    for node, depth in root.walk():
        if max_depth is not None and depth > max_depth:
            continue
        label = ("  " * depth + node.name)[:44]
        lines.append(
            f"{label:44s} {node.count:6d} "
            f"{format_si(node.inclusive, 's'):>11s} {format_si(node.cpu, 's'):>11s}"
        )
    return "\n".join(lines)


def top_phases(spans: list[Span], n: int = 3) -> list[tuple[str, float, int]]:
    """Top *n* phases by summed inclusive time: ``(name, seconds, count)``.

    Aggregates across the whole trace by span name (tracks and nesting
    ignored) — the CI job-summary view.
    """
    totals: dict[str, tuple[float, int]] = {}
    for s in spans:
        sec, count = totals.get(s.name, (0.0, 0))
        totals[s.name] = (sec + s.duration, count + 1)
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])
    return [(name, sec, count) for name, (sec, count) in ranked[:n]]


# -- simulated-schedule renderings (migrated from repro.runtime.trace) ------


def render_schedule(schedule, max_rows: int = 40) -> str:
    """Tabular rendering of a schedule ordered by start time."""
    table = Table(["task", "resource", "worker", "start", "end", "duration"])
    rows = sorted(schedule.tasks.values(), key=lambda t: (t.start, t.task_id))
    for t in rows[:max_rows]:
        table.add_row(
            [
                t.task_id,
                t.resource,
                t.worker,
                format_si(t.start, "s"),
                format_si(t.end, "s"),
                format_si(t.end - t.start, "s"),
            ]
        )
    out = table.render()
    if len(rows) > max_rows:
        out += f"\n... ({len(rows) - max_rows} more tasks)"
    out += f"\nmakespan: {format_si(schedule.makespan, 's')}"
    return out


def gantt(schedule, resource: str, n_workers: int, width: int = 72) -> str:
    """ASCII Gantt chart of one worker pool.

    Each row is a worker; each task paints its id's last character over its
    time span.  Intended for debugging pipeline overlap, not for precision.
    """
    require(width >= 10, "width too small")
    if schedule.makespan == 0:
        return "(empty schedule)"
    scale = width / schedule.makespan
    rows = [[" "] * width for _ in range(n_workers)]
    for t in sorted(schedule.tasks.values(), key=lambda t: t.start):
        if t.resource != resource or t.worker >= n_workers:
            continue
        c0 = min(int(t.start * scale), width - 1)
        c1 = min(max(int(t.end * scale), c0 + 1), width)
        mark = t.task_id[-1]
        for c in range(c0, c1):
            rows[t.worker][c] = mark
    lines = [f"{resource}[{i}] |{''.join(r)}|" for i, r in enumerate(rows)]
    return "\n".join(lines)


__all__ = [
    "PhaseNode",
    "phase_tree",
    "render_phase_tree",
    "top_phases",
    "render_schedule",
    "gantt",
]
