"""Nested, thread-aware tracing spans with a no-op fast path.

The span model (documented in ``docs/observability.md``):

* A :class:`Span` is one timed region with a name, attributes, exact wall
  time (``perf_counter`` relative to the tracer's epoch) and CPU time
  (``thread_time``).  Spans opened with ``with tracer.span("name"): ...``
  nest per thread — each thread keeps its own stack, so parentage is always
  consistent within a thread and worker-pool threads get their own top-level
  tracks.
* *Virtual* spans (:meth:`Tracer.add_span`) carry explicit timestamps on an
  explicit track — how :class:`repro.gpu.runtime.Executor` places every
  priced kernel on its simulated-device timeline (simulated seconds, one
  track per executor).
* The process-global default tracer is **disabled**: ``tracer.span(...)``
  then returns a shared do-nothing context manager, so instrumented hot
  loops cost one attribute check when tracing is off (the <2% overhead
  bound asserted in ``tests/test_obs.py``).  Enable collection with
  :func:`tracing` (scoped) or :func:`set_tracer`.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.obs.context import TraceContext, new_trace_id, process_tag
from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """One finished timed region.

    ``start``/``end`` are seconds relative to the tracer epoch for host
    spans, simulated seconds for virtual device spans; ``cpu`` is the
    thread-CPU time consumed (0.0 for virtual spans); ``track`` identifies
    the timeline (``host:<n>`` per thread, ``sim:...`` per executor).
    """

    name: str
    span_id: int
    parent_id: int | None
    track: str
    start: float
    end: float
    cpu: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NoopSpan:
    """Shared do-nothing context manager — the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """Context manager recording one span on the current thread's stack."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "start", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.start = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes from inside the ``with`` block."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._cpu0 = time.thread_time()
        self.start = self._tracer.now()  # last: exclude setup from the span
        return self

    def __exit__(self, *exc) -> bool:
        end = self._tracer.now()
        cpu = time.thread_time() - self._cpu0
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misuse (exit out of order)
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer._record(
            Span(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                track=self._tracer._host_track(),
                start=self.start,
                end=end,
                cpu=cpu,
                attrs=self.attrs,
            )
        )
        return False


@dataclass
class Trace:
    """A handle on collected spans + metrics (what ``BatchResult.trace``
    returns and what the exporters consume).

    ``meta`` carries the trace's cross-process identity and clock anchor
    (``trace_id``, ``epoch_unix``, optionally ``worker``) — everything
    :mod:`repro.obs.fleet` needs to stitch per-process traces together.
    """

    spans: list[Span]
    metrics: MetricsRegistry
    meta: dict = field(default_factory=dict)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def total(self, *names: str) -> float:
        """Summed inclusive seconds of every span carrying one of *names*."""
        wanted = set(names)
        return sum(s.duration for s in self.spans if s.name in wanted)

    def tracks(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.track)
        return list(seen)

    def to_chrome(self) -> dict:
        from repro.obs.export import chrome_trace

        return chrome_trace(self.spans, metrics=self.metrics, meta=self.meta)

    def save(self, path) -> str:
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(
            path, self.spans, metrics=self.metrics, meta=self.meta
        )

    def tree(self):
        from repro.obs.render import phase_tree

        return phase_tree(self.spans)

    def render(self, max_depth: int | None = None) -> str:
        from repro.obs.render import render_phase_tree

        return render_phase_tree(self.tree(), max_depth=max_depth)


class Tracer:
    """Collects spans from any number of threads plus a metrics registry.

    One tracer is one trace: the epoch is fixed at construction, every host
    thread that opens a span gets its own ``host:<n>`` track, and virtual
    (simulated-device) spans land on whatever track their producer names.
    ``enabled`` is the single switch the no-op fast path checks.
    """

    def __init__(self, enabled: bool = True, trace_id: str | None = None) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.epoch = time.perf_counter()
        #: Wall-clock instant of the epoch — the anchor the fleet merge
        #: uses to align traces recorded on different monotonic clocks.
        self.epoch_unix = time.time()
        #: Fleet-wide trace id; inherited via *trace_id* when this tracer
        #: continues a trace started elsewhere (a worker process).
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        #: Span-id namespace tag, unique per tracer across processes.
        self.tag = process_tag()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._local = threading.local()
        self._tracks: dict[int, str] = {}

    # -- time --------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return time.perf_counter() - self.epoch

    # -- span creation -----------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a nested span (context manager) on the calling thread.

        With tracing disabled this returns the shared no-op context manager
        without allocating anything.
        """
        if not self.enabled:
            return NOOP_SPAN
        return _LiveSpan(self, name, attrs)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        track: str,
        parent_id: int | None = None,
        **attrs,
    ) -> None:
        """Record a span with explicit timestamps on an explicit *track*.

        This is the simulated-device path: timestamps are whatever timeline
        the producer keeps (e.g. :class:`~repro.gpu.costmodel.CostLedger`
        simulated seconds), not the tracer's wall clock.
        """
        if not self.enabled:
            return
        self._record(
            Span(
                name=name,
                span_id=next(self._ids),
                parent_id=parent_id,
                track=track,
                start=start,
                end=end,
                attrs=attrs,
            )
        )

    # -- cross-process context ---------------------------------------------

    def current_context(self) -> TraceContext:
        """The portable context of the calling thread's innermost open span.

        With no span open (or tracing disabled) the context still carries
        this tracer's ``trace_id``, just without a parent span — follow-up
        work stays on the same fleet trace either way.
        """
        stack = getattr(self._local, "stack", None) if self.enabled else None
        if not stack:
            return TraceContext(trace_id=self.trace_id)
        return TraceContext(
            trace_id=self.trace_id, span_id=f"{self.tag}:{stack[-1].span_id}"
        )

    def meta(self, **extra) -> dict:
        """Identity + clock-anchor metadata embedded in exported traces
        (``otherData``) so :mod:`repro.obs.fleet` can merge them."""
        out = {
            "trace_id": self.trace_id,
            "tag": self.tag,
            "epoch_unix": self.epoch_unix,
        }
        out.update({k: v for k, v in extra.items() if v is not None})
        return out

    # -- collection --------------------------------------------------------

    def mark(self) -> int:
        """Current span count — pass to :meth:`trace` to scope a window."""
        with self._lock:
            return len(self._spans)

    def spans(self, since: int = 0) -> list[Span]:
        with self._lock:
            return list(self._spans[since:])

    def trace(self, since: int = 0, **meta_extra) -> Trace:
        """Snapshot the spans recorded since *since* (a :meth:`mark`)."""
        return Trace(
            spans=self.spans(since),
            metrics=self.metrics,
            meta=self.meta(**meta_extra),
        )

    # -- internals ---------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def _stack(self) -> list[_LiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _host_track(self) -> str:
        ident = threading.get_ident()
        track = self._tracks.get(ident)
        if track is None:
            with self._lock:
                track = self._tracks.setdefault(ident, f"host:{len(self._tracks)}")
        return track


#: Process-global default: tracing off, spans are no-ops.
_DEFAULT_TRACER = Tracer(enabled=False)
_current_tracer: Tracer = _DEFAULT_TRACER


def get_tracer() -> Tracer:
    """The process-global current tracer (disabled unless installed)."""
    return _current_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install *tracer* globally (``None`` restores the disabled default);
    returns the previously installed tracer."""
    global _current_tracer
    previous = _current_tracer
    _current_tracer = tracer if tracer is not None else _DEFAULT_TRACER
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Scoped tracing: install a fresh enabled tracer, restore on exit.

    >>> with tracing() as tr:
    ...     engine.assemble_batch(items)
    >>> tr.trace().save("out.json")
    """
    t = tracer if tracer is not None else Tracer(enabled=True)
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)


__all__ = [
    "Span",
    "Trace",
    "TraceContext",
    "Tracer",
    "NOOP_SPAN",
    "get_tracer",
    "set_tracer",
    "tracing",
]
