"""Trace and metrics exporters: Chrome trace-event JSON, flat JSON/CSV.

:func:`chrome_trace` emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto / ``chrome://tracing``: one ``B``/``E`` event pair per
span, one named track (tid) per host worker thread and one per simulated
device executor, thread-name metadata events, plus the metrics registry
snapshot under ``otherData``.  Timestamps are microseconds as floats —
full ``perf_counter`` precision is preserved.

Host tracks carry wall time; ``sim:*`` tracks carry *simulated* seconds
(the cost-model timeline).  They coexist in one file because Perfetto
renders tracks independently; see ``docs/observability.md``.

:func:`load_chrome_trace` round-trips a written file back into
:class:`~repro.obs.span.Span` objects (parentage reconstructed from the
B/E nesting) so ``python -m repro trace out.json`` can render the phase
breakdown of any saved run.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span
from repro.util.atomic import atomic_write_text


def _track_order(track: str) -> tuple:
    """Host tracks first (in creation order), simulated tracks after."""
    if track.startswith("host:"):
        suffix = track.split(":", 1)[1]
        return (0, int(suffix) if suffix.isdigit() else 1 << 30, track)
    return (1, 0, track)


def emit_span_events(
    events: list[dict], spans: list[Span], pid: int, tid_base: int = 0
) -> int:
    """Append thread-name metadata + stack-disciplined ``B``/``E`` pairs
    for *spans* under process *pid*, numbering tracks from ``tid_base + 1``.

    Returns the number of tracks emitted, so a multi-process writer (the
    fleet merge) can keep tids globally unique across workers.  Spans on
    one track must be well nested — guaranteed for tracer-produced spans.
    """
    tracks = sorted({s.track for s in spans}, key=_track_order)
    tids = {track: tid_base + i + 1 for i, track in enumerate(tracks)}
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for track in tracks:
        tid = tids[track]
        mine = sorted(
            (s for s in spans if s.track == track),
            key=lambda s: (s.start, -s.end, s.span_id),
        )
        stack: list[Span] = []
        for s in mine:
            while stack and stack[-1].end <= s.start:
                done = stack.pop()
                events.append(
                    {"name": done.name, "ph": "E", "pid": pid, "tid": tid,
                     "ts": done.end * 1e6}
                )
            args = {k: v for k, v in s.attrs.items()}
            if s.cpu:
                args["cpu_s"] = s.cpu
            events.append(
                {"name": s.name, "ph": "B", "pid": pid, "tid": tid,
                 "ts": s.start * 1e6, "args": args}
            )
            stack.append(s)
        while stack:
            done = stack.pop()
            events.append(
                {"name": done.name, "ph": "E", "pid": pid, "tid": tid,
                 "ts": done.end * 1e6}
            )
    return len(tracks)


def chrome_trace(
    spans: list[Span],
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> dict:
    """Build a Chrome trace-event dict from finished spans.

    Spans on one track must be well nested (guaranteed for spans produced
    by a :class:`~repro.obs.span.Tracer`: host spans come off a per-thread
    stack, simulated spans are sequential per executor).  Each span becomes
    a ``B``/``E`` pair; per track the event stream is stack-disciplined and
    its timestamps are non-decreasing.
    """
    events: list[dict] = []
    emit_span_events(events, spans, pid=0)
    out = {"traceEvents": events, "displayTimeUnit": "ms"}
    other: dict = {}
    if metrics is not None:
        other["metrics"] = metrics.to_dict()
    if meta:
        other["trace"] = dict(meta)
    if other:
        out["otherData"] = other
    return out


def write_chrome_trace(
    path,
    spans: list[Span],
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> str:
    """Serialize :func:`chrome_trace` to *path* (atomic tmp+rename — a
    killed process never leaves a truncated trace); returns the path."""
    return atomic_write_text(
        path, json.dumps(chrome_trace(spans, metrics=metrics, meta=meta))
    )


@dataclass
class TraceFile:
    """One loaded trace/metrics artifact.

    ``spans`` is empty for metrics-only files (a bare ``--metrics-out``
    JSON dump, or a crashed worker's checkpoint that never recorded a
    span); ``warnings`` lists every malformation a lenient read repaired
    instead of raising.
    """

    path: str = ""
    spans: list[Span] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    @property
    def worker(self) -> str:
        """Display name: recorded worker id, else the file stem."""
        return str(self.meta.get("worker") or Path(self.path).stem or "trace")


def _looks_like_metrics_dump(data: dict) -> bool:
    """A bare ``--metrics-out`` JSON file (no trace events at all)."""
    return "traceEvents" not in data and (
        "counters" in data or "gauges" in data or "histograms" in data
    )


def read_trace(path, strict: bool = False) -> TraceFile:
    """Read a trace or metrics artifact into a :class:`TraceFile`.

    Parentage is reconstructed from the per-track ``B``/``E`` nesting and
    span ids are reassigned.  With ``strict=True`` any malformation
    (unbalanced events, mismatched close names, dangling opens) raises
    ``ValueError``.  The default lenient mode instead *repairs* and
    records a warning — a crashed worker's checkpoint, a metrics-only
    dump, or a hand-truncated file still renders:

    * an ``E`` with no open span on its track is skipped,
    * an ``E`` naming a different span than the innermost open one is
      skipped (the open span stays open),
    * spans still open at the end are closed at the latest timestamp
      seen on the file.
    """
    data = json.loads(Path(path).read_text())
    out = TraceFile(path=str(path))
    if isinstance(data, dict) and _looks_like_metrics_dump(data):
        out.metrics = data
        out.warnings.append("metrics-only file (no trace events)")
        if strict:
            raise ValueError(f"{path}: not a Chrome trace (metrics-only dump)")
        return out
    if isinstance(data, dict):
        events = data.get("traceEvents")
        if events is None:
            msg = f"{path}: no traceEvents key"
            if strict:
                raise ValueError(msg)
            out.warnings.append("no traceEvents key")
            events = []
        other = data.get("otherData", {})
        out.metrics = other.get("metrics", {})
        out.meta = other.get("trace", {})
    else:
        events = data
    names: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev["tid"]] = ev.get("args", {}).get("name", f"tid:{ev['tid']}")
    spans: list[Span] = []
    stacks: dict[int, list[Span]] = {}
    next_id = 1
    last_ts = 0.0
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("B", "E"):
            continue
        tid = ev.get("tid", 0)
        last_ts = max(last_ts, ev.get("ts", 0.0) / 1e6)
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            span = Span(
                name=ev.get("name", "?"),
                span_id=next_id,
                parent_id=stack[-1].span_id if stack else None,
                track=names.get(tid, f"tid:{tid}"),
                start=ev.get("ts", 0.0) / 1e6,
                end=ev.get("ts", 0.0) / 1e6,
                attrs=dict(ev.get("args", {})),
            )
            next_id += 1
            stack.append(span)
        else:
            if not stack:
                if strict:
                    raise ValueError(f"unbalanced E event on tid {tid}: {ev}")
                out.warnings.append(f"skipped unbalanced E event on tid {tid}")
                continue
            if ev.get("name") not in (None, stack[-1].name):
                if strict:
                    raise ValueError(
                        f"E event {ev.get('name')!r} closes span "
                        f"{stack[-1].name!r} on tid {tid}"
                    )
                out.warnings.append(
                    f"skipped mismatched E event {ev.get('name')!r} on tid {tid}"
                )
                continue
            span = stack.pop()
            span.end = ev.get("ts", 0.0) / 1e6
            spans.append(span)
    dangling = [s for st in stacks.values() for s in st]
    if dangling:
        if strict:
            raise ValueError(f"unclosed B events: {[s.name for s in dangling]}")
        for span in dangling:
            span.end = max(span.start, last_ts)
            span.attrs.setdefault("unclosed", True)
            spans.append(span)
        out.warnings.append(
            f"closed {len(dangling)} dangling span(s) at the last timestamp "
            f"(partial trace — crashed or still-running writer?)"
        )
    out.spans = spans
    return out


def load_chrome_trace(path) -> tuple[list[Span], dict]:
    """Strict legacy reader: spans + metrics snapshot; raises ``ValueError``
    on malformed files.  Prefer :func:`read_trace` for tooling that must
    degrade gracefully on partial or metrics-only artifacts."""
    loaded = read_trace(path, strict=True)
    return loaded.spans, loaded.metrics


def metrics_to_json(metrics: MetricsRegistry) -> str:
    """Flat JSON dump of a metrics registry."""
    return json.dumps(metrics.to_dict(), indent=2, sort_keys=True)


def metrics_to_csv(metrics: MetricsRegistry) -> str:
    """Flat CSV dump: ``kind,name,value`` rows (histograms flattened into
    ``sum``/``count``/``bucket_le_<b>`` rows)."""
    snap = metrics.to_dict()
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kind", "name", "value"])
    for name, value in snap["counters"].items():
        writer.writerow(["counter", name, value])
    for name, value in snap["gauges"].items():
        writer.writerow(["gauge", name, value])
    for name, hist in snap["histograms"].items():
        writer.writerow(["histogram", f"{name}.sum", hist["total"]])
        writer.writerow(["histogram", f"{name}.count", hist["n"]])
        edges = [*hist["boundaries"], "inf"]
        for edge, count in zip(edges, hist["counts"]):
            writer.writerow(["histogram", f"{name}.bucket_le_{edge}", count])
    return buf.getvalue()


def write_metrics(path, metrics: MetricsRegistry) -> str:
    """Write the metrics dump to *path* atomically (format from the
    extension: ``.csv`` flat CSV, anything else JSON)."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return atomic_write_text(path, metrics_to_csv(metrics))
    return atomic_write_text(path, metrics_to_json(metrics))


__all__ = [
    "TraceFile",
    "chrome_trace",
    "write_chrome_trace",
    "read_trace",
    "load_chrome_trace",
    "metrics_to_json",
    "metrics_to_csv",
    "write_metrics",
]
