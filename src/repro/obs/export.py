"""Trace and metrics exporters: Chrome trace-event JSON, flat JSON/CSV.

:func:`chrome_trace` emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by Perfetto / ``chrome://tracing``: one ``B``/``E`` event pair per
span, one named track (tid) per host worker thread and one per simulated
device executor, thread-name metadata events, plus the metrics registry
snapshot under ``otherData``.  Timestamps are microseconds as floats —
full ``perf_counter`` precision is preserved.

Host tracks carry wall time; ``sim:*`` tracks carry *simulated* seconds
(the cost-model timeline).  They coexist in one file because Perfetto
renders tracks independently; see ``docs/observability.md``.

:func:`load_chrome_trace` round-trips a written file back into
:class:`~repro.obs.span.Span` objects (parentage reconstructed from the
B/E nesting) so ``python -m repro trace out.json`` can render the phase
breakdown of any saved run.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span
from repro.util.atomic import atomic_write_text


def _track_order(track: str) -> tuple:
    """Host tracks first (in creation order), simulated tracks after."""
    if track.startswith("host:"):
        suffix = track.split(":", 1)[1]
        return (0, int(suffix) if suffix.isdigit() else 1 << 30, track)
    return (1, 0, track)


def chrome_trace(spans: list[Span], metrics: MetricsRegistry | None = None) -> dict:
    """Build a Chrome trace-event dict from finished spans.

    Spans on one track must be well nested (guaranteed for spans produced
    by a :class:`~repro.obs.span.Tracer`: host spans come off a per-thread
    stack, simulated spans are sequential per executor).  Each span becomes
    a ``B``/``E`` pair; per track the event stream is stack-disciplined and
    its timestamps are non-decreasing.
    """
    tracks = sorted({s.track for s in spans}, key=_track_order)
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    events: list[dict] = []
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    for track in tracks:
        tid = tids[track]
        mine = sorted(
            (s for s in spans if s.track == track),
            key=lambda s: (s.start, -s.end, s.span_id),
        )
        stack: list[Span] = []
        for s in mine:
            while stack and stack[-1].end <= s.start:
                done = stack.pop()
                events.append(
                    {"name": done.name, "ph": "E", "pid": 0, "tid": tid,
                     "ts": done.end * 1e6}
                )
            args = {k: v for k, v in s.attrs.items()}
            if s.cpu:
                args["cpu_s"] = s.cpu
            events.append(
                {"name": s.name, "ph": "B", "pid": 0, "tid": tid,
                 "ts": s.start * 1e6, "args": args}
            )
            stack.append(s)
        while stack:
            done = stack.pop()
            events.append(
                {"name": done.name, "ph": "E", "pid": 0, "tid": tid,
                 "ts": done.end * 1e6}
            )
    out = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        out["otherData"] = {"metrics": metrics.to_dict()}
    return out


def write_chrome_trace(
    path, spans: list[Span], metrics: MetricsRegistry | None = None
) -> str:
    """Serialize :func:`chrome_trace` to *path* (atomic tmp+rename — a
    killed process never leaves a truncated trace); returns the path."""
    return atomic_write_text(path, json.dumps(chrome_trace(spans, metrics=metrics)))


def load_chrome_trace(path) -> tuple[list[Span], dict]:
    """Read a written trace back into spans + the metrics snapshot.

    Parentage is reconstructed from the per-track ``B``/``E`` nesting;
    span ids are reassigned.  Raises ``ValueError`` on malformed files
    (unbalanced events, unknown phases are skipped).
    """
    data = json.loads(Path(path).read_text())
    events = data["traceEvents"] if isinstance(data, dict) else data
    names: dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev["tid"]] = ev.get("args", {}).get("name", f"tid:{ev['tid']}")
    spans: list[Span] = []
    stacks: dict[int, list[Span]] = {}
    next_id = 1
    for ev in events:
        ph = ev.get("ph")
        if ph not in ("B", "E"):
            continue
        tid = ev.get("tid", 0)
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            span = Span(
                name=ev.get("name", "?"),
                span_id=next_id,
                parent_id=stack[-1].span_id if stack else None,
                track=names.get(tid, f"tid:{tid}"),
                start=ev.get("ts", 0.0) / 1e6,
                end=ev.get("ts", 0.0) / 1e6,
                attrs=dict(ev.get("args", {})),
            )
            next_id += 1
            stack.append(span)
        else:
            if not stack:
                raise ValueError(f"unbalanced E event on tid {tid}: {ev}")
            span = stack.pop()
            if ev.get("name") not in (None, span.name):
                raise ValueError(
                    f"E event {ev.get('name')!r} closes span {span.name!r} on tid {tid}"
                )
            span.end = ev.get("ts", 0.0) / 1e6
            spans.append(span)
    dangling = [s.name for st in stacks.values() for s in st]
    if dangling:
        raise ValueError(f"unclosed B events: {dangling}")
    metrics = {}
    if isinstance(data, dict):
        metrics = data.get("otherData", {}).get("metrics", {})
    return spans, metrics


def metrics_to_json(metrics: MetricsRegistry) -> str:
    """Flat JSON dump of a metrics registry."""
    return json.dumps(metrics.to_dict(), indent=2, sort_keys=True)


def metrics_to_csv(metrics: MetricsRegistry) -> str:
    """Flat CSV dump: ``kind,name,value`` rows (histograms flattened into
    ``sum``/``count``/``bucket_le_<b>`` rows)."""
    snap = metrics.to_dict()
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["kind", "name", "value"])
    for name, value in snap["counters"].items():
        writer.writerow(["counter", name, value])
    for name, value in snap["gauges"].items():
        writer.writerow(["gauge", name, value])
    for name, hist in snap["histograms"].items():
        writer.writerow(["histogram", f"{name}.sum", hist["total"]])
        writer.writerow(["histogram", f"{name}.count", hist["n"]])
        edges = [*hist["boundaries"], "inf"]
        for edge, count in zip(edges, hist["counts"]):
            writer.writerow(["histogram", f"{name}.bucket_le_{edge}", count])
    return buf.getvalue()


def write_metrics(path, metrics: MetricsRegistry) -> str:
    """Write the metrics dump to *path* atomically (format from the
    extension: ``.csv`` flat CSV, anything else JSON)."""
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return atomic_write_text(path, metrics_to_csv(metrics))
    return atomic_write_text(path, metrics_to_json(metrics))


__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "metrics_to_json",
    "metrics_to_csv",
    "write_metrics",
]
