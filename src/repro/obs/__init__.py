"""Unified tracing + metrics for the assembly pipeline (``repro.obs``).

One observability substrate for every layer (see
``docs/observability.md``):

* :mod:`repro.obs.span` — nested, thread-aware wall/CPU spans with a
  process-global default tracer and a no-op fast path (instrumented hot
  loops cost ~nothing when tracing is off).
* :mod:`repro.obs.metrics` — thread-safe counters / gauges / fixed-bucket
  histograms; absorbs :class:`~repro.gpu.costmodel.CostLedger` kernel
  totals and :class:`~repro.batch.stats.BatchStats` cache counters so
  simulated-device and measured-host numbers live on one timeline.
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in Perfetto or
  ``chrome://tracing``; one track per host worker thread, one per
  simulated device) and flat JSON/CSV metrics dumps.
* :mod:`repro.obs.render` — terminal phase-breakdown tree plus the
  simulated-schedule renderings (``render_schedule``/``gantt``).
* :mod:`repro.obs.context` / :mod:`repro.obs.fleet` — distributed
  tracing: :class:`TraceContext` crosses process boundaries through the
  work-queue schema, per-worker snapshot artifacts merge into one
  multi-track fleet timeline (``python -m repro trace merge``) and one
  aggregated metrics report (``python -m repro obs report``).

Typical use::

    from repro.obs import tracing

    with tracing() as tr:
        result = engine.assemble_batch(items, execution="grouped")
    result.trace.save("out.json")          # open in Perfetto
    print(result.trace.render(max_depth=3))

or end-to-end from the CLI: ``python -m repro batch --trace out.json``
then ``python -m repro trace out.json``.
"""

from repro.obs.context import TraceContext, new_trace_id
from repro.obs.export import (
    TraceFile,
    chrome_trace,
    load_chrome_trace,
    metrics_to_csv,
    metrics_to_json,
    read_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.fleet import (
    MergedTrace,
    fleet_chrome_trace,
    fleet_report,
    fleet_report_json,
    load_worker_traces,
    merge_traces,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    SUMMARY_PERCENTILES,
    Histogram,
    MetricsRegistry,
    record_batch_stats,
    record_cost_ledger,
)
from repro.obs.render import (
    PhaseNode,
    gantt,
    phase_tree,
    render_phase_tree,
    render_schedule,
    top_phases,
)
from repro.obs.span import (
    NOOP_SPAN,
    Span,
    Trace,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Span",
    "Trace",
    "TraceContext",
    "Tracer",
    "NOOP_SPAN",
    "get_tracer",
    "set_tracer",
    "tracing",
    "new_trace_id",
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "SUMMARY_PERCENTILES",
    "record_cost_ledger",
    "record_batch_stats",
    "chrome_trace",
    "write_chrome_trace",
    "read_trace",
    "load_chrome_trace",
    "TraceFile",
    "metrics_to_json",
    "metrics_to_csv",
    "write_metrics",
    "MergedTrace",
    "merge_traces",
    "fleet_chrome_trace",
    "fleet_report",
    "fleet_report_json",
    "load_worker_traces",
    "PhaseNode",
    "phase_tree",
    "render_phase_tree",
    "top_phases",
    "render_schedule",
    "gantt",
]
