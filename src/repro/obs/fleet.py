"""Fleet-wide observability: merge per-worker traces, aggregate metrics.

A multi-worker queue drain (``python -m repro work run`` on N machines)
produces one trace + metrics snapshot per worker process
(``WORKER_<id>.json``, written at drain end and checkpointed after every
job).  This module stitches them back into fleet-level artifacts:

* :func:`merge_traces` — one multi-track timeline: every worker keeps its
  own tracks (renamed ``<worker>/<track>``), span ids are re-namespaced so
  they never collide, host timestamps are aligned onto one wall clock via
  each tracer's recorded ``epoch_unix`` anchor, and cross-process
  parent/child references (a job's ``remote_parent`` pointing at the
  submitter's ``queue.submit`` context) are resolved into explicit links.
* :func:`fleet_chrome_trace` — the merged timeline as Chrome trace-event
  JSON with one *process* per worker (``pid`` per worker, globally unique
  ``tid``\\ s) plus flow arrows from each submit context to every job span
  it spawned — the reclaim of a crashed worker's job is visibly the same
  flow.
* :func:`fleet_report` — fleet-level metrics aggregation: per-worker rows
  (jobs, throughput), summed counters (store hit rate, quarantines,
  launches, union fill), and merged histograms with p50/p90/p99.

Clock caveat: ``epoch_unix`` is ``time.time()`` sampled once per tracer,
so cross-worker alignment is only as good as the machines' wall clocks
(NTP-level, milliseconds).  Within one worker the monotonic
``perf_counter`` ordering is exact; *across* workers, sub-millisecond
interleavings in the merged view are not meaningful.  Simulated-device
tracks (``sim:*``) tick in simulated seconds and are never shifted.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.export import TraceFile, emit_span_events, read_trace
from repro.obs.metrics import SUMMARY_PERCENTILES, MetricsRegistry
from repro.obs.span import Span
from repro.util.atomic import atomic_write_text

#: Span attribute naming the minted context id (``<tag>:<span id>``).
CTX_ATTR = "ctx"
#: Span attribute naming the remote parent context a span hangs under.
REMOTE_PARENT_ATTR = "remote_parent"


@dataclass
class SpanLink:
    """One resolved cross-process edge: *child* (a worker's job span)
    continues the trace of *parent* (the submitter's context span)."""

    parent_ctx: str  #: context id (``<tag>:<id>``) of the submit span
    parent_span_id: int | None  #: merged id of the submit span (if present)
    child_span_id: int  #: merged id of the continuing span
    trace_id: str  #: fleet trace id both sides carry


@dataclass
class MergedTrace:
    """The stitched fleet timeline + its bookkeeping."""

    spans: list[Span]
    workers: list[str]
    metrics: MetricsRegistry
    per_worker: dict[str, dict]
    #: Applied wall-clock shift per worker (seconds added to host spans).
    clock_offsets: dict[str, float]
    links: list[SpanLink] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def spans_for(self, worker: str) -> list[Span]:
        prefix = f"{worker}/"
        return [s for s in self.spans if s.track.startswith(prefix)]

    def save(self, path) -> str:
        """Write the merged Chrome trace atomically; returns the path."""
        return atomic_write_text(path, json.dumps(fleet_chrome_trace(self)))


def _unique_worker_names(files: list[TraceFile]) -> list[str]:
    names: list[str] = []
    seen: dict[str, int] = {}
    for f in files:
        base = f.worker
        n = seen.get(base, 0)
        seen[base] = n + 1
        names.append(base if n == 0 else f"{base}#{n + 1}")
    return names


def merge_traces(files: list[TraceFile | str]) -> MergedTrace:
    """Stitch per-worker trace files into one fleet timeline.

    Accepts loaded :class:`~repro.obs.export.TraceFile` objects or paths
    (read leniently — a crashed worker's partial checkpoint merges too).
    Per worker: tracks become ``<worker>/<track>``, span ids get a
    non-overlapping range, host-span timestamps shift by the worker's
    wall-clock offset against the earliest tracer epoch in the set, and
    metrics snapshots fold into one registry (order-independent).
    """
    loaded = [f if isinstance(f, TraceFile) else read_trace(f) for f in files]
    if not loaded:
        raise ValueError("nothing to merge: no trace files given")
    workers = _unique_worker_names(loaded)

    epochs = {
        w: float(f.meta["epoch_unix"])
        for w, f in zip(workers, loaded)
        if "epoch_unix" in f.meta
    }
    base_epoch = min(epochs.values()) if epochs else 0.0

    merged = MergedTrace(
        spans=[],
        workers=workers,
        metrics=MetricsRegistry(),
        per_worker={},
        clock_offsets={},
    )
    ctx_index: dict[str, int] = {}  # context id -> merged span id
    pending: list[tuple[Span, str]] = []  # (span, remote ctx id)
    next_id = 1
    for worker, f in zip(workers, loaded):
        offset = epochs.get(worker, base_epoch) - base_epoch
        if worker not in epochs:
            merged.warnings.append(
                f"{worker}: no epoch_unix clock anchor — timestamps left "
                f"unshifted (pre-fleet trace format?)"
            )
        merged.clock_offsets[worker] = offset
        merged.per_worker[worker] = f.metrics
        merged.metrics.merge_dict(f.metrics)
        merged.warnings.extend(f"{worker}: {w}" for w in f.warnings)
        id_map: dict[int, int] = {}
        for s in f.spans:
            id_map[s.span_id] = next_id + s.span_id
        for s in f.spans:
            shift = 0.0 if s.track.startswith("sim:") else offset
            span = Span(
                name=s.name,
                span_id=id_map[s.span_id],
                parent_id=id_map.get(s.parent_id) if s.parent_id is not None else None,
                track=f"{worker}/{s.track}",
                start=s.start + shift,
                end=s.end + shift,
                cpu=s.cpu,
                attrs=dict(s.attrs),
            )
            merged.spans.append(span)
            ctx = span.attrs.get(CTX_ATTR)
            if ctx:
                ctx_index[str(ctx)] = span.span_id
            remote = span.attrs.get(REMOTE_PARENT_ATTR)
            if remote:
                pending.append((span, str(remote)))
        next_id += (max(id_map) if id_map else 0) + 1

    for span, remote in pending:
        merged.links.append(
            SpanLink(
                parent_ctx=remote,
                parent_span_id=ctx_index.get(remote),
                child_span_id=span.span_id,
                trace_id=str(span.attrs.get("trace_id", "")),
            )
        )
    merged.meta = {
        "workers": list(workers),
        "base_epoch_unix": base_epoch,
        "n_links": len(merged.links),
        "trace_ids": sorted(
            {link.trace_id for link in merged.links if link.trace_id}
        ),
    }
    return merged


def _flow_id(ctx: str) -> int:
    """Stable 32-bit flow-event id for a context string."""
    return zlib.crc32(ctx.encode()) & 0xFFFFFFFF


def fleet_chrome_trace(merged: MergedTrace) -> dict:
    """Chrome trace-event JSON of a merged fleet timeline.

    One *process* per worker (``process_name`` metadata, ``pid`` = worker
    index), globally unique ``tid``\\ s so ``read_trace`` round-trips the
    merged file, and ``s``/``f`` flow events drawing an arrow from every
    submit context to each job span that continued it (Perfetto renders
    these across processes — a reclaimed job visibly resumes the
    original submit's flow).
    """
    events: list[dict] = []
    tid_base = 0
    span_pos: dict[int, tuple[int, str]] = {}  # merged span id -> (pid, track)
    for pid, worker in enumerate(merged.workers, start=1):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": worker},
            }
        )
        spans = merged.spans_for(worker)
        for s in spans:
            span_pos[s.span_id] = (pid, s.track)
        tid_base += emit_span_events(events, spans, pid=pid, tid_base=tid_base)
    # Track name -> tid lookup for flow endpoints.
    tids = {
        (ev["pid"], ev["args"]["name"]): ev["tid"]
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "thread_name"
    }
    by_id = {s.span_id: s for s in merged.spans}
    for link in merged.links:
        child = by_id.get(link.child_span_id)
        parent = by_id.get(link.parent_span_id) if link.parent_span_id else None
        if child is None or parent is None:
            continue
        fid = _flow_id(link.parent_ctx)
        ppid, ptrack = span_pos[parent.span_id]
        cpid, ctrack = span_pos[child.span_id]
        events.append(
            {"name": "job", "cat": "job", "ph": "s", "id": fid,
             "pid": ppid, "tid": tids[(ppid, ptrack)], "ts": parent.start * 1e6}
        )
        events.append(
            {"name": "job", "cat": "job", "ph": "f", "bp": "e", "id": fid,
             "pid": cpid, "tid": tids[(cpid, ctrack)], "ts": child.start * 1e6}
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "metrics": merged.metrics.to_dict(),
            "trace": dict(merged.meta),
        },
    }


# -- fleet metrics report ---------------------------------------------------


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def fleet_report(files: list[TraceFile | str], top_hist: int = 12) -> str:
    """Text report aggregating N per-worker metrics snapshots.

    Per-worker rows (jobs done/failed/lost leases, wall seconds, job
    throughput), fleet-summed counters with derived rates (store hit
    rate, quarantines, kernel launches, union fill ratio), and the merged
    histograms with count/mean/p50/p90/p99.  Counters are summed cell-wise
    — each fleet total equals what a single process doing all the work
    would have counted (the invariant ``tests/test_fleet.py`` pins).
    """
    loaded = [f if isinstance(f, TraceFile) else read_trace(f) for f in files]
    if not loaded:
        raise ValueError("nothing to report: no metrics files given")
    workers = _unique_worker_names(loaded)
    fleet = MetricsRegistry()
    for f in loaded:
        fleet.merge_dict(f.metrics)
    snap = fleet.to_dict()
    counters = snap["counters"]

    lines = [f"fleet obs report — {len(loaded)} worker snapshot(s)"]
    lines.append("")
    header = (
        f"{'worker':16s} {'jobs':>5s} {'done':>5s} {'fail':>5s} "
        f"{'lost':>5s} {'wall_s':>8s} {'jobs/s':>7s}"
    )
    lines.append(header)
    for worker, f in zip(workers, loaded):
        c = f.metrics.get("counters", {})
        done = c.get("worker.jobs_done", 0)
        wall = c.get("worker.wall_seconds", 0.0)
        rate = done / wall if wall else 0.0
        lines.append(
            f"{worker:16s} {_fmt(c.get('worker.jobs_claimed', 0)):>5s} "
            f"{_fmt(done):>5s} {_fmt(c.get('worker.jobs_failed', 0)):>5s} "
            f"{_fmt(c.get('worker.lost_leases', 0)):>5s} "
            f"{wall:8.2f} {rate:7.2f}"
        )
    lines.append("")

    store_hits = counters.get("store.hits", 0.0)
    store_misses = counters.get("store.misses", 0.0)
    lookups = store_hits + store_misses
    lines.append("fleet totals:")
    lines.append(
        f"  store: {_fmt(store_hits)} hit(s) / {_fmt(store_misses)} miss(es)"
        + (f" ({store_hits / lookups:.1%} hit rate)" if lookups else "")
        + f", {_fmt(counters.get('store.puts', 0))} put(s), "
        f"{_fmt(counters.get('store.quarantined', 0))} quarantined"
    )
    lines.append(
        f"  queue: {_fmt(counters.get('queue.claims', 0))} claim(s), "
        f"{_fmt(counters.get('queue.reaped', 0))} reaped lease(s), "
        f"{_fmt(counters.get('queue.completions', 0))} completion(s), "
        f"{_fmt(counters.get('queue.failures', 0))} failure(s), "
        f"{_fmt(counters.get('queue.dead_letters', 0))} dead-letter(s)"
    )
    lines.append(
        f"  gpu: {_fmt(counters.get('gpu.launches', 0))} launch(es), "
        f"{counters.get('gpu.sim_seconds', 0.0):.4g} simulated second(s), "
        f"{counters.get('gpu.flops', 0.0):.4g} flop(s)"
    )
    lines.append(
        f"  solver: {_fmt(counters.get('pcpg.iterations', 0))} PCPG "
        f"iteration(s), {_fmt(counters.get('pcpg.deflations', 0))} "
        f"deflation event(s)"
    )
    hist = snap["histograms"]
    fill = hist.get("batch.union_fill_ratio")
    if fill and fill["n"]:
        lines.append(
            f"  union fill ratio: mean {fill['total'] / fill['n']:.2f}x over "
            f"{fill['n']} padded class(es)"
        )

    if hist:
        lines.append("")
        lines.append(
            f"{'histogram (fleet-merged)':34s} {'n':>6s} {'mean':>10s}"
            + "".join(f" {'p%g' % q:>10s}" for q in SUMMARY_PERCENTILES)
        )
        ranked = sorted(hist.items(), key=lambda kv: -kv[1]["n"])[:top_hist]
        for name, h in ranked:
            mean = h["total"] / h["n"] if h["n"] else 0.0
            lines.append(
                f"{name[:34]:34s} {h['n']:6d} {mean:10.4g}"
                + "".join(
                    f" {h.get('p%g' % q, 0.0):10.4g}" for q in SUMMARY_PERCENTILES
                )
            )
        if len(hist) > top_hist:
            lines.append(f"... ({len(hist) - top_hist} more histogram(s))")
    return "\n".join(lines)


def fleet_report_json(files: list[TraceFile | str]) -> dict:
    """Machine-readable fleet aggregation: merged snapshot + per-worker."""
    loaded = [f if isinstance(f, TraceFile) else read_trace(f) for f in files]
    workers = _unique_worker_names(loaded)
    fleet = MetricsRegistry()
    for f in loaded:
        fleet.merge_dict(f.metrics)
    return {
        "n_workers": len(loaded),
        "workers": workers,
        "fleet": fleet.to_dict(),
        "per_worker": {w: f.metrics for w, f in zip(workers, loaded)},
    }


def load_worker_traces(paths: list[str | Path]) -> list[TraceFile]:
    """Leniently read worker snapshot files, skipping unreadable ones."""
    out: list[TraceFile] = []
    for path in paths:
        try:
            out.append(read_trace(path))
        except (OSError, json.JSONDecodeError) as exc:
            out.append(
                TraceFile(path=str(path), warnings=[f"unreadable: {exc}"])
            )
    return out


__all__ = [
    "CTX_ATTR",
    "REMOTE_PARENT_ATTR",
    "SpanLink",
    "MergedTrace",
    "merge_traces",
    "fleet_chrome_trace",
    "fleet_report",
    "fleet_report_json",
    "load_worker_traces",
]
