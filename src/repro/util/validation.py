"""Argument validation helpers used across the library.

Every public entry point validates its inputs through these helpers so that
misuse fails fast with a clear message instead of deep inside a kernel.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_square(a: np.ndarray, name: str = "matrix") -> int:
    """Check that *a* is a square 2-D dense array and return its order."""
    a = np.asarray(a)
    require(a.ndim == 2, f"{name} must be 2-D, got ndim={a.ndim}")
    require(a.shape[0] == a.shape[1], f"{name} must be square, got {a.shape}")
    return a.shape[0]


def check_sparse_square(a: sp.spmatrix, name: str = "matrix") -> int:
    """Check that *a* is a square SciPy sparse matrix and return its order."""
    require(sp.issparse(a), f"{name} must be a scipy.sparse matrix")
    require(a.shape[0] == a.shape[1], f"{name} must be square, got {a.shape}")
    return a.shape[0]


def check_dense_matrix(a: np.ndarray, name: str = "matrix") -> tuple[int, int]:
    """Check that *a* is a 2-D dense float array and return its shape."""
    require(isinstance(a, np.ndarray), f"{name} must be a numpy array")
    require(a.ndim == 2, f"{name} must be 2-D, got ndim={a.ndim}")
    return a.shape


def check_lower_triangular(
    a: np.ndarray | sp.spmatrix, name: str = "factor", tol: float = 0.0
) -> None:
    """Check that *a* has no entries above the main diagonal.

    For sparse input only the stored pattern is inspected; explicit stored
    zeros above the diagonal are allowed.
    """
    if sp.issparse(a):
        coo = a.tocoo()
        above = coo.col > coo.row
        if above.any() and np.abs(coo.data[above]).max() > tol:
            raise ValueError(f"{name} has nonzeros above the diagonal")
    else:
        a = np.asarray(a)
        upper = np.triu(a, k=1)
        if upper.size and np.abs(upper).max() > tol:
            raise ValueError(f"{name} has nonzeros above the diagonal")


def check_permutation(p: np.ndarray, n: int, name: str = "permutation") -> np.ndarray:
    """Check that *p* is a permutation of ``range(n)`` and return it as intp."""
    p = np.asarray(p, dtype=np.intp)
    require(p.shape == (n,), f"{name} must have shape ({n},), got {p.shape}")
    seen = np.zeros(n, dtype=bool)
    seen[p] = True
    require(bool(seen.all()), f"{name} is not a permutation of range({n})")
    return p
