"""Atomic file writes: tmp + fsync + rename, never a torn artifact.

Every JSON/CSV/text artifact the repo emits (Chrome traces, metrics dumps,
bench result tables, persistent-store objects) goes through these helpers:
the content is written to a uniquely named temporary file *in the target
directory* (rename is only atomic within one filesystem), flushed and
fsynced, then moved over the destination with ``os.replace``.  A process
killed mid-write leaves at worst a stale ``.tmp-*`` file next to the
target — the destination either holds the complete previous content or
the complete new content, so downstream readers (``tools/check_bench.py``,
``python -m repro trace``, the artifact store) never see truncated JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path, data: bytes) -> str:
    """Write *data* to *path* atomically; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.tmp-", suffix=""
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return str(path)


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> str:
    """Write *text* to *path* atomically; returns the path written."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path, obj, **dumps_kwargs) -> str:
    """Serialize *obj* as JSON and write it atomically."""
    return atomic_write_text(path, json.dumps(obj, **dumps_kwargs))


def cleanup_tmp_files(directory) -> int:
    """Remove stale ``.{name}.tmp-*`` leftovers of interrupted writes in
    *directory* (non-recursive); returns how many were removed."""
    directory = Path(directory)
    removed = 0
    if not directory.is_dir():
        return 0
    for entry in directory.iterdir():
        if entry.is_file() and entry.name.startswith(".") and ".tmp-" in entry.name:
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed


__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "cleanup_tmp_files",
]
