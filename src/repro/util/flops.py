"""Floating-point operation counts for the BLAS/sparse kernels in this repo.

These formulas drive the simulated-device cost model (`repro.gpu.costmodel`).
All counts are in double-precision FLOPs (one multiply-add = 2 FLOPs) and
match the conventions used by vendor BLAS documentation.
"""

from __future__ import annotations

import numpy as np


def trsm_dense_flops(n: int, m: int) -> float:
    """FLOPs of a dense triangular solve ``L^{-1} X`` with ``L`` of order *n*
    and *m* right-hand-side columns: ``n^2 * m`` multiply-adds → ``n^2 m``.

    (LAPACK convention counts TRSM as n^2*m flops.)
    """
    return float(n) * float(n) * float(m)


def trsm_sparse_flops(nnz_l: int, m: int) -> float:
    """FLOPs of a sparse triangular solve with dense RHS.

    Each stored nonzero of ``L`` below the diagonal contributes one
    multiply-add per RHS column, diagonal entries one division each:
    ``2 * nnz(L) * m`` is the standard estimate.
    """
    return 2.0 * float(nnz_l) * float(m)


def syrk_flops(n: int, k: int) -> float:
    """FLOPs of ``C = A^T A`` with ``A`` of shape (k, n), lower triangle only:
    ``k * n * (n + 1)``."""
    return float(k) * float(n) * (float(n) + 1.0)


def gemm_flops(m: int, n: int, k: int) -> float:
    """FLOPs of a dense ``(m x k) @ (k x n)`` product: ``2 m n k``."""
    return 2.0 * float(m) * float(n) * float(k)


def spmm_flops(nnz_a: int, n: int) -> float:
    """FLOPs of a sparse (nnz_a stored entries) times dense (k x n) product:
    ``2 * nnz(A) * n``."""
    return 2.0 * float(nnz_a) * float(n)


def cholesky_flops(col_counts: np.ndarray) -> float:
    """FLOPs of a sparse Cholesky factorization given the per-column nonzero
    counts of the factor ``L`` (including the diagonal).

    Column *j* with ``c_j`` nonzeros costs ``c_j^2`` multiply-adds for the
    outer-product update plus ``c_j`` for the scaling — the classic
    ``sum(c_j^2 + c_j)`` estimate (Davis, *Direct Methods*, §4).
    """
    c = np.asarray(col_counts, dtype=np.float64)
    return float(np.sum(c * c + c))


def stepped_trsm_dense_flops(pivots: np.ndarray, n: int) -> float:
    """Exact dense-TRSM FLOPs when zeros above column pivots are skipped.

    Column *j* with pivot ``p_j`` only needs the subsystem of order
    ``n - p_j``: sum over columns of ``(n - p_j)^2``.
    """
    rem = n - np.asarray(pivots, dtype=np.float64)
    return float(np.sum(rem * rem))


def stepped_syrk_flops(pivots: np.ndarray, n_rows: int) -> float:
    """Exact SYRK FLOPs when the stepped zero pattern is skipped.

    Output entry (i, j), i >= j, needs ``n_rows - max(p_i, p_j) = n_rows - p_i``
    multiply-adds (pivots sorted ascending), i.e. ``2 * sum_i (i+1) * (n-p_i)``
    counting multiply+add.
    """
    p = np.asarray(pivots, dtype=np.float64)
    i = np.arange(p.size, dtype=np.float64)
    return float(np.sum(2.0 * (i + 1.0) * np.maximum(n_rows - p, 0.0)))
