"""Shared utilities: validation, FLOP formulas, ASCII tables, atomic writes."""

from repro.util.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    cleanup_tmp_files,
)
from repro.util.flops import (
    cholesky_flops,
    gemm_flops,
    spmm_flops,
    stepped_syrk_flops,
    stepped_trsm_dense_flops,
    syrk_flops,
    trsm_dense_flops,
    trsm_sparse_flops,
)
from repro.util.tables import Table, format_series, format_si
from repro.util.validation import (
    check_dense_matrix,
    check_lower_triangular,
    check_permutation,
    check_sparse_square,
    check_square,
    require,
)

__all__ = [
    "require",
    "check_square",
    "check_sparse_square",
    "check_dense_matrix",
    "check_lower_triangular",
    "check_permutation",
    "trsm_dense_flops",
    "trsm_sparse_flops",
    "syrk_flops",
    "gemm_flops",
    "spmm_flops",
    "cholesky_flops",
    "stepped_trsm_dense_flops",
    "stepped_syrk_flops",
    "Table",
    "format_series",
    "format_si",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "cleanup_tmp_files",
]
