"""ASCII table / series formatting for the benchmark harness.

The paper's evaluation is a set of log-log line plots and one table; the
benchmark scripts print the same data as aligned text tables (one row per
x-value, one column per series) so results can be diffed across runs.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence


def format_si(value: float, unit: str = "") -> str:
    """Format *value* with an SI prefix (e.g. ``1.23e7 -> '12.3M'``)."""
    if value != value:  # NaN
        return "nan"
    neg = value < 0
    v = abs(value)
    for thresh, suffix in ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")):
        if v >= thresh:
            return f"{'-' if neg else ''}{v / thresh:.3g}{suffix}{unit}"
    if v >= 1 or v == 0:
        return f"{'-' if neg else ''}{v:.3g}{unit}"
    for thresh, suffix in ((1e-3, "m"), (1e-6, "u"), (1e-9, "n")):
        if v >= thresh:
            return f"{'-' if neg else ''}{v / thresh:.3g}{suffix}{unit}"
    return f"{'-' if neg else ''}{v:.3g}{unit}"


class Table:
    """A simple aligned-column ASCII table builder.

    >>> t = Table(["size", "time"])
    >>> t.add_row([100, 0.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = [c if isinstance(c, str) else _fmt_cell(c) for c in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Format one x-column plus one column per named series (paper-figure style)."""
    table = Table([x_label, *series.keys()], title=title)
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[i] if i < len(values) else float("nan"))
        table.add_row(row)
    return table.render()
