"""FEM substrate: structured simplicial meshes and P1 heat-transfer assembly."""

from repro.fem.assembly import assemble_load, assemble_stiffness, eliminate_dirichlet
from repro.fem.elasticity import (
    assemble_body_force,
    assemble_elasticity,
    boundary_dofs,
    elastic_moduli,
    p1_elasticity_stiffness,
    rigid_body_modes,
)
from repro.fem.element import p1_gradients, p1_load, p1_stiffness
from repro.fem.heat_transfer import (
    HeatProblem,
    heat_problem,
    heat_transfer_2d,
    heat_transfer_3d,
)
from repro.fem.mesh import Mesh, unit_cube_mesh, unit_square_mesh

__all__ = [
    "Mesh",
    "unit_square_mesh",
    "unit_cube_mesh",
    "p1_gradients",
    "p1_stiffness",
    "p1_load",
    "assemble_stiffness",
    "assemble_load",
    "eliminate_dirichlet",
    "HeatProblem",
    "heat_problem",
    "heat_transfer_2d",
    "heat_transfer_3d",
    "assemble_elasticity",
    "assemble_body_force",
    "p1_elasticity_stiffness",
    "elastic_moduli",
    "rigid_body_modes",
    "boundary_dofs",
]
