"""Structured simplicial meshes of the unit square / unit cube.

The paper's evaluation uses "a square or cube domain uniformly discretized
into triangles or tetrahedra" (§4).  These generators reproduce that setup:

* 2-D: an ``nx x ny`` grid of cells, each split into two triangles,
* 3-D: an ``nx x ny x nz`` grid of cells, each split into six tetrahedra
  (Kuhn subdivision — conforming across cell faces).

Node numbering is lexicographic, which makes structured partitioning into
subdomains (``repro.dd.partition``) exact and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import require


@dataclass(frozen=True)
class Mesh:
    """A simplicial mesh.

    Attributes
    ----------
    coords:
        ``(n_nodes, dim)`` vertex coordinates.
    elements:
        ``(n_elements, dim + 1)`` vertex indices of each simplex.
    dim:
        Spatial dimension (2 or 3).
    grid_shape:
        Nodes per axis of the generating structured grid.
    boundary_groups:
        Named node sets of the domain boundary faces (``"left"``,
        ``"right"``, ``"bottom"``, ``"top"``, and in 3-D ``"front"``,
        ``"back"``).
    """

    coords: np.ndarray
    elements: np.ndarray
    dim: int
    grid_shape: tuple[int, ...]
    boundary_groups: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return self.coords.shape[0]

    @property
    def n_elements(self) -> int:
        return self.elements.shape[0]

    def boundary_nodes(self) -> np.ndarray:
        """Sorted union of all boundary groups."""
        if not self.boundary_groups:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate(list(self.boundary_groups.values())))


def unit_square_mesh(nx: int, ny: int | None = None) -> Mesh:
    """Triangulated unit square with ``nx x ny`` cells (two triangles each)."""
    require(nx >= 1, "nx must be >= 1")
    ny = nx if ny is None else ny
    require(ny >= 1, "ny must be >= 1")
    mx, my = nx + 1, ny + 1  # nodes per axis

    xs = np.linspace(0.0, 1.0, mx)
    ys = np.linspace(0.0, 1.0, my)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")  # node id = ix * my + iy
    coords = np.column_stack([gx.ravel(), gy.ravel()])

    ix, iy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    n00 = (ix * my + iy).ravel()
    n10 = ((ix + 1) * my + iy).ravel()
    n01 = (ix * my + iy + 1).ravel()
    n11 = ((ix + 1) * my + iy + 1).ravel()
    lower = np.column_stack([n00, n10, n11])
    upper = np.column_stack([n00, n11, n01])
    elements = np.vstack([lower, upper]).astype(np.intp)

    node_ix = np.arange(mx * my) // my
    node_iy = np.arange(mx * my) % my
    groups = {
        "left": np.flatnonzero(node_ix == 0).astype(np.intp),
        "right": np.flatnonzero(node_ix == nx).astype(np.intp),
        "bottom": np.flatnonzero(node_iy == 0).astype(np.intp),
        "top": np.flatnonzero(node_iy == ny).astype(np.intp),
    }
    return Mesh(
        coords=coords,
        elements=elements,
        dim=2,
        grid_shape=(mx, my),
        boundary_groups=groups,
    )


# The six tetrahedra of the Kuhn subdivision of the unit cube, as chains of
# vertices along coordinate-increasing paths from (0,0,0) to (1,1,1).
_KUHN_PATHS = (
    (0, 1, 3, 7),
    (0, 1, 5, 7),
    (0, 2, 3, 7),
    (0, 2, 6, 7),
    (0, 4, 5, 7),
    (0, 4, 6, 7),
)


def unit_cube_mesh(nx: int, ny: int | None = None, nz: int | None = None) -> Mesh:
    """Tetrahedralised unit cube with ``nx x ny x nz`` cells (6 tets each)."""
    require(nx >= 1, "nx must be >= 1")
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    require(ny >= 1 and nz >= 1, "ny, nz must be >= 1")
    mx, my, mz = nx + 1, ny + 1, nz + 1

    xs = np.linspace(0.0, 1.0, mx)
    ys = np.linspace(0.0, 1.0, my)
    zs = np.linspace(0.0, 1.0, mz)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    coords = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])

    def nid(ix, iy, iz):
        return (ix * my + iy) * mz + iz

    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    ix, iy, iz = ix.ravel(), iy.ravel(), iz.ravel()
    # The 8 cube corners; bit k of the corner index selects +1 along axis k.
    corners = np.empty((ix.size, 8), dtype=np.intp)
    for c in range(8):
        dx, dy, dz = c & 1, (c >> 1) & 1, (c >> 2) & 1
        corners[:, c] = nid(ix + dx, iy + dy, iz + dz)
    elements = np.vstack([corners[:, list(path)] for path in _KUHN_PATHS]).astype(
        np.intp
    )

    node_idx = np.arange(mx * my * mz)
    node_ix = node_idx // (my * mz)
    node_iy = (node_idx // mz) % my
    node_iz = node_idx % mz
    groups = {
        "left": np.flatnonzero(node_ix == 0).astype(np.intp),
        "right": np.flatnonzero(node_ix == nx).astype(np.intp),
        "bottom": np.flatnonzero(node_iy == 0).astype(np.intp),
        "top": np.flatnonzero(node_iy == ny).astype(np.intp),
        "front": np.flatnonzero(node_iz == 0).astype(np.intp),
        "back": np.flatnonzero(node_iz == nz).astype(np.intp),
    }
    return Mesh(
        coords=coords,
        elements=elements,
        dim=3,
        grid_shape=(mx, my, mz),
        boundary_groups=groups,
    )


__all__ = ["Mesh", "unit_square_mesh", "unit_cube_mesh"]
