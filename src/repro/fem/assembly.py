"""Global sparse assembly of P1 systems (vectorized COO scatter)."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.element import p1_load, p1_stiffness
from repro.fem.mesh import Mesh
from repro.util import require


def assemble_stiffness(
    mesh: Mesh,
    conductivity: float | np.ndarray = 1.0,
    nodes: np.ndarray | None = None,
    elements: np.ndarray | None = None,
) -> sp.csr_matrix:
    """Assemble the global (or subdomain-local) stiffness matrix.

    Parameters
    ----------
    mesh:
        The mesh providing coordinates and connectivity.
    conductivity:
        Scalar or per-element diffusion coefficient.
    nodes:
        When given, assemble in the *local* numbering of this node subset
        (used by :mod:`repro.dd.subdomain`); *elements* must then also be
        given and reference only these nodes.
    elements:
        Element subset (indices into ``mesh.elements``) to assemble.
    """
    el = mesh.elements if elements is None else mesh.elements[elements]
    if isinstance(conductivity, np.ndarray) and elements is not None:
        conductivity = conductivity[elements]
    ke = p1_stiffness(mesh.coords, el, conductivity)

    if nodes is None:
        n = mesh.n_nodes
        conn = el
    else:
        nodes = np.asarray(nodes, dtype=np.intp)
        n = nodes.size
        global_to_local = np.full(mesh.n_nodes, -1, dtype=np.intp)
        global_to_local[nodes] = np.arange(n)
        conn = global_to_local[el]
        require(bool((conn >= 0).all()), "elements reference nodes outside subset")

    d1 = conn.shape[1]
    rows = np.repeat(conn, d1, axis=1).ravel()
    cols = np.tile(conn, (1, d1)).ravel()
    k = sp.coo_matrix((ke.ravel(), (rows, cols)), shape=(n, n)).tocsr()
    k.sum_duplicates()
    return k


def assemble_load(
    mesh: Mesh,
    source: float | np.ndarray = 1.0,
    nodes: np.ndarray | None = None,
    elements: np.ndarray | None = None,
) -> np.ndarray:
    """Assemble the global (or subdomain-local) load vector."""
    el = mesh.elements if elements is None else mesh.elements[elements]
    if isinstance(source, np.ndarray) and elements is not None:
        source = source[elements]
    fe = p1_load(mesh.coords, el, source)

    if nodes is None:
        n = mesh.n_nodes
        conn = el
    else:
        nodes = np.asarray(nodes, dtype=np.intp)
        n = nodes.size
        global_to_local = np.full(mesh.n_nodes, -1, dtype=np.intp)
        global_to_local[nodes] = np.arange(n)
        conn = global_to_local[el]
        require(bool((conn >= 0).all()), "elements reference nodes outside subset")

    f = np.zeros(n)
    np.add.at(f, conn.ravel(), fe.ravel())
    return f


def eliminate_dirichlet(
    k: sp.csr_matrix,
    f: np.ndarray,
    dirichlet: np.ndarray,
    values: np.ndarray | float = 0.0,
) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
    """Eliminate Dirichlet DOFs by restriction to the free set.

    Returns ``(k_ff, f_f - k_fd @ g, free)`` where *free* are the remaining
    DOF indices.  Homogeneous by default.
    """
    n = k.shape[0]
    dirichlet = np.asarray(dirichlet, dtype=np.intp)
    mask = np.ones(n, dtype=bool)
    mask[dirichlet] = False
    free = np.flatnonzero(mask)
    k_ff = sp.csr_matrix(k[free][:, free])
    rhs = f[free].astype(np.float64, copy=True)
    g = np.broadcast_to(np.asarray(values, dtype=np.float64), dirichlet.shape)
    if dirichlet.size and np.any(g != 0.0):
        rhs -= k[free][:, dirichlet] @ g
    return k_ff, rhs, free


__all__ = ["assemble_stiffness", "assemble_load", "eliminate_dirichlet"]
