"""Heat-transfer model problems — the paper's evaluation workload (§4).

A scalar diffusion equation on the unit square / unit cube, uniformly
discretized with P1 triangles / tetrahedra, unit source, homogeneous
Dirichlet condition on a chosen set of boundary faces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.fem.assembly import assemble_load, assemble_stiffness, eliminate_dirichlet
from repro.fem.mesh import Mesh, unit_cube_mesh, unit_square_mesh
from repro.util import require


@dataclass(frozen=True)
class HeatProblem:
    """A fully-assembled heat-transfer problem.

    ``k`` and ``f`` live on *all* mesh nodes; ``dirichlet_nodes`` lists the
    constrained DOFs.  Use :meth:`reduced` for the SPD free-DOF system or
    keep the full operator for subdomain-wise FETI assembly.
    """

    mesh: Mesh
    k: sp.csr_matrix
    f: np.ndarray
    dirichlet_nodes: np.ndarray
    conductivity: float = 1.0

    @property
    def n_dofs(self) -> int:
        return self.k.shape[0]

    def reduced(self) -> tuple[sp.csr_matrix, np.ndarray, np.ndarray]:
        """Return the SPD system on free DOFs: ``(K_ff, f_f, free)``."""
        return eliminate_dirichlet(self.k, self.f, self.dirichlet_nodes)

    def solve_direct(self) -> np.ndarray:
        """Reference direct solution (zeros on the Dirichlet boundary)."""
        k_ff, f_f, free = self.reduced()
        u = np.zeros(self.n_dofs)
        u[free] = sp.linalg.spsolve(k_ff.tocsc(), f_f)
        return u


def heat_transfer_2d(
    nx: int,
    ny: int | None = None,
    dirichlet: tuple[str, ...] = ("left",),
    conductivity: float = 1.0,
    source: float = 1.0,
) -> HeatProblem:
    """2-D heat transfer on the unit square (triangles)."""
    mesh = unit_square_mesh(nx, ny)
    return _build(mesh, dirichlet, conductivity, source)


def heat_transfer_3d(
    nx: int,
    ny: int | None = None,
    nz: int | None = None,
    dirichlet: tuple[str, ...] = ("left",),
    conductivity: float = 1.0,
    source: float = 1.0,
) -> HeatProblem:
    """3-D heat transfer on the unit cube (tetrahedra)."""
    mesh = unit_cube_mesh(nx, ny, nz)
    return _build(mesh, dirichlet, conductivity, source)


def heat_problem(
    mesh: Mesh,
    dirichlet: tuple[str, ...] = (),
    conductivity: float = 1.0,
    source: float = 1.0,
) -> HeatProblem:
    """Heat transfer on an arbitrary simplicial *mesh*.

    The generic entry point behind :func:`heat_transfer_2d` /
    :func:`heat_transfer_3d`, for meshes that are not the unit box — e.g.
    the jittered / L-shaped / perforated meshes of :mod:`repro.part.meshes`
    (whose extra ``"boundary"`` group constrains the whole boundary at
    once).  *dirichlet* names boundary groups of the mesh; an empty tuple
    gives the floating problem.
    """
    return _build(mesh, tuple(dirichlet), conductivity, source)


def _build(
    mesh: Mesh,
    dirichlet: tuple[str, ...],
    conductivity: float,
    source: float,
) -> HeatProblem:
    for name in dirichlet:
        require(
            name in mesh.boundary_groups,
            f"unknown boundary group {name!r}; available: {sorted(mesh.boundary_groups)}",
        )
    k = assemble_stiffness(mesh, conductivity)
    f = assemble_load(mesh, source)
    if dirichlet:
        nodes = np.unique(
            np.concatenate([mesh.boundary_groups[name] for name in dirichlet])
        )
    else:
        nodes = np.empty(0, dtype=np.intp)
    return HeatProblem(
        mesh=mesh, k=k, f=f, dirichlet_nodes=nodes, conductivity=conductivity
    )


__all__ = ["HeatProblem", "heat_problem", "heat_transfer_2d", "heat_transfer_3d"]
