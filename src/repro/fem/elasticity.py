"""Linear elasticity on P1 simplices — the second FETI workload class.

The paper evaluates on scalar heat transfer; FETI's original domain (and the
reason its kernels are interesting) is elasticity, where floating subdomains
carry 3 (2-D) or 6 (3-D) rigid-body modes.  This module provides vectorized
P1 elasticity assembly and the rigid-body-mode kernel bases, exercising the
multi-dimensional-kernel paths of the regularization, coarse problem and
Schur assembly.

DOF ordering is interleaved: DOF ``node * dim + component``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.fem.element import p1_gradients
from repro.fem.mesh import Mesh
from repro.util import require


def elastic_moduli(e: float, nu: float, dim: int) -> np.ndarray:
    """Isotropic elasticity matrix in Voigt notation (plane strain in 2-D)."""
    require(e > 0, "Young's modulus must be positive")
    require(-1.0 < nu < 0.5, "Poisson ratio must be in (-1, 0.5)")
    lam = e * nu / ((1 + nu) * (1 - 2 * nu))
    mu = e / (2 * (1 + nu))
    if dim == 2:
        return np.array(
            [
                [lam + 2 * mu, lam, 0.0],
                [lam, lam + 2 * mu, 0.0],
                [0.0, 0.0, mu],
            ]
        )
    if dim == 3:
        d = np.zeros((6, 6))
        d[:3, :3] = lam
        d[np.arange(3), np.arange(3)] = lam + 2 * mu
        d[np.arange(3, 6), np.arange(3, 6)] = mu
        return d
    raise ValueError(f"dim must be 2 or 3, got {dim}")


def p1_elasticity_stiffness(
    coords: np.ndarray,
    elements: np.ndarray,
    e: float = 1.0,
    nu: float = 0.3,
) -> np.ndarray:
    """Local elasticity stiffness matrices, vectorized over all elements.

    Returns ``(n_el, (d+1)*d, (d+1)*d)`` with interleaved DOFs per element.
    """
    grads, measures = p1_gradients(coords, elements)
    n_el, nverts, dim = grads.shape
    d_mat = elastic_moduli(e, nu, dim)
    n_strain = d_mat.shape[0]
    ndof = nverts * dim

    # Strain-displacement matrices B: (n_el, n_strain, ndof), Voigt order
    # 2-D: (exx, eyy, gxy); 3-D: (exx, eyy, ezz, gyz, gxz, gxy).
    b = np.zeros((n_el, n_strain, ndof))
    for a in range(nverts):
        gx = grads[:, a, 0]
        gy = grads[:, a, 1]
        cx, cy = dim * a, dim * a + 1
        if dim == 2:
            b[:, 0, cx] = gx
            b[:, 1, cy] = gy
            b[:, 2, cx] = gy
            b[:, 2, cy] = gx
        else:
            gz = grads[:, a, 2]
            cz = dim * a + 2
            b[:, 0, cx] = gx
            b[:, 1, cy] = gy
            b[:, 2, cz] = gz
            b[:, 3, cy] = gz
            b[:, 3, cz] = gy
            b[:, 4, cx] = gz
            b[:, 4, cz] = gx
            b[:, 5, cx] = gy
            b[:, 5, cy] = gx
    ke = np.einsum("esi,st,etj->eij", b, d_mat, b)
    return measures[:, None, None] * ke


def assemble_elasticity(
    mesh: Mesh,
    e: float = 1.0,
    nu: float = 0.3,
) -> sp.csr_matrix:
    """Global elasticity stiffness (interleaved DOFs, ``dim * n_nodes``)."""
    ke = p1_elasticity_stiffness(mesh.coords, mesh.elements, e, nu)
    dim = mesh.dim
    conn = mesh.elements
    nverts = conn.shape[1]
    # DOF connectivity: (n_el, (d+1)*d).
    dofs = (conn[:, :, None] * dim + np.arange(dim)[None, None, :]).reshape(
        conn.shape[0], nverts * dim
    )
    ndof_el = nverts * dim
    rows = np.repeat(dofs, ndof_el, axis=1).ravel()
    cols = np.tile(dofs, (1, ndof_el)).ravel()
    n = mesh.n_nodes * dim
    k = sp.coo_matrix((ke.ravel(), (rows, cols)), shape=(n, n)).tocsr()
    k.sum_duplicates()
    return k


def assemble_body_force(mesh: Mesh, force: np.ndarray) -> np.ndarray:
    """Consistent load for a constant body-force vector (e.g. gravity)."""
    force = np.asarray(force, dtype=np.float64)
    require(force.shape == (mesh.dim,), f"force must have {mesh.dim} components")
    _, measures = p1_gradients(mesh.coords, mesh.elements)
    dim = mesh.dim
    nverts = mesh.elements.shape[1]
    f = np.zeros(mesh.n_nodes * dim)
    contrib = (measures / nverts)[:, None] * np.ones((1, nverts))
    for c in range(dim):
        dofs = mesh.elements * dim + c
        np.add.at(f, dofs.ravel(), (contrib * force[c]).ravel())
    return f


def rigid_body_modes(coords: np.ndarray) -> np.ndarray:
    """Orthonormal rigid-body-mode basis (kernel of the elastic operator).

    2-D: two translations + one in-plane rotation (3 columns);
    3-D: three translations + three rotations (6 columns).  Interleaved DOFs.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n, dim = coords.shape
    require(dim in (2, 3), "coords must be 2-D or 3-D points")
    centred = coords - coords.mean(axis=0)
    if dim == 2:
        modes = np.zeros((2 * n, 3))
        modes[0::2, 0] = 1.0  # translation x
        modes[1::2, 1] = 1.0  # translation y
        modes[0::2, 2] = -centred[:, 1]  # rotation: (-y, x)
        modes[1::2, 2] = centred[:, 0]
    else:
        modes = np.zeros((3 * n, 6))
        for c in range(3):
            modes[c::3, c] = 1.0  # translations
        x, y, z = centred[:, 0], centred[:, 1], centred[:, 2]
        modes[1::3, 3] = -z  # rotation about x: (0, -z, y)
        modes[2::3, 3] = y
        modes[0::3, 4] = z  # rotation about y: (z, 0, -x)
        modes[2::3, 4] = -x
        modes[0::3, 5] = -y  # rotation about z: (-y, x, 0)
        modes[1::3, 5] = x
    q, _ = np.linalg.qr(modes)
    return q


def boundary_dofs(mesh: Mesh, groups: tuple[str, ...]) -> np.ndarray:
    """All displacement DOFs on the named boundary groups (interleaved)."""
    for name in groups:
        require(name in mesh.boundary_groups, f"unknown boundary group {name!r}")
    if not groups:
        return np.empty(0, dtype=np.intp)
    nodes = np.unique(np.concatenate([mesh.boundary_groups[g] for g in groups]))
    return (nodes[:, None] * mesh.dim + np.arange(mesh.dim)[None, :]).ravel()


__all__ = [
    "elastic_moduli",
    "p1_elasticity_stiffness",
    "assemble_elasticity",
    "assemble_body_force",
    "rigid_body_modes",
    "boundary_dofs",
]
