"""P1 (linear simplex) element matrices, vectorized over all elements.

For a simplex with vertices ``x_0..x_d`` the P1 stiffness matrix is
``K_e = |T| * G G^T`` where row *i* of ``G`` is the (constant) gradient of
the *i*-th barycentric basis function and ``|T|`` the simplex measure.
"""

from __future__ import annotations

import numpy as np

from repro.util import require


def p1_gradients(coords: np.ndarray, elements: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gradients and measures of all P1 simplices at once.

    Returns
    -------
    grads:
        ``(n_el, d+1, d)`` basis-function gradients.
    measures:
        ``(n_el,)`` element areas/volumes (positive).
    """
    coords = np.asarray(coords, dtype=np.float64)
    elements = np.asarray(elements)
    d = coords.shape[1]
    require(elements.shape[1] == d + 1, "elements must be simplices of the mesh dim")
    verts = coords[elements]  # (n_el, d+1, d)
    # Edge matrix J: columns x_i - x_0, shape (n_el, d, d).
    j = np.swapaxes(verts[:, 1:, :] - verts[:, :1, :], 1, 2)
    det = np.linalg.det(j)
    require(bool(np.all(np.abs(det) > 1e-300)), "degenerate element encountered")
    jinv = np.linalg.inv(j)  # (n_el, d, d)
    # Barycentric coordinates satisfy (lambda_1..lambda_d)^T = J^{-1} (x - x_0),
    # so grad lambda_i is the i-th *row* of J^{-1}; grad lambda_0 is minus
    # their sum.
    grads_rest = jinv  # (n_el, d, d): row i = grad lambda_{i+1}
    grad0 = -grads_rest.sum(axis=1, keepdims=True)
    grads = np.concatenate([grad0, grads_rest], axis=1)  # (n_el, d+1, d)
    factorial = {1: 1.0, 2: 2.0, 3: 6.0}[d]
    measures = np.abs(det) / factorial
    return grads, measures


def p1_stiffness(
    coords: np.ndarray,
    elements: np.ndarray,
    conductivity: float | np.ndarray = 1.0,
) -> np.ndarray:
    """Local stiffness matrices ``(n_el, d+1, d+1)`` for scalar diffusion.

    *conductivity* may be a scalar or a per-element array.
    """
    grads, measures = p1_gradients(coords, elements)
    kappa = np.broadcast_to(
        np.asarray(conductivity, dtype=np.float64), measures.shape
    )
    scale = (measures * kappa)[:, None, None]
    return scale * np.einsum("eid,ejd->eij", grads, grads)


def p1_load(
    coords: np.ndarray,
    elements: np.ndarray,
    source: float | np.ndarray = 1.0,
) -> np.ndarray:
    """Local load vectors ``(n_el, d+1)`` for a (per-element) constant source:
    each vertex receives ``source * |T| / (d+1)``."""
    _, measures = p1_gradients(coords, elements)
    src = np.broadcast_to(np.asarray(source, dtype=np.float64), measures.shape)
    d1 = elements.shape[1]
    return np.repeat((src * measures / d1)[:, None], d1, axis=1)


__all__ = ["p1_gradients", "p1_stiffness", "p1_load"]
