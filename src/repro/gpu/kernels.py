"""Numeric kernels with cost accounting.

Each function *executes* the operation with NumPy/SciPy (results are exact)
and returns the :class:`~repro.gpu.costmodel.KernelCost` a real device would
pay: FLOPs from the standard BLAS formulas, memory traffic from the operand
shapes, one launch per library call.  Simulated devices price these costs;
see :mod:`repro.gpu.runtime`.

The kernel set mirrors what the paper's implementation calls through
cuBLAS/cuSPARSE and MKL: dense/sparse TRSM, SYRK, GEMM, SPMM, row
gather/scatter (pruning), and column permutations.

The ``batched_*`` family operates on whole fingerprint groups at once:
``(group, rows, cols)`` dense stacks and :class:`~repro.sparse.stacked.StackedCSC`
value stacks.  Each batched call executes the same numerics as ``group``
per-member calls through broadcasted 3-D NumPy operations and charges the
same FLOPs and memory traffic, but only **one** kernel launch — the cuBLAS
``*Batched`` pricing (see :meth:`~repro.gpu.costmodel.KernelCost.batched`).
The batched TRSM is a blocked forward substitution: stacked ``(group, b, b)``
diagonal solves via ``np.linalg.solve`` followed by broadcasted GEMM updates.

The batched facade is what :meth:`repro.core.assembler.SchurAssembler.assemble_group`
drives for one canonical class of subdomains — and what
:meth:`~repro.core.assembler.SchurAssembler.assemble_union` drives for one
*near* class padded into its structural pattern union: the kernels are
pattern-driven, so padded stacks (``[[L, 0], [0, I]]`` factors with
explicit structural zeros) run unchanged and price the padding fill
faithfully — every padded entry is charged like a real one, which is why
the batch engine guards the union tier with a fill-ratio cap
(:data:`repro.batch.engine.DEFAULT_UNION_FILL_CAP`).  ``docs/batching.md``
describes the grouped execution path end to end, ``docs/pipeline.md`` the
per-kernel roles inside one assembly.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.gpu.costmodel import (
    FLOAT64_BYTES,
    KernelCost,
    csx_bytes,
    dense_bytes,
)
from repro.sparse.stacked import StackedCSC
from repro.sparse.triangular import TriangularSolver
from repro.util import (
    gemm_flops,
    require,
    spmm_flops,
    syrk_flops,
    trsm_dense_flops,
    trsm_sparse_flops,
)


def trsm_dense(l_dense: np.ndarray, x: np.ndarray, trans: bool = False) -> KernelCost:
    """In-place dense TRSM: ``x <- L^{-1} x`` (or ``L^{-T} x`` with *trans*).

    *l_dense* is the lower-triangular factor (a dense view); *x* is
    overwritten with the solution, matching the in-place TRSM convention of
    §3.2.
    """
    n = l_dense.shape[0]
    require(l_dense.shape == (n, n), "factor must be square")
    require(x.shape[0] == n, "RHS row count mismatch")
    m = 1 if x.ndim == 1 else x.shape[1]
    x[...] = scipy.linalg.solve_triangular(
        l_dense, x, lower=True, trans="T" if trans else "N", check_finite=False
    )
    return KernelCost(
        flops=trsm_dense_flops(n, m),
        bytes_moved=dense_bytes((n, n)) / 2.0 + 2.0 * dense_bytes((n, m)),
        launches=1,
        char_dim=float(min(n, m)) if min(n, m) > 0 else 1.0,
    )


def trsm_sparse(
    l: sp.spmatrix,
    x: np.ndarray,
    trans: bool = False,
    solver: TriangularSolver | None = None,
) -> KernelCost:
    """In-place sparse-factor TRSM: ``x <- L^{-1} x`` with ``L`` in CSR/CSC.

    A prebuilt :class:`TriangularSolver` may be supplied to amortise the
    (zero-fill) analysis across calls, as persistent GPU workspaces do in
    the paper's implementation.
    """
    n = l.shape[0]
    require(x.shape[0] == n, "RHS row count mismatch")
    m = 1 if x.ndim == 1 else x.shape[1]
    if solver is None:
        solver = TriangularSolver(l)
    x[...] = solver.solve(x, transpose=trans)
    return KernelCost(
        flops=trsm_sparse_flops(l.nnz, m),
        bytes_moved=csx_bytes(l.nnz, n) + 2.0 * dense_bytes((n, m)),
        launches=1,
        char_dim=float(m),
        sparse=True,
    )


def syrk(
    y: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> KernelCost:
    """``C <- beta C + alpha Y^T Y`` (symmetric rank-k update, full matrix).

    BLAS SYRK only touches one triangle; we materialise both halves (the
    numbers are identical) but charge the one-triangle FLOP count, like the
    library call would.
    """
    k, n = y.shape if y.ndim == 2 else (y.shape[0], 1)
    require(c.shape == (n, n), "output must be (n, n)")
    update = y.T @ y
    if beta == 0.0:
        c[...] = alpha * update
    else:
        c *= beta
        c += alpha * update
    return KernelCost(
        flops=syrk_flops(n, k),
        bytes_moved=dense_bytes((k, n)) + dense_bytes((n, n)),
        launches=1,
        char_dim=float(min(n, k)) if min(n, k) > 0 else 1.0,
    )


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    trans_a: bool = False,
) -> KernelCost:
    """``C <- beta C + alpha op(A) B`` with dense operands."""
    op_a = a.T if trans_a else a
    m, k = op_a.shape
    k2, n = b.shape
    require(k == k2, f"inner dimensions differ: {k} vs {k2}")
    require(c.shape == (m, n), f"output must be ({m}, {n})")
    update = op_a @ b
    if beta == 0.0:
        c[...] = alpha * update
    else:
        c *= beta
        c += alpha * update
    return KernelCost(
        flops=gemm_flops(m, n, k),
        bytes_moved=dense_bytes((m, k), (k, n)) + 2.0 * dense_bytes((m, n)),
        launches=1,
        char_dim=float(min(m, n, k)) if min(m, n, k) > 0 else 1.0,
    )


def spmm(
    a: sp.spmatrix,
    b: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    trans_a: bool = False,
) -> KernelCost:
    """``C <- beta C + alpha op(A) B`` with sparse ``A`` and dense ``B``.

    With *trans_a* the operand is applied transposed (``A^T B``) without
    materialising the transpose — cuSPARSE's ``SPMM`` op mode.  The cost is
    the same stored matrix streamed once, so FLOPs and traffic match the
    non-transposed application of the same ``A``.
    """
    p, q = a.shape
    inner, rows_out = (p, q) if trans_a else (q, p)
    require(b.shape[0] == inner, "inner dimension mismatch")
    n = 1 if b.ndim == 1 else b.shape[1]
    update = (a.T @ b) if trans_a else (a @ b)
    if beta == 0.0:
        c[...] = alpha * update
    else:
        c *= beta
        c += alpha * update
    return KernelCost(
        flops=spmm_flops(a.nnz, n),
        bytes_moved=csx_bytes(a.nnz, p)
        + dense_bytes((inner, n))
        + 2.0 * dense_bytes((rows_out, n)),
        launches=1,
        char_dim=float(n),
        sparse=True,
    )


def gather_rows(x: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, KernelCost]:
    """Pack selected rows into a contiguous matrix (the *pruning* gather)."""
    out = np.ascontiguousarray(x[rows])
    nbytes = 2.0 * out.size * FLOAT64_BYTES
    return out, KernelCost(
        flops=0.0, bytes_moved=nbytes, launches=1, char_dim=float(max(out.shape[-1] if out.ndim > 1 else 1, 1)), sparse=True
    )


def scatter_add_rows(target: np.ndarray, rows: np.ndarray, values: np.ndarray, sign: float = 1.0) -> KernelCost:
    """``target[rows] += sign * values`` (the pruning scatter)."""
    require(values.shape[0] == rows.shape[0], "row count mismatch")
    target[rows] += sign * values
    nbytes = 3.0 * values.size * FLOAT64_BYTES
    return KernelCost(
        flops=float(values.size),
        bytes_moved=nbytes,
        launches=1,
        char_dim=float(max(values.shape[-1] if values.ndim > 1 else 1, 1)),
        sparse=True,
    )


def extract_sparse_block(
    l: sp.csc_matrix, r0: int, r1: int, c0: int, c1: int
) -> tuple[sp.csc_matrix, KernelCost]:
    """Extract ``L[r0:r1, c0:c1]`` as CSC (sparse subfactor extraction, §3.2)."""
    block = sp.csc_matrix(l[r0:r1, c0:c1])
    return block, KernelCost(
        flops=0.0,
        bytes_moved=2.0 * csx_bytes(block.nnz, max(c1 - c0, 1)),
        launches=1,
        char_dim=1.0,
        sparse=True,
    )


def densify(a: sp.spmatrix) -> tuple[np.ndarray, KernelCost]:
    """Sparse -> dense conversion (the *dense factor storage* setting)."""
    out = a.toarray()
    return out, KernelCost(
        flops=0.0,
        bytes_moved=csx_bytes(a.nnz, a.shape[1]) + out.size * FLOAT64_BYTES,
        launches=1,
        char_dim=1.0,
        sparse=True,
    )


def permute_columns(x: np.ndarray, perm: np.ndarray, inverse: bool = False) -> tuple[np.ndarray, KernelCost]:
    """Column permutation of a dense matrix (stepped-shape pre/post step)."""
    require(x.ndim == 2, "x must be 2-D")
    require(perm.size == x.shape[1], "permutation length mismatch")
    if inverse:
        out = np.empty_like(x)
        out[:, perm] = x
    else:
        out = x[:, perm]
    nbytes = 2.0 * x.size * FLOAT64_BYTES
    return out, KernelCost(flops=0.0, bytes_moved=nbytes, launches=1, char_dim=float(x.shape[0]))


def symmetric_permute(f: np.ndarray, perm: np.ndarray, inverse: bool = True) -> tuple[np.ndarray, KernelCost]:
    """Symmetric permutation of the assembled SC back to the original LM order."""
    require(f.ndim == 2 and f.shape[0] == f.shape[1], "F must be square")
    if inverse:
        out = np.empty_like(f)
        out[np.ix_(perm, perm)] = f
    else:
        out = f[np.ix_(perm, perm)]
    nbytes = 2.0 * f.size * FLOAT64_BYTES
    return out, KernelCost(flops=0.0, bytes_moved=nbytes, launches=1, char_dim=float(f.shape[0]))


# ---------------------------------------------------------------------------
# batched kernels: one launch per whole fingerprint group
# ---------------------------------------------------------------------------

#: Diagonal-block size of the blocked batched forward substitution.
BATCHED_TRSM_BLOCK = 64


def _check_batched(stack: np.ndarray, name: str) -> int:
    require(stack.ndim == 3, f"{name} must be a (group, rows, cols) stack")
    require(stack.shape[0] >= 1, f"{name} must stack at least one member")
    return int(stack.shape[0])


def _blocked_forward_substitution(
    l_stack: np.ndarray, x_stack: np.ndarray, block: int
) -> None:
    """In-place ``X_g <- L_g^{-1} X_g`` over stacked lower factors.

    Blocked: a stacked ``(group, b, b)`` diagonal solve (``np.linalg.solve``
    batches over the leading axis) followed by a broadcasted GEMM pushing the
    solved block into the rows below — the classic right-looking TRSM
    schedule, batched over the group.
    """
    n = l_stack.shape[1]
    for i0 in range(0, n, block):
        i1 = min(i0 + block, n)
        x_stack[:, i0:i1] = np.linalg.solve(l_stack[:, i0:i1, i0:i1], x_stack[:, i0:i1])
        if i1 < n:
            x_stack[:, i1:] -= np.matmul(l_stack[:, i1:, i0:i1], x_stack[:, i0:i1])


def _blocked_backward_substitution(
    l_stack: np.ndarray, x_stack: np.ndarray, block: int
) -> None:
    """In-place ``X_g <- L_g^{-T} X_g`` over stacked lower factors.

    The transpose sweep of :func:`_blocked_forward_substitution`: walk the
    diagonal blocks bottom-up, solve the stacked ``(group, b, b)`` upper
    block (``L^T``), then push the solved block into the rows above with a
    broadcasted GEMM.
    """
    n = l_stack.shape[1]
    starts = list(range(0, n, block))
    for i0 in reversed(starts):
        i1 = min(i0 + block, n)
        x_stack[:, i0:i1] = np.linalg.solve(
            l_stack[:, i0:i1, i0:i1].transpose(0, 2, 1), x_stack[:, i0:i1]
        )
        if i0 > 0:
            x_stack[:, :i0] -= np.matmul(
                l_stack[:, i0:i1, :i0].transpose(0, 2, 1), x_stack[:, i0:i1]
            )


def batched_trsm_dense(
    l_stack: np.ndarray,
    x_stack: np.ndarray,
    block: int = BATCHED_TRSM_BLOCK,
    trans: bool = False,
) -> KernelCost:
    """Batched in-place dense TRSM: ``x_g <- L_g^{-1} x_g`` for every member
    (``L_g^{-T} x_g`` with *trans* — the backward sweep of a solve pair).

    Same per-member FLOPs/traffic as :func:`trsm_dense`, one launch for the
    whole stack (``cublasDtrsmBatched``).
    """
    g = _check_batched(l_stack, "l_stack")
    n = l_stack.shape[1]
    require(l_stack.shape == (g, n, n), "stacked factors must be square")
    require(
        x_stack.shape[0] == g and x_stack.shape[1] == n,
        "RHS stack must match the factor stack",
    )
    m = x_stack.shape[2]
    if trans:
        _blocked_backward_substitution(l_stack, x_stack, block)
    else:
        _blocked_forward_substitution(l_stack, x_stack, block)
    per = KernelCost(
        flops=trsm_dense_flops(n, m),
        bytes_moved=dense_bytes((n, n)) / 2.0 + 2.0 * dense_bytes((n, m)),
        launches=1,
        char_dim=float(min(n, m)) if min(n, m) > 0 else 1.0,
    )
    return per.batched(g)


def batched_trsm_sparse(
    l: StackedCSC,
    x_stack: np.ndarray,
    block: int = BATCHED_TRSM_BLOCK,
    trans: bool = False,
) -> KernelCost:
    """Batched sparse-factor TRSM over a value stack sharing one pattern
    (``L_g^{-T}`` with *trans*).

    Priced like ``group`` :func:`trsm_sparse` calls in one launch; executed
    as the blocked dense substitution on the densified stack (cost-model and
    numerics are decoupled throughout, and the stored values are identical
    either way up to BLAS association order).
    """
    n, n2 = l.shape
    require(n == n2, "stacked factor must be square")
    g = _check_batched(x_stack, "x_stack")
    require(g == l.group, "RHS stack must match the factor stack")
    require(x_stack.shape[1] == n, "RHS row count mismatch")
    m = x_stack.shape[2]
    if trans:
        _blocked_backward_substitution(l.toarray(), x_stack, block)
    else:
        _blocked_forward_substitution(l.toarray(), x_stack, block)
    per = KernelCost(
        flops=trsm_sparse_flops(l.nnz, m),
        bytes_moved=csx_bytes(l.nnz, n) + 2.0 * dense_bytes((n, m)),
        launches=1,
        char_dim=float(m),
        sparse=True,
    )
    return per.batched(g)


def batched_syrk(
    y_stack: np.ndarray,
    c_stack: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> KernelCost:
    """Batched ``C_g <- beta C_g + alpha Y_g^T Y_g`` (one launch per group)."""
    g = _check_batched(y_stack, "y_stack")
    k, n = y_stack.shape[1], y_stack.shape[2]
    require(c_stack.shape == (g, n, n), "output stack must be (group, n, n)")
    update = np.matmul(y_stack.transpose(0, 2, 1), y_stack)
    if beta == 0.0:
        c_stack[...] = alpha * update
    else:
        c_stack *= beta
        c_stack += alpha * update
    per = KernelCost(
        flops=syrk_flops(n, k),
        bytes_moved=dense_bytes((k, n)) + dense_bytes((n, n)),
        launches=1,
        char_dim=float(min(n, k)) if min(n, k) > 0 else 1.0,
    )
    return per.batched(g)


def batched_gemm(
    a_stack: np.ndarray,
    b_stack: np.ndarray,
    c_stack: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    trans_a: bool = False,
) -> KernelCost:
    """Batched ``C_g <- beta C_g + alpha op(A_g) B_g`` (``cublasDgemmBatched``)."""
    g = _check_batched(a_stack, "a_stack")
    op_a = a_stack.transpose(0, 2, 1) if trans_a else a_stack
    m, k = op_a.shape[1], op_a.shape[2]
    require(b_stack.shape == (g, k, b_stack.shape[2]), "inner dimensions differ")
    n = b_stack.shape[2]
    require(c_stack.shape == (g, m, n), f"output stack must be (group, {m}, {n})")
    update = np.matmul(op_a, b_stack)
    if beta == 0.0:
        c_stack[...] = alpha * update
    else:
        c_stack *= beta
        c_stack += alpha * update
    per = KernelCost(
        flops=gemm_flops(m, n, k),
        bytes_moved=dense_bytes((m, k), (k, n)) + 2.0 * dense_bytes((m, n)),
        launches=1,
        char_dim=float(min(m, n, k)) if min(m, n, k) > 0 else 1.0,
    )
    return per.batched(g)


def batched_spmm(
    a: StackedCSC,
    b_stack: np.ndarray,
    c_stack: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    trans_a: bool = False,
) -> KernelCost:
    """Batched ``C_g <- beta C_g + alpha op(A_g) B_g`` with one shared
    sparsity (``A_g^T B_g`` with *trans_a*, cuSPARSE op-mode style).

    The per-member cost is exactly :func:`spmm` of the same stored matrix —
    the transpose streams the identical pattern — so the batched/sequential
    FLOP and traffic parity the solve tests assert holds by construction.
    """
    p, q = a.shape
    inner, rows_out = (p, q) if trans_a else (q, p)
    g = _check_batched(b_stack, "b_stack")
    require(g == a.group, "stacks must agree on the group size")
    require(b_stack.shape[1] == inner, "inner dimension mismatch")
    n = b_stack.shape[2]
    require(
        c_stack.shape == (g, rows_out, n),
        f"output stack must be (group, {rows_out}, {n})",
    )
    dense = a.toarray()
    op = dense.transpose(0, 2, 1) if trans_a else dense
    update = np.matmul(op, b_stack)
    if beta == 0.0:
        c_stack[...] = alpha * update
    else:
        c_stack *= beta
        c_stack += alpha * update
    per = KernelCost(
        flops=spmm_flops(a.nnz, n),
        bytes_moved=csx_bytes(a.nnz, p)
        + dense_bytes((inner, n))
        + 2.0 * dense_bytes((rows_out, n)),
        launches=1,
        char_dim=float(n),
        sparse=True,
    )
    return per.batched(g)


def batched_panel_gather(
    x: np.ndarray, rows_stack: np.ndarray
) -> tuple[np.ndarray, KernelCost]:
    """Gather per-member row panels out of one shared dense panel.

    ``out[g] = x[rows_stack[g]]`` for every member in one launch — the
    grouped dual-operator's restriction of the global multiplier panel to
    each member's local multipliers.  Per-member cost equals
    :func:`gather_rows` of the same rows.
    """
    require(rows_stack.ndim == 2, "rows_stack must be (group, rows)")
    g = int(rows_stack.shape[0])
    require(g >= 1, "rows_stack must stack at least one member")
    out = np.ascontiguousarray(x[rows_stack])
    per_size = float(out.size / g)
    per = KernelCost(
        flops=0.0,
        bytes_moved=2.0 * per_size * FLOAT64_BYTES,
        launches=1,
        char_dim=float(max(out.shape[-1] if out.ndim > 2 else 1, 1)),
        sparse=True,
    )
    return out, per.batched(g)


def batched_panel_scatter_add(
    target: np.ndarray,
    rows_stack: np.ndarray,
    values_stack: np.ndarray,
    sign: float = 1.0,
) -> KernelCost:
    """``target[rows_stack[g]] += sign * values_stack[g]`` for every member.

    The additive gather of per-member dual contributions into one global
    panel: one launch, duplicate multiplier rows across members accumulate
    (``np.add.at`` semantics — the atomic-add scatter a device would run).
    Per-member cost equals :func:`scatter_add_rows` of the same rows.
    """
    g = _check_batched(values_stack, "values_stack")
    require(rows_stack.shape == values_stack.shape[:2], "rows/values mismatch")
    flat_rows = rows_stack.reshape(-1)
    flat_vals = values_stack.reshape(flat_rows.shape[0], -1)
    if sign != 1.0:
        flat_vals = sign * flat_vals
    np.add.at(target, flat_rows, flat_vals.reshape((flat_rows.shape[0],) + target.shape[1:]))
    per_size = float(values_stack.size / g)
    per = KernelCost(
        flops=per_size,
        bytes_moved=3.0 * per_size * FLOAT64_BYTES,
        launches=1,
        char_dim=float(max(values_stack.shape[-1], 1)),
        sparse=True,
    )
    return per.batched(g)


def batched_scatter_add_rows(
    target_stack: np.ndarray,
    rows: np.ndarray,
    values_stack: np.ndarray,
    sign: float = 1.0,
) -> KernelCost:
    """``target_g[rows] += sign * values_g`` for every member (one launch)."""
    g = _check_batched(values_stack, "values_stack")
    require(target_stack.shape[0] == g, "stacks must agree on the group size")
    require(values_stack.shape[1] == rows.shape[0], "row count mismatch")
    target_stack[:, rows] += sign * values_stack
    per_size = float(values_stack.size / g)
    per = KernelCost(
        flops=per_size,
        bytes_moved=3.0 * per_size * FLOAT64_BYTES,
        launches=1,
        char_dim=float(max(values_stack.shape[-1], 1)),
        sparse=True,
    )
    return per.batched(g)


def batched_extract_block(
    a: StackedCSC, r0: int, r1: int, c0: int, c1: int
) -> tuple[StackedCSC, KernelCost]:
    """Extract ``A_g[r0:r1, c0:c1]`` from every member via the shared pattern."""
    block = a.block(r0, r1, c0, c1)
    per = KernelCost(
        flops=0.0,
        bytes_moved=2.0 * csx_bytes(block.nnz, max(c1 - c0, 1)),
        launches=1,
        char_dim=1.0,
        sparse=True,
    )
    return block, per.batched(a.group)


def batched_densify(
    a: StackedCSC, rows: np.ndarray | None = None
) -> tuple[np.ndarray, KernelCost]:
    """Stacked sparse -> dense conversion; with *rows*, the packed (pruned)
    row subset — the batched equivalent of densifying ``A_g[rows]``."""
    out = a.toarray(rows=rows)
    per = KernelCost(
        flops=0.0,
        bytes_moved=csx_bytes(a.nnz, a.shape[1]) + (out.size / a.group) * FLOAT64_BYTES,
        launches=1,
        char_dim=1.0,
        sparse=True,
    )
    return out, per.batched(a.group)


def batched_symmetric_permute(
    f_stack: np.ndarray, perm: np.ndarray, inverse: bool = True
) -> tuple[np.ndarray, KernelCost]:
    """Symmetric permutation of every member's assembled SC (one launch)."""
    g = _check_batched(f_stack, "f_stack")
    m = f_stack.shape[1]
    require(f_stack.shape == (g, m, m), "F stack members must be square")
    require(perm.size == m, "permutation length mismatch")
    ix = (perm[:, None], perm[None, :])
    if inverse:
        out = np.empty_like(f_stack)
        out[:, ix[0], ix[1]] = f_stack
    else:
        out = f_stack[:, ix[0], ix[1]]
    per = KernelCost(
        flops=0.0,
        bytes_moved=2.0 * m * m * FLOAT64_BYTES,
        launches=1,
        char_dim=float(m),
    )
    return out, per.batched(g)


__all__ = [
    "trsm_dense",
    "trsm_sparse",
    "syrk",
    "gemm",
    "spmm",
    "gather_rows",
    "scatter_add_rows",
    "extract_sparse_block",
    "densify",
    "permute_columns",
    "symmetric_permute",
    "BATCHED_TRSM_BLOCK",
    "batched_trsm_dense",
    "batched_trsm_sparse",
    "batched_syrk",
    "batched_gemm",
    "batched_spmm",
    "batched_panel_gather",
    "batched_panel_scatter_add",
    "batched_scatter_add_rows",
    "batched_extract_block",
    "batched_densify",
    "batched_symmetric_permute",
]
