"""Numeric kernels with cost accounting.

Each function *executes* the operation with NumPy/SciPy (results are exact)
and returns the :class:`~repro.gpu.costmodel.KernelCost` a real device would
pay: FLOPs from the standard BLAS formulas, memory traffic from the operand
shapes, one launch per library call.  Simulated devices price these costs;
see :mod:`repro.gpu.runtime`.

The kernel set mirrors what the paper's implementation calls through
cuBLAS/cuSPARSE and MKL: dense/sparse TRSM, SYRK, GEMM, SPMM, row
gather/scatter (pruning), and column permutations.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.gpu.costmodel import (
    FLOAT64_BYTES,
    KernelCost,
    csx_bytes,
    dense_bytes,
)
from repro.sparse.triangular import TriangularSolver
from repro.util import (
    gemm_flops,
    require,
    spmm_flops,
    syrk_flops,
    trsm_dense_flops,
    trsm_sparse_flops,
)


def trsm_dense(l_dense: np.ndarray, x: np.ndarray, trans: bool = False) -> KernelCost:
    """In-place dense TRSM: ``x <- L^{-1} x`` (or ``L^{-T} x`` with *trans*).

    *l_dense* is the lower-triangular factor (a dense view); *x* is
    overwritten with the solution, matching the in-place TRSM convention of
    §3.2.
    """
    n = l_dense.shape[0]
    require(l_dense.shape == (n, n), "factor must be square")
    require(x.shape[0] == n, "RHS row count mismatch")
    m = 1 if x.ndim == 1 else x.shape[1]
    x[...] = scipy.linalg.solve_triangular(
        l_dense, x, lower=True, trans="T" if trans else "N", check_finite=False
    )
    return KernelCost(
        flops=trsm_dense_flops(n, m),
        bytes_moved=dense_bytes((n, n)) / 2.0 + 2.0 * dense_bytes((n, m)),
        launches=1,
        char_dim=float(min(n, m)) if min(n, m) > 0 else 1.0,
    )


def trsm_sparse(
    l: sp.spmatrix,
    x: np.ndarray,
    trans: bool = False,
    solver: TriangularSolver | None = None,
) -> KernelCost:
    """In-place sparse-factor TRSM: ``x <- L^{-1} x`` with ``L`` in CSR/CSC.

    A prebuilt :class:`TriangularSolver` may be supplied to amortise the
    (zero-fill) analysis across calls, as persistent GPU workspaces do in
    the paper's implementation.
    """
    n = l.shape[0]
    require(x.shape[0] == n, "RHS row count mismatch")
    m = 1 if x.ndim == 1 else x.shape[1]
    if solver is None:
        solver = TriangularSolver(l)
    x[...] = solver.solve(x, transpose=trans)
    return KernelCost(
        flops=trsm_sparse_flops(l.nnz, m),
        bytes_moved=csx_bytes(l.nnz, n) + 2.0 * dense_bytes((n, m)),
        launches=1,
        char_dim=float(m),
        sparse=True,
    )


def syrk(
    y: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
) -> KernelCost:
    """``C <- beta C + alpha Y^T Y`` (symmetric rank-k update, full matrix).

    BLAS SYRK only touches one triangle; we materialise both halves (the
    numbers are identical) but charge the one-triangle FLOP count, like the
    library call would.
    """
    k, n = y.shape if y.ndim == 2 else (y.shape[0], 1)
    require(c.shape == (n, n), "output must be (n, n)")
    update = y.T @ y
    if beta == 0.0:
        c[...] = alpha * update
    else:
        c *= beta
        c += alpha * update
    return KernelCost(
        flops=syrk_flops(n, k),
        bytes_moved=dense_bytes((k, n)) + dense_bytes((n, n)),
        launches=1,
        char_dim=float(min(n, k)) if min(n, k) > 0 else 1.0,
    )


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    alpha: float = 1.0,
    beta: float = 1.0,
    trans_a: bool = False,
) -> KernelCost:
    """``C <- beta C + alpha op(A) B`` with dense operands."""
    op_a = a.T if trans_a else a
    m, k = op_a.shape
    k2, n = b.shape
    require(k == k2, f"inner dimensions differ: {k} vs {k2}")
    require(c.shape == (m, n), f"output must be ({m}, {n})")
    update = op_a @ b
    if beta == 0.0:
        c[...] = alpha * update
    else:
        c *= beta
        c += alpha * update
    return KernelCost(
        flops=gemm_flops(m, n, k),
        bytes_moved=dense_bytes((m, k), (k, n)) + 2.0 * dense_bytes((m, n)),
        launches=1,
        char_dim=float(min(m, n, k)) if min(m, n, k) > 0 else 1.0,
    )


def spmm(a: sp.spmatrix, b: np.ndarray, c: np.ndarray, alpha: float = 1.0, beta: float = 1.0) -> KernelCost:
    """``C <- beta C + alpha A B`` with sparse ``A`` and dense ``B``."""
    m, k = a.shape
    require(b.shape[0] == k, "inner dimension mismatch")
    n = 1 if b.ndim == 1 else b.shape[1]
    update = a @ b
    if beta == 0.0:
        c[...] = alpha * update
    else:
        c *= beta
        c += alpha * update
    return KernelCost(
        flops=spmm_flops(a.nnz, n),
        bytes_moved=csx_bytes(a.nnz, m) + dense_bytes((k, n)) + 2.0 * dense_bytes((m, n)),
        launches=1,
        char_dim=float(n),
        sparse=True,
    )


def gather_rows(x: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, KernelCost]:
    """Pack selected rows into a contiguous matrix (the *pruning* gather)."""
    out = np.ascontiguousarray(x[rows])
    nbytes = 2.0 * out.size * FLOAT64_BYTES
    return out, KernelCost(
        flops=0.0, bytes_moved=nbytes, launches=1, char_dim=float(max(out.shape[-1] if out.ndim > 1 else 1, 1)), sparse=True
    )


def scatter_add_rows(target: np.ndarray, rows: np.ndarray, values: np.ndarray, sign: float = 1.0) -> KernelCost:
    """``target[rows] += sign * values`` (the pruning scatter)."""
    require(values.shape[0] == rows.shape[0], "row count mismatch")
    target[rows] += sign * values
    nbytes = 3.0 * values.size * FLOAT64_BYTES
    return KernelCost(
        flops=float(values.size),
        bytes_moved=nbytes,
        launches=1,
        char_dim=float(max(values.shape[-1] if values.ndim > 1 else 1, 1)),
        sparse=True,
    )


def extract_sparse_block(
    l: sp.csc_matrix, r0: int, r1: int, c0: int, c1: int
) -> tuple[sp.csc_matrix, KernelCost]:
    """Extract ``L[r0:r1, c0:c1]`` as CSC (sparse subfactor extraction, §3.2)."""
    block = sp.csc_matrix(l[r0:r1, c0:c1])
    return block, KernelCost(
        flops=0.0,
        bytes_moved=2.0 * csx_bytes(block.nnz, max(c1 - c0, 1)),
        launches=1,
        char_dim=1.0,
        sparse=True,
    )


def densify(a: sp.spmatrix) -> tuple[np.ndarray, KernelCost]:
    """Sparse -> dense conversion (the *dense factor storage* setting)."""
    out = a.toarray()
    return out, KernelCost(
        flops=0.0,
        bytes_moved=csx_bytes(a.nnz, a.shape[1]) + out.size * FLOAT64_BYTES,
        launches=1,
        char_dim=1.0,
        sparse=True,
    )


def permute_columns(x: np.ndarray, perm: np.ndarray, inverse: bool = False) -> tuple[np.ndarray, KernelCost]:
    """Column permutation of a dense matrix (stepped-shape pre/post step)."""
    require(x.ndim == 2, "x must be 2-D")
    require(perm.size == x.shape[1], "permutation length mismatch")
    if inverse:
        out = np.empty_like(x)
        out[:, perm] = x
    else:
        out = x[:, perm]
    nbytes = 2.0 * x.size * FLOAT64_BYTES
    return out, KernelCost(flops=0.0, bytes_moved=nbytes, launches=1, char_dim=float(x.shape[0]))


def symmetric_permute(f: np.ndarray, perm: np.ndarray, inverse: bool = True) -> tuple[np.ndarray, KernelCost]:
    """Symmetric permutation of the assembled SC back to the original LM order."""
    require(f.ndim == 2 and f.shape[0] == f.shape[1], "F must be square")
    if inverse:
        out = np.empty_like(f)
        out[np.ix_(perm, perm)] = f
    else:
        out = f[np.ix_(perm, perm)]
    nbytes = 2.0 * f.size * FLOAT64_BYTES
    return out, KernelCost(flops=0.0, bytes_moved=nbytes, launches=1, char_dim=float(f.shape[0]))


__all__ = [
    "trsm_dense",
    "trsm_sparse",
    "syrk",
    "gemm",
    "spmm",
    "gather_rows",
    "scatter_add_rows",
    "extract_sparse_block",
    "densify",
    "permute_columns",
    "symmetric_permute",
]
