"""Kernel cost accounting and conversion to simulated seconds.

Numerics and timing are decoupled throughout the library: every kernel in
:mod:`repro.gpu.kernels` *executes* with NumPy/SciPy and *returns* a
:class:`KernelCost`; a :class:`DeviceSpec` then prices the cost.  The same
algorithm can therefore be timed on an A100 roofline and on an EPYC-core
roofline without touching the numerics — the substitution documented in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.spec import DeviceSpec
from repro.util import require

FLOAT64_BYTES = 8.0
INDEX_BYTES = 4.0


@dataclass(frozen=True)
class KernelCost:
    """What one kernel invocation did.

    Attributes
    ----------
    flops:
        Floating-point operations performed.
    bytes_moved:
        Device-memory traffic (reads + writes) of the kernel.
    launches:
        Number of library/kernel launches (each pays the launch overhead).
    char_dim:
        Characteristic matrix dimension governing BLAS efficiency (the
        smallest dimension of the innermost dense operation).
    sparse:
        Whether the kernel is an irregular (sparse) one — prices against the
        device's discounted sparse peak.
    """

    flops: float = 0.0
    bytes_moved: float = 0.0
    launches: int = 1
    char_dim: float = 1.0
    sparse: bool = False

    def __post_init__(self) -> None:
        require(self.flops >= 0, "flops must be >= 0")
        require(self.bytes_moved >= 0, "bytes_moved must be >= 0")
        require(self.launches >= 0, "launches must be >= 0")
        require(self.char_dim >= 0, "char_dim must be >= 0")

    def __add__(self, other: "KernelCost") -> "KernelCost":
        total_flops = self.flops + other.flops
        # Flop-weighted characteristic dimension keeps the combined cost's
        # efficiency representative of where the work actually happened.
        if total_flops > 0:
            cd = (
                self.char_dim * self.flops + other.char_dim * other.flops
            ) / total_flops
        else:
            cd = max(self.char_dim, other.char_dim)
        return KernelCost(
            flops=total_flops,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            launches=self.launches + other.launches,
            char_dim=cd,
            sparse=self.sparse and other.sparse,
        )

    def batched(self, group: int) -> "KernelCost":
        """Cost of one *batched* library call doing this kernel's work
        ``group`` times (cuBLAS ``*Batched`` pricing): FLOPs and memory
        traffic scale with the group, the launch overhead does **not** — the
        whole stack goes through a single launch.  ``char_dim`` is unchanged
        because batching processes each member at its own matrix dimensions;
        it amortizes launches, it does not make small BLAS operands large.
        """
        require(group >= 1, "group must be >= 1")
        return KernelCost(
            flops=self.flops * group,
            bytes_moved=self.bytes_moved * group,
            launches=self.launches,
            char_dim=self.char_dim,
            sparse=self.sparse,
        )

    def time_on(self, spec: DeviceSpec) -> float:
        """Simulated execution time of this cost on *spec* (roofline)."""
        peak = spec.peak_flops * (spec.sparse_discount if self.sparse else 1.0)
        eff = spec.eff_max * self.char_dim / (self.char_dim + spec.dim_half)
        compute = self.flops / (peak * max(eff, 1e-9)) if self.flops else 0.0
        memory = self.bytes_moved / spec.mem_bandwidth
        return self.launches * spec.launch_overhead + max(compute, memory)


ZERO_COST = KernelCost(flops=0.0, bytes_moved=0.0, launches=0, char_dim=1.0)


@dataclass
class CostLedger:
    """Accumulates kernel costs and simulated time for one resource."""

    spec: DeviceSpec
    elapsed: float = 0.0
    total: KernelCost = field(default_factory=lambda: ZERO_COST)
    calls: int = 0

    def charge(self, cost: KernelCost) -> float:
        """Account *cost*, returning the simulated duration charged."""
        dt = cost.time_on(self.spec)
        self.elapsed += dt
        self.total = self.total + cost
        self.calls += 1
        return dt

    def absorb(self, other: "CostLedger") -> None:
        """Fold another ledger's history into this one (same resource).

        Used by the batch engine to merge the per-group executors of a
        thread-parallel grouped execution back into the caller's executor.
        """
        self.elapsed += other.elapsed
        self.total = self.total + other.total
        self.calls += other.calls

    def reset(self) -> None:
        self.elapsed = 0.0
        self.total = ZERO_COST
        self.calls = 0


def dense_bytes(*shape_pairs: tuple[int, int]) -> float:
    """Total bytes of a set of dense (rows, cols) float64 arrays."""
    return float(sum(r * c for r, c in shape_pairs)) * FLOAT64_BYTES


def csx_bytes(nnz: int, n_major: int) -> float:
    """Bytes of a CSR/CSC matrix: values + indices + pointer array."""
    return nnz * (FLOAT64_BYTES + INDEX_BYTES) + (n_major + 1) * INDEX_BYTES


__all__ = [
    "KernelCost",
    "CostLedger",
    "ZERO_COST",
    "dense_bytes",
    "csx_bytes",
    "FLOAT64_BYTES",
    "INDEX_BYTES",
]
