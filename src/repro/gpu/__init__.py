"""Simulated GPU substrate: device specs, cost model, kernels, runtime, memory.

Replaces the paper's CUDA/cuBLAS/cuSPARSE stack: kernels execute their exact
numerics with NumPy/SciPy while a calibrated roofline model accounts
simulated time (see DESIGN.md, "Hardware/substrate substitutions").
"""

from repro.gpu.costmodel import (
    FLOAT64_BYTES,
    INDEX_BYTES,
    CostLedger,
    KernelCost,
    csx_bytes,
    dense_bytes,
)
from repro.gpu.memory import Allocation, MemoryPool, OutOfDeviceMemoryError
from repro.gpu.runtime import (
    Executor,
    GpuEvent,
    SimulatedGpu,
    Stream,
    cpu_executor,
    gpu_executor,
)
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE, PCIE4_X16, DeviceSpec, TransferSpec

__all__ = [
    "DeviceSpec",
    "TransferSpec",
    "A100_40GB",
    "EPYC_7763_CORE",
    "PCIE4_X16",
    "KernelCost",
    "CostLedger",
    "dense_bytes",
    "csx_bytes",
    "FLOAT64_BYTES",
    "INDEX_BYTES",
    "Executor",
    "cpu_executor",
    "gpu_executor",
    "SimulatedGpu",
    "Stream",
    "GpuEvent",
    "MemoryPool",
    "Allocation",
    "OutOfDeviceMemoryError",
]
