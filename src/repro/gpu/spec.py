"""Device specifications for the simulated execution model.

The paper's testbed is a Karolina GPU node: 8x NVIDIA A100-40GB and 2x AMD
EPYC 7763 (one GPU + one 16-core NUMA domain per process).  We model each
executing resource (one GPU, one CPU core) as a roofline:

``time = launches * launch_overhead
       + flops / (peak_flops * efficiency(char_dim))
       + bytes / mem_bandwidth``

where ``efficiency(d) = eff_max * d / (d + dim_half)`` captures how BLAS
kernels only approach peak for sufficiently large matrix dimensions — the
effect behind the paper's observation that tiny split blocks are
counterproductive (§4.1) and that GPU acceleration loses for very small
subdomains (kernel-launch overhead, §5).

Numbers are published vendor figures (A100: 9.7 TFLOP/s FP64, 1.555 TB/s
HBM2; EPYC 7763 core: ~39 GFLOP/s FP64, ~20 GB/s sustained per-core stream
share; PCIe 4.0 x16: ~24 GB/s effective) with efficiency knees chosen to
match the qualitative crossovers reported in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util import require


@dataclass(frozen=True)
class DeviceSpec:
    """Roofline description of one executing resource."""

    name: str
    kind: str  # "gpu" | "cpu"
    peak_flops: float  # FP64 FLOP/s
    mem_bandwidth: float  # bytes/s
    launch_overhead: float  # seconds per kernel launch / library call
    eff_max: float  # ceiling on achieved fraction of peak
    dim_half: float  # characteristic dim at which efficiency is eff_max/2
    sparse_discount: float  # peak multiplier for irregular (sparse) kernels
    memory_capacity: float  # bytes of device memory

    def __post_init__(self) -> None:
        require(self.kind in ("gpu", "cpu"), f"bad device kind {self.kind!r}")
        require(self.peak_flops > 0, "peak_flops must be positive")
        require(self.mem_bandwidth > 0, "mem_bandwidth must be positive")
        require(self.launch_overhead >= 0, "launch_overhead must be >= 0")
        require(0 < self.eff_max <= 1, "eff_max must be in (0, 1]")
        require(self.dim_half >= 0, "dim_half must be >= 0")
        require(0 < self.sparse_discount <= 1, "sparse_discount must be in (0, 1]")

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class TransferSpec:
    """Host<->device link (PCIe)."""

    bandwidth: float  # bytes/s
    latency: float  # seconds per transfer

    def time(self, nbytes: float) -> float:
        require(nbytes >= 0, "nbytes must be >= 0")
        return self.latency + nbytes / self.bandwidth


#: NVIDIA A100-SXM4-40GB (FP64 CUDA cores, HBM2).
A100_40GB = DeviceSpec(
    name="nvidia-a100-40gb",
    kind="gpu",
    peak_flops=9.7e12,
    mem_bandwidth=1.555e12,
    launch_overhead=8e-6,
    eff_max=0.85,
    dim_half=384.0,
    sparse_discount=0.03,
    memory_capacity=40e9,
)

#: One core of an AMD EPYC 7763 (Zen3, 2.45 GHz base, 16 DP FLOP/cycle).
EPYC_7763_CORE = DeviceSpec(
    name="amd-epyc-7763-core",
    kind="cpu",
    peak_flops=39e9,
    mem_bandwidth=20e9,
    launch_overhead=4e-7,
    eff_max=0.90,
    dim_half=24.0,
    sparse_discount=0.10,
    memory_capacity=128e9,
)

#: PCIe 4.0 x16 effective host<->device link.
PCIE4_X16 = TransferSpec(bandwidth=24e9, latency=1e-5)


__all__ = ["DeviceSpec", "TransferSpec", "A100_40GB", "EPYC_7763_CORE", "PCIE4_X16"]
