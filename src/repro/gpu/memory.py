"""Simulated device memory: persistent region + temporary pool allocator.

Reproduces the memory discipline of the original algorithm (§3.1): all
*persistent* structures (the Schur complements used by every iteration,
library workspaces) are allocated once; everything else goes through a
*temporary* pool that reuses memory without calling the device allocator.
When the pool cannot satisfy a request the requesting work item must wait
until other work frees memory — surfaced here as the ``would_block`` flag
that the pipeline scheduler turns into a simulated stall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import require


class OutOfDeviceMemoryError(RuntimeError):
    """Raised when a persistent allocation exceeds device capacity."""


@dataclass
class Allocation:
    """A live allocation ticket."""

    nbytes: float
    tag: str
    kind: str = "temporary"  # "persistent" | "temporary"
    freed: bool = False


@dataclass
class MemoryPool:
    """Bookkeeping for one device's memory.

    Tracks persistent and temporary usage separately plus the high-water
    mark; enforces the capacity for persistent allocations and reports
    blocking for temporary ones.
    """

    capacity: float
    persistent_used: float = 0.0
    temporary_used: float = 0.0
    high_water: float = 0.0
    live: list[Allocation] = field(default_factory=list)

    def __post_init__(self) -> None:
        require(self.capacity > 0, "capacity must be positive")

    @property
    def used(self) -> float:
        return self.persistent_used + self.temporary_used

    @property
    def available(self) -> float:
        return self.capacity - self.used

    def alloc_persistent(self, nbytes: float, tag: str = "persistent") -> Allocation:
        require(nbytes >= 0, "nbytes must be >= 0")
        if self.used + nbytes > self.capacity:
            raise OutOfDeviceMemoryError(
                f"persistent allocation of {nbytes:.3g} B exceeds capacity "
                f"({self.used:.3g}/{self.capacity:.3g} B used)"
            )
        self.persistent_used += nbytes
        self._bump()
        a = Allocation(nbytes=nbytes, tag=tag, kind="persistent")
        self.live.append(a)
        return a

    def would_block(self, nbytes: float) -> bool:
        """Would a temporary allocation of *nbytes* have to wait?"""
        return self.used + nbytes > self.capacity

    def alloc_temporary(self, nbytes: float, tag: str = "temporary") -> Allocation:
        """Allocate from the temporary pool.

        Unlike the persistent region this never raises: the paper's
        temporary allocator *blocks* the requesting thread instead.  Callers
        (the pipeline scheduler) must consult :meth:`would_block` first and
        model the stall; allocating past capacity here is a logic error.
        """
        require(nbytes >= 0, "nbytes must be >= 0")
        require(
            not self.would_block(nbytes),
            "temporary allocation would block; scheduler must wait for frees",
        )
        self.temporary_used += nbytes
        self._bump()
        a = Allocation(nbytes=nbytes, tag=tag, kind="temporary")
        self.live.append(a)
        return a

    def free(self, allocation: Allocation) -> None:
        require(not allocation.freed, "double free")
        allocation.freed = True
        self.live.remove(allocation)
        if allocation.kind == "persistent":
            self.persistent_used -= allocation.nbytes
        else:
            self.temporary_used -= allocation.nbytes

    def _bump(self) -> None:
        self.high_water = max(self.high_water, self.used)


__all__ = ["MemoryPool", "Allocation", "OutOfDeviceMemoryError"]
