"""Simulated device runtime: executors, streams, events.

:class:`Executor` binds the numeric kernels of :mod:`repro.gpu.kernels` to a
:class:`~repro.gpu.spec.DeviceSpec` and accumulates simulated time — the
"synchronize before and after each kernel" measurement mode the paper uses
for its pure-kernel benchmarks (§4.3).

:class:`SimulatedGpu` adds the asynchronous picture: CUDA-like streams with
independent timelines, host->device/device->host transfers priced by the
PCIe model, and events for cross-stream dependencies.  The preprocessing
pipeline of :mod:`repro.runtime.pipeline` schedules work on these timelines
to reproduce the CPU–GPU overlap of the paper's ``mix`` configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.gpu import kernels
from repro.gpu.costmodel import CostLedger, KernelCost
from repro.gpu.memory import MemoryPool
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE, PCIE4_X16, DeviceSpec, TransferSpec
from repro.obs import get_tracer
from repro.sparse.stacked import StackedCSC
from repro.sparse.triangular import TriangularSolver
from repro.util import require

#: Distinguishes the simulated-device tracks of concurrently live executors.
_EXECUTOR_SEQ = itertools.count()


class Executor:
    """Synchronous kernel executor with simulated-time accounting.

    All kernel methods execute the numerics immediately (NumPy/SciPy) and
    charge the corresponding :class:`KernelCost` to the ledger.  Use one
    executor per simulated resource (one GPU, one CPU core).

    With tracing enabled (:mod:`repro.obs`), every priced kernel becomes a
    span on this executor's simulated-device track: timestamps are the
    ledger's *simulated* seconds, so the track is the cost-model timeline
    the paper's per-kernel figures read off, one track per executor.
    """

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.ledger = CostLedger(spec)
        self.track = f"sim:{spec.kind}:{spec.name}#{next(_EXECUTOR_SEQ)}"

    @property
    def elapsed(self) -> float:
        """Total simulated seconds charged so far."""
        return self.ledger.elapsed

    def reset(self) -> None:
        self.ledger.reset()

    def charge(self, cost: KernelCost, kernel: str = "kernel") -> float:
        tracer = get_tracer()
        if not tracer.enabled:
            return self.ledger.charge(cost)
        t0 = self.ledger.elapsed
        dt = self.ledger.charge(cost)
        tracer.add_span(
            f"gpu.{kernel}",
            start=t0,
            end=self.ledger.elapsed,
            track=self.track,
            flops=cost.flops,
            bytes_moved=cost.bytes_moved,
            launches=cost.launches,
        )
        tracer.metrics.observe("gpu.kernel_sim_seconds", dt)
        return dt

    def charge_bytes(self, nbytes: float) -> float:
        """Charge a pure data-movement operation (permutation, pack, copy)."""
        return self.charge(
            KernelCost(flops=0.0, bytes_moved=nbytes, launches=1, char_dim=1.0),
            kernel="copy",
        )

    # -- kernel façade ------------------------------------------------------

    def trsm_dense(self, l: np.ndarray, x: np.ndarray, trans: bool = False) -> float:
        return self.charge(kernels.trsm_dense(l, x, trans=trans), kernel="trsm_dense")

    def trsm_sparse(
        self,
        l: sp.spmatrix,
        x: np.ndarray,
        trans: bool = False,
        solver: TriangularSolver | None = None,
    ) -> float:
        return self.charge(kernels.trsm_sparse(l, x, trans=trans, solver=solver), kernel="trsm_sparse")

    def syrk(self, y: np.ndarray, c: np.ndarray, alpha: float = 1.0, beta: float = 1.0) -> float:
        return self.charge(kernels.syrk(y, c, alpha=alpha, beta=beta), kernel="syrk")

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        alpha: float = 1.0,
        beta: float = 1.0,
        trans_a: bool = False,
    ) -> float:
        return self.charge(
            kernels.gemm(a, b, c, alpha=alpha, beta=beta, trans_a=trans_a),
            kernel="gemm",
        )

    def spmm(
        self,
        a: sp.spmatrix,
        b: np.ndarray,
        c: np.ndarray,
        alpha: float = 1.0,
        beta: float = 1.0,
        trans_a: bool = False,
    ) -> float:
        return self.charge(
            kernels.spmm(a, b, c, alpha=alpha, beta=beta, trans_a=trans_a),
            kernel="spmm",
        )

    def gather_rows(self, x: np.ndarray, rows: np.ndarray) -> np.ndarray:
        out, cost = kernels.gather_rows(x, rows)
        self.charge(cost, kernel="gather_rows")
        return out

    def scatter_add_rows(self, target: np.ndarray, rows: np.ndarray, values: np.ndarray, sign: float = 1.0) -> float:
        return self.charge(
            kernels.scatter_add_rows(target, rows, values, sign=sign),
            kernel="scatter_add_rows",
        )

    def extract_sparse_block(self, l: sp.csc_matrix, r0: int, r1: int, c0: int, c1: int) -> sp.csc_matrix:
        block, cost = kernels.extract_sparse_block(l, r0, r1, c0, c1)
        self.charge(cost, kernel="extract_sparse_block")
        return block

    def densify(self, a: sp.spmatrix) -> np.ndarray:
        out, cost = kernels.densify(a)
        self.charge(cost, kernel="densify")
        return out

    def permute_columns(self, x: np.ndarray, perm: np.ndarray, inverse: bool = False) -> np.ndarray:
        out, cost = kernels.permute_columns(x, perm, inverse=inverse)
        self.charge(cost, kernel="permute_columns")
        return out

    def symmetric_permute(self, f: np.ndarray, perm: np.ndarray, inverse: bool = True) -> np.ndarray:
        out, cost = kernels.symmetric_permute(f, perm, inverse=inverse)
        self.charge(cost, kernel="symmetric_permute")
        return out

    # -- batched kernel façade (whole fingerprint groups, one launch each) --

    def batched_trsm_dense(
        self, l_stack: np.ndarray, x_stack: np.ndarray, trans: bool = False
    ) -> float:
        return self.charge(
            kernels.batched_trsm_dense(l_stack, x_stack, trans=trans),
            kernel="batched_trsm_dense",
        )

    def batched_trsm_sparse(
        self, l: StackedCSC, x_stack: np.ndarray, trans: bool = False
    ) -> float:
        return self.charge(
            kernels.batched_trsm_sparse(l, x_stack, trans=trans),
            kernel="batched_trsm_sparse",
        )

    def batched_syrk(
        self,
        y_stack: np.ndarray,
        c_stack: np.ndarray,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> float:
        return self.charge(
            kernels.batched_syrk(y_stack, c_stack, alpha=alpha, beta=beta),
            kernel="batched_syrk",
        )

    def batched_gemm(
        self,
        a_stack: np.ndarray,
        b_stack: np.ndarray,
        c_stack: np.ndarray,
        alpha: float = 1.0,
        beta: float = 1.0,
        trans_a: bool = False,
    ) -> float:
        return self.charge(
            kernels.batched_gemm(
                a_stack, b_stack, c_stack, alpha=alpha, beta=beta, trans_a=trans_a
            ),
            kernel="batched_gemm",
        )

    def batched_spmm(
        self,
        a: StackedCSC,
        b_stack: np.ndarray,
        c_stack: np.ndarray,
        alpha: float = 1.0,
        beta: float = 1.0,
        trans_a: bool = False,
    ) -> float:
        return self.charge(
            kernels.batched_spmm(
                a, b_stack, c_stack, alpha=alpha, beta=beta, trans_a=trans_a
            ),
            kernel="batched_spmm",
        )

    def batched_panel_gather(self, x: np.ndarray, rows_stack: np.ndarray) -> np.ndarray:
        out, cost = kernels.batched_panel_gather(x, rows_stack)
        self.charge(cost, kernel="batched_panel_gather")
        return out

    def batched_panel_scatter_add(
        self,
        target: np.ndarray,
        rows_stack: np.ndarray,
        values_stack: np.ndarray,
        sign: float = 1.0,
    ) -> float:
        return self.charge(
            kernels.batched_panel_scatter_add(target, rows_stack, values_stack, sign=sign),
            kernel="batched_panel_scatter_add",
        )

    def batched_scatter_add_rows(
        self,
        target_stack: np.ndarray,
        rows: np.ndarray,
        values_stack: np.ndarray,
        sign: float = 1.0,
    ) -> float:
        return self.charge(
            kernels.batched_scatter_add_rows(target_stack, rows, values_stack, sign=sign),
            kernel="batched_scatter_add_rows",
        )

    def batched_extract_block(
        self, a: StackedCSC, r0: int, r1: int, c0: int, c1: int
    ) -> StackedCSC:
        block, cost = kernels.batched_extract_block(a, r0, r1, c0, c1)
        self.charge(cost, kernel="batched_extract_block")
        return block

    def batched_densify(self, a: StackedCSC, rows: np.ndarray | None = None) -> np.ndarray:
        out, cost = kernels.batched_densify(a, rows=rows)
        self.charge(cost, kernel="batched_densify")
        return out

    def batched_symmetric_permute(
        self, f_stack: np.ndarray, perm: np.ndarray, inverse: bool = True
    ) -> np.ndarray:
        out, cost = kernels.batched_symmetric_permute(f_stack, perm, inverse=inverse)
        self.charge(cost, kernel="batched_symmetric_permute")
        return out


def cpu_executor(spec: DeviceSpec = EPYC_7763_CORE) -> Executor:
    """Executor modelling one CPU core."""
    return Executor(spec)


def gpu_executor(spec: DeviceSpec = A100_40GB) -> Executor:
    """Executor modelling one GPU (synchronous single-stream view)."""
    return Executor(spec)


@dataclass
class Stream:
    """One CUDA-like stream: a serial timeline of kernel completions."""

    index: int
    t_free: float = 0.0


@dataclass
class GpuEvent:
    """Completion marker usable for cross-stream dependencies."""

    time: float


@dataclass
class SimulatedGpu:
    """Asynchronous view of one simulated GPU with multiple streams.

    Durations are computed from :class:`KernelCost` via the device roofline;
    submissions advance per-stream timelines.  The host decides *when* it
    submits (``t_ready``), which is how the pipeline scheduler overlaps CPU
    factorizations with GPU assembly.
    """

    spec: DeviceSpec = A100_40GB
    transfer: TransferSpec = PCIE4_X16
    n_streams: int = 16
    streams: list[Stream] = field(default_factory=list)
    pool: MemoryPool | None = None

    def __post_init__(self) -> None:
        require(self.n_streams >= 1, "need at least one stream")
        self.streams = [Stream(index=i) for i in range(self.n_streams)]
        if self.pool is None:
            self.pool = MemoryPool(capacity=self.spec.memory_capacity)

    def submit(self, stream: int, cost: KernelCost, t_ready: float = 0.0) -> tuple[float, float]:
        """Submit a kernel; returns simulated ``(t_start, t_end)``."""
        s = self._stream(stream)
        start = max(s.t_free, t_ready)
        end = start + cost.time_on(self.spec)
        s.t_free = end
        return start, end

    def submit_duration(self, stream: int, duration: float, t_ready: float = 0.0) -> tuple[float, float]:
        """Submit pre-priced work (e.g. a whole per-subdomain assembly)."""
        require(duration >= 0, "duration must be >= 0")
        s = self._stream(stream)
        start = max(s.t_free, t_ready)
        end = start + duration
        s.t_free = end
        return start, end

    def transfer_h2d(self, stream: int, nbytes: float, t_ready: float = 0.0) -> tuple[float, float]:
        """Host-to-device copy on a stream (PCIe model)."""
        return self.submit_duration(stream, self.transfer.time(nbytes), t_ready)

    def transfer_d2h(self, stream: int, nbytes: float, t_ready: float = 0.0) -> tuple[float, float]:
        """Device-to-host copy on a stream (PCIe model)."""
        return self.submit_duration(stream, self.transfer.time(nbytes), t_ready)

    def record_event(self, stream: int) -> GpuEvent:
        return GpuEvent(time=self._stream(stream).t_free)

    def wait_event(self, stream: int, event: GpuEvent) -> None:
        s = self._stream(stream)
        s.t_free = max(s.t_free, event.time)

    def synchronize(self) -> float:
        """Device-wide sync: simulated time when all streams are idle."""
        return max(s.t_free for s in self.streams)

    def reset(self) -> None:
        for s in self.streams:
            s.t_free = 0.0
        self.pool = MemoryPool(capacity=self.spec.memory_capacity)

    def _stream(self, index: int) -> Stream:
        require(0 <= index < self.n_streams, f"no stream {index}")
        return self.streams[index]


__all__ = [
    "Executor",
    "cpu_executor",
    "gpu_executor",
    "Stream",
    "GpuEvent",
    "SimulatedGpu",
]
