"""Preconditioned Conjugate Projected Gradient (PCPG) for the FETI dual
system (7): ``[F, -G; -G^T, 0] [lam; alpha] = [d; -e]``.

Classic Farhat–Roux iteration: start from a feasible ``lam_0`` satisfying
``G^T lam = e``, then run preconditioned CG on the projected operator
``P F P`` with ``P = I - G (G^T G)^{-1} G^T``.  The kernel amplitudes
``alpha`` follow from the first block row once ``lam`` has converged.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.feti.projector import CoarseProblem
from repro.obs import get_tracer
from repro.util import require


@dataclass
class PcpgResult:
    """Converged multipliers, kernel amplitudes and iteration history."""

    lam: np.ndarray
    alpha: np.ndarray
    iterations: int
    converged: bool
    residuals: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")


def pcpg(
    apply_f: Callable[[np.ndarray], np.ndarray],
    d: np.ndarray,
    g: np.ndarray,
    e: np.ndarray,
    apply_precond: Callable[[np.ndarray], np.ndarray] | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> PcpgResult:
    """Solve the dual system with projected preconditioned CG.

    Parameters
    ----------
    apply_f:
        The dual operator ``lam -> F lam`` (implicit or explicit).
    d, g, e:
        Dual RHS, kernel matrix ``G = B R`` and coarse RHS ``e = R^T f``.
    apply_precond:
        Optional dual preconditioner ``w -> M^{-1} w``.
    tol:
        Relative tolerance on the projected residual.
    max_iter:
        Iteration cap; exceeding it returns ``converged=False``.
    """
    m = d.shape[0]
    require(g.ndim == 2 and g.shape[0] == m, "G must be (n_multipliers, kdim)")
    require(e.shape[0] == g.shape[1], "e size must match kernel dim")
    require(tol > 0, "tol must be positive")
    require(max_iter >= 1, "max_iter must be >= 1")

    tracer = get_tracer()
    with tracer.span("pcpg.solve", m=m, kdim=int(g.shape[1]), tol=tol) as solve_span:
        coarse = CoarseProblem(g)
        lam = coarse.feasible_point(e)
        r = d - apply_f(lam)

        w = coarse.project(r)
        norm0 = float(np.linalg.norm(w))
        residuals = [norm0]
        if norm0 == 0.0:
            alpha = coarse.alpha_from(apply_f(lam) - d)
            solve_span.set(iterations=0, converged=True)
            return PcpgResult(
                lam=lam, alpha=alpha, iterations=0, converged=True, residuals=residuals
            )

        z = apply_precond(w) if apply_precond is not None else w
        y = coarse.project(z)
        p = y.copy()
        rho = float(y @ w)

        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            with tracer.span("pcpg.iteration", iteration=it) as iter_span:
                fp = apply_f(p)
                pfp = float(p @ fp)
                if pfp <= 0.0:
                    # Loss of positive definiteness on the projected space —
                    # stop with the current iterate rather than diverge.
                    break
                gamma = rho / pfp
                lam += gamma * p
                r -= gamma * fp
                w = coarse.project(r)
                norm_w = float(np.linalg.norm(w))
                residuals.append(norm_w)
                iter_span.set(residual=norm_w)
                if norm_w <= tol * norm0:
                    converged = True
                    break
                z = apply_precond(w) if apply_precond is not None else w
                y = coarse.project(z)
                rho_new = float(y @ w)
                beta = rho_new / rho
                rho = rho_new
                p = y + beta * p

        alpha = coarse.alpha_from(apply_f(lam) - d)
        solve_span.set(iterations=it, converged=converged)
    return PcpgResult(
        lam=lam, alpha=alpha, iterations=it, converged=converged, residuals=residuals
    )


__all__ = ["pcpg", "PcpgResult"]
