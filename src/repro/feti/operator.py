"""The FETI dual operator ``F = B K^+ B^T`` and its building blocks (§2.1).

Per subdomain, the *local dual operator* ``F̃_i = B̃_i K_i^+ B̃_i^T`` (eq. 9)
can be applied *implicitly* (two triangular solves per application, eq. 11)
or *explicitly* (one dense GEMV against the preassembled ``F̃_i``, eq. 12).
The global operator combines the local ones additively through the
decomposition's gather/scatter.

This module also assembles the coarse quantities ``G = BR``, ``e = R^T f``
and ``d = B K^+ f`` used by the projected CG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.dd.decomposition import Decomposition
from repro.dd.subdomain import Subdomain
from repro.sparse.cholesky import CholeskyFactor, cholesky
from repro.util import require


class LocalDualOperator:
    """Interface: apply ``F̃_i`` to a local dual vector."""

    def apply(self, lam_local: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def solve_kplus(self, rhs: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Apply the generalized inverse ``K_i^+`` to a primal vector."""
        raise NotImplementedError


@dataclass
class ImplicitLocalOperator(LocalDualOperator):
    """Implicit application (eq. 11): SPMV, two TRSVs, SPMV."""

    factor: CholeskyFactor
    bt: sp.csc_matrix

    def apply(self, lam_local: np.ndarray) -> np.ndarray:
        t = self.bt @ lam_local
        t = self.factor.solve(t)
        return self.bt.T @ t

    def solve_kplus(self, rhs: np.ndarray) -> np.ndarray:
        return self.factor.solve(rhs)


@dataclass
class ExplicitLocalOperator(LocalDualOperator):
    """Explicit application (eq. 12): one dense GEMV with preassembled F̃."""

    f: np.ndarray
    factor: CholeskyFactor  # still needed for K^+ in the solution recovery

    def apply(self, lam_local: np.ndarray) -> np.ndarray:
        return self.f @ lam_local

    def solve_kplus(self, rhs: np.ndarray) -> np.ndarray:
        return self.factor.solve(rhs)


def factorize_subdomain(
    sub: Subdomain,
    ordering: str = "nd",
    engine: str = "superlu",
    conform: bool = True,
    relabeling=None,
) -> CholeskyFactor:
    """Factorize the (regularized) subdomain matrix with coordinates-aware
    nested dissection — the per-subdomain numerical factorization of §2.2.

    *conform* (default) pads the stored factor to the symbolic fill pattern
    so its structure is a pure function of the subdomain's patterns and
    permutation — together with the canonical-frame ordering this makes
    translate-identical subdomains factor-fingerprint identically (see
    :mod:`repro.sparse.canonical` and :mod:`repro.batch.fingerprint`).

    With a :class:`~repro.sparse.canonical.CanonicalRelabeling` the whole
    decision chain — fixing DOFs, regularization, fill-reducing ordering,
    conformed factor extraction — runs in the *canonical orientation frame*
    instead: relabeled mirror-identical subdomains see bit-equal inputs, so
    every member of a canonical class produces the same stored ``L``
    pattern and can share one set of batch artifacts
    (see ``docs/batching.md``).  The returned factor's permutation is
    composed back to original DOF indices, so it is a drop-in
    factorization of the (canonically regularized) subdomain matrix —
    ``factor.solve`` and :meth:`SchurAssembler.assemble
    <repro.core.assembler.SchurAssembler.assemble>` work unchanged.
    """
    if relabeling is None:
        return cholesky(
            sub.regularized(),
            ordering=ordering,
            coords=sub.coords,
            engine=engine,
            conform=conform,
        )
    from repro.sparse import choose_fixing_dofs, regularize

    require(
        relabeling.n_dofs == sub.n_dofs,
        "relabeling does not match the subdomain's DOF count",
    )
    k_c = relabeling.apply_matrix(sub.k)
    coords_c = relabeling.coords()
    if sub.floating:
        fixing = choose_fixing_dofs(k_c, sub.kernel_dim, coords=coords_c)
        k_c = regularize(k_c, fixing)
    factor_c = cholesky(
        k_c, ordering=ordering, coords=coords_c, engine=engine, conform=conform
    )
    return CholeskyFactor(
        l=factor_c.l,
        perm=relabeling.dof_perm[factor_c.perm],
        flops=factor_c.flops,
        engine=factor_c.engine,
    )


@dataclass
class DualOperator:
    """The assembled global dual operator plus coarse-space data.

    Attributes
    ----------
    decomposition:
        The torn problem.
    locals:
        One :class:`LocalDualOperator` per subdomain.
    g:
        Dense ``G = B R`` (n_multipliers x total kernel dim).
    e:
        ``R^T f`` stacked over floating subdomains.
    d:
        ``B K^+ f`` (dual right-hand side; ``c = 0`` in our problems).
    """

    decomposition: Decomposition
    locals: list[LocalDualOperator]
    g: np.ndarray
    e: np.ndarray
    d: np.ndarray

    @property
    def n_multipliers(self) -> int:
        return self.decomposition.n_multipliers

    @property
    def kernel_dim(self) -> int:
        return self.g.shape[1]

    def apply(self, lam: np.ndarray) -> np.ndarray:
        """``q = F lam`` — concurrent local applications, additive gather."""
        require(lam.shape == (self.n_multipliers,), "dual vector size mismatch")
        dec = self.decomposition
        contribs = [
            op.apply(lam_local)
            for op, lam_local in zip(self.locals, dec.scatter_dual(lam))
        ]
        return dec.gather_dual(contribs)

    def recover_solution(self, lam: np.ndarray, alpha: np.ndarray) -> list[np.ndarray]:
        """Per-subdomain primal solutions ``u_i = K^+ (f - B^T lam) + R alpha``
        (eq. 5)."""
        dec = self.decomposition
        lam_locals = dec.scatter_dual(lam)
        out = []
        a_off = 0
        for sub, op, lam_local in zip(dec.subdomains, self.locals, lam_locals):
            u = op.solve_kplus(sub.f - sub.bt @ lam_local)
            kdim = sub.kernel_dim
            if kdim:
                u = u + sub.r @ alpha[a_off : a_off + kdim]
                a_off += kdim
            out.append(u)
        return out


def build_dual_operator(
    decomposition: Decomposition,
    local_ops: list[LocalDualOperator],
) -> DualOperator:
    """Assemble ``G``, ``e`` and ``d`` around prebuilt local operators."""
    dec = decomposition
    require(
        len(local_ops) == dec.n_subdomains,
        "one local operator per subdomain required",
    )
    kernel_dim = sum(s.kernel_dim for s in dec.subdomains)
    g = np.zeros((dec.n_multipliers, kernel_dim))
    e = np.zeros(kernel_dim)
    d = np.zeros(dec.n_multipliers)
    a_off = 0
    for sub, op in zip(dec.subdomains, local_ops):
        if sub.kernel_dim:
            # G columns: B_i R_i scattered to this subdomain's multipliers.
            local_g = sub.bt.T @ sub.r  # (m_i, kdim)
            g[sub.multiplier_ids, a_off : a_off + sub.kernel_dim] += local_g
            e[a_off : a_off + sub.kernel_dim] = sub.r.T @ sub.f
            a_off += sub.kernel_dim
        d[sub.multiplier_ids] += sub.bt.T @ op.solve_kplus(sub.f)
    return DualOperator(decomposition=dec, locals=local_ops, g=g, e=e, d=d)


__all__ = [
    "LocalDualOperator",
    "ImplicitLocalOperator",
    "ExplicitLocalOperator",
    "DualOperator",
    "build_dual_operator",
    "factorize_subdomain",
]
