"""The FETI dual operator ``F = B K^+ B^T`` and its building blocks (§2.1).

Per subdomain, the *local dual operator* ``F̃_i = B̃_i K_i^+ B̃_i^T`` (eq. 9)
can be applied *implicitly* (two triangular solves per application, eq. 11)
or *explicitly* (one dense GEMV against the preassembled ``F̃_i``, eq. 12).
The global operator combines the local ones additively through the
decomposition's gather/scatter.

This module also assembles the coarse quantities ``G = BR``, ``e = R^T f``
and ``d = B K^+ f`` used by the projected CG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.dd.decomposition import Decomposition
from repro.dd.subdomain import Subdomain
from repro.sparse.cholesky import CholeskyFactor, cholesky
from repro.util import require


class LocalDualOperator:
    """Interface: apply ``F̃_i`` to a local dual vector."""

    def apply(self, lam_local: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def solve_kplus(self, rhs: np.ndarray) -> np.ndarray:  # pragma: no cover
        """Apply the generalized inverse ``K_i^+`` to a primal vector."""
        raise NotImplementedError


@dataclass
class ImplicitLocalOperator(LocalDualOperator):
    """Implicit application (eq. 11): SPMV, two TRSVs, SPMV."""

    factor: CholeskyFactor
    bt: sp.csc_matrix

    def apply(self, lam_local: np.ndarray) -> np.ndarray:
        t = self.bt @ lam_local
        t = self.factor.solve(t)
        return self.bt.T @ t

    def solve_kplus(self, rhs: np.ndarray) -> np.ndarray:
        return self.factor.solve(rhs)


@dataclass
class ExplicitLocalOperator(LocalDualOperator):
    """Explicit application (eq. 12): one dense GEMV with preassembled F̃."""

    f: np.ndarray
    factor: CholeskyFactor  # still needed for K^+ in the solution recovery

    def apply(self, lam_local: np.ndarray) -> np.ndarray:
        return self.f @ lam_local

    def solve_kplus(self, rhs: np.ndarray) -> np.ndarray:
        return self.factor.solve(rhs)


def factorize_subdomain(
    sub: Subdomain,
    ordering: str = "nd",
    engine: str = "superlu",
    conform: bool = True,
    relabeling=None,
) -> CholeskyFactor:
    """Factorize the (regularized) subdomain matrix with coordinates-aware
    nested dissection — the per-subdomain numerical factorization of §2.2.

    *conform* (default) pads the stored factor to the symbolic fill pattern
    so its structure is a pure function of the subdomain's patterns and
    permutation — together with the canonical-frame ordering this makes
    translate-identical subdomains factor-fingerprint identically (see
    :mod:`repro.sparse.canonical` and :mod:`repro.batch.fingerprint`).

    With a :class:`~repro.sparse.canonical.CanonicalRelabeling` the whole
    decision chain — fixing DOFs, regularization, fill-reducing ordering,
    conformed factor extraction — runs in the *canonical orientation frame*
    instead: relabeled mirror-identical subdomains see bit-equal inputs, so
    every member of a canonical class produces the same stored ``L``
    pattern and can share one set of batch artifacts
    (see ``docs/batching.md``).  The returned factor's permutation is
    composed back to original DOF indices, so it is a drop-in
    factorization of the (canonically regularized) subdomain matrix —
    ``factor.solve`` and :meth:`SchurAssembler.assemble
    <repro.core.assembler.SchurAssembler.assemble>` work unchanged.
    """
    if relabeling is None:
        return cholesky(
            sub.regularized(),
            ordering=ordering,
            coords=sub.coords,
            engine=engine,
            conform=conform,
        )
    from repro.sparse import choose_fixing_dofs, regularize

    require(
        relabeling.n_dofs == sub.n_dofs,
        "relabeling does not match the subdomain's DOF count",
    )
    k_c = relabeling.apply_matrix(sub.k)
    coords_c = relabeling.coords()
    if sub.floating:
        fixing = choose_fixing_dofs(k_c, sub.kernel_dim, coords=coords_c)
        k_c = regularize(k_c, fixing)
    factor_c = cholesky(
        k_c, ordering=ordering, coords=coords_c, engine=engine, conform=conform
    )
    return CholeskyFactor(
        l=factor_c.l,
        perm=relabeling.dof_perm[factor_c.perm],
        flops=factor_c.flops,
        engine=factor_c.engine,
    )


@dataclass
class DualOperator:
    """The assembled global dual operator plus coarse-space data.

    Attributes
    ----------
    decomposition:
        The torn problem.
    locals:
        One :class:`LocalDualOperator` per subdomain.
    g:
        Dense ``G = B R`` (n_multipliers x total kernel dim).
    e:
        ``R^T f`` stacked over floating subdomains.
    d:
        ``B K^+ f`` (dual right-hand side; ``c = 0`` in our problems).
    """

    decomposition: Decomposition
    locals: list[LocalDualOperator]
    g: np.ndarray
    e: np.ndarray
    d: np.ndarray

    @property
    def n_multipliers(self) -> int:
        return self.decomposition.n_multipliers

    @property
    def kernel_dim(self) -> int:
        return self.g.shape[1]

    def apply(self, lam: np.ndarray) -> np.ndarray:
        """``q = F lam`` — concurrent local applications, additive gather."""
        require(lam.shape == (self.n_multipliers,), "dual vector size mismatch")
        dec = self.decomposition
        contribs = [
            op.apply(lam_local)
            for op, lam_local in zip(self.locals, dec.scatter_dual(lam))
        ]
        return dec.gather_dual(contribs)

    def recover_solution(self, lam: np.ndarray, alpha: np.ndarray) -> list[np.ndarray]:
        """Per-subdomain primal solutions ``u_i = K^+ (f - B^T lam) + R alpha``
        (eq. 5)."""
        dec = self.decomposition
        lam_locals = dec.scatter_dual(lam)
        out = []
        a_off = 0
        for sub, op, lam_local in zip(dec.subdomains, self.locals, lam_locals):
            u = op.solve_kplus(sub.f - sub.bt @ lam_local)
            kdim = sub.kernel_dim
            if kdim:
                u = u + sub.r @ alpha[a_off : a_off + kdim]
                a_off += kdim
            out.append(u)
        return out


@dataclass
class _ApplyGroup:
    """One batched-execution group of the grouped dual operator.

    ``bt_stack`` holds the *permuted* gluing ``bt[perm]`` of every member
    (union-padded on the near tier), ``l_stack`` the stored factors, and
    ``ids_stack`` the members' global multiplier ids (padded ids point at
    multiplier 0 and carry exact structural zeros, so the scatter-add is
    a no-op there).
    """

    members: list[int]
    l_stack: object  # StackedCSC
    bt_stack: object  # StackedCSC
    ids_stack: np.ndarray
    tier: str  # "exact" | "union"


class GroupedDualOperator:
    """Batched per-iteration ``F`` application across fingerprint groups.

    Wraps a :class:`DualOperator` and replays its implicit application —
    gather, SPMM with ``bt[perm]``, forward/backward TRSM on ``L``,
    transposed SPMM, additive scatter — through the batched kernels of
    :mod:`repro.gpu.kernels`: **one launch per kernel step per group**
    instead of one per subdomain, 6 launches per group per application.

    Grouping tiers (mirroring the assembly engine's):

    * ``"exact"`` — members share one :func:`factor fingerprint
      <repro.batch.fingerprint.factor_fingerprint>` (bit-equal factor and
      permuted-gluing patterns), stacked with
      :meth:`StackedCSC.from_matrices`.
    * ``"near"`` — near classes execute padded through a
      :func:`~repro.sparse.canonical.union_plan`: members embed at the
      identity prefix of the pattern union, the padded factor is
      ``[[L, 0], [0, I]]`` and padding carries structural zeros only, so
      member results are exact (no masking needed).  Classes whose
      :attr:`fill_ratio <repro.sparse.canonical.UnionPlan.fill_ratio>`
      exceeds *union_fill_cap* fall back to their exact-pattern subgroups.

    The numerics are identical to the per-subdomain path up to BLAS
    association order; per-member FLOPs and traffic are identical *by
    construction* on the exact tier (same cost formulas over the same
    patterns), which the solver test-suite asserts through the executor
    ledgers.
    """

    def __init__(
        self,
        base: DualOperator,
        executor=None,
        signature: str = "exact",
        union_fill_cap: float = 8.0,
    ) -> None:
        require(signature in ("exact", "near"), f"unknown signature {signature!r}")
        # Lazy imports: repro.batch / repro.gpu import feti-adjacent modules.
        from repro.batch.fingerprint import factor_fingerprint, near_fingerprint
        from repro.gpu.runtime import gpu_executor
        from repro.sparse.stacked import StackedCSC

        self.base = base
        self.executor = executor if executor is not None else gpu_executor()
        self.signature = signature
        dec = base.decomposition
        factors = [op.factor for op in base.locals]
        self._l = [f.l.tocsc() for f in factors]
        self._btp = [
            sub.bt.tocsr()[f.perm].tocsc()
            for sub, f in zip(dec.subdomains, factors)
        ]
        self._ids = [sub.multiplier_ids for sub in dec.subdomains]

        by_key: dict[str, list[int]] = {}
        for i, (sub, f) in enumerate(zip(dec.subdomains, factors)):
            if signature == "exact":
                key = factor_fingerprint(f, sub.bt, bt_rows=self._btp[i]).key
            else:
                key = near_fingerprint(sub.coords, sub.bt).key
            by_key.setdefault(key, []).append(i)

        self.groups: list[_ApplyGroup] = []
        for members in by_key.values():
            if signature == "exact" or self._patterns_equal(members):
                self.groups.append(self._exact_group(members, StackedCSC))
            else:
                self.groups.extend(
                    self._union_groups(members, union_fill_cap, StackedCSC)
                )

    # -- group construction -------------------------------------------------

    def _patterns_equal(self, members: list[int]) -> bool:
        first_l, first_bt = self._l[members[0]], self._btp[members[0]]
        return all(
            self._l[i].shape == first_l.shape
            and self._l[i].nnz == first_l.nnz
            and np.array_equal(self._l[i].indptr, first_l.indptr)
            and np.array_equal(self._l[i].indices, first_l.indices)
            and self._btp[i].shape == first_bt.shape
            and self._btp[i].nnz == first_bt.nnz
            and np.array_equal(self._btp[i].indptr, first_bt.indptr)
            and np.array_equal(self._btp[i].indices, first_bt.indices)
            for i in members[1:]
        )

    def _exact_group(self, members: list[int], stacked_cls) -> _ApplyGroup:
        return _ApplyGroup(
            members=members,
            l_stack=stacked_cls.from_matrices([self._l[i] for i in members]),
            bt_stack=stacked_cls.from_matrices([self._btp[i] for i in members]),
            ids_stack=np.stack([self._ids[i] for i in members]),
            tier="exact",
        )

    def _union_groups(
        self, members: list[int], fill_cap: float, stacked_cls
    ) -> list[_ApplyGroup]:
        from repro.sparse.canonical import union_plan
        from repro.sparse.stacked import stack_into_union

        plan = union_plan(
            [self._l[i] for i in members], [self._btp[i] for i in members]
        )
        if plan.fill_ratio > fill_cap:
            # Padding too expensive: execute the exact-pattern subgroups.
            sub: dict[tuple, list[int]] = {}
            for i in members:
                key = (
                    self._l[i].shape, self._l[i].indices.tobytes(),
                    self._btp[i].shape, self._btp[i].indices.tobytes(),
                )
                sub.setdefault(key, []).append(i)
            return [self._exact_group(g, stacked_cls) for g in sub.values()]
        m_max = plan.shape[1]
        ids_stack = np.zeros((len(members), m_max), dtype=np.intp)
        for row, i in enumerate(members):
            ids_stack[row, : self._ids[i].size] = self._ids[i]
        return [
            _ApplyGroup(
                members=members,
                l_stack=stack_into_union(
                    [self._l[i] for i in members], plan.l_union, pad_diagonal=True
                ),
                bt_stack=stack_into_union(
                    [self._btp[i] for i in members], plan.bt_union
                ),
                ids_stack=ids_stack,
                tier="union",
            )
        ]

    # -- application --------------------------------------------------------

    @property
    def n_multipliers(self) -> int:
        return self.base.n_multipliers

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def launches_per_application(self) -> int:
        """Kernel launches one grouped ``F`` application costs (6 per group)."""
        return 6 * len(self.groups)

    @property
    def sequential_launches_per_application(self) -> int:
        """Launches of the per-subdomain path (6 per subdomain)."""
        return 6 * len(self.base.locals)

    def apply_panel(self, lam: np.ndarray) -> np.ndarray:
        """``Q = F Λ`` on a multiplier panel — one kernel chain per group."""
        from repro.obs import get_tracer

        require(
            lam.ndim == 2 and lam.shape[0] == self.n_multipliers,
            "multiplier panel must be (n_multipliers, k)",
        )
        ex = self.executor
        tracer = get_tracer()
        k = lam.shape[1]
        out = np.zeros_like(lam)
        for grp in self.groups:
            g = len(grp.members)
            n, m = grp.bt_stack.shape
            with tracer.span(
                "feti.apply_group", members=g, tier=grp.tier, n=n, m=m, k=k
            ):
                gathered = ex.batched_panel_gather(lam, grp.ids_stack)
                t = np.zeros((g, n, k))
                ex.batched_spmm(grp.bt_stack, gathered, t, beta=0.0)
                ex.batched_trsm_sparse(grp.l_stack, t)
                ex.batched_trsm_sparse(grp.l_stack, t, trans=True)
                contrib = np.zeros((g, m, k))
                ex.batched_spmm(grp.bt_stack, t, contrib, beta=0.0, trans_a=True)
                ex.batched_panel_scatter_add(out, grp.ids_stack, contrib)
        return out

    def apply(self, lam: np.ndarray) -> np.ndarray:
        """Single-vector ``F lam`` through the panel path (k = 1)."""
        require(lam.shape == (self.n_multipliers,), "dual vector size mismatch")
        return self.apply_panel(lam[:, None])[:, 0]

    def apply_panel_sequential(self, lam: np.ndarray, executor) -> np.ndarray:
        """Per-subdomain comparator: same kernel chain, one member per launch.

        Charges the identical per-member kernels (gather, SPMM, TRSM pair,
        transposed SPMM, scatter-add) to *executor* so ledgers are directly
        comparable with the grouped path.
        """
        require(
            lam.ndim == 2 and lam.shape[0] == self.n_multipliers,
            "multiplier panel must be (n_multipliers, k)",
        )
        k = lam.shape[1]
        out = np.zeros_like(lam)
        for l, btp, ids in zip(self._l, self._btp, self._ids):
            n = l.shape[0]
            v = executor.gather_rows(lam, ids)
            t = np.zeros((n, k))
            executor.spmm(btp, v, t, beta=0.0)
            executor.trsm_sparse(l, t)
            executor.trsm_sparse(l, t, trans=True)
            c = np.zeros((ids.size, k))
            executor.spmm(btp, t, c, beta=0.0, trans_a=True)
            executor.scatter_add_rows(out, ids, c)
        return out

    def recover_solution(self, lam: np.ndarray, alpha: np.ndarray) -> list[np.ndarray]:
        return self.base.recover_solution(lam, alpha)


def build_dual_operator(
    decomposition: Decomposition,
    local_ops: list[LocalDualOperator],
) -> DualOperator:
    """Assemble ``G``, ``e`` and ``d`` around prebuilt local operators."""
    dec = decomposition
    require(
        len(local_ops) == dec.n_subdomains,
        "one local operator per subdomain required",
    )
    kernel_dim = sum(s.kernel_dim for s in dec.subdomains)
    g = np.zeros((dec.n_multipliers, kernel_dim))
    e = np.zeros(kernel_dim)
    d = np.zeros(dec.n_multipliers)
    a_off = 0
    for sub, op in zip(dec.subdomains, local_ops):
        if sub.kernel_dim:
            # G columns: B_i R_i scattered to this subdomain's multipliers.
            local_g = sub.bt.T @ sub.r  # (m_i, kdim)
            g[sub.multiplier_ids, a_off : a_off + sub.kernel_dim] += local_g
            e[a_off : a_off + sub.kernel_dim] = sub.r.T @ sub.f
            a_off += sub.kernel_dim
        d[sub.multiplier_ids] += sub.bt.T @ op.solve_kplus(sub.f)
    return DualOperator(decomposition=dec, locals=local_ops, g=g, e=e, d=d)


__all__ = [
    "LocalDualOperator",
    "ImplicitLocalOperator",
    "ExplicitLocalOperator",
    "DualOperator",
    "GroupedDualOperator",
    "build_dual_operator",
    "factorize_subdomain",
]
