"""Block (multi-RHS) PCPG for population-scale FETI solves.

Solves ``F Λ = D`` for a whole panel of load cases at once: the block
projector ``P`` and block CG recurrences of O'Leary's block conjugate
gradients, specialized to the projected FETI dual system.  Per iteration
the step matrix ``Γ_j = (P_j^T F P_j)^{-1} ρ_j`` (with ``ρ_j = Y_j^T W_j``)
replaces the scalar ``γ = ρ / p^T F p``; for ``k = 1`` the recurrence
collapses to :func:`repro.feti.pcpg.pcpg` iterate for iterate.

Two rank-deficiency mechanisms keep the block well posed:

* **Convergence deflation** — a column whose projected residual drops
  under tolerance is frozen and removed from the active set; the block
  recurrences continue on the reduced panel (``ρ`` and the search panel
  are sliced consistently), so converged columns never pollute the step
  matrix.
* **Linear-dependence deflation** — when active columns become linearly
  dependent, the small symmetric systems (``P^T F P`` and ``ρ``) go
  singular; they are then solved through a truncated eigendecomposition
  pseudo-inverse, which steps only within the independent subspace.

The per-iteration heavy work is a *panel* application of the dual
operator and preconditioner — exactly the shape the grouped/batched
execution path (:class:`repro.feti.operator.GroupedDualOperator`) turns
into one kernel launch per fingerprint group.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.feti.projector import CoarseProblem
from repro.obs import get_tracer
from repro.util import require

#: Relative eigenvalue cutoff below which a direction counts as linearly
#: dependent inside the small block systems.
DEPENDENCE_CUTOFF = 1e-12

#: Histogram boundaries for the per-iteration residual decay ratio
#: (``max residual after / max residual before``; < 1 is progress,
#: >= 1 a stalled or diverging iteration).
DECAY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass
class BlockPcpgResult:
    """Converged multiplier panel, kernel amplitudes and per-column history."""

    lam: np.ndarray  #: (n_multipliers, k) multiplier panel Λ
    alpha: np.ndarray  #: (kernel_dim, k) kernel amplitudes
    iterations: int
    converged: bool  #: every column converged
    #: One ``(k,)`` array per recorded iterate: each column's projected
    #: residual norm (deflated columns carry their frozen converged norm).
    residuals: list[np.ndarray] = field(default_factory=list)
    #: Iteration at which each column converged and left the active set
    #: (0 = converged at the feasible start); -1 = never converged.
    deflated_at: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))

    @property
    def n_rhs(self) -> int:
        return self.lam.shape[1]

    def column_residuals(self, j: int) -> list[float]:
        """Residual history of RHS column *j* (frozen once deflated)."""
        return [float(r[j]) for r in self.residuals]

    @property
    def final_residuals(self) -> np.ndarray:
        return self.residuals[-1] if self.residuals else np.zeros(0)


def _solve_spd(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, bool]:
    """Solve the small symmetric system ``a x = b`` of the block recurrence.

    Returns ``(x, definite)``.  Nominal path: Cholesky (``a`` is SPD while
    the active columns stay independent).  Rank-deficient path: truncated
    eigendecomposition pseudo-inverse — steps within the numerically
    independent subspace, zero step along dependent directions.
    ``definite`` is False only when *no* direction has positive curvature
    (the block analogue of scalar PCPG's ``p^T F p <= 0`` breakdown).
    """
    try:
        return scipy.linalg.cho_solve(scipy.linalg.cho_factor(a), b), True
    except scipy.linalg.LinAlgError:
        vals, vecs = np.linalg.eigh(a)
        cutoff = DEPENDENCE_CUTOFF * max(float(vals[-1]), 0.0)
        keep = vals > cutoff
        if not np.any(keep):
            return np.zeros_like(b), False
        inv = (vecs[:, keep] / vals[keep]) @ vecs[:, keep].T
        return inv @ b, True


def block_pcpg(
    apply_f: Callable[[np.ndarray], np.ndarray],
    d: np.ndarray,
    g: np.ndarray,
    e: np.ndarray,
    apply_precond: Callable[[np.ndarray], np.ndarray] | None = None,
    tol: float = 1e-10,
    max_iter: int = 1000,
) -> BlockPcpgResult:
    """Solve ``F Λ = D`` for a panel of load cases with block PCPG.

    Parameters
    ----------
    apply_f:
        Panel-capable dual operator ``Λ -> F Λ`` taking ``(m, a)`` arrays
        (any active width ``a <= k``).
    d:
        Dual RHS panel ``(n_multipliers, k)``.
    g, e:
        Kernel matrix ``G = B R`` and coarse RHS panel ``(kernel_dim, k)``.
    apply_precond:
        Optional panel-capable dual preconditioner ``W -> M^{-1} W``.
    tol:
        Per-column relative tolerance on the projected residual.
    max_iter:
        Iteration cap; exceeding it returns ``converged=False``.
    """
    require(d.ndim == 2, "D must be a panel (n_multipliers, k)")
    m, k = d.shape
    require(k >= 1, "need at least one RHS column")
    require(g.ndim == 2 and g.shape[0] == m, "G must be (n_multipliers, kdim)")
    require(
        e.shape == (g.shape[1], k), "E must be a panel (kernel_dim, k) matching D"
    )
    require(tol > 0, "tol must be positive")
    require(max_iter >= 1, "max_iter must be >= 1")

    tracer = get_tracer()
    with tracer.span(
        "pcpg.block_solve", m=m, k=k, kdim=int(g.shape[1]), tol=tol
    ) as solve_span:
        coarse = CoarseProblem(g)
        lam = coarse.feasible_point(e)  # (m, k)
        r = d - apply_f(lam)
        w = coarse.project(r)

        norm0 = np.linalg.norm(w, axis=0)  # (k,)
        current = norm0.copy()
        residuals = [current.copy()]
        deflated_at = np.full(k, -1, dtype=int)
        # Zero-residual columns are converged at the feasible start.
        active = np.flatnonzero(norm0 > 0.0)
        deflated_at[norm0 == 0.0] = 0
        if active.size == 0:
            alpha = coarse.alpha_from(apply_f(lam) - d)
            solve_span.set(iterations=0, converged=True)
            return BlockPcpgResult(
                lam=lam, alpha=alpha, iterations=0, converged=True,
                residuals=residuals, deflated_at=deflated_at,
            )

        wa = w[:, active]
        z = apply_precond(wa) if apply_precond is not None else wa
        y = coarse.project(z)
        p = y.copy()  # search panel (m, a)
        rho = y.T @ wa  # (a, a), symmetric PSD

        converged = False
        it = 0
        for it in range(1, max_iter + 1):
            with tracer.span(
                "pcpg.block_iteration", iteration=it, active=int(active.size)
            ) as iter_span:
                prev_max = float(current[active].max())
                fp = apply_f(p)  # (m, a)
                ptfp = p.T @ fp
                gamma, definite = _solve_spd(ptfp, rho)
                if not definite:
                    # Loss of positive definiteness on the projected space —
                    # stop with the current iterate rather than diverge.
                    break
                lam[:, active] += p @ gamma
                r[:, active] -= fp @ gamma
                wa = coarse.project(r[:, active])
                norms = np.linalg.norm(wa, axis=0)
                current[active] = norms
                residuals.append(current.copy())
                iter_span.set(
                    residual=float(norms.max()), active=int(active.size)
                )
                if tracer.enabled:
                    tracer.metrics.count("pcpg.iterations")
                    if prev_max > 0.0:
                        tracer.metrics.observe(
                            "pcpg.residual_decay",
                            float(norms.max()) / prev_max,
                            boundaries=DECAY_BUCKETS,
                        )

                done = norms <= tol * norm0[active]
                if np.any(done):
                    deflated_at[active[done]] = it
                    if tracer.enabled:
                        tracer.metrics.count("pcpg.deflations", int(done.sum()))
                        iter_span.set(deflated=int(done.sum()))
                    keep = np.flatnonzero(~done)
                    active = active[keep]
                    if active.size == 0:
                        converged = True
                        break
                    # Reduce the block: drop converged columns from the
                    # residual/search panels and slice ρ consistently.
                    wa = wa[:, keep]
                    p = p[:, keep]
                    rho = rho[np.ix_(keep, keep)]

                z = apply_precond(wa) if apply_precond is not None else wa
                y = coarse.project(z)
                rho_new = y.T @ wa
                beta, _ = _solve_spd(rho, rho_new)
                rho = rho_new
                p = y + p @ beta

        alpha = coarse.alpha_from(apply_f(lam) - d)
        solve_span.set(iterations=it, converged=converged)
    return BlockPcpgResult(
        lam=lam, alpha=alpha, iterations=it, converged=converged,
        residuals=residuals, deflated_at=deflated_at,
    )


__all__ = ["block_pcpg", "BlockPcpgResult", "DECAY_BUCKETS", "DEPENDENCE_CUTOFF"]
