"""Amortization-point analysis (Fig. 1 and Fig. 10 of the paper).

An explicit approach pays extra preprocessing (the SC assembly) to make each
iteration cheaper.  The *amortization point* is the iteration count at which
the explicit total time crosses below the implicit one:

    ``prep_expl + n * apply_expl < prep_impl + n * apply_impl``
    ``n > (prep_expl - prep_impl) / (apply_impl - apply_expl)``

The paper's headline: with the sparsity optimizations, the amortization
point of ``expl_gpu_opt`` versus the best implicit CPU approach sits around
10 iterations across 3-D subdomain sizes from 1k to 70k DOFs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util import require


@dataclass(frozen=True)
class ApproachTiming:
    """Per-subdomain timing summary of one dual-operator approach."""

    name: str
    preprocessing: float  # seconds per subdomain (factorize + assemble + move)
    apply_per_iteration: float  # seconds per subdomain per iteration, one RHS

    def total(self, iterations: int, n_rhs: int = 1) -> float:
        """Total dual-operator time for a run with *iterations* iterations.

        *n_rhs* scales the per-iteration application cost only — the
        preprocessing (factorization, SC assembly, transfer) is paid once
        per decomposition no matter how many load cases ride on it, which
        is exactly why multi-RHS panels amortize explicit approaches
        faster (Fig. 10 read along the population axis).
        """
        require(iterations >= 0, "iterations must be >= 0")
        require(n_rhs >= 1, "n_rhs must be >= 1")
        return self.preprocessing + iterations * n_rhs * self.apply_per_iteration


def amortization_point(
    implicit: ApproachTiming, explicit: ApproachTiming, n_rhs: int = 1
) -> float:
    """Iterations needed before *explicit* beats *implicit*.

    Returns ``0`` when the explicit approach is never behind, ``inf`` when
    its per-iteration cost is not actually lower (it can never amortize).
    With *n_rhs* > 1 every iteration applies the operator to a whole panel,
    so the crossover arrives ``n_rhs`` times sooner (in iterations).
    """
    require(n_rhs >= 1, "n_rhs must be >= 1")
    saving = (implicit.apply_per_iteration - explicit.apply_per_iteration) * n_rhs
    extra = explicit.preprocessing - implicit.preprocessing
    if extra <= 0:
        return 0.0
    if saving <= 0:
        return math.inf
    return math.ceil(extra / saving)


def best_approach(timings: list[ApproachTiming], iterations: int) -> ApproachTiming:
    """The approach with the lowest total time at a given iteration count."""
    require(len(timings) > 0, "no approaches given")
    return min(timings, key=lambda t: t.total(iterations))


def crossover_table(
    timings: list[ApproachTiming], iteration_grid: list[int]
) -> list[tuple[int, str, float]]:
    """For each iteration count: (iterations, best approach name, total time).

    This is the data behind Fig. 10's line-style transitions.
    """
    out = []
    for n in iteration_grid:
        best = best_approach(timings, n)
        out.append((n, best.name, best.total(n)))
    return out


__all__ = [
    "ApproachTiming",
    "amortization_point",
    "best_approach",
    "crossover_table",
]
