"""The FETI solver: initialization, preprocessing, solution (§2.2).

Drives one of the Table-2 dual-operator approaches over all subdomains,
assembles the coarse problem, runs PCPG and recovers the primal solution.
Simulated stage timings are aggregated so the benchmarks can reproduce the
paper's preprocessing (Fig. 9) and amortization (Fig. 10) studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.feti.dual_approaches import DualOperatorApproach, make_approach
from repro.feti.operator import DualOperator, build_dual_operator
from repro.feti.pcpg import PcpgResult, pcpg
from repro.feti.preconditioner import make_preconditioner
from repro.util import require


@dataclass
class FetiTimings:
    """Simulated per-stage seconds, aggregated over subdomains."""

    factorization: list[float] = field(default_factory=list)
    assembly: list[float] = field(default_factory=list)
    transfer: list[float] = field(default_factory=list)
    apply_per_subdomain: list[float] = field(default_factory=list)

    @property
    def preprocessing_total(self) -> float:
        return sum(self.factorization) + sum(self.assembly) + sum(self.transfer)

    @property
    def preprocessing_per_subdomain(self) -> float:
        n = max(len(self.factorization), 1)
        return self.preprocessing_total / n

    @property
    def apply_total_per_iteration(self) -> float:
        return sum(self.apply_per_subdomain)

    @property
    def apply_mean_per_subdomain(self) -> float:
        n = max(len(self.apply_per_subdomain), 1)
        return self.apply_total_per_iteration / n


@dataclass
class FetiSolution:
    """Primal solution plus dual-iteration info and simulated timings."""

    u: np.ndarray
    u_locals: list[np.ndarray]
    info: PcpgResult
    timings: FetiTimings

    @property
    def iterations(self) -> int:
        return self.info.iterations


class FetiSolver:
    """Three-stage FETI solver over a :class:`Decomposition`.

    Parameters
    ----------
    decomposition:
        The torn problem (see :func:`repro.dd.decompose`).
    approach:
        Table-2 approach name (e.g. ``"expl_gpu_opt"``) or an instance.
    ordering / engine:
        Forwarded to the per-subdomain factorization.
    preconditioner:
        ``"lumped"`` (default), ``"none"``.
    tol / max_iter:
        PCPG controls.
    """

    def __init__(
        self,
        decomposition: Decomposition,
        approach: str | DualOperatorApproach = "expl_gpu_opt",
        ordering: str = "nd",
        engine: str = "superlu",
        preconditioner: str | None = "lumped",
        tol: float = 1e-10,
        max_iter: int = 1000,
        expected_iterations: int = 100,
    ) -> None:
        self.decomposition = decomposition
        if approach == "auto":
            approach = self._plan_auto(expected_iterations, ordering, engine)
        self.approach = (
            make_approach(approach) if isinstance(approach, str) else approach
        )
        self.ordering = ordering
        self.engine = engine
        self.preconditioner = make_preconditioner(preconditioner, decomposition)
        self.tol = tol
        self.max_iter = max_iter
        self.operator: DualOperator | None = None
        self.timings = FetiTimings()

    def _plan_auto(
        self, expected_iterations: int, ordering: str, engine: str
    ) -> str:
        """Pick the approach via the planner on a representative subdomain."""
        from repro.feti.operator import factorize_subdomain
        from repro.feti.planner import plan_approach

        # Largest subdomain is representative (costs scale with size).
        sub = max(self.decomposition.subdomains, key=lambda s: s.n_dofs)
        if sub.n_multipliers == 0:
            return "impl_mkl"  # no dual problem: factorization is all there is
        factor = factorize_subdomain(sub, ordering=ordering, engine=engine)
        plan = plan_approach(
            factor, sub.bt, sub.coords.shape[1], expected_iterations
        )
        return plan.chosen

    def preprocess(self) -> FetiTimings:
        """Numerical factorization (+ explicit SC assembly) per subdomain."""
        local_ops = []
        t = FetiTimings()
        for sub in self.decomposition.subdomains:
            res = self.approach.preprocess_subdomain(
                sub, ordering=self.ordering, engine=self.engine
            )
            local_ops.append(res.local_op)
            t.factorization.append(res.factorization_time)
            t.assembly.append(res.assembly_time)
            t.transfer.append(res.transfer_time)
            t.apply_per_subdomain.append(res.apply_time)
        self.operator = build_dual_operator(self.decomposition, local_ops)
        self.timings = t
        return t

    def solve(self) -> FetiSolution:
        """Run PCPG on the dual problem and recover the primal solution."""
        if self.operator is None:
            self.preprocess()
        op = self.operator
        require(op is not None, "preprocess() must run before solve()")
        if self.decomposition.n_multipliers == 0:
            # Degenerate decomposition (single subdomain, no interfaces):
            # the dual problem is empty and u_i = K_i^+ f_i directly.
            info = PcpgResult(
                lam=np.zeros(0), alpha=np.zeros(0), iterations=0, converged=True,
                residuals=[0.0],
            )
            u_locals = op.recover_solution(info.lam, info.alpha)
            u = self.decomposition.expand_solution(u_locals)
            return FetiSolution(u=u, u_locals=u_locals, info=info, timings=self.timings)
        info = pcpg(
            apply_f=op.apply,
            d=op.d,
            g=op.g,
            e=op.e,
            apply_precond=self.preconditioner.apply,
            tol=self.tol,
            max_iter=self.max_iter,
        )
        u_locals = op.recover_solution(info.lam, info.alpha)
        u = self.decomposition.expand_solution(u_locals)
        return FetiSolution(u=u, u_locals=u_locals, info=info, timings=self.timings)


def solve_feti(
    decomposition: Decomposition,
    approach: str = "expl_gpu_opt",
    **kwargs,
) -> FetiSolution:
    """One-call convenience wrapper: preprocess + solve."""
    solver = FetiSolver(decomposition, approach=approach, **kwargs)
    solver.preprocess()
    return solver.solve()


__all__ = ["FetiSolver", "FetiSolution", "FetiTimings", "solve_feti"]
