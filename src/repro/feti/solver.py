"""The FETI solver: initialization, preprocessing, solution (§2.2).

Drives one of the Table-2 dual-operator approaches over all subdomains,
assembles the coarse problem, runs PCPG and recovers the primal solution.
Simulated stage timings are aggregated so the benchmarks can reproduce the
paper's preprocessing (Fig. 9) and amortization (Fig. 10) studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.feti.dual_approaches import DualOperatorApproach, make_approach
from repro.feti.operator import DualOperator, build_dual_operator
from repro.feti.pcpg import PcpgResult, pcpg
from repro.feti.preconditioner import make_preconditioner
from repro.util import require


@dataclass
class FetiTimings:
    """Simulated per-stage seconds, aggregated over subdomains.

    ``apply_per_subdomain`` entries are priced for a *single* RHS vector;
    ``n_rhs`` scales the per-iteration aggregate for block solves, where
    every iteration applies the dual operator to a whole panel.  (Before
    ``n_rhs`` existed the aggregate silently assumed one RHS — a latent
    bug for any multi-RHS amortization accounting.)
    """

    factorization: list[float] = field(default_factory=list)
    assembly: list[float] = field(default_factory=list)
    transfer: list[float] = field(default_factory=list)
    apply_per_subdomain: list[float] = field(default_factory=list)
    n_rhs: int = 1

    @property
    def preprocessing_total(self) -> float:
        return sum(self.factorization) + sum(self.assembly) + sum(self.transfer)

    @property
    def preprocessing_per_subdomain(self) -> float:
        n = max(len(self.factorization), 1)
        return self.preprocessing_total / n

    @property
    def apply_total_per_iteration(self) -> float:
        """Simulated seconds one iteration's operator application costs,
        over all subdomains and all RHS columns."""
        return sum(self.apply_per_subdomain) * self.n_rhs

    @property
    def apply_mean_per_subdomain(self) -> float:
        n = max(len(self.apply_per_subdomain), 1)
        return self.apply_total_per_iteration / n


@dataclass
class FetiSolution:
    """Primal solution plus dual-iteration info and simulated timings."""

    u: np.ndarray
    u_locals: list[np.ndarray]
    info: PcpgResult
    timings: FetiTimings

    @property
    def iterations(self) -> int:
        return self.info.iterations


@dataclass
class BlockFetiSolution:
    """Primal solution panel of one block (or column-sequential) solve.

    ``u`` stacks one global nodal field per RHS column; ``infos`` holds
    the single :class:`~repro.feti.block_pcpg.BlockPcpgResult` of a block
    solve or the k :class:`~repro.feti.pcpg.PcpgResult` of a sequential
    one.  ``stats`` is the solve-phase counter report
    (:class:`repro.batch.stats.SolveStats`).
    """

    u: np.ndarray  #: (n_dofs, k)
    infos: list
    timings: FetiTimings
    stats: object

    @property
    def n_rhs(self) -> int:
        return self.u.shape[1]

    @property
    def iterations(self) -> int:
        """Iterations of the block solve, or the max over sequential solves."""
        return max(info.iterations for info in self.infos)

    @property
    def converged(self) -> bool:
        return all(info.converged for info in self.infos)


def make_load_panel(
    decomposition: Decomposition, n_rhs: int, seed: int = 0
) -> list[np.ndarray]:
    """Per-subdomain load-case panels for a population-scale solve.

    Column 0 is the problem's own load; further columns modulate it with
    smooth coordinate functions (deterministic given *seed*), the typical
    many-load-cases-one-structure regime of the amortization study.  Every
    column is elementwise proportional to the original load, so each stays
    a consistent RHS for the (possibly floating) decomposition.
    """
    require(n_rhs >= 1, "need at least one RHS column")
    rng = np.random.default_rng(seed)
    coeffs = [
        (rng.uniform(0.5, 1.5), rng.uniform(0.5, 3.0), rng.uniform(0.0, 2.0 * np.pi))
        for _ in range(n_rhs)
    ]
    panels = []
    for sub in decomposition.subdomains:
        p = np.empty((sub.n_dofs, n_rhs))
        p[:, 0] = sub.f
        x = sub.coords[:, 0]
        for j in range(1, n_rhs):
            a, freq, phase = coeffs[j]
            p[:, j] = sub.f * a * (1.0 + 0.5 * np.sin(freq * x + phase))
        panels.append(p)
    return panels


class FetiSolver:
    """Three-stage FETI solver over a :class:`Decomposition`.

    Parameters
    ----------
    decomposition:
        The torn problem (see :func:`repro.dd.decompose`).
    approach:
        Table-2 approach name (e.g. ``"expl_gpu_opt"``) or an instance.
    ordering / engine:
        Forwarded to the per-subdomain factorization.
    preconditioner:
        ``"lumped"`` (default), ``"none"``.
    tol / max_iter:
        PCPG controls.
    """

    def __init__(
        self,
        decomposition: Decomposition,
        approach: str | DualOperatorApproach = "expl_gpu_opt",
        ordering: str = "nd",
        engine: str = "superlu",
        preconditioner: str | None = "lumped",
        tol: float = 1e-10,
        max_iter: int = 1000,
        expected_iterations: int = 100,
    ) -> None:
        self.decomposition = decomposition
        if approach == "auto":
            approach = self._plan_auto(expected_iterations, ordering, engine)
        self.approach = (
            make_approach(approach) if isinstance(approach, str) else approach
        )
        self.ordering = ordering
        self.engine = engine
        self.preconditioner = make_preconditioner(preconditioner, decomposition)
        self.tol = tol
        self.max_iter = max_iter
        self.operator: DualOperator | None = None
        self.timings = FetiTimings()

    def _plan_auto(
        self, expected_iterations: int, ordering: str, engine: str
    ) -> str:
        """Pick the approach via the planner on a representative subdomain."""
        from repro.feti.operator import factorize_subdomain
        from repro.feti.planner import plan_approach

        # Largest subdomain is representative (costs scale with size).
        sub = max(self.decomposition.subdomains, key=lambda s: s.n_dofs)
        if sub.n_multipliers == 0:
            return "impl_mkl"  # no dual problem: factorization is all there is
        factor = factorize_subdomain(sub, ordering=ordering, engine=engine)
        plan = plan_approach(
            factor, sub.bt, sub.coords.shape[1], expected_iterations
        )
        return plan.chosen

    def preprocess(self) -> FetiTimings:
        """Numerical factorization (+ explicit SC assembly) per subdomain."""
        local_ops = []
        t = FetiTimings()
        for sub in self.decomposition.subdomains:
            res = self.approach.preprocess_subdomain(
                sub, ordering=self.ordering, engine=self.engine
            )
            local_ops.append(res.local_op)
            t.factorization.append(res.factorization_time)
            t.assembly.append(res.assembly_time)
            t.transfer.append(res.transfer_time)
            t.apply_per_subdomain.append(res.apply_time)
        self.operator = build_dual_operator(self.decomposition, local_ops)
        self.timings = t
        return t

    def solve(self) -> FetiSolution:
        """Run PCPG on the dual problem and recover the primal solution."""
        if self.operator is None:
            self.preprocess()
        op = self.operator
        require(op is not None, "preprocess() must run before solve()")
        if self.decomposition.n_multipliers == 0:
            # Degenerate decomposition (single subdomain, no interfaces):
            # the dual problem is empty and u_i = K_i^+ f_i directly.
            info = PcpgResult(
                lam=np.zeros(0), alpha=np.zeros(0), iterations=0, converged=True,
                residuals=[0.0],
            )
            u_locals = op.recover_solution(info.lam, info.alpha)
            u = self.decomposition.expand_solution(u_locals)
            return FetiSolution(u=u, u_locals=u_locals, info=info, timings=self.timings)
        info = pcpg(
            apply_f=op.apply,
            d=op.d,
            g=op.g,
            e=op.e,
            apply_precond=self.preconditioner.apply,
            tol=self.tol,
            max_iter=self.max_iter,
        )
        u_locals = op.recover_solution(info.lam, info.alpha)
        u = self.decomposition.expand_solution(u_locals)
        return FetiSolution(u=u, u_locals=u_locals, info=info, timings=self.timings)

    def _dual_panels(self, load_panels: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Dual RHS ``D = B K^+ F`` and coarse RHS ``E = R^T F`` panels."""
        dec = self.decomposition
        op = self.operator
        k = load_panels[0].shape[1]
        kernel_dim = sum(s.kernel_dim for s in dec.subdomains)
        d = np.zeros((dec.n_multipliers, k))
        e = np.zeros((kernel_dim, k))
        a_off = 0
        for sub, lop, panel in zip(dec.subdomains, op.locals, load_panels):
            d[sub.multiplier_ids] += sub.bt.T @ lop.solve_kplus(panel)
            if sub.kernel_dim:
                e[a_off : a_off + sub.kernel_dim] = sub.r.T @ panel
                a_off += sub.kernel_dim
        return d, e

    def _recover_panel(
        self, load_panels: list[np.ndarray], lam: np.ndarray, alpha: np.ndarray
    ) -> np.ndarray:
        """Primal solution panel ``u_i = K^+ (f - B^T lam) + R alpha`` per column."""
        dec = self.decomposition
        op = self.operator
        k = lam.shape[1]
        columns = []
        for j in range(k):
            u_locals = []
            a_off = 0
            for sub, lop, panel in zip(dec.subdomains, op.locals, load_panels):
                u = lop.solve_kplus(panel[:, j] - sub.bt @ lam[sub.multiplier_ids, j])
                if sub.kernel_dim:
                    u = u + sub.r @ alpha[a_off : a_off + sub.kernel_dim, j]
                    a_off += sub.kernel_dim
                u_locals.append(u)
            columns.append(dec.expand_solution(u_locals))
        return np.stack(columns, axis=1)

    def solve_block(
        self,
        n_rhs: int = 4,
        block: bool = True,
        grouped: bool = True,
        signature: str = "exact",
        lowrank_rank: int = 0,
        seed: int = 0,
        load_panels: list[np.ndarray] | None = None,
    ) -> "BlockFetiSolution":
        """Population-scale solve: one decomposition, *n_rhs* load cases.

        With *block* (default) all columns run through one
        :func:`~repro.feti.block_pcpg.block_pcpg`; otherwise the columns
        are solved sequentially with scalar PCPG (the comparator).  With
        *grouped* the per-iteration operator applications run batched
        through a :class:`~repro.feti.operator.GroupedDualOperator` (tier
        picked by *signature*) and the lumped preconditioner through
        :class:`~repro.feti.preconditioner.StackedPreconditioner`; the
        returned :class:`~repro.batch.stats.SolveStats` reports the launch
        accounting either way.  *lowrank_rank* > 0 wraps the
        preconditioner in a
        :class:`~repro.feti.preconditioner.LowRankCorrection` of that rank.
        """
        from repro.batch.engine import BatchAssembler
        from repro.batch.stats import SolveStats
        from repro.feti.block_pcpg import block_pcpg
        from repro.feti.operator import GroupedDualOperator
        from repro.feti.preconditioner import (
            LowRankCorrection,
            LumpedPreconditioner,
            StackedPreconditioner,
        )

        if self.operator is None:
            self.preprocess()
        op = self.operator
        require(op is not None, "preprocess() must run before solve_block()")
        require(
            self.decomposition.n_multipliers > 0,
            "block solves need a non-degenerate decomposition",
        )
        if load_panels is None:
            load_panels = make_load_panel(self.decomposition, n_rhs, seed=seed)
        require(
            all(p.shape[1] == n_rhs for p in load_panels),
            "load panels must have n_rhs columns",
        )
        self.timings.n_rhs = n_rhs
        d_panel, e_panel = self._dual_panels(load_panels)

        gop = GroupedDualOperator(op, signature=signature) if grouped else None
        apply_panel = (
            gop.apply_panel
            if gop is not None
            else lambda panel: np.stack(
                [op.apply(panel[:, j]) for j in range(panel.shape[1])], axis=1
            )
        )
        precond = self.preconditioner
        if grouped and isinstance(precond, LumpedPreconditioner):
            precond = StackedPreconditioner(
                self.decomposition,
                executor=gop.executor if gop is not None else None,
            )
        if lowrank_rank > 0:
            precond = LowRankCorrection(
                precond,
                apply_panel,
                op.g,
                lowrank_rank,
                executor=gop.executor if gop is not None else None,
            )

        apply_elapsed0 = gop.executor.elapsed if gop is not None else 0.0
        if block:
            info = block_pcpg(
                apply_panel,
                d_panel,
                op.g,
                e_panel,
                apply_precond=precond.apply,
                tol=self.tol,
                max_iter=self.max_iter,
            )
            infos = [info]
            lam, alpha = info.lam, info.alpha
            iterations = info.iterations
            n_deflated = int(np.count_nonzero(info.deflated_at >= 0))
        else:
            infos = []
            lam = np.zeros_like(d_panel)
            alpha = np.zeros((op.g.shape[1], n_rhs))
            for j in range(n_rhs):
                res = pcpg(
                    apply_f=lambda v: apply_panel(v[:, None])[:, 0],
                    d=d_panel[:, j],
                    g=op.g,
                    e=e_panel[:, j],
                    apply_precond=precond.apply,
                    tol=self.tol,
                    max_iter=self.max_iter,
                )
                infos.append(res)
                lam[:, j], alpha[:, j] = res.lam, res.alpha
            iterations = sum(res.iterations for res in infos)
            n_deflated = 0

        n_subs = self.decomposition.n_subdomains
        launches_seq = 6 * n_subs
        launches_grouped = (
            gop.launches_per_application if gop is not None else launches_seq
        )
        apply_seconds = (
            gop.executor.elapsed - apply_elapsed0 if gop is not None
            else self.timings.apply_total_per_iteration * max(iterations, 1)
        )
        stats = SolveStats(
            n_rhs=n_rhs,
            n_subdomains=n_subs,
            n_groups=gop.n_groups if gop is not None else n_subs,
            iterations=iterations,
            n_deflated=n_deflated,
            launches_per_iteration=launches_grouped,
            launches_sequential_per_iteration=launches_seq,
            apply_seconds=apply_seconds,
            apply_seconds_per_iteration=apply_seconds / max(iterations, 1),
            lowrank_rank=lowrank_rank,
        )
        BatchAssembler.record_solve_stats(stats)
        u = self._recover_panel(load_panels, lam, alpha)
        return BlockFetiSolution(u=u, infos=infos, timings=self.timings, stats=stats)


def solve_feti(
    decomposition: Decomposition,
    approach: str = "expl_gpu_opt",
    **kwargs,
) -> FetiSolution:
    """One-call convenience wrapper: preprocess + solve."""
    solver = FetiSolver(decomposition, approach=approach, **kwargs)
    solver.preprocess()
    return solver.solve()


__all__ = [
    "FetiSolver",
    "FetiSolution",
    "BlockFetiSolution",
    "FetiTimings",
    "make_load_panel",
    "solve_feti",
]
