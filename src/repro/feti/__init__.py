"""FETI solver substrate: dual operator, PCPG, Table-2 approaches,
amortization analysis."""

from repro.feti.amortization import (
    ApproachTiming,
    amortization_point,
    best_approach,
    crossover_table,
)
from repro.feti.dual_approaches import (
    APPROACHES,
    DualOperatorApproach,
    SubdomainPreprocess,
    estimate_approach_timing,
    make_approach,
)
from repro.feti.block_pcpg import BlockPcpgResult, block_pcpg
from repro.feti.operator import (
    DualOperator,
    ExplicitLocalOperator,
    GroupedDualOperator,
    ImplicitLocalOperator,
    LocalDualOperator,
    build_dual_operator,
    factorize_subdomain,
)
from repro.feti.pcpg import PcpgResult, pcpg
from repro.feti.planner import (
    DEFAULT_CANDIDATES,
    Plan,
    PopulationPlan,
    plan_approach,
    plan_population,
)
from repro.feti.preconditioner import (
    DirichletPreconditioner,
    IdentityPreconditioner,
    LowRankCorrection,
    LumpedPreconditioner,
    StackedPreconditioner,
    make_preconditioner,
)
from repro.feti.projector import CoarseProblem
from repro.feti.solver import (
    BlockFetiSolution,
    FetiSolution,
    FetiSolver,
    FetiTimings,
    make_load_panel,
    solve_feti,
)
from repro.feti.timing import (
    CHOLMOD,
    MKL_PARDISO,
    FactorizationLibrary,
    explicit_apply_time,
    implicit_apply_time,
    sc_transfer_time,
)

__all__ = [
    "FetiSolver",
    "FetiSolution",
    "BlockFetiSolution",
    "FetiTimings",
    "make_load_panel",
    "solve_feti",
    "pcpg",
    "PcpgResult",
    "block_pcpg",
    "BlockPcpgResult",
    "CoarseProblem",
    "DualOperator",
    "GroupedDualOperator",
    "build_dual_operator",
    "LocalDualOperator",
    "ImplicitLocalOperator",
    "ExplicitLocalOperator",
    "factorize_subdomain",
    "IdentityPreconditioner",
    "LumpedPreconditioner",
    "DirichletPreconditioner",
    "StackedPreconditioner",
    "LowRankCorrection",
    "make_preconditioner",
    "Plan",
    "plan_approach",
    "PopulationPlan",
    "plan_population",
    "DEFAULT_CANDIDATES",
    "APPROACHES",
    "make_approach",
    "estimate_approach_timing",
    "DualOperatorApproach",
    "SubdomainPreprocess",
    "FactorizationLibrary",
    "MKL_PARDISO",
    "CHOLMOD",
    "implicit_apply_time",
    "explicit_apply_time",
    "sc_transfer_time",
    "ApproachTiming",
    "amortization_point",
    "best_approach",
    "crossover_table",
]
