"""Coarse problem and projector of FETI's dual system (eq. 7).

The kernel constraints ``G^T lam = e`` define an affine subspace; PCPG
iterates within it via the orthogonal projector ``P = I - G (G^T G)^{-1}
G^T`` onto ``null(G^T)``.  The small dense ``G^T G`` (one row/column per
floating-subdomain kernel vector) is the FETI *coarse problem* that makes
the method scalable.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.util import require


class CoarseProblem:
    """Factorized ``G^T G`` with solves, feasibility and projection."""

    def __init__(self, g: np.ndarray) -> None:
        g = np.asarray(g, dtype=np.float64)
        require(g.ndim == 2, "G must be 2-D")
        self.g = g
        self.kernel_dim = g.shape[1]
        if self.kernel_dim:
            gtg = g.T @ g
            try:
                self._chol = scipy.linalg.cho_factor(gtg)
                self._pinv = None
            except scipy.linalg.LinAlgError:
                # Redundant kernels (possible with exotic gluings): fall back
                # to a pseudoinverse solve.
                self._chol = None
                self._pinv = np.linalg.pinv(gtg)
        else:
            self._chol = None
            self._pinv = None

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """``(G^T G)^{-1} rhs``."""
        require(rhs.shape[0] == self.kernel_dim, "coarse RHS size mismatch")
        if self.kernel_dim == 0:
            return rhs
        if self._chol is not None:
            return scipy.linalg.cho_solve(self._chol, rhs)
        return self._pinv @ rhs

    def feasible_point(self, e: np.ndarray) -> np.ndarray:
        """``lam_0 = G (G^T G)^{-1} e`` satisfying ``G^T lam_0 = e``.

        Accepts a single constraint vector ``(kernel_dim,)`` or a panel
        ``(kernel_dim, k)`` of load cases and matches the shape.
        """
        if self.kernel_dim == 0:
            shape = (self.g.shape[0],) if e.ndim == 1 else (self.g.shape[0], e.shape[1])
            return np.zeros(shape)
        return self.g @ self.solve(e)

    def project(self, x: np.ndarray) -> np.ndarray:
        """``P x = x - G (G^T G)^{-1} G^T x``."""
        if self.kernel_dim == 0:
            return x
        return x - self.g @ self.solve(self.g.T @ x)

    def alpha_from(self, flam_minus_d: np.ndarray) -> np.ndarray:
        """Kernel amplitudes ``alpha = (G^T G)^{-1} G^T (F lam - d)``.

        From the first block row of (7): ``F lam - G alpha = d``.  Panel
        inputs ``(m, k)`` give panel amplitudes ``(kernel_dim, k)``.
        """
        if self.kernel_dim == 0:
            shape = (0,) if flam_minus_d.ndim == 1 else (0, flam_minus_d.shape[1])
            return np.zeros(shape)
        return self.solve(self.g.T @ flam_minus_d)


__all__ = ["CoarseProblem"]
