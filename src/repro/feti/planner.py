"""Approach planning: pick the dual-operator approach before preprocessing.

The paper's closing argument is that with near-constant amortization points
the acceleration becomes "beneficial early and easily predictable" — i.e. a
solver can *choose* the right Table-2 approach up front from the expected
iteration count.  This module implements that choice: estimate each
candidate's per-subdomain preprocessing and per-iteration application cost
(pattern-only, no numerics) and minimise the total.
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.feti.amortization import ApproachTiming, best_approach
from repro.feti.dual_approaches import APPROACHES, estimate_approach_timing
from repro.sparse.cholesky import CholeskyFactor
from repro.util import require

#: Approaches a production run would consider (one implicit fallback, the
#: CPU and GPU explicit routes of the paper).
DEFAULT_CANDIDATES = ("impl_mkl", "impl_cholmod", "expl_mkl", "expl_hybrid", "expl_gpu_opt")


@dataclass(frozen=True)
class Plan:
    """Result of approach planning for one subdomain population."""

    chosen: str
    expected_iterations: int
    timings: dict[str, ApproachTiming]

    def total(self, name: str) -> float:
        return self.timings[name].total(self.expected_iterations)

    def summary(self) -> str:
        lines = [
            f"expected iterations: {self.expected_iterations}",
            f"chosen approach:     {self.chosen}",
            "candidate totals (per subdomain):",
        ]
        for name, t in sorted(
            self.timings.items(), key=lambda kv: kv[1].total(self.expected_iterations)
        ):
            lines.append(
                f"  {name:14s} {t.total(self.expected_iterations) * 1e3:10.3f} ms "
                f"(prep {t.preprocessing * 1e3:.3f} + {self.expected_iterations} x "
                f"{t.apply_per_iteration * 1e3:.4f})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PopulationPlan:
    """Per-member approach plans, computed once per fingerprint group.

    ``keys[i]`` is the i-th member's fingerprint key; ``group_plans`` maps
    each distinct key to the :class:`Plan` its group shares.
    """

    keys: list[str]
    group_plans: dict[str, Plan]

    @property
    def n_members(self) -> int:
        return len(self.keys)

    @property
    def n_groups(self) -> int:
        return len(self.group_plans)

    def plan_for(self, i: int) -> Plan:
        return self.group_plans[self.keys[i]]

    def chosen_for(self, i: int) -> str:
        return self.plan_for(i).chosen


def plan_population(
    members: list[tuple[CholeskyFactor, sp.spmatrix]],
    dim: int,
    expected_iterations: int,
    candidates: tuple[str, ...] = DEFAULT_CANDIDATES,
    coords: list | None = None,
    tolerance: float | None = None,
    relabelings: list | None = None,
    signature: str = "frame",
) -> PopulationPlan:
    """Plan approaches for a whole subdomain population.

    Groups members and runs the candidate pricing **once per group**
    instead of once per member — on structured decompositions with many
    identical subdomains this collapses the planning cost to the number of
    distinct classes.

    Without *coords*, members group by the exact structural fingerprint
    (pattern of ``L`` + permuted gluing pattern).  With *coords* — one DOF
    coordinate array per member — they group by the translation- and
    orientation-invariant :func:`repro.batch.fingerprint.geometric_fingerprint`
    instead: mirror- and rotation-identical subdomains (the corner/edge/
    interior classes of a structured grid) share one plan.  Pricing only
    depends on pattern shapes and sizes, which rigid symmetries preserve,
    so the coarser grouping is exact for planning purposes; a 5x5 grid
    collapses from 25 plans to the handful of boundary classes.

    With *relabelings* — one
    :class:`~repro.sparse.canonical.CanonicalRelabeling` (or ``None``) per
    member, e.g. from the items of
    :func:`repro.batch.engine.items_from_decomposition` — members group by
    the relabeling signature instead, skipping the per-member orientation
    search the geometric fingerprint repeats.  Those classes are not just
    pricing-equivalent: they are the classes whose members *share exact
    batch artifacts* (see ``docs/batching.md``), so the plan groups line up
    one-to-one with the groups the batch engine will execute.

    *signature* picks the geometric key used with *coords*: ``"frame"``
    (default — translation + axis perms/flips, the structured-grid mode),
    ``"rotation"`` (free rotations via inertia alignment) or ``"near"``
    (approximately-congruent subdomains share a plan — the mode for
    METIS-like decompositions, where the exact and frame classes are
    almost all singletons and per-member planning is the dominant cost).
    """
    from repro.batch.fingerprint import (
        SIGNATURE_MODES,
        factor_fingerprint,
        geometric_fingerprint_for,
    )
    from repro.sparse.canonical import DEFAULT_TOLERANCE

    require(
        signature in SIGNATURE_MODES,
        f"unknown signature mode {signature!r}; choose from {SIGNATURE_MODES}",
    )
    if coords is not None:
        require(
            len(coords) == len(members),
            "coords must provide one coordinate array per member",
        )
    if relabelings is not None:
        require(
            len(relabelings) == len(members),
            "relabelings must provide one entry (or None) per member",
        )
    tol = DEFAULT_TOLERANCE if tolerance is None else tolerance
    keys: list[str] = []
    group_plans: dict[str, Plan] = {}
    for i, (factor, bt) in enumerate(members):
        if relabelings is not None and relabelings[i] is not None:
            key = f"rel:{relabelings[i].signature}"
        elif coords is not None:
            geo = geometric_fingerprint_for(signature, coords[i], bt, tolerance=tol)
            key = f"{signature}:{geo.key}"
        else:
            key = f"fp:{factor_fingerprint(factor, bt).key}"
        if key not in group_plans:
            group_plans[key] = plan_approach(
                factor, bt, dim, expected_iterations, candidates
            )
        keys.append(key)
    return PopulationPlan(keys=keys, group_plans=group_plans)


def plan_approach(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    dim: int,
    expected_iterations: int,
    candidates: tuple[str, ...] = DEFAULT_CANDIDATES,
) -> Plan:
    """Choose the cheapest approach for a representative subdomain.

    Parameters
    ----------
    factor, bt, dim:
        A representative subdomain's factorization, gluing and dimension
        (per-subdomain costs are near-uniform in the paper's balanced
        decompositions).
    expected_iterations:
        Anticipated PCPG iteration count (problem conditioning).
    candidates:
        Approach names to consider; defaults to the production shortlist.
    """
    require(expected_iterations >= 0, "expected_iterations must be >= 0")
    require(len(candidates) >= 1, "need at least one candidate")
    for name in candidates:
        require(name in APPROACHES, f"unknown approach {name!r}")
    timings = {
        name: estimate_approach_timing(name, factor, bt, dim) for name in candidates
    }
    chosen = best_approach(list(timings.values()), expected_iterations).name
    return Plan(chosen=chosen, expected_iterations=expected_iterations, timings=timings)


__all__ = [
    "Plan",
    "plan_approach",
    "PopulationPlan",
    "plan_population",
    "DEFAULT_CANDIDATES",
]
