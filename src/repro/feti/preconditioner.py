"""Dual preconditioners for PCPG.

Three standard FETI options:

* identity — no preconditioning,
* **lumped** — ``M^{-1} = B K B^T``: cheap, no extra factorization,
* **Dirichlet** — ``M^{-1} = B [0, 0; 0, S] B^T`` with ``S`` the Schur
  complement of each subdomain's interior onto its interface.  ``S`` has
  exactly the ``K_bb - K_bi K_ii^{-1} K_ib`` form the paper's assembly
  machinery computes (``B`` replaced by the interior-to-interface coupling),
  demonstrating the paper's claim that the approach generalizes to any
  ``B K^{-1} B^T``-shaped Schur complement.

Preconditioning quality is orthogonal to the paper's evaluation (which
times the dual-operator assembly), but the Dirichlet variant exercises the
SC substrate on a second, different workload shape.
"""

from __future__ import annotations

import numpy as np

from repro.dd.decomposition import Decomposition
from repro.util import require


class IdentityPreconditioner:
    """No preconditioning: ``z = w``."""

    def apply(self, w: np.ndarray) -> np.ndarray:
        return w


class LumpedPreconditioner:
    """``M^{-1} w = sum_i B_i K_i B_i^T w_i`` — the classic lumped variant."""

    def __init__(self, decomposition: Decomposition) -> None:
        self.decomposition = decomposition

    def apply(self, w: np.ndarray) -> np.ndarray:
        dec = self.decomposition
        require(w.shape == (dec.n_multipliers,), "dual vector size mismatch")
        contribs = []
        for sub, w_local in zip(dec.subdomains, dec.scatter_dual(w)):
            contribs.append(sub.bt.T @ (sub.k @ (sub.bt @ w_local)))
        return dec.gather_dual(contribs)


class DirichletPreconditioner:
    """``M^{-1} w = sum_i B_i diag(0, S_i) B_i^T w_i`` with the interior
    Schur complement ``S_i = K_bb - K_bi K_ii^{-1} K_ib``.

    Assembled once per subdomain using the library's own sparse Cholesky +
    triangular solves (the interface DOFs are those touched by ``B_i``).
    More expensive to set up than the lumped variant, but a spectrally much
    better approximation of the inverse dual operator.
    """

    def __init__(
        self,
        decomposition: Decomposition,
        ordering: str = "nd",
        engine: str = "superlu",
    ) -> None:
        from repro.sparse import cholesky, solve_lower

        self.decomposition = decomposition
        self._schur: list[np.ndarray] = []
        self._boundary: list[np.ndarray] = []
        for sub in decomposition.subdomains:
            if sub.bt is None:
                raise ValueError("interface not built")
            boundary = np.unique(sub.bt.tocoo().row)
            interior = np.setdiff1d(np.arange(sub.n_dofs), boundary)
            k = sub.k.tocsr()
            k_bb = k[boundary][:, boundary].toarray()
            if interior.size and boundary.size:
                k_ii = k[interior][:, interior].tocsc()
                k_ib = k[interior][:, boundary]
                # Interior blocks of an SPSD subdomain matrix are SPD (the
                # kernel is supported on the whole subdomain), so plain
                # Cholesky applies — no regularization needed.
                factor = cholesky(
                    k_ii, ordering=ordering, coords=sub.coords[interior], engine=engine
                )
                y = solve_lower(factor.l, k_ib.tocsr()[factor.perm].toarray())
                s = k_bb - y.T @ y
            else:
                s = k_bb
            self._schur.append(s)
            self._boundary.append(boundary)

    def apply(self, w: np.ndarray) -> np.ndarray:
        dec = self.decomposition
        require(w.shape == (dec.n_multipliers,), "dual vector size mismatch")
        contribs = []
        for sub, s, boundary, w_local in zip(
            dec.subdomains, self._schur, self._boundary, dec.scatter_dual(w)
        ):
            v = sub.bt @ w_local
            t = np.zeros_like(v)
            if boundary.size:
                t[boundary] = s @ v[boundary]
            contribs.append(sub.bt.T @ t)
        return dec.gather_dual(contribs)


def make_preconditioner(name: str | None, decomposition: Decomposition):
    """Factory: ``None``/``"none"``, ``"lumped"`` or ``"dirichlet"``."""
    if name is None or name == "none":
        return IdentityPreconditioner()
    if name == "lumped":
        return LumpedPreconditioner(decomposition)
    if name == "dirichlet":
        return DirichletPreconditioner(decomposition)
    raise ValueError(f"unknown preconditioner {name!r}")


__all__ = [
    "IdentityPreconditioner",
    "LumpedPreconditioner",
    "DirichletPreconditioner",
    "make_preconditioner",
]
