"""Dual preconditioners for PCPG.

Three standard FETI options:

* identity — no preconditioning,
* **lumped** — ``M^{-1} = B K B^T``: cheap, no extra factorization,
* **Dirichlet** — ``M^{-1} = B [0, 0; 0, S] B^T`` with ``S`` the Schur
  complement of each subdomain's interior onto its interface.  ``S`` has
  exactly the ``K_bb - K_bi K_ii^{-1} K_ib`` form the paper's assembly
  machinery computes (``B`` replaced by the interior-to-interface coupling),
  demonstrating the paper's claim that the approach generalizes to any
  ``B K^{-1} B^T``-shaped Schur complement.

All preconditioners accept a dual vector ``(m,)`` or a multi-RHS panel
``(m, k)`` — the block PCPG applies them to whole residual panels.  Two
population-scale add-ons live here as well:

* :class:`StackedPreconditioner` — the lumped application replayed through
  the batched stacked kernels, one launch chain per pattern group instead
  of one per subdomain (the solve-side analogue of the assembly engine's
  grouped execution).
* :class:`LowRankCorrection` — a Li–Xi–Saad-style low-rank correction
  built from a truncated eigendecomposition of the preconditioned dual
  operator restricted to ``null(G^T)``; the ``rank`` knob trades setup
  cost (priced via the kernel cost model) against iteration count.

Preconditioning quality is orthogonal to the paper's evaluation (which
times the dual-operator assembly), but the Dirichlet variant exercises the
SC substrate on a second, different workload shape.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
import scipy.linalg

from repro.dd.decomposition import Decomposition
from repro.util import require


def _check_dual(w: np.ndarray, m: int) -> None:
    require(
        w.shape[0] == m and w.ndim in (1, 2),
        "dual input must be (n_multipliers,) or (n_multipliers, k)",
    )


class IdentityPreconditioner:
    """No preconditioning: ``z = w``."""

    def apply(self, w: np.ndarray) -> np.ndarray:
        return w


class LumpedPreconditioner:
    """``M^{-1} w = sum_i B_i K_i B_i^T w_i`` — the classic lumped variant."""

    def __init__(self, decomposition: Decomposition) -> None:
        self.decomposition = decomposition

    def apply(self, w: np.ndarray) -> np.ndarray:
        dec = self.decomposition
        _check_dual(w, dec.n_multipliers)
        contribs = []
        for sub, w_local in zip(dec.subdomains, dec.scatter_dual(w)):
            contribs.append(sub.bt.T @ (sub.k @ (sub.bt @ w_local)))
        return dec.gather_dual(contribs)


class DirichletPreconditioner:
    """``M^{-1} w = sum_i B_i diag(0, S_i) B_i^T w_i`` with the interior
    Schur complement ``S_i = K_bb - K_bi K_ii^{-1} K_ib``.

    Assembled once per subdomain using the library's own sparse Cholesky +
    triangular solves (the interface DOFs are those touched by ``B_i``).
    More expensive to set up than the lumped variant, but a spectrally much
    better approximation of the inverse dual operator.
    """

    def __init__(
        self,
        decomposition: Decomposition,
        ordering: str = "nd",
        engine: str = "superlu",
    ) -> None:
        from repro.sparse import cholesky, solve_lower

        self.decomposition = decomposition
        self._schur: list[np.ndarray] = []
        self._boundary: list[np.ndarray] = []
        for sub in decomposition.subdomains:
            if sub.bt is None:
                raise ValueError("interface not built")
            boundary = np.unique(sub.bt.tocoo().row)
            interior = np.setdiff1d(np.arange(sub.n_dofs), boundary)
            k = sub.k.tocsr()
            k_bb = k[boundary][:, boundary].toarray()
            if interior.size and boundary.size:
                k_ii = k[interior][:, interior].tocsc()
                k_ib = k[interior][:, boundary]
                # Interior blocks of an SPSD subdomain matrix are SPD (the
                # kernel is supported on the whole subdomain), so plain
                # Cholesky applies — no regularization needed.
                factor = cholesky(
                    k_ii, ordering=ordering, coords=sub.coords[interior], engine=engine
                )
                y = solve_lower(factor.l, k_ib.tocsr()[factor.perm].toarray())
                s = k_bb - y.T @ y
            else:
                s = k_bb
            self._schur.append(s)
            self._boundary.append(boundary)

    def apply(self, w: np.ndarray) -> np.ndarray:
        dec = self.decomposition
        _check_dual(w, dec.n_multipliers)
        contribs = []
        for sub, s, boundary, w_local in zip(
            dec.subdomains, self._schur, self._boundary, dec.scatter_dual(w)
        ):
            v = sub.bt @ w_local
            t = np.zeros_like(v)
            if boundary.size:
                t[boundary] = s @ v[boundary]
            contribs.append(sub.bt.T @ t)
        return dec.gather_dual(contribs)


class StackedPreconditioner:
    """Lumped preconditioner through the batched stacked kernels.

    Groups subdomains whose ``K`` and ``B^T`` stored patterns are bit-equal
    and replays ``B K B^T`` per group as one five-launch chain — panel
    gather, SPMM with ``B^T``, SPMM with ``K``, transposed SPMM, additive
    panel scatter — instead of one chain per subdomain.  Numerically
    identical to :class:`LumpedPreconditioner` up to BLAS association
    order; members with unshared patterns simply form singleton groups.
    """

    def __init__(self, decomposition: Decomposition, executor=None) -> None:
        from repro.gpu.runtime import gpu_executor
        from repro.sparse.stacked import StackedCSC

        self.decomposition = decomposition
        self.executor = executor if executor is not None else gpu_executor()
        by_key: dict[bytes, list[int]] = {}
        mats = []
        for i, sub in enumerate(decomposition.subdomains):
            k = sub.k.tocsc()
            bt = sub.bt.tocsc()
            key = b"|".join(
                (
                    np.asarray(k.shape).tobytes(), k.indptr.tobytes(),
                    k.indices.tobytes(), np.asarray(bt.shape).tobytes(),
                    bt.indptr.tobytes(), bt.indices.tobytes(),
                )
            )
            by_key.setdefault(key, []).append(i)
            mats.append((k, bt))
        self.groups = []
        subs = decomposition.subdomains
        for members in by_key.values():
            self.groups.append(
                (
                    StackedCSC.from_matrices([mats[i][0] for i in members]),
                    StackedCSC.from_matrices([mats[i][1] for i in members]),
                    np.stack([subs[i].multiplier_ids for i in members]),
                )
            )

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def launches_per_application(self) -> int:
        """Kernel launches one stacked application costs (5 per group)."""
        return 5 * len(self.groups)

    def apply(self, w: np.ndarray) -> np.ndarray:
        dec = self.decomposition
        _check_dual(w, dec.n_multipliers)
        panel = w if w.ndim == 2 else w[:, None]
        k = panel.shape[1]
        ex = self.executor
        out = np.zeros_like(panel)
        for k_stack, bt_stack, ids_stack in self.groups:
            g = ids_stack.shape[0]
            n, m = bt_stack.shape
            gathered = ex.batched_panel_gather(panel, ids_stack)
            t = np.zeros((g, n, k))
            ex.batched_spmm(bt_stack, gathered, t, beta=0.0)
            kt = np.zeros((g, n, k))
            ex.batched_spmm(k_stack, t, kt, beta=0.0)
            contrib = np.zeros((g, m, k))
            ex.batched_spmm(bt_stack, kt, contrib, beta=0.0, trans_a=True)
            ex.batched_panel_scatter_add(out, ids_stack, contrib)
        return out if w.ndim == 2 else out[:, 0]


#: Relative eigenvalue cutoff for the low-rank correction's small dense
#: pseudo-factorizations.
_LOWRANK_CUTOFF = 1e-12


class LowRankCorrection:
    """Li–Xi–Saad-style low-rank correction of a dual preconditioner.

    Let ``Q`` span ``null(G^T)`` (the subspace PCPG iterates in), ``A_h =
    Q^T F Q`` and ``B_h = Q^T M^{-1} Q``.  The eigenpairs ``B_h A_h u_i =
    mu_i u_i`` (computed through a pseudo-factor ``B_h = L_b L_b^T`` and a
    symmetric eigendecomposition of ``L_b^T A_h L_b``) are the spectrum of
    the preconditioned projected dual operator.  The correction

    .. math:: M_r^{-1} = M^{-1} + \\sum_{i=1}^{r} \\theta_i (Q u_i)(Q u_i)^T,
              \\quad \\theta_i = \\max(0, 1/mu_i - 1)

    maps the ``r`` lowest modes to eigenvalue exactly 1 while leaving the
    rest untouched — the deviation-correction that keeps CG iteration
    counts flat as the subdomain count grows.  ``theta_i >= 0`` keeps the
    added term symmetric PSD, so ``M_r^{-1}`` stays a valid preconditioner.

    ``rank=0`` stores nothing and forwards to *base* unchanged (bitwise
    no-op).  Setup cost (the panel application ``F Q``, the small dense
    Gram products and the eigendecompositions) is priced through the cost
    model when an executor is supplied.
    """

    def __init__(
        self,
        base,
        apply_f_panel: Callable[[np.ndarray], np.ndarray],
        g: np.ndarray,
        rank: int,
        executor=None,
    ) -> None:
        require(rank >= 0, "rank must be >= 0")
        self.base = base
        self.rank = rank
        self.u: np.ndarray | None = None
        self.theta: np.ndarray | None = None
        if rank == 0:
            return
        m = g.shape[0]
        q = scipy.linalg.null_space(g.T) if g.shape[1] else np.eye(m)
        if q.shape[1] == 0:
            return
        fq = apply_f_panel(q)
        ah = q.T @ fq
        mq = base.apply(q)
        bh = q.T @ mq
        # Pseudo-factor of the (possibly singular) PSD B_h.
        s, v = np.linalg.eigh(bh)
        keep = s > _LOWRANK_CUTOFF * max(float(s[-1]), 0.0)
        if not np.any(keep):
            return
        lb = v[:, keep] * np.sqrt(s[keep])
        c = lb.T @ ah @ lb
        mu, z = np.linalg.eigh(c)  # ascending: lowest modes first
        positive = mu > _LOWRANK_CUTOFF * max(float(mu[-1]), 0.0)
        mu, z = mu[positive], z[:, positive]
        theta = np.maximum(0.0, 1.0 / mu - 1.0)
        r = min(rank, int(np.count_nonzero(theta > 0.0)))
        if r == 0:
            return
        self.u = q @ (lb @ z[:, :r])  # (m, r): Q u_i columns
        self.theta = theta[:r]
        if executor is not None:
            executor.charge(self._setup_cost(m, q.shape[1]), kernel="lowrank_setup")

    @staticmethod
    def _setup_cost(m: int, q: int):
        """Dense setup FLOPs: two Gram products plus two eigensolves.

        (The ``F Q`` / ``M^{-1} Q`` panel applications charge themselves
        when routed through priced operators.)
        """
        from repro.gpu.costmodel import KernelCost, dense_bytes

        flops = 4.0 * m * q * q + 20.0 * q**3
        return KernelCost(
            flops=flops,
            bytes_moved=2.0 * dense_bytes((m, q)) + 4.0 * dense_bytes((q, q)),
            launches=6,
            char_dim=float(q),
        )

    @property
    def effective_rank(self) -> int:
        """Modes the correction actually carries (<= requested rank)."""
        return 0 if self.theta is None else int(self.theta.size)

    def correction(self, w: np.ndarray) -> np.ndarray:
        """The added term ``U diag(theta) U^T w`` alone (symmetric PSD)."""
        if self.u is None:
            return np.zeros_like(w)
        utw = self.u.T @ w
        scaled = self.theta[:, None] * utw if w.ndim == 2 else self.theta * utw
        return self.u @ scaled

    def apply(self, w: np.ndarray) -> np.ndarray:
        base = self.base.apply(w)
        if self.u is None:
            return base
        return base + self.correction(w)


def make_preconditioner(name: str | None, decomposition: Decomposition):
    """Factory: ``None``/``"none"``, ``"lumped"`` or ``"dirichlet"``."""
    if name is None or name == "none":
        return IdentityPreconditioner()
    if name == "lumped":
        return LumpedPreconditioner(decomposition)
    if name == "dirichlet":
        return DirichletPreconditioner(decomposition)
    raise ValueError(f"unknown preconditioner {name!r}")


__all__ = [
    "IdentityPreconditioner",
    "LumpedPreconditioner",
    "DirichletPreconditioner",
    "StackedPreconditioner",
    "LowRankCorrection",
    "make_preconditioner",
]
