"""Simulated timing models for factorization libraries and operator
application.

The paper compares MKL PARDISO and CHOLMOD factorizations (Fig. 9): PARDISO
is "significantly faster for 2D subdomains" while "for the large 3D
subdomains the performance ... is similar".  That pattern is reproduced with
a two-term model: a per-column symbolic/bookkeeping overhead (where the
libraries differ most) plus the numeric FLOPs at a library-specific
efficiency — 2D factors have few FLOPs per column (overhead-dominated),
3D factors are FLOP-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.gpu.costmodel import KernelCost, csx_bytes, dense_bytes
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE, PCIE4_X16, DeviceSpec, TransferSpec
from repro.sparse.cholesky import CholeskyFactor
from repro.util import require, spmm_flops, trsm_sparse_flops


@dataclass(frozen=True)
class FactorizationLibrary:
    """Timing profile of a sparse direct solver library."""

    name: str
    per_column_overhead: float  # seconds per factor column
    efficiency: float  # fraction of core peak sustained by the numeric kernel

    def factorization_time(
        self, factor: CholeskyFactor, spec: DeviceSpec = EPYC_7763_CORE
    ) -> float:
        """Simulated numeric-factorization seconds for *factor*."""
        require(self.efficiency > 0, "efficiency must be positive")
        numeric = factor.flops / (spec.peak_flops * self.efficiency)
        return factor.n * self.per_column_overhead + numeric


#: Intel MKL PARDISO: lean per-column machinery, strong supernodal kernel.
MKL_PARDISO = FactorizationLibrary("mkl-pardiso", per_column_overhead=6e-8, efficiency=0.60)

#: SuiteSparse CHOLMOD: heavier per-column bookkeeping, similar flop rate.
#: The only library allowing factor extraction — every GPU approach pays
#: this factorization (paper §5).
CHOLMOD = FactorizationLibrary("cholmod", per_column_overhead=4.5e-7, efficiency=0.52)


def implicit_apply_time(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    spec: DeviceSpec = EPYC_7763_CORE,
) -> float:
    """Per-iteration cost of the implicit operator (eq. 11):
    SPMV + two TRSVs + SPMV on the CPU."""
    flops = 2.0 * spmm_flops(bt.nnz, 1) + 2.0 * trsm_sparse_flops(factor.nnz, 1)
    nbytes = 2.0 * csx_bytes(bt.nnz, bt.shape[1]) + 2.0 * csx_bytes(factor.nnz, factor.n)
    # TRSV streams the factor once per sweep — largely bandwidth bound;
    # char_dim=16 keeps the compute term at a realistic sparse-solve rate.
    cost = KernelCost(flops=flops, bytes_moved=nbytes, launches=4, char_dim=16.0, sparse=True)
    return cost.time_on(spec)


def explicit_apply_time(
    n_multipliers: int,
    spec: DeviceSpec,
    transfer: TransferSpec | None = None,
) -> float:
    """Per-iteration cost of the explicit operator (eq. 12): one dense GEMV.

    GPU application additionally moves the in/out dual vectors over PCIe
    (batched; bandwidth term only plus one latency).
    """
    m = n_multipliers
    cost = KernelCost(
        flops=2.0 * m * m,
        bytes_moved=dense_bytes((m, m)) + 2.0 * m * 8.0,
        launches=1,
        char_dim=float(max(m, 1)),
    )
    t = cost.time_on(spec)
    if transfer is not None:
        t += transfer.latency + (2.0 * m * 8.0) / transfer.bandwidth
    return t


def sc_transfer_time(n_multipliers: int, transfer: TransferSpec = PCIE4_X16) -> float:
    """Host->device upload of an assembled dense SC (the hybrid approach)."""
    return transfer.time(n_multipliers * n_multipliers * 8.0)


__all__ = [
    "FactorizationLibrary",
    "MKL_PARDISO",
    "CHOLMOD",
    "implicit_apply_time",
    "explicit_apply_time",
    "sc_transfer_time",
    "A100_40GB",
    "EPYC_7763_CORE",
]
