"""The eight dual-operator approaches of Table 2.

==============  ==============================================================
approach        description (paper Table 2)
==============  ==============================================================
impl_mkl        the MKL PARDISO solver on CPU (implicit)
impl_cholmod    the CHOLMOD solver on CPU (implicit)
expl_mkl        augmented incomplete factorization from MKL PARDISO on CPU
expl_cholmod    TRSM with the CHOLMOD solver on CPU (baseline kernels)
expl_cuda       CUDA with factors from CHOLMOD (the [9] baseline on GPU)
expl_cpu_opt    optimized TRSM and SYRK on CPU (this paper)
expl_gpu_opt    optimized TRSM and SYRK on GPU (this paper)
expl_hybrid     assembly expl_mkl, application GPU
==============  ==============================================================

Each approach preprocesses one subdomain into a
:class:`~repro.feti.operator.LocalDualOperator` plus simulated stage timings
(factorization / assembly / transfers / per-iteration application).  The
numerics are identical across approaches — only the algorithms and the
priced devices differ — which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assembler import SchurAssembler
from repro.core.config import AssemblyConfig, baseline_config, default_config
from repro.dd.subdomain import Subdomain
from repro.feti.operator import (
    ExplicitLocalOperator,
    ImplicitLocalOperator,
    LocalDualOperator,
    factorize_subdomain,
)
from repro.feti.timing import (
    CHOLMOD,
    MKL_PARDISO,
    FactorizationLibrary,
    explicit_apply_time,
    implicit_apply_time,
    sc_transfer_time,
)
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE
from repro.sparse.schur_augmented import schur_augmented
from repro.util import require


@dataclass
class SubdomainPreprocess:
    """Result of preprocessing one subdomain under one approach."""

    local_op: LocalDualOperator
    factorization_time: float
    assembly_time: float  # 0 for implicit approaches
    transfer_time: float  # SC upload (hybrid) — kernel h2d is inside assembly
    apply_time: float  # per-iteration application cost

    @property
    def preprocessing_time(self) -> float:
        return self.factorization_time + self.assembly_time + self.transfer_time


class DualOperatorApproach:
    """Base class: one row of Table 2."""

    name: str = "abstract"
    explicit: bool = False
    apply_device: str = "cpu"  # where F is applied each iteration

    def preprocess_subdomain(
        self, sub: Subdomain, ordering: str = "nd", engine: str = "superlu"
    ) -> SubdomainPreprocess:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name}>"


class _ImplicitApproach(DualOperatorApproach):
    """Shared implementation of the two implicit rows."""

    library: FactorizationLibrary

    def preprocess_subdomain(self, sub, ordering="nd", engine="superlu"):
        factor = factorize_subdomain(sub, ordering=ordering, engine=engine)
        return SubdomainPreprocess(
            local_op=ImplicitLocalOperator(factor=factor, bt=sub.bt),
            factorization_time=self.library.factorization_time(factor),
            assembly_time=0.0,
            transfer_time=0.0,
            apply_time=implicit_apply_time(factor, sub.bt),
        )


class ImplMkl(_ImplicitApproach):
    name = "impl_mkl"
    library = MKL_PARDISO


class ImplCholmod(_ImplicitApproach):
    name = "impl_cholmod"
    library = CHOLMOD


class ExplMkl(DualOperatorApproach):
    """PARDISO's augmented incomplete factorization on the CPU."""

    name = "expl_mkl"
    explicit = True
    apply_device = "cpu"

    def preprocess_subdomain(self, sub, ordering="nd", engine="superlu"):
        factor = factorize_subdomain(sub, ordering=ordering, engine=engine)
        res = schur_augmented(sub.regularized(), sub.bt, factor=factor)
        from repro.gpu.costmodel import KernelCost

        # PARDISO's augmented SC runs inside its supernodal (BLAS3) kernels:
        # price at dense rates with a moderate blocking dimension.
        asm_cost = KernelCost(
            flops=res.solve_flops + res.syrk_flops,
            bytes_moved=12.0 * res.y_nnz,
            launches=1,
            char_dim=32.0,
            sparse=False,
        )
        return SubdomainPreprocess(
            local_op=ExplicitLocalOperator(f=res.schur, factor=factor),
            factorization_time=MKL_PARDISO.factorization_time(factor),
            assembly_time=asm_cost.time_on(EPYC_7763_CORE),
            transfer_time=0.0,
            apply_time=explicit_apply_time(sub.bt.shape[1], EPYC_7763_CORE),
        )


class _AssemblerApproach(DualOperatorApproach):
    """Shared implementation of the four SchurAssembler-based rows."""

    explicit = True
    gpu: bool = False

    def _config(self, dim: int) -> AssemblyConfig:
        raise NotImplementedError

    def preprocess_subdomain(self, sub, ordering="nd", engine="superlu"):
        dim = sub.coords.shape[1]
        require(dim in (2, 3), "subdomain must be 2-D or 3-D")
        factor = factorize_subdomain(sub, ordering=ordering, engine=engine)
        if self.gpu:
            assembler = SchurAssembler(config=self._config(dim), spec=A100_40GB)
            apply_t = explicit_apply_time(
                sub.bt.shape[1], A100_40GB, transfer=assembler.transfer
            )
        else:
            assembler = SchurAssembler.for_cpu(config=self._config(dim))
            apply_t = explicit_apply_time(sub.bt.shape[1], EPYC_7763_CORE)
        res = assembler.assemble(factor, sub.bt)
        return SubdomainPreprocess(
            local_op=ExplicitLocalOperator(f=res.f, factor=factor),
            factorization_time=CHOLMOD.factorization_time(factor),
            assembly_time=res.elapsed,
            transfer_time=0.0,  # kernel h2d already inside res.elapsed
            apply_time=apply_t,
        )


class ExplCholmod(_AssemblerApproach):
    """Full TRSM with extracted CHOLMOD factors + SYRK on the CPU."""

    name = "expl_cholmod"
    apply_device = "cpu"
    gpu = False

    def _config(self, dim):
        return baseline_config("sparse")


class ExplCuda(_AssemblerApproach):
    """The previous best GPU approach [9]: baseline kernels on the GPU
    (whole-factor cuSPARSE TRSM + full SYRK)."""

    name = "expl_cuda"
    apply_device = "gpu"
    gpu = True

    def _config(self, dim):
        return baseline_config("sparse")


class ExplCpuOpt(_AssemblerApproach):
    """This paper's optimized kernels on the CPU."""

    name = "expl_cpu_opt"
    apply_device = "cpu"
    gpu = False

    def _config(self, dim):
        return default_config("cpu", dim)


class ExplGpuOpt(_AssemblerApproach):
    """This paper's optimized kernels on the GPU — the headline approach."""

    name = "expl_gpu_opt"
    apply_device = "gpu"
    gpu = True

    def _config(self, dim):
        return default_config("gpu", dim)


class ExplHybrid(DualOperatorApproach):
    """Assembly by expl_mkl on the CPU, application on the GPU."""

    name = "expl_hybrid"
    explicit = True
    apply_device = "gpu"

    def preprocess_subdomain(self, sub, ordering="nd", engine="superlu"):
        base = ExplMkl().preprocess_subdomain(sub, ordering=ordering, engine=engine)
        m = sub.bt.shape[1]
        from repro.gpu.spec import PCIE4_X16

        return SubdomainPreprocess(
            local_op=base.local_op,
            factorization_time=base.factorization_time,
            assembly_time=base.assembly_time,
            transfer_time=sc_transfer_time(m),
            apply_time=explicit_apply_time(m, A100_40GB, transfer=PCIE4_X16),
        )


def estimate_approach_timing(
    name: str,
    factor,
    bt,
    dim: int,
    max_augmented_columns: int = 512,
) -> "ApproachTiming":
    """Predict an approach's per-subdomain timings from patterns alone.

    Mirrors :meth:`DualOperatorApproach.preprocess_subdomain` but never
    executes numerics: assembler approaches use the dry-run estimator of
    :mod:`repro.core.estimate`, expl_mkl/expl_hybrid the etree-reach
    estimator of :mod:`repro.sparse.schur_estimate`.  Used by the Fig. 9 /
    Fig. 10 benchmark sweeps at sizes where execution is infeasible;
    ``tests/test_approach_estimates.py`` checks agreement with the executed
    path.
    """
    from repro.core.assembler import SchurAssembler
    from repro.feti.amortization import ApproachTiming
    from repro.gpu.costmodel import KernelCost
    from repro.gpu.spec import PCIE4_X16
    from repro.sparse.schur_estimate import estimate_augmented_cost

    require(name in APPROACHES, f"unknown approach {name!r}")
    require(dim in (2, 3), "dim must be 2 or 3")
    m = bt.shape[1]

    if name in ("impl_mkl", "impl_cholmod"):
        lib = MKL_PARDISO if name == "impl_mkl" else CHOLMOD
        return ApproachTiming(
            name=name,
            preprocessing=lib.factorization_time(factor),
            apply_per_iteration=implicit_apply_time(factor, bt),
        )

    if name in ("expl_mkl", "expl_hybrid"):
        est = estimate_augmented_cost(factor, bt, max_columns=max_augmented_columns)
        asm_cost = KernelCost(
            flops=est.solve_flops + est.syrk_flops,
            bytes_moved=12.0 * est.y_nnz,
            launches=1,
            char_dim=32.0,
            sparse=False,
        )
        prep = MKL_PARDISO.factorization_time(factor) + asm_cost.time_on(EPYC_7763_CORE)
        if name == "expl_mkl":
            return ApproachTiming(
                name=name,
                preprocessing=prep,
                apply_per_iteration=explicit_apply_time(m, EPYC_7763_CORE),
            )
        return ApproachTiming(
            name=name,
            preprocessing=prep + sc_transfer_time(m),
            apply_per_iteration=explicit_apply_time(m, A100_40GB, transfer=PCIE4_X16),
        )

    # Assembler-based approaches.
    cls = APPROACHES[name]
    instance = cls()
    assert isinstance(instance, _AssemblerApproach)
    if instance.gpu:
        assembler = SchurAssembler(config=instance._config(dim), spec=A100_40GB)
        apply_t = explicit_apply_time(m, A100_40GB, transfer=PCIE4_X16)
    else:
        assembler = SchurAssembler.for_cpu(config=instance._config(dim))
        apply_t = explicit_apply_time(m, EPYC_7763_CORE)
    asm = assembler.estimate(factor, bt)["total"]
    return ApproachTiming(
        name=name,
        preprocessing=CHOLMOD.factorization_time(factor) + asm,
        apply_per_iteration=apply_t,
    )


APPROACHES: dict[str, type[DualOperatorApproach]] = {
    cls.name: cls
    for cls in (
        ImplMkl,
        ImplCholmod,
        ExplMkl,
        ExplCholmod,
        ExplCuda,
        ExplCpuOpt,
        ExplGpuOpt,
        ExplHybrid,
    )
}


def make_approach(name: str) -> DualOperatorApproach:
    """Instantiate a Table-2 approach by name."""
    require(name in APPROACHES, f"unknown approach {name!r}; know {sorted(APPROACHES)}")
    return APPROACHES[name]()


__all__ = [
    "DualOperatorApproach",
    "SubdomainPreprocess",
    "APPROACHES",
    "make_approach",
    "ImplMkl",
    "ImplCholmod",
    "ExplMkl",
    "ExplCholmod",
    "ExplCuda",
    "ExplCpuOpt",
    "ExplGpuOpt",
    "ExplHybrid",
]
