"""Full-node simulation: several independent process pipelines (§2.2, §4).

The paper's production mapping is one MPI process per NUMA domain + GPU
(8 per Karolina node), each owning one cluster of subdomains: "processes do
not influence each other and do not compete for resources", so "one can
scale the application to more MPI processes without influencing single-node
performance".  This module makes that claim executable: a node runs one
preprocessing pipeline per process and its makespan is the slowest process
— perfectly parallel when clusters are balanced, straggler-bound when not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.pipeline import PipelineResult, SubdomainWork, run_preprocessing_pipeline
from repro.util import require


@dataclass(frozen=True)
class NodeSpec:
    """Process layout of one compute node (Karolina GPU node by default)."""

    n_processes: int = 8  # one per NUMA domain / GPU
    threads_per_process: int = 16
    streams_per_process: int = 16

    def __post_init__(self) -> None:
        require(self.n_processes >= 1, "need at least one process")
        require(self.threads_per_process >= 1, "need at least one thread")
        require(self.streams_per_process >= 1, "need at least one stream")


KAROLINA_GPU_NODE = NodeSpec(n_processes=8, threads_per_process=16, streams_per_process=16)


@dataclass
class NodeResult:
    """Timing summary of a whole-node preprocessing run."""

    makespan: float
    per_process: list[PipelineResult]

    @property
    def balance(self) -> float:
        """Fastest/slowest process ratio (1.0 = perfectly balanced)."""
        times = [p.makespan for p in self.per_process]
        return min(times) / max(times) if max(times) > 0 else 1.0

    @property
    def parallel_efficiency(self) -> float:
        """Sum of process makespans over (n_processes * node makespan)."""
        total = sum(p.makespan for p in self.per_process)
        n = len(self.per_process)
        return total / (n * self.makespan) if self.makespan > 0 else 1.0


def run_node_preprocessing(
    cluster_work: list[list[SubdomainWork]],
    node: NodeSpec = KAROLINA_GPU_NODE,
    mode: str = "mix",
    assembly_on_gpu: bool = True,
) -> NodeResult:
    """Simulate the preprocessing of one node: one cluster per process.

    Parameters
    ----------
    cluster_work:
        Per-process lists of subdomain work items (typically from
        :func:`repro.dd.make_clusters` + per-subdomain estimates).  Must
        have at most ``node.n_processes`` entries.
    """
    require(1 <= len(cluster_work) <= node.n_processes, "cluster count vs processes")
    per_process = [
        run_preprocessing_pipeline(
            work,
            mode=mode,
            n_threads=node.threads_per_process,
            n_streams=node.streams_per_process,
            assembly_on_gpu=assembly_on_gpu,
        )
        for work in cluster_work
    ]
    return NodeResult(
        makespan=max(p.makespan for p in per_process),
        per_process=per_process,
    )


__all__ = ["NodeSpec", "KAROLINA_GPU_NODE", "NodeResult", "run_node_preprocessing"]
