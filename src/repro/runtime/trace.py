"""Deprecated import path — the renderings moved to :mod:`repro.obs.render`.

``render_schedule`` and ``gantt`` are part of the unified observability
layer now (one module for every human-readable timeline view).  This shim
re-exports them with a :class:`DeprecationWarning`; import from
``repro.obs`` (or ``repro.obs.render``) instead.
"""

from __future__ import annotations

import warnings

from repro.obs.render import gantt as _gantt
from repro.obs.render import render_schedule as _render_schedule


def _warn(name: str) -> None:
    warnings.warn(
        f"repro.runtime.trace.{name} moved to repro.obs.render.{name}; "
        "the repro.runtime.trace shim will be removed",
        DeprecationWarning,
        stacklevel=3,
    )


def render_schedule(schedule, max_rows: int = 40) -> str:
    """Deprecated alias of :func:`repro.obs.render.render_schedule`."""
    _warn("render_schedule")
    return _render_schedule(schedule, max_rows=max_rows)


def gantt(schedule, resource: str, n_workers: int, width: int = 72) -> str:
    """Deprecated alias of :func:`repro.obs.render.gantt`."""
    _warn("gantt")
    return _gantt(schedule, resource, n_workers, width=width)


__all__ = ["render_schedule", "gantt"]
