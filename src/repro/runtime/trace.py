"""Timeline traces: text rendering of a schedule (poor man's Gantt chart)."""

from __future__ import annotations

from repro.runtime.scheduler import Schedule
from repro.util import Table, format_si, require


def render_schedule(schedule: Schedule, max_rows: int = 40) -> str:
    """Tabular rendering of a schedule ordered by start time."""
    table = Table(["task", "resource", "worker", "start", "end", "duration"])
    rows = sorted(schedule.tasks.values(), key=lambda t: (t.start, t.task_id))
    for t in rows[:max_rows]:
        table.add_row(
            [
                t.task_id,
                t.resource,
                t.worker,
                format_si(t.start, "s"),
                format_si(t.end, "s"),
                format_si(t.end - t.start, "s"),
            ]
        )
    out = table.render()
    if len(rows) > max_rows:
        out += f"\n... ({len(rows) - max_rows} more tasks)"
    out += f"\nmakespan: {format_si(schedule.makespan, 's')}"
    return out


def gantt(schedule: Schedule, resource: str, n_workers: int, width: int = 72) -> str:
    """ASCII Gantt chart of one worker pool.

    Each row is a worker; each task paints its id's last character over its
    time span.  Intended for debugging pipeline overlap, not for precision.
    """
    require(width >= 10, "width too small")
    if schedule.makespan == 0:
        return "(empty schedule)"
    scale = width / schedule.makespan
    rows = [[" "] * width for _ in range(n_workers)]
    for t in sorted(schedule.tasks.values(), key=lambda t: t.start):
        if t.resource != resource or t.worker >= n_workers:
            continue
        c0 = min(int(t.start * scale), width - 1)
        c1 = min(max(int(t.end * scale), c0 + 1), width)
        mark = t.task_id[-1]
        for c in range(c0, c1):
            rows[t.worker][c] = mark
    lines = [f"{resource}[{i}] |{''.join(r)}|" for i, r in enumerate(rows)]
    return "\n".join(lines)


__all__ = ["render_schedule", "gantt"]
