"""The FETI preprocessing pipeline in its ``sep`` and ``mix`` configurations
(§4.4 / Fig. 8).

Per subdomain the preprocessing does a CPU numerical factorization followed
by the explicit SC assembly (on GPU streams or on the CPU threads):

* ``mix`` — the production loop: each assembly depends only on *its own*
  factorization, so GPU work overlaps the remaining CPU factorizations
  ("we achieve CPU-GPU computation overlap after the first batch of
  subdomains is factorized").  The delayed GPU start is what lowers the
  measured GPU-section speedup for large subdomains.
* ``sep`` — the measurement configuration: factorize everything first, then
  assemble; the phases are timed separately.

Device-memory pressure is modelled: an assembly additionally waits until
the temporary pool can hold its working set (the paper's blocking temporary
allocator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.memory import MemoryPool
from repro.runtime.scheduler import Schedule, Task, schedule_tasks
from repro.util import require

PIPELINE_MODES = ("mix", "sep")


@dataclass(frozen=True)
class SubdomainWork:
    """Priced preprocessing work of one subdomain."""

    factorization: float  # CPU seconds
    assembly: float  # seconds on the assembly resource (kernels + h2d)
    temp_bytes: float = 0.0  # temporary device memory held during assembly
    persistent_bytes: float = 0.0  # device memory kept after assembly (the SC)


@dataclass
class PipelineResult:
    """Timings of one preprocessing run."""

    makespan: float
    factorization_makespan: float
    assembly_makespan: float
    schedule: Schedule
    memory_high_water: float = 0.0
    memory_stalls: int = 0

    @property
    def per_subdomain(self) -> float:
        n = sum(1 for t in self.schedule.tasks if t.startswith("fact:"))
        return self.makespan / max(n, 1)


def run_preprocessing_pipeline(
    work: list[SubdomainWork],
    mode: str = "mix",
    n_threads: int = 16,
    n_streams: int = 16,
    assembly_on_gpu: bool = True,
    memory_pool: MemoryPool | None = None,
) -> PipelineResult:
    """Simulate the preprocessing of all subdomains of one cluster.

    Returns the makespan plus the phase breakdown.  With *assembly_on_gpu*
    false, assemblies execute on the CPU thread pool itself (the CPU-only
    approaches, where ``sep`` vs ``mix`` makes no difference — as the paper
    observes).
    """
    require(mode in PIPELINE_MODES, f"unknown pipeline mode {mode!r}")
    require(len(work) >= 1, "no subdomains")
    require(n_threads >= 1, "need at least one CPU worker")
    # n_streams == 0 is fine for CPU-only assembly; the scheduler validates
    # that every resource class actually used has at least one worker.
    require(n_streams >= 0, "n_streams must be >= 0")

    asm_resource = "gpu" if assembly_on_gpu else "cpu"
    tasks: list[Task] = []
    for i, w in enumerate(work):
        tasks.append(Task(task_id=f"fact:{i}", duration=w.factorization, resource="cpu"))
    if mode == "mix":
        for i, w in enumerate(work):
            tasks.append(
                Task(
                    task_id=f"asm:{i}",
                    duration=w.assembly,
                    resource=asm_resource,
                    deps=[f"fact:{i}"],
                )
            )
    else:  # sep: assemblies wait for the whole factorization phase
        all_facts = [f"fact:{i}" for i in range(len(work))]
        for i, w in enumerate(work):
            tasks.append(
                Task(
                    task_id=f"asm:{i}",
                    duration=w.assembly,
                    resource=asm_resource,
                    deps=list(all_facts),
                )
            )

    sched = schedule_tasks(tasks, n_cpu=n_threads, n_gpu=n_streams)

    fact_end = max(sched.tasks[f"fact:{i}"].end for i in range(len(work)))
    asm_tasks = [sched.tasks[f"asm:{i}"] for i in range(len(work))]
    asm_start = min(t.start for t in asm_tasks)
    asm_end = max(t.end for t in asm_tasks)

    high_water, stalls = _memory_replay(work, asm_tasks, memory_pool)

    return PipelineResult(
        makespan=sched.makespan,
        factorization_makespan=fact_end,
        assembly_makespan=asm_end - asm_start,
        schedule=sched,
        memory_high_water=high_water,
        memory_stalls=stalls,
    )


def _memory_replay(work, asm_tasks, pool: MemoryPool | None) -> tuple[float, int]:
    """Replay assemblies in start order against the temporary pool.

    Counts how many assemblies would have had to wait for memory (the
    blocking allocator of §3.1) and the high-water mark.  Timing impact of
    stalls is not fed back into the schedule — with the paper's persistent/
    temporary split the pool is sized so stalls are rare; we only surface
    the counter so tests and benches can observe the mechanism.
    """
    if pool is None:
        return 0.0, 0
    order = sorted(range(len(asm_tasks)), key=lambda i: asm_tasks[i].start)
    # Sweep: at each assembly start, free temporaries of assemblies already
    # finished, then allocate.
    live: list[tuple[float, object]] = []  # (end_time, allocation)
    stalls = 0
    for i in order:
        t = asm_tasks[i]
        for end, alloc in list(live):
            if end <= t.start:
                pool.free(alloc)
                live.remove((end, alloc))
        pool.alloc_persistent(work[i].persistent_bytes, tag=f"sc:{i}")
        if pool.would_block(work[i].temp_bytes):
            stalls += 1
            # Model: the stalled assembly waits; free the earliest-ending
            # temporaries until it fits.
            for end, alloc in sorted(live, key=lambda p: p[0]):
                pool.free(alloc)
                live.remove((end, alloc))
                if not pool.would_block(work[i].temp_bytes):
                    break
        if not pool.would_block(work[i].temp_bytes):
            alloc = pool.alloc_temporary(work[i].temp_bytes, tag=f"tmp:{i}")
            live.append((t.end, alloc))
    for _, alloc in live:
        pool.free(alloc)
    return pool.high_water, stalls


__all__ = [
    "SubdomainWork",
    "PipelineResult",
    "run_preprocessing_pipeline",
    "PIPELINE_MODES",
]
