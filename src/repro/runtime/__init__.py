"""Simulated parallel runtime: task scheduler, preprocessing pipeline, traces."""

from repro.runtime.node import (
    KAROLINA_GPU_NODE,
    NodeResult,
    NodeSpec,
    run_node_preprocessing,
)
from repro.runtime.pipeline import (
    PIPELINE_MODES,
    PipelineResult,
    SubdomainWork,
    run_preprocessing_pipeline,
)
from repro.runtime.scheduler import (
    Schedule,
    ScheduledTask,
    Task,
    host_worker_count,
    schedule_tasks,
)
from repro.obs.render import gantt, render_schedule

__all__ = [
    "Task",
    "ScheduledTask",
    "Schedule",
    "schedule_tasks",
    "host_worker_count",
    "SubdomainWork",
    "PipelineResult",
    "run_preprocessing_pipeline",
    "PIPELINE_MODES",
    "render_schedule",
    "gantt",
    "NodeSpec",
    "NodeResult",
    "KAROLINA_GPU_NODE",
    "run_node_preprocessing",
]
