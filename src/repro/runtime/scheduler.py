"""Discrete-event list scheduler over simulated workers.

Models the paper's per-process resources: a pool of CPU threads (OpenMP) and
a pool of GPU streams.  Tasks carry a duration (already priced by the cost
model), a resource class, and dependencies; the scheduler computes start/end
times and the makespan.  Used by :mod:`repro.runtime.pipeline` to reproduce
the ``sep``/``mix`` preprocessing configurations of Fig. 8.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field

from repro.util import require


@dataclass
class Task:
    """One schedulable work item."""

    task_id: str
    duration: float
    resource: str  # "cpu" | "gpu"
    deps: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        require(self.duration >= 0, f"task {self.task_id}: negative duration")
        require(self.resource in ("cpu", "gpu"), f"task {self.task_id}: bad resource")


@dataclass(frozen=True)
class ScheduledTask:
    """Placement decision for one task."""

    task_id: str
    start: float
    end: float
    resource: str
    worker: int


@dataclass
class Schedule:
    """Complete schedule: placements + derived statistics."""

    tasks: dict[str, ScheduledTask]
    makespan: float
    busy: dict[str, float]  # resource -> total busy seconds

    def utilization(self, resource: str, n_workers: int) -> float:
        """Busy fraction of a worker pool over the makespan."""
        if self.makespan == 0:
            return 0.0
        return self.busy.get(resource, 0.0) / (self.makespan * n_workers)


def schedule_tasks(tasks: list[Task], n_cpu: int, n_gpu: int) -> Schedule:
    """List-schedule *tasks* onto ``n_cpu`` threads and ``n_gpu`` streams.

    Dependency-respecting, greedy earliest-start: when several tasks are
    ready, submission order breaks ties (the paper's loop processes
    subdomains in order).  Raises on cycles or unknown dependencies.

    A worker pool may be empty (size 0) as long as no task uses that
    resource class — pure-CPU schedules don't need a GPU stream pool and
    vice versa.
    """
    require(n_cpu >= 0 and n_gpu >= 0, "worker counts must be >= 0")
    used = {t.resource for t in tasks}
    require("cpu" not in used or n_cpu >= 1, "cpu tasks scheduled but n_cpu == 0")
    require("gpu" not in used or n_gpu >= 1, "gpu tasks scheduled but n_gpu == 0")
    by_id = {t.task_id: t for t in tasks}
    require(len(by_id) == len(tasks), "duplicate task ids")
    for t in tasks:
        for d in t.deps:
            require(d in by_id, f"task {t.task_id} depends on unknown {d!r}")

    # Worker pools: heap of (t_free, worker_index).
    pools: dict[str, list[tuple[float, int]]] = {
        "cpu": [(0.0, i) for i in range(n_cpu)],
        "gpu": [(0.0, i) for i in range(n_gpu)],
    }
    for pool in pools.values():
        heapq.heapify(pool)

    placed: dict[str, ScheduledTask] = {}
    busy = {"cpu": 0.0, "gpu": 0.0}
    remaining = list(tasks)
    progressed = True
    while remaining:
        require(progressed, "dependency cycle detected")
        progressed = False
        still: list[Task] = []
        for t in remaining:
            if any(d not in placed for d in t.deps):
                still.append(t)
                continue
            ready = max((placed[d].end for d in t.deps), default=0.0)
            t_free, worker = heapq.heappop(pools[t.resource])
            start = max(t_free, ready)
            end = start + t.duration
            heapq.heappush(pools[t.resource], (end, worker))
            placed[t.task_id] = ScheduledTask(
                task_id=t.task_id, start=start, end=end, resource=t.resource, worker=worker
            )
            busy[t.resource] += t.duration
            progressed = True
        remaining = still

    makespan = max((p.end for p in placed.values()), default=0.0)
    return Schedule(tasks=placed, makespan=makespan, busy=busy)


def host_worker_count(n_workers: int | None = None, n_tasks: int | None = None) -> int:
    """Resolve a *real* host thread-pool size (not a simulated resource).

    Used by the batch engine to fan independent fingerprint groups across a
    ``ThreadPoolExecutor`` — NumPy/SciPy release the GIL inside BLAS, so the
    grouped numeric kernels genuinely overlap.  ``None`` takes every
    available core; an explicit count is honoured as given; either is
    clamped to *n_tasks* when known (more workers than groups is waste).
    """
    available = os.cpu_count() or 1
    n = available if n_workers is None else n_workers
    require(n >= 1, "n_workers must be >= 1 (or None for all host cores)")
    if n_tasks is not None:
        require(n_tasks >= 0, "n_tasks must be >= 0")
        n = min(n, max(n_tasks, 1))
    return int(n)


__all__ = ["Task", "ScheduledTask", "Schedule", "schedule_tasks", "host_worker_count"]
