"""Two-tier pattern cache: in-memory LRU over the persistent artifact store.

Drop-in replacement for :class:`~repro.batch.cache.PatternCache` (the
:class:`~repro.batch.engine.BatchAssembler` takes it via its ``cache=``
parameter unchanged): lookups hit the process-local LRU first, fall
through to the :class:`~repro.store.store.ArtifactStore` on disk, and only
rebuild from scratch when both tiers miss — at which point the fresh
artifact is committed back to the store for every later run and every
other worker.

Counting contract (what :class:`~repro.batch.stats.BatchStats` reports):

* memory hit — ``hits`` only (same as a plain cache);
* store hit  — ``hits`` *and* ``store_hits``: the symbolic analysis was
  still saved, it just came from disk (this is the warm-fleet win);
* store miss — ``misses`` and ``store_misses``: full rebuild + put;
* a corrupted store entry quarantined during a lookup adds
  ``store_quarantined`` and counts as a store miss (recomputed, never
  served).

An injected/real store failure during ``put`` never fails the lookup —
the value was already built; persistence is best-effort per entry (crash
semantics are the store's tmp+rename contract).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.batch.cache import PatternCache
from repro.store.artifact import KIND_SYMBOLIC
from repro.store.faults import InjectedCrash
from repro.store.store import ArtifactStore


class TieredPatternCache(PatternCache):
    """In-memory LRU (tier 1) over a persistent artifact store (tier 2).

    Parameters
    ----------
    store:
        The shared persistent tier; may be served to any number of caches
        and worker processes concurrently.
    max_entries:
        LRU bound of the memory tier (``None`` unbounded, ``0`` disables
        the memory tier — every lookup goes to the store).
    kind:
        Artifact kind the entries are stored under (default
        ``"symbolic"`` — :class:`~repro.batch.cache.SymbolicArtifacts`).
    """

    def __init__(
        self,
        store: ArtifactStore,
        max_entries: int | None = None,
        kind: str = KIND_SYMBOLIC,
    ) -> None:
        super().__init__(max_entries=max_entries)
        self.store = store
        self.kind = kind

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(value, was_hit)`` — a hit from either tier counts."""
        if key in self._store:
            self.stats.hits += 1
            self._store.move_to_end(key)
            return self._store[key], True
        quarantined_before = self.store.stats.quarantined
        value = self.store.get(key, self.kind)
        self.stats.store_quarantined += (
            self.store.stats.quarantined - quarantined_before
        )
        if value is not None:
            self.stats.hits += 1
            self.stats.store_hits += 1
            self._memoize(key, value)
            return value, True
        self.stats.misses += 1
        self.stats.store_misses += 1
        value = builder()
        try:
            self.store.put(key, self.kind, value)
        except InjectedCrash:
            # Simulated process death must unwind like the real thing.
            raise
        except OSError:
            # Best-effort persistence: a full disk / permission hiccup
            # degrades to "this entry stays memory-only", not a crash.
            pass
        self._memoize(key, value)
        return value, False

    def _memoize(self, key: str, value: Any) -> None:
        if self.max_entries == 0:
            return
        self._store[key] = value
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.stats.evictions += 1


__all__ = ["TieredPatternCache"]
