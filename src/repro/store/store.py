"""Crash-safe, file-backed artifact store keyed by canonical fingerprints.

The persistent tier behind the :class:`~repro.batch.cache.PatternCache`
(see :class:`repro.store.tiered.TieredPatternCache`): symbolic factors,
relabelings, union plans and priced plans survive the process, so a fleet
of stateless workers — and every later run on the same machine — assembles
against one warm shared cache.

Layout (everything under one *root* directory)::

    root/
      objects/<xy>/<keydigest>.<kind>.art   committed artifacts
      quarantine/<name>.<reason>            corrupted entries, kept for autopsy

Durability contract:

* **Atomic commits** — every put writes a checksummed envelope
  (:mod:`repro.store.artifact`) to a unique tmp file in the target
  directory, fsyncs, then ``os.replace``\\ s it into place.  A crash
  before the rename leaves only a stale tmp file (swept by
  :meth:`ArtifactStore.gc`); readers can never observe a half-written
  committed entry *path*.
* **Graceful degradation** — a committed entry that still fails to decode
  (torn write that somehow committed, bit rot, schema drift) is
  **quarantined and recomputed**: moved into ``quarantine/``, counted, and
  reported as a miss.  Corruption is never served and never a crash.
* **Idempotent puts** — two workers racing to store the same fingerprint
  both win: last rename silently replaces an identical envelope.
* **Bounded retries** — transient ``OSError`` reads retry a few times
  before degrading to a miss.

Observability: ``store.get`` / ``store.put`` / ``store.quarantine`` spans
and ``store.*`` counters whenever a :mod:`repro.obs` tracer is installed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.obs import get_tracer
from repro.store.artifact import (
    ArtifactError,
    ArtifactHeader,
    ArtifactSchemaMismatch,
    decode_artifact,
    decode_header,
    encode_artifact,
    key_digest,
)
from repro.store.faults import (
    NO_FAULTS,
    FaultInjector,
    InjectedCrash,
    TransientIOError,
)
from repro.util import require

#: File extension of committed artifacts.
ARTIFACT_SUFFIX = ".art"


@dataclass
class StoreStats:
    """Operation counters of one :class:`ArtifactStore` handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    transient_retries: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"store: {self.hits} hit(s) / {self.misses} miss(es) "
            f"({self.hit_rate * 100.0:.1f}% hit rate), {self.puts} put(s), "
            f"{self.quarantined} quarantined, "
            f"{self.transient_retries} transient retrie(s)"
        )


@dataclass(frozen=True)
class StoreEntry:
    """One committed artifact as seen by :meth:`ArtifactStore.entries`."""

    path: str
    kind: str
    key: str
    payload_bytes: int


class ArtifactStore:
    """File-backed artifact store with quarantine-on-corruption semantics.

    Parameters
    ----------
    root:
        Store directory (created on first use).
    faults:
        Optional :class:`~repro.store.faults.FaultInjector`; the store
        fires ``store.put.crash`` / ``store.put.torn`` /
        ``store.get.transient`` at the matching sites.
    max_read_retries:
        Attempts per read before a transient I/O error degrades to a miss.
    """

    def __init__(
        self,
        root,
        faults: FaultInjector | None = None,
        max_read_retries: int = 3,
    ) -> None:
        require(max_read_retries >= 1, "max_read_retries must be >= 1")
        self.root = Path(root)
        self.faults = faults if faults is not None else NO_FAULTS
        self.max_read_retries = max_read_retries
        self.stats = StoreStats()
        self._tmp_seq = 0

    # -- paths -------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def path_for(self, key: str, kind: str) -> Path:
        """Committed location of ``(key, kind)`` (may not exist yet)."""
        digest = key_digest(key)
        return self.objects_dir / digest[:2] / f"{digest}.{kind}{ARTIFACT_SUFFIX}"

    # -- core operations ---------------------------------------------------

    def contains(self, key: str, kind: str) -> bool:
        return self.path_for(key, kind).exists()

    def put(self, key: str, kind: str, obj: Any, overwrite: bool = True) -> bool:
        """Commit *obj* under ``(key, kind)`` atomically.

        Returns ``True`` when a new envelope was committed, ``False`` when
        an entry already existed and *overwrite* was off.  Raises only on
        real (or injected-crash) failures — an interrupted put leaves the
        previous state intact.
        """
        path = self.path_for(key, kind)
        if not overwrite and path.exists():
            return False
        data = encode_artifact(obj, kind, key)
        with get_tracer().span("store.put", kind=kind, bytes=len(data)):
            if self.faults.tears("store.put.torn"):
                # Simulated torn write: a truncated envelope *commits*.
                # The length/checksum validation catches it on read.
                data = data[: max(8, len(data) - max(1, len(data) // 3))]
            path.parent.mkdir(parents=True, exist_ok=True)
            self._tmp_seq += 1
            tmp = path.parent / f".{path.name}.tmp-{os.getpid()}-{self._tmp_seq}"
            try:
                with open(tmp, "wb") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
                # Crash-before-commit point: tmp is on disk, rename is not.
                self.faults.fire("store.put.crash")
                os.replace(tmp, path)
            except InjectedCrash:
                # A "dead" process leaves its tmp file behind — gc() sweeps
                # it later.  Committed state is untouched either way.
                raise
            except BaseException:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                raise
        self.stats.puts += 1
        self._count("store.puts")
        return True

    def get(self, key: str, kind: str) -> Any | None:
        """Fetch ``(key, kind)``; ``None`` on miss *or* quarantined entry.

        Decode failures quarantine the file and degrade to a miss —
        corruption is recomputed upstream, never served and never raised.
        """
        path = self.path_for(key, kind)
        with get_tracer().span("store.get", kind=kind) as span:
            data = self._read_with_retry(path)
            if data is None:
                self.stats.misses += 1
                self._count("store.misses")
                span.set(hit=False)
                return None
            try:
                obj, _ = decode_artifact(data, expect_kind=kind, expect_key=key)
            except ArtifactError as exc:
                self._quarantine(path, exc)
                self.stats.misses += 1
                self._count("store.misses")
                span.set(hit=False, quarantined=True)
                return None
            self.stats.hits += 1
            self._count("store.hits")
            span.set(hit=True)
            return obj

    def _read_with_retry(self, path: Path) -> bytes | None:
        """Read *path*, retrying transient I/O errors; ``None`` on miss or
        when the retries are exhausted (degrade, don't crash)."""
        for attempt in range(self.max_read_retries):
            try:
                self.faults.fire("store.get.transient")
                return path.read_bytes()
            except FileNotFoundError:
                return None
            except TransientIOError:
                self.stats.transient_retries += 1
                self._count("store.transient_retries")
            except OSError:
                self.stats.transient_retries += 1
                self._count("store.transient_retries")
        return None

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a corrupted entry out of the serving tree (never raises)."""
        label = type(reason).__name__
        with get_tracer().span("store.quarantine", reason=label):
            try:
                self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                dest = self.quarantine_dir / f"{path.name}.{label}"
                seq = 0
                while dest.exists():
                    seq += 1
                    dest = self.quarantine_dir / f"{path.name}.{label}.{seq}"
                os.replace(path, dest)
            except OSError:
                # Last resort: at least stop serving it.
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
        self.stats.quarantined += 1
        self._count("store.quarantined")

    # -- maintenance -------------------------------------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """Iterate committed artifacts (header-only read; corrupt headers
        are skipped here — :meth:`verify` is the repair pass)."""
        for path in sorted(self.objects_dir.glob(f"*/*{ARTIFACT_SUFFIX}")):
            try:
                header, _ = decode_header(path.read_bytes())
            except (ArtifactError, OSError):
                continue
            yield StoreEntry(
                path=str(path),
                kind=header.kind,
                key=header.key,
                payload_bytes=header.payload_bytes,
            )

    def verify(self) -> tuple[int, int]:
        """Full-content check of every committed entry.

        Decodes payloads (length + checksum + unpickle); corrupted or
        version-mismatched entries are quarantined.  Returns
        ``(n_ok, n_quarantined)``.
        """
        n_ok = 0
        n_bad = 0
        for path in sorted(self.objects_dir.glob(f"*/*{ARTIFACT_SUFFIX}")):
            try:
                decode_artifact(path.read_bytes())
                n_ok += 1
            except (ArtifactError, OSError) as exc:
                self._quarantine(path, exc if isinstance(exc, ArtifactError)
                                 else ArtifactSchemaMismatch(str(exc)))
                n_bad += 1
        return n_ok, n_bad

    def gc(self) -> int:
        """Sweep stale tmp files left by crashed writers; returns the count.

        Only run this when no writer is mid-put in the swept directories
        (the CLI ``store verify`` path, between fleet runs).
        """
        removed = 0
        with get_tracer().span("store.gc") as span:
            if not self.objects_dir.is_dir():
                return 0
            for bucket in self.objects_dir.iterdir():
                if not bucket.is_dir():
                    continue
                for entry in bucket.iterdir():
                    if entry.name.startswith(".") and ".tmp-" in entry.name:
                        try:
                            entry.unlink()
                            removed += 1
                        except OSError:
                            pass
            span.set(swept=removed)
        if removed:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.metrics.count("store.gc_swept", removed)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.objects_dir.glob(f"*/*{ARTIFACT_SUFFIX}"))

    @staticmethod
    def _count(name: str) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.count(name)


__all__ = ["ArtifactStore", "StoreStats", "StoreEntry", "ARTIFACT_SUFFIX"]
