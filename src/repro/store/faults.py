"""Seeded, deterministic fault injection for the store and the queue.

The recovery paths of :mod:`repro.store` are testable, not aspirational:
every dangerous site in the store, the queue and the worker loop calls
into a :class:`FaultInjector` at a named *fault point*, and a configured
injector turns that call into a simulated failure —

* :class:`InjectedCrash` — the process "dies" at this instant: the
  exception unwinds without any cleanup handlers running (the worker loop
  re-raises it), so whatever was committed is committed and whatever was
  not is not.  Models ``kill -9`` mid-operation.
* :class:`TransientIOError` — a retryable I/O hiccup (NFS blip, EBUSY);
  the store retries these a bounded number of times.
* a *torn write* — the store commits a deliberately truncated payload,
  modelling a crash between a non-atomic write's pages reaching disk.
  Detected by the artifact checksum on the next read and quarantined.

Fault points (see :data:`FAULT_POINTS` and the failure matrix in
``docs/service.md``):

========================  ====================================================
point                     effect at the site
========================  ====================================================
``store.put.crash``       crash after the tmp file is written, before rename
``store.put.torn``        commit a truncated artifact (checksum won't match)
``store.get.transient``   raise :class:`TransientIOError` on the read
``queue.claim.crash``     crash right after a job lease commits (stale lease)
``queue.complete.crash``  crash before the completion transaction commits
``worker.job.crash``      crash mid-job, between claim and completion
========================  ====================================================

Specs are compact strings, comma-separated ``point:trigger`` pairs:

* ``store.put.torn:2`` — fire on the 2nd call of that point (count-based,
  fully deterministic);
* ``worker.job.crash:p0.25`` — fire each call with probability 0.25 from
  a generator seeded by *seed* (deterministic for a fixed seed);
* ``store.get.transient:*`` — fire on every call.

The injector counts every call per point (:attr:`FaultInjector.calls`),
so tests can assert a site was actually exercised.
"""

from __future__ import annotations

import random

#: Every fault point wired into the store / queue / worker code paths.
FAULT_POINTS = (
    "store.put.crash",
    "store.put.torn",
    "store.get.transient",
    "queue.claim.crash",
    "queue.complete.crash",
    "worker.job.crash",
)

#: Fault points that simulate process death (must unwind without cleanup).
CRASH_POINTS = frozenset(
    {"store.put.crash", "queue.claim.crash", "queue.complete.crash", "worker.job.crash"}
)


class InjectedFault(Exception):
    """Base class of every injected failure."""

    def __init__(self, point: str, call: int) -> None:
        super().__init__(f"injected fault at {point} (call #{call})")
        self.point = point
        self.call = call


class InjectedCrash(InjectedFault):
    """Simulated process death: handlers must NOT clean up after this —
    the worker loop re-raises it to its top level, like ``kill -9``."""


class TransientIOError(InjectedFault, OSError):
    """Simulated retryable I/O error."""


class _Trigger:
    """When does one fault point fire?  ``at`` = Nth call, ``always``,
    or probability ``p`` per call (seeded)."""

    def __init__(self, spec: str, rng: random.Random, point: str) -> None:
        self.at: int | None = None
        self.p: float | None = None
        self.always = False
        self._rng = rng
        if spec == "*":
            self.always = True
        elif spec.startswith("p"):
            self.p = float(spec[1:])
            if not 0.0 <= self.p <= 1.0:
                raise ValueError(f"fault probability out of [0,1]: {spec!r} ({point})")
        else:
            self.at = int(spec)
            if self.at < 1:
                raise ValueError(f"fault call index must be >= 1: {spec!r} ({point})")

    def fires(self, call: int) -> bool:
        if self.always:
            return True
        if self.p is not None:
            return self._rng.random() < self.p
        return call == self.at


class FaultInjector:
    """Deterministic fault plan shared by a store/queue/worker trio.

    Parameters
    ----------
    spec:
        ``"point:trigger,point:trigger,..."`` (see the module docstring),
        a pre-parsed ``{point: trigger}`` dict, or ``None``/``""`` for a
        no-op injector (every ``fire`` is a cheap dict miss).
    seed:
        Seeds the generator behind probabilistic (``pN``) triggers; two
        injectors with the same spec and seed fire identically.
    """

    def __init__(self, spec: str | dict | None = None, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed
        self.calls: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        self._triggers: dict[str, _Trigger] = {}
        if isinstance(spec, dict):
            items = list(spec.items())
        elif spec:
            items = []
            for part in spec.split(","):
                part = part.strip()
                if not part:
                    continue
                point, _, trigger = part.rpartition(":")
                if not point or not trigger:
                    raise ValueError(f"malformed fault spec entry: {part!r}")
                items.append((point, trigger))
        else:
            items = []
        for point, trigger in items:
            if point not in FAULT_POINTS:
                raise ValueError(
                    f"unknown fault point {point!r}; choose from {FAULT_POINTS}"
                )
            self._triggers[point] = _Trigger(str(trigger), self._rng, point)

    def __bool__(self) -> bool:
        return bool(self._triggers)

    def fire(self, point: str) -> None:
        """Register a call of *point*; raise its fault when triggered.

        Crash points raise :class:`InjectedCrash`, transient points
        :class:`TransientIOError`.  Torn-write points never raise — use
        :meth:`tears` at the write site instead.
        """
        call = self.calls[point] = self.calls.get(point, 0) + 1
        trig = self._triggers.get(point)
        if trig is None or not trig.fires(call):
            return
        self.fired[point] = self.fired.get(point, 0) + 1
        if point in CRASH_POINTS:
            raise InjectedCrash(point, call)
        raise TransientIOError(point, call)

    def tears(self, point: str = "store.put.torn") -> bool:
        """Like :meth:`fire` but for torn writes: returns ``True`` when the
        write at this call should commit truncated instead of raising."""
        call = self.calls[point] = self.calls.get(point, 0) + 1
        trig = self._triggers.get(point)
        if trig is None or not trig.fires(call):
            return False
        self.fired[point] = self.fired.get(point, 0) + 1
        return True


#: Shared no-op injector for call sites whose caller passed ``faults=None``.
NO_FAULTS = FaultInjector(None)


__all__ = [
    "FAULT_POINTS",
    "CRASH_POINTS",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "TransientIOError",
    "NO_FAULTS",
]
