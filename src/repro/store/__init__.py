"""Assembly-as-a-service: persistent artifact store + crash-safe work queue.

The repo's durability layer (see ``docs/service.md``): the symbolic
artifacts the batch engine computes once per canonical fingerprint no
longer die with the process —

* :mod:`repro.store.artifact` — versioned, checksummed artifact envelopes
  (symbolic factors, relabelings, union plans, priced plans);
* :mod:`repro.store.store` — the file-backed
  :class:`~repro.store.store.ArtifactStore`: atomic tmp+rename commits,
  quarantine-and-recompute on corruption, never serves a bad entry;
* :mod:`repro.store.tiered` — the two-tier
  :class:`~repro.store.tiered.TieredPatternCache` plugging the store under
  the batch engine's in-memory LRU;
* :mod:`repro.store.queue` — the SQLite
  :class:`~repro.store.queue.JobQueue` work table: open/leased/done/
  failed/dead states, lease timeouts with heartbeats, capped exponential
  backoff, dead-lettering;
* :mod:`repro.store.worker` — the stateless worker loop behind
  ``python -m repro work``;
* :mod:`repro.store.faults` — seeded deterministic fault injection
  (crash-before-commit, torn writes, stale leases, transient I/O) that
  keeps every recovery path above under test.
"""

from repro.store.artifact import (
    KIND_PRICED_PLAN,
    KIND_RELABELING,
    KIND_SYMBOLIC,
    KIND_UNION_PLAN,
    SCHEMA_VERSION,
    ArtifactCorrupt,
    ArtifactError,
    ArtifactHeader,
    ArtifactSchemaMismatch,
    decode_artifact,
    encode_artifact,
    key_digest,
)
from repro.store.faults import (
    CRASH_POINTS,
    FAULT_POINTS,
    FaultInjector,
    InjectedCrash,
    InjectedFault,
    TransientIOError,
)
from repro.store.queue import (
    DEAD,
    DONE,
    FAILED,
    LEASED,
    OPEN,
    PENDING_STATES,
    STATES,
    Job,
    JobQueue,
    LostLease,
    QueueError,
)
from repro.store.store import ArtifactStore, StoreEntry, StoreStats
from repro.store.tiered import TieredPatternCache
from repro.store.worker import (
    DEFAULT_ASSEMBLE_PAYLOAD,
    JOB_HANDLERS,
    WorkerStats,
    reference_digest,
    run_assemble_job,
    run_worker,
    sc_digest,
    snapshot_worker_trace,
    worker_trace_path,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "StoreEntry",
    "TieredPatternCache",
    "ArtifactError",
    "ArtifactCorrupt",
    "ArtifactSchemaMismatch",
    "ArtifactHeader",
    "SCHEMA_VERSION",
    "KIND_SYMBOLIC",
    "KIND_RELABELING",
    "KIND_UNION_PLAN",
    "KIND_PRICED_PLAN",
    "encode_artifact",
    "decode_artifact",
    "key_digest",
    "JobQueue",
    "Job",
    "QueueError",
    "LostLease",
    "OPEN",
    "LEASED",
    "DONE",
    "FAILED",
    "DEAD",
    "STATES",
    "PENDING_STATES",
    "FaultInjector",
    "InjectedFault",
    "InjectedCrash",
    "TransientIOError",
    "FAULT_POINTS",
    "CRASH_POINTS",
    "run_worker",
    "run_assemble_job",
    "reference_digest",
    "sc_digest",
    "WorkerStats",
    "JOB_HANDLERS",
    "DEFAULT_ASSEMBLE_PAYLOAD",
    "snapshot_worker_trace",
    "worker_trace_path",
]
