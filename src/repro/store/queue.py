"""SQLite-backed work queue: leases, heartbeats, retries, dead letters.

The py_experimenter-style work table behind assembly-as-a-service: jobs
are rows, workers on any machine ``claim`` an eligible row inside one
``BEGIN IMMEDIATE`` transaction, renew their lease with ``heartbeat``
while computing, and ``complete`` or ``fail`` it.  Every state change is
one SQLite transaction, so a worker killed at *any* instant leaves the
table in a recoverable state:

* killed after ``claim`` — the job stays ``leased`` until its lease
  deadline passes; the next ``claim`` by anyone reaps it back into the
  retry pool (``failed`` with the lease timeout recorded).
* killed before ``complete`` commits — same thing: the attempt is lost,
  the job is not.
* a worker that merely *hangs* loses its lease the same way; if it wakes
  up late its ``complete``/``heartbeat`` raises :class:`LostLease`
  (another worker may own the job now) and it must drop the result.

Job states::

    open ──claim──► leased ──complete──► done
      ▲               │ fail / lease timeout
      │               ▼
      └─backoff──── failed ──attempts ≥ max──► dead

``failed`` jobs become claimable again after a capped exponential backoff
(``backoff_base * 2**(attempts-1)``, capped at ``backoff_cap``); after
``max_attempts`` leases they move to the terminal ``dead`` state (the
dead-letter queue — inspect with ``python -m repro work status``).

The wall clock is injectable (*clock*) so lease/backoff semantics are
unit-testable without sleeping; production uses ``time.time`` because
deadlines must be comparable across worker processes/machines.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.obs import TraceContext, get_tracer
from repro.store.faults import NO_FAULTS, FaultInjector
from repro.util import require

#: Job states.
OPEN, LEASED, DONE, FAILED, DEAD = "open", "leased", "done", "failed", "dead"
STATES = (OPEN, LEASED, DONE, FAILED, DEAD)

#: States that still need a worker (the drain condition counts these).
PENDING_STATES = (OPEN, LEASED, FAILED)

#: Histogram boundaries for retry-backoff delays (seconds).
BACKOFF_BUCKETS = (0.1, 0.5, 1.0, 2.0, 5.0, 15.0, 60.0, 300.0)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id             INTEGER PRIMARY KEY AUTOINCREMENT,
    kind           TEXT NOT NULL,
    payload        TEXT NOT NULL,
    status         TEXT NOT NULL DEFAULT 'open',
    attempts       INTEGER NOT NULL DEFAULT 0,
    max_attempts   INTEGER NOT NULL DEFAULT 5,
    owner          TEXT,
    lease_deadline REAL,
    backoff_until  REAL NOT NULL DEFAULT 0,
    result         TEXT,
    error          TEXT,
    trace_id       TEXT,
    parent_span    TEXT,
    created_at     REAL NOT NULL,
    updated_at     REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status, backoff_until);
"""

#: Columns added after PR 8 shipped — older queue.db files are migrated
#: in place on open (``ALTER TABLE`` is cheap and idempotent per column).
_MIGRATED_COLUMNS = (
    ("trace_id", "TEXT"),
    ("parent_span", "TEXT"),
)


class QueueError(Exception):
    """Base class of queue usage errors."""


class LostLease(QueueError):
    """The caller no longer owns the job it tried to act on (its lease
    timed out and someone else may hold it now) — drop the result."""


@dataclass(frozen=True)
class Job:
    """One row of the work table.

    ``trace_id``/``parent_span`` are the submitter's serialized
    :class:`~repro.obs.TraceContext`: they are stamped once at submit and
    never change across retries, so a job reclaimed from a crashed worker
    still continues the *original* trace.  ``created_at`` rides along so
    workers can report queue-wait time.
    """

    id: int
    kind: str
    payload: dict
    status: str
    attempts: int
    max_attempts: int
    owner: str | None
    lease_deadline: float | None
    backoff_until: float
    result: dict | None
    error: str | None
    trace_id: str | None = None
    parent_span: str | None = None
    created_at: float = 0.0

    @property
    def context(self) -> TraceContext | None:
        """The submit-time trace context (``None`` for pre-migration rows)."""
        return TraceContext.from_pair(self.trace_id, self.parent_span)


def _row_to_job(row: sqlite3.Row) -> Job:
    return Job(
        id=row["id"],
        kind=row["kind"],
        payload=json.loads(row["payload"]),
        status=row["status"],
        attempts=row["attempts"],
        max_attempts=row["max_attempts"],
        owner=row["owner"],
        lease_deadline=row["lease_deadline"],
        backoff_until=row["backoff_until"],
        result=json.loads(row["result"]) if row["result"] else None,
        error=row["error"],
        trace_id=row["trace_id"],
        parent_span=row["parent_span"],
        created_at=row["created_at"],
    )


class JobQueue:
    """Crash-safe job table in one SQLite file.

    Parameters
    ----------
    path:
        Database file (created on first use); WAL mode, safe for many
        concurrent worker processes on one filesystem.
    backoff_base / backoff_cap:
        Retry delay of a failed job: ``min(cap, base * 2**(attempts-1))``
        seconds after the failure.
    clock:
        Injectable time source (``time.time``); tests advance it manually.
    faults:
        Optional injector firing ``queue.claim.crash`` (right after a
        lease commits — the stale-lease scenario) and
        ``queue.complete.crash`` (before the completion commits).
    """

    def __init__(
        self,
        path,
        backoff_base: float = 1.0,
        backoff_cap: float = 60.0,
        clock: Callable[[], float] = time.time,
        faults: FaultInjector | None = None,
    ) -> None:
        require(backoff_base >= 0.0, "backoff_base must be >= 0")
        require(backoff_cap >= backoff_base, "backoff_cap must be >= backoff_base")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.clock = clock
        self.faults = faults if faults is not None else NO_FAULTS
        self._db = sqlite3.connect(self.path, timeout=30.0, isolation_level=None)
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute("PRAGMA busy_timeout=30000")
        self._db.executescript(_SCHEMA)
        self._migrate()

    def _migrate(self) -> None:
        """Add post-PR-8 columns to pre-existing queue files in place."""
        have = {
            row["name"] for row in self._db.execute("PRAGMA table_info(jobs)")
        }
        for column, sql_type in _MIGRATED_COLUMNS:
            if column not in have:
                self._db.execute(
                    f"ALTER TABLE jobs ADD COLUMN {column} {sql_type}"
                )

    def close(self) -> None:
        self._db.close()

    def _count(self, name: str, value: float = 1.0) -> None:
        tracer = get_tracer()
        if tracer.enabled:
            tracer.metrics.count(name, value)

    # -- producers ---------------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict,
        max_attempts: int = 5,
        context: TraceContext | None = None,
    ) -> int:
        """Insert one ``open`` job; returns its id.

        The job row is stamped with a trace *context*: the one passed in,
        else the current tracer's (the enclosing span becomes the job's
        remote parent), else a fresh root context — every job carries a
        ``trace_id`` even when submitted with tracing off, so a later
        fleet merge can still group its spans.
        """
        require(max_attempts >= 1, "max_attempts must be >= 1")
        tracer = get_tracer()
        with tracer.span("queue.submit", kind=kind) as span:
            if context is None:
                context = tracer.current_context()
                if context.span_id:
                    # The submit span itself is the natural remote parent;
                    # stamp its context id so the fleet merge can link
                    # worker job spans back to this exact span.
                    span.set(ctx=context.span_id)
            trace_id, parent_span = context.to_pair()
            now = self.clock()
            cur = self._db.execute(
                "INSERT INTO jobs (kind, payload, status, max_attempts, "
                "trace_id, parent_span, created_at, updated_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (kind, json.dumps(payload, sort_keys=True), OPEN, max_attempts,
                 trace_id, parent_span, now, now),
            )
            job_id = int(cur.lastrowid)
            span.set(job=job_id, trace_id=trace_id)
        self._count("queue.submits")
        return job_id

    # -- workers -----------------------------------------------------------

    def claim(self, owner: str, lease_seconds: float = 30.0) -> Job | None:
        """Lease the oldest eligible job for *owner*; ``None`` when nothing
        is currently claimable.

        One transaction does three things: reap expired leases back into
        the retry pool (counting the lost attempt), promote that and any
        other ``failed`` job whose backoff has passed, and lease the
        oldest ``open`` job.  Eligibility of failed jobs respects the
        exponential backoff; jobs out of attempts go to ``dead`` instead
        of back to the pool.
        """
        require(lease_seconds > 0.0, "lease_seconds must be > 0")
        now = self.clock()
        with get_tracer().span("queue.claim", owner=owner) as span:
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._reap_expired_locked(now)
                row = self._db.execute(
                    "SELECT * FROM jobs WHERE (status = ? OR (status = ? AND "
                    "backoff_until <= ?)) ORDER BY id LIMIT 1",
                    (OPEN, FAILED, now),
                ).fetchone()
                if row is None:
                    self._db.execute("COMMIT")
                    span.set(claimed=False)
                    return None
                self._db.execute(
                    "UPDATE jobs SET status = ?, owner = ?, attempts = attempts + 1, "
                    "lease_deadline = ?, updated_at = ? WHERE id = ?",
                    (LEASED, owner, now + lease_seconds, now, row["id"]),
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
            # Stale-lease scenario: the lease is durably committed, then the
            # worker dies before doing any work.
            self.faults.fire("queue.claim.crash")
            job = self.get(int(row["id"]))
            span.set(claimed=True, job=job.id, attempt=job.attempts)
            self._count("queue.claims")
            return job

    def _reap_expired_locked(self, now: float) -> int:
        """Move lease-expired jobs to ``failed`` (or ``dead``) — caller
        holds the transaction."""
        rows = self._db.execute(
            "SELECT id, attempts, max_attempts FROM jobs WHERE status = ? AND "
            "lease_deadline < ?",
            (LEASED, now),
        ).fetchall()
        for row in rows:
            self._retry_or_dead_locked(
                row["id"], row["attempts"], row["max_attempts"],
                "lease expired (worker crashed or hung)", now,
            )
        if rows:
            self._count("queue.reaped", len(rows))
        return len(rows)

    def _retry_or_dead_locked(
        self, job_id: int, attempts: int, max_attempts: int, error: str, now: float
    ) -> None:
        if attempts >= max_attempts:
            self._db.execute(
                "UPDATE jobs SET status = ?, owner = NULL, lease_deadline = NULL, "
                "error = ?, updated_at = ? WHERE id = ?",
                (DEAD, error, now, job_id),
            )
            self._count("queue.dead_letters")
        else:
            backoff = min(
                self.backoff_cap, self.backoff_base * (2.0 ** max(0, attempts - 1))
            )
            self._db.execute(
                "UPDATE jobs SET status = ?, owner = NULL, lease_deadline = NULL, "
                "error = ?, backoff_until = ?, updated_at = ? WHERE id = ?",
                (FAILED, error, now + backoff, now, job_id),
            )
            tracer = get_tracer()
            if tracer.enabled:
                tracer.metrics.observe(
                    "queue.backoff_seconds", backoff, boundaries=BACKOFF_BUCKETS
                )

    def _owned_row(self, job_id: int, owner: str) -> sqlite3.Row:
        row = self._db.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise QueueError(f"no such job: {job_id}")
        if row["status"] != LEASED or row["owner"] != owner:
            raise LostLease(
                f"job {job_id} is {row['status']} owned by {row['owner']!r}, "
                f"not leased by {owner!r}"
            )
        return row

    def heartbeat(self, job_id: int, owner: str, lease_seconds: float = 30.0) -> None:
        """Extend the caller's lease; raises :class:`LostLease` when the
        lease was reaped (the worker must abandon the job)."""
        now = self.clock()
        with get_tracer().span("queue.heartbeat", job=job_id) as span:
            self._db.execute("BEGIN IMMEDIATE")
            committed = False
            try:
                row = self._owned_row(job_id, owner)
                if row["lease_deadline"] is not None and row["lease_deadline"] < now:
                    # Expired but not yet reaped: losing it here keeps the
                    # invariant that an expired lease is never silently renewed.
                    self._retry_or_dead_locked(
                        job_id, row["attempts"], row["max_attempts"],
                        "lease expired (heartbeat too late)", now,
                    )
                    self._db.execute("COMMIT")
                    committed = True
                    span.set(lost=True)
                    raise LostLease(f"job {job_id}: lease expired before heartbeat")
                self._db.execute(
                    "UPDATE jobs SET lease_deadline = ?, updated_at = ? WHERE id = ?",
                    (now + lease_seconds, now, job_id),
                )
                self._db.execute("COMMIT")
                committed = True
                self._count("queue.heartbeats")
            except BaseException:
                if not committed:
                    self._db.execute("ROLLBACK")
                raise

    def complete(self, job_id: int, owner: str, result: dict | None = None) -> None:
        """Mark the caller's leased job ``done`` with an optional result."""
        # Crash-before-commit point: the work happened, the completion is
        # lost — the job must be re-leased and recomputed after the lease
        # times out (cheaply, thanks to the warm artifact store).
        self.faults.fire("queue.complete.crash")
        now = self.clock()
        with get_tracer().span("queue.complete", job=job_id):
            self._db.execute("BEGIN IMMEDIATE")
            try:
                self._owned_row(job_id, owner)
                self._db.execute(
                    "UPDATE jobs SET status = ?, owner = NULL, lease_deadline = NULL, "
                    "result = ?, error = NULL, updated_at = ? WHERE id = ?",
                    (DONE, json.dumps(result or {}, sort_keys=True), now, job_id),
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        self._count("queue.completions")

    def fail(self, job_id: int, owner: str, error: str) -> None:
        """Record a failed attempt: retry with backoff, or dead-letter."""
        now = self.clock()
        with get_tracer().span("queue.fail", job=job_id):
            self._db.execute("BEGIN IMMEDIATE")
            try:
                row = self._owned_row(job_id, owner)
                self._retry_or_dead_locked(
                    job_id, row["attempts"], row["max_attempts"], error, now
                )
                self._db.execute("COMMIT")
            except BaseException:
                self._db.execute("ROLLBACK")
                raise
        self._count("queue.failures")

    # -- introspection -----------------------------------------------------

    def get(self, job_id: int) -> Job:
        row = self._db.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise QueueError(f"no such job: {job_id}")
        return _row_to_job(row)

    def jobs(self, status: str | None = None) -> list[Job]:
        if status is None:
            rows = self._db.execute("SELECT * FROM jobs ORDER BY id").fetchall()
        else:
            require(status in STATES, f"unknown status {status!r}")
            rows = self._db.execute(
                "SELECT * FROM jobs WHERE status = ? ORDER BY id", (status,)
            ).fetchall()
        return [_row_to_job(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """``{status: n}`` over all states (zeros included)."""
        out = {s: 0 for s in STATES}
        for row in self._db.execute(
            "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
        ):
            out[row["status"]] = row["n"]
        return out

    def pending(self) -> int:
        """Jobs still needing a worker (open + leased + failed-in-backoff)."""
        counts = self.counts()
        return sum(counts[s] for s in PENDING_STATES)

    def summary(self) -> str:
        counts = self.counts()
        total = sum(counts.values())
        parts = ", ".join(f"{counts[s]} {s}" for s in STATES)
        return f"queue: {total} job(s) — {parts}"


def encode_result(result: Any) -> dict:
    """JSON-safe shallow copy of a worker result dict."""
    return json.loads(json.dumps(result, sort_keys=True, default=float))


__all__ = [
    "Job",
    "JobQueue",
    "QueueError",
    "LostLease",
    "OPEN",
    "LEASED",
    "DONE",
    "FAILED",
    "DEAD",
    "STATES",
    "PENDING_STATES",
    "encode_result",
]
