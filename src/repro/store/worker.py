"""Stateless assembly workers: pull jobs, assemble against the shared store.

``python -m repro work run`` drives :func:`run_worker`: claim a job from
the :class:`~repro.store.queue.JobQueue`, execute its payload through the
batch engine with a :class:`~repro.store.tiered.TieredPatternCache` over
the shared :class:`~repro.store.store.ArtifactStore`, and write the result
summary back to the job row.  Any number of workers — across processes
and machines sharing the service root — drain one queue against one warm
cache; a worker killed at any instant loses at most its current attempt
(the queue's lease/retry machinery re-opens the job, and the store makes
the recomputation cheap).

A background heartbeat thread renews the lease while the handler runs, so
slow jobs are not reaped mid-computation; if the lease is lost anyway
(reaped during a stall), the result is dropped — the job belongs to
someone else now.

The ``"assemble"`` job payload mirrors the ``repro batch`` CLI::

    {"cells": 12, "grid": "3x3", "mesh": null, "partitioner": "boxes",
     "parts": 0, "seed": 0, "device": "cpu", "floating": true,
     "execution": "per-member", "signature": "frame", "canonicalize": true}

and the result records grouping/cache/store counters plus ``sc_digest`` —
a SHA-256 over every assembled Schur complement's bytes, the equality
witness the crash-recovery tests compare across interrupted and
uninterrupted runs.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import get_tracer
from repro.store.faults import NO_FAULTS, FaultInjector, InjectedCrash
from repro.store.queue import JobQueue, LostLease
from repro.store.store import ArtifactStore
from repro.store.tiered import TieredPatternCache
from repro.util import require

#: Default payload of an ``assemble`` job (unknown payload keys rejected).
DEFAULT_ASSEMBLE_PAYLOAD = {
    "cells": 12,
    "grid": "3x3",
    "mesh": None,
    "partitioner": "boxes",
    "parts": 0,
    "seed": 0,
    "device": "cpu",
    "floating": True,
    "execution": "per-member",
    "signature": "frame",
    "canonicalize": True,
}


def sc_digest(results) -> str:
    """SHA-256 over the assembled Schur complements, in item order.

    Bitwise-stable for a fixed environment and a deterministic execution
    path — the witness that a crash-interrupted, re-leased job recomputed
    exactly what an uninterrupted run produces.
    """
    h = hashlib.sha256()
    for res in results:
        f = np.ascontiguousarray(np.asarray(res.f, dtype=np.float64))
        h.update(str(f.shape).encode())
        h.update(f.tobytes())
    return h.hexdigest()


def build_assemble_inputs(payload: dict):
    """Materialize an ``assemble`` payload into ``(items, engine_kwargs)``
    groundwork: problem → decomposition → factorized batch items."""
    from repro.batch import items_from_decomposition
    from repro.dd import decompose
    from repro.fem import heat_problem, heat_transfer_2d, heat_transfer_3d
    from repro.part import MESH_ZOO, make_mesh

    cfg = dict(DEFAULT_ASSEMBLE_PAYLOAD)
    unknown = set(payload) - set(cfg)
    require(not unknown, f"unknown assemble payload keys: {sorted(unknown)}")
    cfg.update(payload)

    dirichlet = () if cfg["floating"] else ("left",)
    mesh_name = cfg["mesh"] or "square"
    if mesh_name == "square":
        problem = heat_transfer_2d(cfg["cells"], dirichlet=dirichlet)
    elif mesh_name == "cube":
        problem = heat_transfer_3d(cfg["cells"], dirichlet=dirichlet)
    else:
        mesh_dim, _ = MESH_ZOO[mesh_name]
        problem = heat_problem(
            make_mesh(mesh_name, cfg["cells"], seed=cfg["seed"]), dirichlet=dirichlet
        )
    grid = tuple(int(g) for g in str(cfg["grid"]).split("x"))
    if cfg["partitioner"] == "boxes":
        decomposition = decompose(problem, grid=grid)
    else:
        n_parts = cfg["parts"] or int(np.prod(grid))
        decomposition = decompose(
            problem,
            n_subdomains=n_parts,
            partitioner=cfg["partitioner"],
            seed=cfg["seed"],
        )
    items = items_from_decomposition(decomposition, canonicalize=cfg["canonicalize"])
    return items, cfg


def run_assemble_job(
    payload: dict, store: ArtifactStore, faults: FaultInjector | None = None
) -> dict:
    """Execute one ``assemble`` job against the shared store; returns the
    JSON-safe result summary written to the job row."""
    from repro.batch import BatchAssembler
    from repro.core import default_config

    faults = faults if faults is not None else NO_FAULTS
    items, cfg = build_assemble_inputs(payload)
    dim = 3 if (cfg["mesh"] or "square") == "cube" else 2
    cache = TieredPatternCache(store)
    config = default_config(cfg["device"], dim)
    if cfg["device"] == "gpu":
        engine = BatchAssembler(config=config, cache=cache,
                                signature_mode=cfg["signature"])
    else:
        engine = BatchAssembler.for_cpu(config=config, cache=cache,
                                        signature_mode=cfg["signature"])
    batch = engine.assemble_batch(items, execution=cfg["execution"], n_workers=1)
    # Crash-mid-job point: the assembly (and its store puts) happened, the
    # completion has not — recovery must re-lease and recompute bit-equal
    # results from the now-warm store.
    faults.fire("worker.job.crash")
    stats = batch.stats
    return {
        "n_subdomains": stats.n_subdomains,
        "n_groups": stats.n_groups,
        "hit_rate": stats.hit_rate,
        "store_hits": stats.store_hits,
        "store_misses": stats.store_misses,
        "n_quarantined": stats.n_quarantined,
        "analysis_seconds": stats.analysis_seconds,
        "analysis_seconds_saved": stats.analysis_seconds_saved,
        "sc_digest": sc_digest(batch.results),
    }


#: Job-kind dispatch of :func:`run_worker`.
JOB_HANDLERS = {"assemble": run_assemble_job}


@dataclass
class WorkerStats:
    """Outcome of one :func:`run_worker` invocation."""

    owner: str = ""
    n_claimed: int = 0
    n_done: int = 0
    n_failed: int = 0
    n_lost_leases: int = 0
    wall_seconds: float = 0.0
    job_ids: list[int] = field(default_factory=list)
    job_seconds: list[float] = field(default_factory=list)
    trace_path: str | None = None

    def summary(self) -> str:
        out = (
            f"worker {self.owner}: {self.n_done} done, {self.n_failed} failed, "
            f"{self.n_lost_leases} lost lease(s) of {self.n_claimed} claimed "
            f"in {self.wall_seconds:.2f}s"
        )
        if self.job_seconds:
            ordered = sorted(self.job_seconds)

            def pct(q: float) -> float:
                idx = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
                return ordered[idx]

            out += (
                f" (job p50 {pct(50):.3f}s, p90 {pct(90):.3f}s, "
                f"p99 {pct(99):.3f}s)"
            )
        return out


class _Heartbeat:
    """Daemon thread renewing a job lease while its handler runs."""

    def __init__(
        self, queue: JobQueue, job_id: int, owner: str, lease_seconds: float
    ) -> None:
        self._queue = queue
        self._job_id = job_id
        self._owner = owner
        self._lease = lease_seconds
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=self._lease)

    def _run(self) -> None:
        while not self._stop.wait(self._lease / 3.0):
            try:
                self._queue.heartbeat(self._job_id, self._owner, self._lease)
            except LostLease:
                self.lost = True
                return
            except Exception:
                # A flaky heartbeat must not kill the computation; the
                # lease either survives to the next beat or is reaped.
                pass


def worker_trace_path(trace_dir, owner: str) -> Path:
    """Where :func:`run_worker` checkpoints *owner*'s trace snapshot."""
    return Path(trace_dir) / f"WORKER_{owner}.json"


def snapshot_worker_trace(tracer, trace_dir, owner: str) -> str | None:
    """Write *owner*'s trace + metrics snapshot under *trace_dir*.

    Atomic overwrite (tmp + rename), so a worker killed mid-write leaves
    the previous checkpoint intact — a crashed worker always contributes
    its last durable snapshot to the fleet merge.  No-op when tracing is
    off or *trace_dir* is ``None``.
    """
    if trace_dir is None or not tracer.enabled:
        return None
    return tracer.trace(worker=owner).save(worker_trace_path(trace_dir, owner))


def run_worker(
    queue: JobQueue,
    store: ArtifactStore,
    owner: str,
    lease_seconds: float = 30.0,
    poll_seconds: float = 0.2,
    max_jobs: int | None = None,
    timeout: float | None = None,
    faults: FaultInjector | None = None,
    handlers: dict | None = None,
    trace_dir=None,
) -> WorkerStats:
    """Drain eligible jobs from *queue* until nothing is pending.

    Runs until the queue has no pending work (done/dead only), *max_jobs*
    jobs were processed, or *timeout* wall seconds elapsed — whichever
    comes first.  While other workers hold leases or failed jobs sit in
    backoff, the loop polls every *poll_seconds*.

    With tracing enabled, every ``worker.job`` span carries the job's
    submit-time :class:`~repro.obs.TraceContext` (``trace_id`` /
    ``remote_parent`` attributes) so the fleet merge links it back to the
    submitter's ``queue.submit`` span — including jobs reclaimed from a
    crashed worker, which continue the *original* trace.  When *trace_dir*
    is given the worker checkpoints its trace + metrics snapshot
    (``WORKER_<owner>.json``) after every job and at drain end.

    Failure semantics: a handler exception fails the attempt
    (retry-with-backoff via the queue); an
    :class:`~repro.store.faults.InjectedCrash` propagates *without any
    cleanup* — the simulated ``kill -9`` the recovery tests rely on; a
    lease lost mid-computation drops the result.
    """
    faults = faults if faults is not None else NO_FAULTS
    handlers = handlers if handlers is not None else JOB_HANDLERS
    stats = WorkerStats(owner=owner)
    t0 = time.perf_counter()
    tracer = get_tracer()

    def count(name: str, value: float = 1.0) -> None:
        if tracer.enabled:
            tracer.metrics.count(name, value)

    with tracer.span("worker.run", owner=owner):
        while True:
            stats.wall_seconds = time.perf_counter() - t0
            if max_jobs is not None and stats.n_claimed >= max_jobs:
                break
            if timeout is not None and stats.wall_seconds > timeout:
                break
            job = queue.claim(owner, lease_seconds=lease_seconds)
            if job is None:
                if queue.pending() == 0:
                    break
                time.sleep(poll_seconds)
                continue
            stats.n_claimed += 1
            stats.job_ids.append(job.id)
            count("worker.jobs_claimed")
            handler = handlers.get(job.kind)
            # Queue-wait phase: submit-to-lease latency, on the queue's
            # clock (created_at and claim share it, so injectable clocks
            # measure correctly in tests).
            wait = max(0.0, queue.clock() - job.created_at) if job.created_at else None
            context = job.context
            link_attrs = context.child_attrs() if context is not None else {}
            job_t0 = time.perf_counter()
            with tracer.span(
                "worker.job", job=job.id, kind=job.kind, attempt=job.attempts,
                **link_attrs,
            ) as span:
                if wait is not None:
                    span.set(queue_wait_s=wait)
                    if tracer.enabled:
                        tracer.metrics.observe("worker.queue_wait_seconds", wait)
                try:
                    if handler is None:
                        raise ValueError(f"no handler for job kind {job.kind!r}")
                    with _Heartbeat(queue, job.id, owner, lease_seconds) as hb:
                        # Compute phase — distinct from the enclosing lease
                        # span so the merged timeline separates lease
                        # bookkeeping from actual assembly time.
                        with tracer.span("worker.compute", job=job.id):
                            result = handler(job.payload, store, faults)
                    if hb.lost:
                        stats.n_lost_leases += 1
                        count("worker.lost_leases")
                        continue
                    queue.complete(job.id, owner, result)
                    stats.n_done += 1
                    count("worker.jobs_done")
                    job_s = time.perf_counter() - job_t0
                    stats.job_seconds.append(job_s)
                    if tracer.enabled:
                        tracer.metrics.observe("worker.job_seconds", job_s)
                except InjectedCrash:
                    raise  # simulated process death: no fail(), no cleanup
                except LostLease:
                    stats.n_lost_leases += 1
                    count("worker.lost_leases")
                except Exception as exc:
                    queue.fail(job.id, owner, f"{type(exc).__name__}: {exc}")
                    stats.n_failed += 1
                    count("worker.jobs_failed")
            stats.trace_path = (
                snapshot_worker_trace(tracer, trace_dir, owner) or stats.trace_path
            )
    stats.wall_seconds = time.perf_counter() - t0
    count("worker.wall_seconds", stats.wall_seconds)
    stats.trace_path = (
        snapshot_worker_trace(tracer, trace_dir, owner) or stats.trace_path
    )
    return stats


def reference_digest(payload: dict) -> str:
    """``sc_digest`` of an uninterrupted in-process run of *payload*
    against a throwaway store — the ground truth of the recovery tests."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        result = run_assemble_job(payload, ArtifactStore(tmp))
    return result["sc_digest"]


__all__ = [
    "DEFAULT_ASSEMBLE_PAYLOAD",
    "JOB_HANDLERS",
    "WorkerStats",
    "build_assemble_inputs",
    "reference_digest",
    "run_assemble_job",
    "run_worker",
    "sc_digest",
    "snapshot_worker_trace",
    "worker_trace_path",
]
