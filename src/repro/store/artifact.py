"""Artifact envelope: versioned, checksummed serialization of pattern data.

One artifact file holds one assembly artifact — a
:class:`~repro.batch.cache.SymbolicArtifacts` bundle, a
:class:`~repro.sparse.canonical.CanonicalRelabeling`, a
:class:`~repro.sparse.canonical.UnionPlan`, a priced plan — wrapped in a
self-describing envelope::

    MAGIC (4B) | header length (4B BE) | header JSON | payload (pickle)

The header carries the schema version, the artifact *kind*, the full cache
key (file names are hashed, so the key must live inside), the payload byte
length and a SHA-256 checksum of the payload.  Decoding validates all of
it, in order, and raises a specific :class:`ArtifactError` subclass per
failure mode so the store can distinguish "not ours" from "torn write"
from "written by a future version" — every one of which it quarantines
rather than serves (see :mod:`repro.store.store`).

The payload is a pickle: artifacts are trusted intra-fleet data produced
by our own workers (the store directory has the same trust level as the
code checkout).  The checksum guards against *corruption*, not against
adversarial payloads — do not point the store at untrusted files.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import struct
from dataclasses import dataclass
from typing import Any

#: File magic of artifact envelopes ("RePro STOre").
MAGIC = b"RSTO"

#: Envelope schema version.  Bump on any layout change; readers quarantine
#: (never guess at) versions they do not know.
SCHEMA_VERSION = 1

#: Known artifact kinds (informational — the store accepts any string, the
#: constant names keep call sites consistent).
KIND_SYMBOLIC = "symbolic"
KIND_RELABELING = "relabeling"
KIND_UNION_PLAN = "union-plan"
KIND_PRICED_PLAN = "priced-plan"


class ArtifactError(Exception):
    """An envelope failed to decode.  Every subclass is a quarantine, not
    a crash: the store recomputes the artifact instead of serving it."""


class ArtifactCorrupt(ArtifactError):
    """Torn/bit-flipped content: bad magic, short payload, checksum
    mismatch or an unpicklable payload."""


class ArtifactSchemaMismatch(ArtifactError):
    """Written under a schema version this reader does not speak."""


@dataclass(frozen=True)
class ArtifactHeader:
    """Decoded envelope metadata (available even when the payload is not)."""

    schema: int
    kind: str
    key: str
    payload_bytes: int
    checksum: str


def checksum(payload: bytes) -> str:
    """Hex SHA-256 of an artifact payload."""
    return hashlib.sha256(payload).hexdigest()


def key_digest(key: str) -> str:
    """Filesystem-safe digest of a cache key (keys embed config/spec reprs
    with characters no filename wants); the full key lives in the header."""
    return hashlib.sha256(key.encode()).hexdigest()


def encode_artifact(obj: Any, kind: str, key: str) -> bytes:
    """Wrap *obj* in a checksummed envelope; the inverse of :func:`decode_artifact`."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "key": key,
        "payload_bytes": len(payload),
        "checksum": checksum(payload),
    }
    header_bytes = json.dumps(header, sort_keys=True).encode()
    return MAGIC + struct.pack(">I", len(header_bytes)) + header_bytes + payload


def decode_header(data: bytes) -> tuple[ArtifactHeader, int]:
    """Parse and validate the envelope header of *data*.

    Returns ``(header, payload_offset)``; raises :class:`ArtifactCorrupt`
    on malformed framing and :class:`ArtifactSchemaMismatch` on an unknown
    schema version.
    """
    if len(data) < len(MAGIC) + 4:
        raise ArtifactCorrupt(f"truncated envelope: {len(data)} bytes")
    if data[: len(MAGIC)] != MAGIC:
        raise ArtifactCorrupt(f"bad magic {data[:len(MAGIC)]!r}")
    (header_len,) = struct.unpack(">I", data[len(MAGIC) : len(MAGIC) + 4])
    start = len(MAGIC) + 4
    if len(data) < start + header_len:
        raise ArtifactCorrupt("truncated envelope header")
    try:
        raw = json.loads(data[start : start + header_len].decode())
        header = ArtifactHeader(
            schema=int(raw["schema"]),
            kind=str(raw["kind"]),
            key=str(raw["key"]),
            payload_bytes=int(raw["payload_bytes"]),
            checksum=str(raw["checksum"]),
        )
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise ArtifactCorrupt(f"unreadable envelope header: {exc}") from exc
    if header.schema != SCHEMA_VERSION:
        raise ArtifactSchemaMismatch(
            f"artifact schema {header.schema} != reader schema {SCHEMA_VERSION}"
        )
    return header, start + header_len


def decode_artifact(
    data: bytes, expect_kind: str | None = None, expect_key: str | None = None
) -> tuple[Any, ArtifactHeader]:
    """Decode and fully validate an envelope back into ``(obj, header)``.

    Validation order: framing → schema version → payload length (a torn
    write truncates here) → checksum (a bit flip lands here) → unpickle →
    optional kind/key identity (a hash-bucket mixup lands here).  Any
    failure raises an :class:`ArtifactError` subclass.
    """
    header, offset = decode_header(data)
    payload = data[offset:]
    if len(payload) != header.payload_bytes:
        raise ArtifactCorrupt(
            f"torn payload: {len(payload)} bytes != declared {header.payload_bytes}"
        )
    if checksum(payload) != header.checksum:
        raise ArtifactCorrupt("payload checksum mismatch")
    if expect_kind is not None and header.kind != expect_kind:
        raise ArtifactCorrupt(
            f"artifact kind {header.kind!r} != expected {expect_kind!r}"
        )
    if expect_key is not None and header.key != expect_key:
        raise ArtifactCorrupt("artifact key does not match the requested key")
    try:
        obj = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types on bad bytes
        raise ArtifactCorrupt(f"payload does not unpickle: {exc}") from exc
    return obj, header


__all__ = [
    "MAGIC",
    "SCHEMA_VERSION",
    "KIND_SYMBOLIC",
    "KIND_RELABELING",
    "KIND_UNION_PLAN",
    "KIND_PRICED_PLAN",
    "ArtifactError",
    "ArtifactCorrupt",
    "ArtifactSchemaMismatch",
    "ArtifactHeader",
    "checksum",
    "key_digest",
    "encode_artifact",
    "decode_header",
    "decode_artifact",
]
