"""Benchmark harness: workloads, experiment drivers, result reporting."""

from repro.bench.experiments import (
    EXPERIMENTS,
    experiment_fig5,
    experiment_fig6,
    experiment_fig7,
    experiment_fig8,
    experiment_fig9,
    experiment_fig10,
    experiment_table1,
    run_experiment,
)
from repro.bench.report import ExperimentResult, results_dir
from repro.bench.workloads import (
    PAPER_DOFS_2D,
    PAPER_DOFS_3D,
    KernelWorkload,
    cells_for_dofs,
    clear_workload_cache,
    make_workload,
    size_ladder,
)

__all__ = [
    "run_experiment",
    "EXPERIMENTS",
    "experiment_table1",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig9",
    "experiment_fig10",
    "ExperimentResult",
    "results_dir",
    "KernelWorkload",
    "make_workload",
    "cells_for_dofs",
    "size_ladder",
    "clear_workload_cache",
    "PAPER_DOFS_2D",
    "PAPER_DOFS_3D",
]
