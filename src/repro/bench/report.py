"""Benchmark result collection and emission.

Every experiment driver returns an :class:`ExperimentResult` holding the
paper-style series tables; the benchmark scripts print them and persist them
under ``benchmarks/results/`` so runs can be diffed and EXPERIMENTS.md can
quote them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.util import Table, atomic_write_text, format_series


@dataclass
class ExperimentResult:
    """Structured output of one table/figure reproduction."""

    experiment_id: str  # e.g. "fig07"
    title: str
    tables: list[tuple[str, str]] = field(default_factory=list)  # (name, rendered)
    notes: list[str] = field(default_factory=list)
    metrics: dict[str, float] = field(default_factory=dict)  # headline numbers

    def add_series(self, name, x_label, x_values, series) -> None:
        self.tables.append(
            (name, format_series(x_label, x_values, series, title=name))
        )

    def add_table(self, name: str, table: Table) -> None:
        self.tables.append((name, table.render()))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for _, rendered in self.tables:
            parts.append(rendered)
            parts.append("")
        if self.metrics:
            parts.append("headline metrics:")
            for k, v in self.metrics.items():
                parts.append(f"  {k} = {v:.4g}")
            parts.append("")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def save(self, directory: str) -> str:
        path = os.path.join(directory, f"{self.experiment_id}.txt")
        return atomic_write_text(path, self.render() + "\n")


def results_dir() -> str:
    """Default directory for persisted benchmark tables."""
    return os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results"),
    )


__all__ = ["ExperimentResult", "results_dir"]
