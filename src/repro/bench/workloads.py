"""Benchmark workloads: single floating subdomains across the paper's size
ladders (§4).

The paper evaluates per-subdomain kernel times on heat-transfer subdomains
of a uniformly discretized square/cube, with the subdomain count scaled so
the global problem stays ~8.4M (2-D) / ~1.1M (3-D) unknowns.  Since all
per-subdomain quantities depend only on the subdomain, the benches build a
*single* interior (floating) subdomain per size: a pure-Neumann unit
square/cube with one Lagrange multiplier per boundary node (its whole
surface glued to neighbours, like any interior subdomain of a large grid).

Workloads are cached per (dim, cells) — the factorization is by far the
most expensive part of constructing one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.fem.assembly import assemble_load, assemble_stiffness
from repro.fem.mesh import unit_cube_mesh, unit_square_mesh
from repro.sparse import (
    cholesky,
    choose_fixing_dofs,
    choose_fixing_dofs_by_kernel,
    choose_fixing_nodes,
    regularize,
)
from repro.sparse.cholesky import CholeskyFactor
from repro.util import require

#: The paper's 2-D DOF ladder (Fig. 10 labels).  Sizes above ~66k are only
#: swept with ``paper_scale=True``.
PAPER_DOFS_2D = [98, 162, 288, 578, 1152, 2178, 4232, 8450, 16562, 33282, 66248]
PAPER_DOFS_2D_FULL = PAPER_DOFS_2D + [132098, 263538]

#: The paper's 3-D DOF ladder — perfect cubes 4^3 .. 41^3.
PAPER_DOFS_3D = [64, 125, 216, 343, 729, 1331, 2744, 4913, 9261, 17576, 35937]
PAPER_DOFS_3D_FULL = PAPER_DOFS_3D + [68921]


@dataclass
class KernelWorkload:
    """One benchmark subdomain: factor + gluing, ready for assembly."""

    dim: int
    n_dofs: int
    n_multipliers: int
    factor: CholeskyFactor
    bt: sp.csc_matrix
    k_reg: sp.csr_matrix
    coords: np.ndarray
    f: np.ndarray

    @property
    def label(self) -> str:
        return f"{self.dim}D/{self.n_dofs}"


def cells_for_dofs(dim: int, target_dofs: int) -> int:
    """Cells per axis so the node count best approximates *target_dofs*."""
    require(dim in (2, 3), "dim must be 2 or 3")
    require(target_dofs >= (2**dim), "target too small")
    n = max(1, round(target_dofs ** (1.0 / dim)) - 1)
    # Check the neighbours for the closest node count.
    best = min(
        (abs((c + 1) ** dim - target_dofs), c) for c in (n - 1, n, n + 1) if c >= 1
    )
    return best[1]


_CACHE: dict[tuple[int, int], KernelWorkload] = {}


def make_workload(dim: int, target_dofs: int, use_cache: bool = True) -> KernelWorkload:
    """Build (or fetch) the floating benchmark subdomain closest to
    *target_dofs* unknowns."""
    cells = cells_for_dofs(dim, target_dofs)
    key = (dim, cells)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    mesh = unit_square_mesh(cells) if dim == 2 else unit_cube_mesh(cells)
    k = assemble_stiffness(mesh)
    f = assemble_load(mesh)
    coords = mesh.coords
    fixing = choose_fixing_dofs(k, 1, coords=coords)
    k_reg = regularize(k, fixing)
    factor = cholesky(k_reg, ordering="nd", coords=coords)

    boundary = mesh.boundary_nodes()
    m = boundary.size
    # One multiplier per boundary node; alternate signs like the +1/-1
    # convention of the real gluing (sign is irrelevant to the kernels).
    signs = np.where(np.arange(m) % 2 == 0, 1.0, -1.0)
    bt = sp.csc_matrix(
        (signs, (boundary, np.arange(m))), shape=(mesh.n_nodes, m)
    )
    wl = KernelWorkload(
        dim=dim,
        n_dofs=mesh.n_nodes,
        n_multipliers=m,
        factor=factor,
        bt=bt,
        k_reg=k_reg,
        coords=coords,
        f=f,
    )
    if use_cache:
        _CACHE[key] = wl
    return wl


def clear_workload_cache() -> None:
    """Drop all cached workloads (memory hygiene for long bench sessions)."""
    _CACHE.clear()


def make_elasticity_workload(
    dim: int, target_dofs: int, use_cache: bool = True
) -> KernelWorkload:
    """A floating *elasticity* benchmark subdomain (kernel dim 3 / 6).

    Same shape as :func:`make_workload` but with vector displacement DOFs
    and rigid-body-mode kernels — exercises the multi-dimensional kernel
    paths (regularization with several fixing DOFs, wider ``R_i``).
    """
    from repro.fem.elasticity import assemble_body_force, assemble_elasticity

    require(dim in (2, 3), "dim must be 2 or 3")
    cells = cells_for_dofs(dim, max(target_dofs // dim, 2**dim))
    key = (dim + 10, cells)  # separate cache namespace from heat transfer
    if use_cache and key in _CACHE:
        return _CACHE[key]

    mesh = unit_square_mesh(cells) if dim == 2 else unit_cube_mesh(cells)
    k = assemble_elasticity(mesh)
    f = assemble_body_force(mesh, np.eye(dim)[-1] * -1.0)  # downward gravity
    coords = np.repeat(mesh.coords, dim, axis=0)  # per-DOF coordinates
    # Exactly kernel_dim fixing DOFs picked from the rigid-body-mode basis:
    # this makes K_reg^{-1} an *exact* generalized inverse of K (see
    # repro.sparse.regularization.choose_fixing_dofs_by_kernel).
    from repro.fem.elasticity import rigid_body_modes

    fixing = choose_fixing_dofs_by_kernel(rigid_body_modes(mesh.coords))
    k_reg = regularize(k, fixing)
    factor = cholesky(k_reg, ordering="nd", coords=coords)

    boundary_nodes = mesh.boundary_nodes()
    bdofs = (boundary_nodes[:, None] * dim + np.arange(dim)[None, :]).ravel()
    m = bdofs.size
    signs = np.where(np.arange(m) % 2 == 0, 1.0, -1.0)
    bt = sp.csc_matrix((signs, (bdofs, np.arange(m))), shape=(k.shape[0], m))
    wl = KernelWorkload(
        dim=dim,
        n_dofs=k.shape[0],
        n_multipliers=m,
        factor=factor,
        bt=bt,
        k_reg=k_reg,
        coords=coords,
        f=f,
    )
    if use_cache:
        _CACHE[key] = wl
    return wl


def size_ladder(dim: int, paper_scale: bool = False, cap: int | None = None) -> list[int]:
    """The DOF ladder for a dimension, optionally extended/capped."""
    require(dim in (2, 3), "dim must be 2 or 3")
    if dim == 2:
        ladder = PAPER_DOFS_2D_FULL if paper_scale else PAPER_DOFS_2D
    else:
        ladder = PAPER_DOFS_3D_FULL if paper_scale else PAPER_DOFS_3D
    if cap is not None:
        ladder = [s for s in ladder if s <= cap]
    return list(ladder)


__all__ = [
    "KernelWorkload",
    "make_workload",
    "make_elasticity_workload",
    "cells_for_dofs",
    "size_ladder",
    "clear_workload_cache",
    "PAPER_DOFS_2D",
    "PAPER_DOFS_3D",
    "PAPER_DOFS_2D_FULL",
    "PAPER_DOFS_3D_FULL",
]
