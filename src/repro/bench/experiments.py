"""Experiment drivers — one per table/figure of the paper's evaluation.

Each ``experiment_*`` function regenerates the corresponding result:
workload generation, parameter sweep, baselines, and the same rows/series
the paper plots.  Timings are simulated seconds from the device cost model
(see DESIGN.md); the *shape* — who wins, by what factor, where crossovers
fall — is the reproduction target, not absolute silicon numbers.

``quick=True`` (the default used by the pytest benches) trims the sweeps to
sizes this box can build in minutes; ``paper_scale=True`` extends towards
the full ladders of the paper.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bench.report import ExperimentResult
from repro.bench.workloads import KernelWorkload, make_workload, size_ladder
from repro.core import (
    AssemblyConfig,
    SchurAssembler,
    TABLE1_OPTIMA,
    baseline_config,
    by_count,
    by_size,
    default_config,
)
from repro.feti import (
    APPROACHES,
    ApproachTiming,
    amortization_point,
    crossover_table,
    estimate_approach_timing,
)
from repro.feti.timing import CHOLMOD, MKL_PARDISO
from repro.gpu import A100_40GB, EPYC_7763_CORE, KernelCost, csx_bytes
from repro.runtime import SubdomainWork, run_preprocessing_pipeline
from repro.util import Table, require


def _spec(device: str):
    return A100_40GB if device == "gpu" else EPYC_7763_CORE


def _assembler(config: AssemblyConfig, device: str) -> SchurAssembler:
    if device == "gpu":
        return SchurAssembler(config=config, spec=A100_40GB)
    return SchurAssembler.for_cpu(config=config)


def _stage_estimate(wl: KernelWorkload, config: AssemblyConfig, device: str) -> dict:
    return _assembler(config, device).estimate(wl.factor, wl.bt)


def _baseline_for(device: str, dim: int) -> AssemblyConfig:
    # The [9] baseline: whole-factor TRSM through the (cu)SPARSE routine.
    return baseline_config("sparse")


# ---------------------------------------------------------------------------
# Table 1 — optimal splitting of the matrices
# ---------------------------------------------------------------------------

def experiment_table1(
    quick: bool = True, paper_scale: bool = False
) -> ExperimentResult:
    """Sweep block size/count per algorithm x device x dim; report optima."""
    res = ExperimentResult("table1", "Optimal splitting of the matrices")
    rep_dofs = {2: 16562 if quick else 66248, 3: 4913 if quick else 35937}
    size_grid = [50, 100, 200, 500, 1000, 2000]
    count_grid = [1, 5, 10, 50, 100]

    algorithms = {
        "TRSM, RHS splitting": ("rhs_split", None, "trsm"),
        "TRSM, factor splitting": ("factor_split", None, "trsm"),
        "SYRK, input splitting": (None, "input_split", "syrk"),
        "SYRK, output splitting": (None, "output_split", "syrk"),
    }
    table = Table(
        ["algorithm", "CPU 2D", "CPU 3D", "GPU 2D", "GPU 3D", "paper CPU2D/CPU3D/GPU2D/GPU3D"],
        title="Table 1: best split setting per algorithm (S = size, C = count)",
    )
    paper_rows = {
        "TRSM, RHS splitting": "S 100 / S 100 / C 1 / S 1000",
        "TRSM, factor splitting": "S 200 / S 200 / S 1000 / S 500",
        "SYRK, input splitting": "S 200 / C 50 / S 2000 / S 1000",
        "SYRK, output splitting": "S 200 / C 10 / S 200 / S 1000",
    }
    for algo, (trsm_v, syrk_v, stage) in algorithms.items():
        row = [algo]
        for device in ("cpu", "gpu"):
            for dim in (2, 3):
                wl = make_workload(dim, rep_dofs[dim])
                base = default_config(device, dim)
                best_spec, best_t = None, math.inf
                for mode, grid in (("size", size_grid), ("count", count_grid)):
                    for v in grid:
                        spec = by_size(v) if mode == "size" else by_count(v)
                        overrides = {}
                        if trsm_v:
                            overrides = {"trsm_variant": trsm_v, "trsm_blocks": spec}
                            if trsm_v == "rhs_split":
                                overrides["prune"] = False
                        else:
                            overrides = {"syrk_variant": syrk_v, "syrk_blocks": spec}
                        cfg = base.with_overrides(**overrides)
                        t = _stage_estimate(wl, cfg, device)[stage]
                        if t < best_t:
                            best_t, best_spec = t, spec
                row.append(best_spec.describe())
        # reorder to CPU2D CPU3D GPU2D GPU3D (loop order already matches)
        table.add_row(row + [paper_rows[algo]])
    res.add_table("table1", table)
    res.add_note(
        "Optima depend on the simulated roofline; agreement with the paper "
        "is expected in *mode* (block size S preferred on large inputs) and "
        "order of magnitude of the best value."
    )
    return res


# ---------------------------------------------------------------------------
# Figure 5 — SC assembly time vs partition parameter
# ---------------------------------------------------------------------------

def experiment_fig5(quick: bool = True, paper_scale: bool = False) -> ExperimentResult:
    """Fixed block count vs fixed block size sweeps (3-D, GPU, factor split)."""
    res = ExperimentResult(
        "fig05", "SC assembly time vs partition parameter (3D, GPU, factor splitting)"
    )
    sizes = {"3k": 2744, "35k": 9261 if quick else 35937}
    params = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 100000]
    series: dict[str, list[float]] = {}
    for label, dofs in sizes.items():
        wl = make_workload(3, dofs)
        base = default_config("gpu", 3)
        for mode in ("count", "size"):
            key = f"{label}, {mode}"
            times = []
            for v in params:
                spec = by_size(v) if mode == "size" else by_count(v)
                cfg = base.with_overrides(trsm_blocks=spec, syrk_blocks=spec)
                times.append(_stage_estimate(wl, cfg, "gpu")["total"] * 1e3)
            series[key] = times
    res.add_series("fig05 (time per subdomain, ms)", "param", params, series)
    for label in sizes:
        times = series[f"{label}, size"]
        best = params[int(np.argmin(times))]
        res.metrics[f"best_block_size_{label}"] = best
        res.metrics[f"u_shape_penalty_small_{label}"] = times[0] / min(times)
    res.add_note(
        "Paper: optimum block size ~500 independent of subdomain size; "
        "block-count optimum grows with size; block size 1 is heavily "
        "launch-overhead bound (U-shape)."
    )
    return res


# ---------------------------------------------------------------------------
# Figure 6 — splitting variants of the optimized kernels
# ---------------------------------------------------------------------------

def experiment_fig6(quick: bool = True, paper_scale: bool = False) -> ExperimentResult:
    """TRSM (rhs/factor/factor+prune) and SYRK (input/output) variant sweep."""
    res = ExperimentResult("fig06", "TRSM and SYRK splitting variants")
    for dim in (2, 3):
        ladder = size_ladder(dim, paper_scale, cap=None if paper_scale else (33282 if dim == 2 else 17576))
        trsm_series: dict[str, list[float]] = {}
        syrk_series: dict[str, list[float]] = {}
        labels = []
        for dofs in ladder:
            wl = make_workload(dim, dofs)
            labels.append(wl.n_dofs)
            for device in ("cpu", "gpu"):
                base = default_config(device, dim)
                variants = {
                    f"{device} rhs": base.with_overrides(
                        trsm_variant="rhs_split",
                        trsm_blocks=TABLE1_OPTIMA[("trsm_rhs", device, dim)],
                        prune=False,
                    ),
                    f"{device} f": base.with_overrides(prune=False),
                    f"{device} f+prune": base.with_overrides(prune=True),
                }
                for name, cfg in variants.items():
                    trsm_series.setdefault(name, []).append(
                        _stage_estimate(wl, cfg, device)["trsm"] * 1e3
                    )
                for sv, key in (("input_split", "syrk_input"), ("output_split", "syrk_output")):
                    cfg = base.with_overrides(
                        syrk_variant=sv, syrk_blocks=TABLE1_OPTIMA[(key, device, dim)]
                    )
                    syrk_series.setdefault(f"{device} {sv.split('_')[0]}", []).append(
                        _stage_estimate(wl, cfg, device)["syrk"] * 1e3
                    )
        res.add_series(f"fig06 TRSM {dim}D (ms)", "dofs", labels, trsm_series)
        res.add_series(f"fig06 SYRK {dim}D (ms)", "dofs", labels, syrk_series)
        last = -1
        res.metrics[f"trsm_{dim}d_prune_gain_at_max"] = (
            trsm_series["gpu f"][last] / trsm_series["gpu f+prune"][last]
        )
    res.add_note(
        "Paper §4.2: factor splitting + pruning optimal for TRSM at large "
        "sizes; SYRK variants nearly tied with input splitting preferred."
    )
    return res


# ---------------------------------------------------------------------------
# Figure 7 — pure TRSM / SYRK kernel times and speedups
# ---------------------------------------------------------------------------

def _library_forward_substitution_time(wl: KernelWorkload, lib: str) -> float:
    """PARDISO/CHOLMOD forward substitution with the full RHS (no sparsity)."""
    nnz, n, m = wl.factor.nnz, wl.n_dofs, wl.n_multipliers
    eff = {"pardiso": 1.25, "cholmod": 1.0}[lib]  # PARDISO's TRSV is leaner
    cost = KernelCost(
        flops=2.0 * nnz * m,
        bytes_moved=csx_bytes(nnz, n) + 2.0 * n * m * 8.0,
        launches=1,
        char_dim=16.0 * eff,
        sparse=True,
    )
    return cost.time_on(EPYC_7763_CORE)


def experiment_fig7(quick: bool = True, paper_scale: bool = False) -> ExperimentResult:
    res = ExperimentResult("fig07", "Pure TRSM and SYRK kernel times + speedup")
    for dim in (2, 3):
        ladder = size_ladder(dim, paper_scale, cap=None if paper_scale else (66248 if dim == 2 else 35937))
        labels: list[int] = []
        trsm: dict[str, list[float]] = {}
        syrk: dict[str, list[float]] = {}
        speedups: dict[str, list[float]] = {}
        for dofs in ladder:
            wl = make_workload(dim, dofs)
            labels.append(wl.n_dofs)
            values: dict[str, float] = {}
            for device in ("cpu", "gpu"):
                est_orig = _stage_estimate(wl, _baseline_for(device, dim), device)
                est_opt = _stage_estimate(wl, default_config(device, dim), device)
                values[f"{device} trsm orig"] = est_orig["trsm"]
                values[f"{device} trsm opt"] = est_opt["trsm"]
                values[f"{device} syrk orig"] = est_orig["syrk"]
                values[f"{device} syrk opt"] = est_opt["syrk"]
            values["cholmod trsv"] = _library_forward_substitution_time(wl, "cholmod")
            values["pardiso trsv"] = _library_forward_substitution_time(wl, "pardiso")
            for key in (
                "cpu trsm orig", "cpu trsm opt", "gpu trsm orig", "gpu trsm opt",
                "cholmod trsv", "pardiso trsv",
            ):
                trsm.setdefault(key, []).append(values[key] * 1e3)
            for key in ("cpu syrk orig", "cpu syrk opt", "gpu syrk orig", "gpu syrk opt"):
                syrk.setdefault(key, []).append(values[key] * 1e3)
            for name, num, den in (
                ("cpu trsm orig/opt", "cpu trsm orig", "cpu trsm opt"),
                ("cpu trsm cholmod/opt", "cholmod trsv", "cpu trsm opt"),
                ("cpu trsm pardiso/opt", "pardiso trsv", "cpu trsm opt"),
                ("cpu syrk orig/opt", "cpu syrk orig", "cpu syrk opt"),
                ("gpu trsm orig/opt", "gpu trsm orig", "gpu trsm opt"),
                ("gpu syrk orig/opt", "gpu syrk orig", "gpu syrk opt"),
            ):
                speedups.setdefault(name, []).append(values[num] / values[den])
        res.add_series(f"fig07 TRSM {dim}D (ms)", "dofs", labels, trsm)
        res.add_series(f"fig07 SYRK {dim}D (ms)", "dofs", labels, syrk)
        res.add_series(f"fig07 speedup {dim}D", "dofs", labels, speedups)
        res.metrics[f"gpu_trsm_speedup_max_{dim}d"] = max(speedups["gpu trsm orig/opt"])
        res.metrics[f"gpu_syrk_speedup_max_{dim}d"] = max(speedups["gpu syrk orig/opt"])
    res.add_note(
        "Paper: speedups grow with subdomain size; theoretical dense limit "
        "~3 (pyramid in prism); 3-D TRSM gains more than 2-D."
    )
    return res


# ---------------------------------------------------------------------------
# Figure 8 — whole explicit SC assembly, sep vs mix
# ---------------------------------------------------------------------------

def experiment_fig8(
    quick: bool = True,
    paper_scale: bool = False,
    n_subdomains: int = 64,
    n_threads: int = 16,
    n_streams: int = 16,
) -> ExperimentResult:
    res = ExperimentResult("fig08", "Whole SC assembly: sep vs mix, orig vs opt")
    for dim in (2, 3):
        ladder = size_ladder(dim, paper_scale, cap=None if paper_scale else (33282 if dim == 2 else 17576))
        labels: list[int] = []
        times: dict[str, list[float]] = {}
        speedup: dict[str, list[float]] = {}
        for dofs in ladder:
            wl = make_workload(dim, dofs)
            labels.append(wl.n_dofs)
            fact = CHOLMOD.factorization_time(wl.factor)
            per: dict[str, float] = {}
            for device in ("cpu", "gpu"):
                for variant, cfg in (
                    ("orig", _baseline_for(device, dim)),
                    ("opt", default_config(device, dim)),
                ):
                    asm = _stage_estimate(wl, cfg, device)["total"]
                    for mode in ("sep", "mix"):
                        work = [
                            SubdomainWork(factorization=fact, assembly=asm)
                            for _ in range(n_subdomains)
                        ]
                        pipe = run_preprocessing_pipeline(
                            work,
                            mode=mode,
                            n_threads=n_threads,
                            n_streams=n_streams,
                            assembly_on_gpu=(device == "gpu"),
                        )
                        if mode == "sep" and device == "gpu":
                            # sep measures the GPU section alone (paper).
                            per_sub = pipe.assembly_makespan / n_subdomains
                        else:
                            per_sub = pipe.makespan / n_subdomains
                        per[f"{device} {mode} {variant}"] = per_sub
            for key, val in per.items():
                times.setdefault(key, []).append(val * 1e3)
            for device in ("cpu", "gpu"):
                for mode in ("sep", "mix"):
                    speedup.setdefault(f"{device} {mode} orig/opt", []).append(
                        per[f"{device} {mode} orig"] / per[f"{device} {mode} opt"]
                    )
        res.add_series(f"fig08 time {dim}D (ms/subdomain)", "dofs", labels, times)
        res.add_series(f"fig08 speedup {dim}D", "dofs", labels, speedup)
        res.metrics[f"gpu_sep_speedup_max_{dim}d"] = max(speedup["gpu sep orig/opt"])
        res.metrics[f"gpu_mix_speedup_max_{dim}d"] = max(speedup["gpu mix orig/opt"])
    res.add_note(
        "Paper: GPU-section (sep) speedup up to 5.1, whole assembly (mix) "
        "up to 3.3 in 3D, above 2 in 2D; CPU sep == mix."
    )
    return res


# ---------------------------------------------------------------------------
# Figure 9 — preprocessing time of all dual-operator approaches
# ---------------------------------------------------------------------------

def experiment_fig9(quick: bool = True, paper_scale: bool = False) -> ExperimentResult:
    res = ExperimentResult("fig09", "Preprocessing time per dual-operator approach")
    order = [
        "expl_cholmod", "expl_mkl", "expl_cpu_opt", "expl_gpu_opt",
        "expl_cuda", "impl_cholmod", "impl_mkl", "expl_hybrid",
    ]
    for dim in (2, 3):
        ladder = size_ladder(dim, paper_scale, cap=None if paper_scale else (33282 if dim == 2 else 17576))
        labels: list[int] = []
        series: dict[str, list[float]] = {name: [] for name in order}
        for dofs in ladder:
            wl = make_workload(dim, dofs)
            labels.append(wl.n_dofs)
            for name in order:
                t = estimate_approach_timing(name, wl.factor, wl.bt, dim)
                series[name].append(t.preprocessing * 1e3)
        res.add_series(f"fig09 preprocessing {dim}D (ms/subdomain)", "dofs", labels, series)
        last = -1
        res.metrics[f"gpu_opt_vs_expl_mkl_{dim}d"] = (
            series["expl_mkl"][last] / series["expl_gpu_opt"][last]
        )
        res.metrics[f"gpu_opt_vs_impl_cholmod_{dim}d"] = (
            series["expl_gpu_opt"][last] / series["impl_cholmod"][last]
        )
    res.add_note(
        "Paper: implicit approaches fastest (factorization only); expl_mkl "
        "wins among explicit in 2D; expl_gpu_opt fastest explicit in 3D "
        "(up to 9.8x over expl_mkl), only ~2.3x slower than implicit."
    )
    return res


# ---------------------------------------------------------------------------
# Figure 10 — amortization of the dual operator
# ---------------------------------------------------------------------------

def experiment_fig10(quick: bool = True, paper_scale: bool = False) -> ExperimentResult:
    res = ExperimentResult("fig10", "Total dual-operator time vs iterations")
    iteration_grid = [1, 3, 10, 30, 100, 300, 1000, 3000, 10000]
    approaches_by_dim = {
        2: ["impl_mkl", "expl_mkl", "expl_hybrid"],
        3: ["impl_mkl", "impl_cholmod", "expl_hybrid", "expl_gpu_opt"],
    }
    for dim in (2, 3):
        ladder = size_ladder(dim, paper_scale, cap=None if paper_scale else (33282 if dim == 2 else 17576))
        amort_rows = Table(
            ["dofs", "m", "amort impl_mkl->expl_gpu_opt", "best@10", "best@1000"],
            title=f"fig10 amortization ({dim}D)",
        )
        for dofs in ladder:
            wl = make_workload(dim, dofs)
            timings = {
                name: estimate_approach_timing(name, wl.factor, wl.bt, dim)
                for name in set(approaches_by_dim[dim]) | {"expl_gpu_opt", "impl_mkl"}
            }
            ap = amortization_point(timings["impl_mkl"], timings["expl_gpu_opt"])
            cross = crossover_table(
                [timings[n] for n in approaches_by_dim[dim]], iteration_grid
            )
            best10 = next(name for it, name, _ in cross if it == 10)
            best1000 = next(name for it, name, _ in cross if it == 1000)
            amort_rows.add_row(
                [wl.n_dofs, wl.n_multipliers, ap if math.isfinite(ap) else "inf", best10, best1000]
            )
            if dofs == ladder[-1]:
                series = {
                    name: [timings[name].total(it) * 1e3 for it in iteration_grid]
                    for name in approaches_by_dim[dim]
                }
                res.add_series(
                    f"fig10 step time {dim}D dofs={wl.n_dofs} (ms/subdomain)",
                    "iterations",
                    iteration_grid,
                    series,
                )
        res.add_table(f"fig10 amortization table ({dim}D)", amort_rows)
        if dim == 3:
            wl = make_workload(3, ladder[-1])
            timings = {
                name: estimate_approach_timing(name, wl.factor, wl.bt, 3)
                for name in ("impl_mkl", "expl_gpu_opt")
            }
            res.metrics["amortization_3d_largest"] = amortization_point(
                timings["impl_mkl"], timings["expl_gpu_opt"]
            )
    res.add_note(
        "Paper: amortization points of expl_gpu_opt sit around 10 "
        "iterations across 3-D subdomain sizes 1k-70k."
    )
    return res


# ---------------------------------------------------------------------------
# Ablations — design choices DESIGN.md calls out (not paper figures)
# ---------------------------------------------------------------------------

def experiment_ablation_ordering(
    quick: bool = True, paper_scale: bool = False
) -> ExperimentResult:
    """Fill-reducing ordering vs stepped shape vs assembly time.

    §3 of the paper: the stepped shape "can be easily achieved if the column
    pivots are approximately uniformly distributed across the rows (which
    holds, e.g., for permutation provided by Metis)".  This ablation swaps
    the ordering under the same subdomain and measures (a) factor fill,
    (b) the stepped density of the permuted RHS (lower = more skippable
    zeros), and (c) the optimized GPU assembly time.
    """
    import scipy.sparse as sp

    from repro.core.stepped import stepped_permutation
    from repro.sparse import cholesky

    res = ExperimentResult(
        "ablation_ordering", "Fill-reducing ordering vs stepped shape"
    )
    dofs = 4913 if quick else 17576
    wl = make_workload(3, dofs)
    table = Table(
        ["ordering", "nnz(L)", "fact flops", "stepped density", "opt time [ms]", "orig time [ms]"],
        title=f"ordering ablation (3D, {wl.n_dofs} DOFs, simulated GPU)",
    )
    opt_times, orig_times, fill = {}, {}, {}
    for ordering in ("nd", "amd", "rcm", "natural"):
        factor = cholesky(wl.k_reg, ordering=ordering, coords=wl.coords)
        bt_rows = wl.bt.tocsr()[factor.perm].tocsc()
        _, shape = stepped_permutation(bt_rows)
        t_opt = SchurAssembler(
            config=default_config("gpu", 3), spec=A100_40GB
        ).estimate(factor, wl.bt)["total"]
        t_orig = SchurAssembler(
            config=_baseline_for("gpu", 3), spec=A100_40GB
        ).estimate(factor, wl.bt)["total"]
        opt_times[ordering] = t_opt
        orig_times[ordering] = t_orig
        fill[ordering] = factor.nnz
        table.add_row(
            [ordering, factor.nnz, factor.flops, shape.density(), t_opt * 1e3, t_orig * 1e3]
        )
    res.add_table("ordering ablation", table)
    # ND's win shows in the fill (and hence factorization + baseline TRSM);
    # the optimized pipeline is much less ordering-sensitive — itself a
    # finding: the split kernels tolerate the ordering as long as pivots
    # stay spread (structured grids spread them even in natural order).
    res.metrics["fill_natural_over_nd"] = fill["natural"] / fill["nd"]
    res.metrics["orig_natural_over_nd"] = orig_times["natural"] / orig_times["nd"]
    res.metrics["opt_spread_across_orderings"] = max(opt_times.values()) / min(
        opt_times.values()
    )
    res.add_note(
        "Nested dissection (the METIS stand-in) minimises fill; the "
        "optimized kernels are comparatively ordering-insensitive because "
        "they skip the zero regions whichever ordering created them."
    )
    return res


def experiment_ablation_pruning(
    quick: bool = True, paper_scale: bool = False
) -> ExperimentResult:
    """Factor-split TRSM: storage (sparse/dense) x pruning on/off (§4.1)."""
    res = ExperimentResult(
        "ablation_pruning", "Factor storage x pruning of the factor-split TRSM"
    )
    for dim, dofs in ((2, 16562 if quick else 66248), (3, 4913 if quick else 35937)):
        wl = make_workload(dim, dofs)
        base = default_config("gpu", dim)
        table = Table(
            ["storage", "prune", "trsm [ms]", "total [ms]"],
            title=f"{dim}D, {wl.n_dofs} DOFs (simulated GPU)",
        )
        values = {}
        for storage in ("sparse", "dense"):
            for prune in (False, True):
                cfg = base.with_overrides(factor_storage=storage, prune=prune)
                est = _stage_estimate(wl, cfg, "gpu")
                values[(storage, prune)] = est["trsm"]
                table.add_row([storage, prune, est["trsm"] * 1e3, est["total"] * 1e3])
        res.add_table(f"pruning ablation {dim}D", table)
        best_storage = "sparse" if dim == 2 else "dense"
        res.metrics[f"prune_gain_{dim}d"] = (
            values[(best_storage, False)] / values[(best_storage, True)]
        )
    res.add_note(
        "Paper §4.1: sparse blocks in 2D, dense in 3D; pruning compensates "
        "small-block degradation and always helps large 3-D subdomains."
    )
    return res


def experiment_elasticity(quick: bool = True, paper_scale: bool = False) -> ExperimentResult:
    """Generality check: the same machinery on elasticity subdomains.

    The paper claims the approach carries over to any SC of the form
    ``B K^{-1} B^T`` (§6).  Elasticity has denser factors, more multipliers
    per node and 3/6-dimensional kernels; the optimization should still win.
    """
    from repro.bench.workloads import make_elasticity_workload

    res = ExperimentResult("elasticity", "Sparsity-aware assembly on elasticity")
    for dim, sizes in ((2, (1152, 4232)), (3, (1331, 4913))):
        table = Table(
            ["dofs", "m", "orig [ms]", "opt [ms]", "speedup"],
            title=f"{dim}D elasticity (simulated GPU)",
        )
        for dofs in sizes:
            wl = make_elasticity_workload(dim, dofs)
            t_orig = _stage_estimate(wl, _baseline_for("gpu", dim), "gpu")["total"]
            t_opt = _stage_estimate(wl, default_config("gpu", dim), "gpu")["total"]
            table.add_row(
                [wl.n_dofs, wl.n_multipliers, t_orig * 1e3, t_opt * 1e3, t_orig / t_opt]
            )
            res.metrics[f"speedup_{dim}d_{wl.n_dofs}"] = t_orig / t_opt
        res.add_table(f"elasticity {dim}D", table)
    res.add_note("Same kernels, no elasticity-specific code paths.")
    return res


EXPERIMENTS = {
    "table1": experiment_table1,
    "fig05": experiment_fig5,
    "fig06": experiment_fig6,
    "fig07": experiment_fig7,
    "fig08": experiment_fig8,
    "fig09": experiment_fig9,
    "fig10": experiment_fig10,
    "ablation_ordering": experiment_ablation_ordering,
    "ablation_pruning": experiment_ablation_pruning,
    "elasticity": experiment_elasticity,
}


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run one experiment driver by id (``table1``, ``fig05`` .. ``fig10``)."""
    require(name in EXPERIMENTS, f"unknown experiment {name!r}; know {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[name](**kwargs)


__all__ = [
    "experiment_table1",
    "experiment_fig5",
    "experiment_fig6",
    "experiment_fig7",
    "experiment_fig8",
    "experiment_fig9",
    "experiment_fig10",
    "experiment_ablation_ordering",
    "experiment_ablation_pruning",
    "experiment_elasticity",
    "EXPERIMENTS",
    "run_experiment",
]
