"""The Schur-complement assembler — the paper's end-to-end algorithm.

Given a Cholesky factor ``L`` of the regularized subdomain matrix and the
transposed gluing matrix ``B̃^T``, assembles the local dual operator

    ``F̃ = B̃ L^{-T} L^{-1} B̃^T = (L^{-1} B̃^T)^T (L^{-1} B̃^T) = Y^T Y``

(eq. 14) with the configured TRSM/SYRK variants:

1. permute the columns of ``B̃^T`` into the stepped shape (§3),
2. (GPU) transfer the factor and the dense RHS to the device,
3. TRSM (orig / RHS-split / factor-split + pruning),
4. SYRK (orig / input-split / output-split),
5. permute the result back to the original multiplier order.

Numerics are exact; time is simulated on the executor's device roofline
plus the PCIe transfer model.  A breakdown per stage is returned so the
benchmarks can reproduce the paper's per-kernel and whole-assembly figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.config import AssemblyConfig, default_config
from repro.core.stepped import SteppedShape, stepped_permutation
from repro.core.syrk_split import syrk_input_split, syrk_orig, syrk_output_split
from repro.core.trsm_split import PruningPlan, trsm_factor_split, trsm_orig, trsm_rhs_split
from repro.gpu.costmodel import FLOAT64_BYTES, csx_bytes, dense_bytes
from repro.gpu.runtime import Executor
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE, PCIE4_X16, DeviceSpec, TransferSpec
from repro.sparse.cholesky import CholeskyFactor
from repro.util import require


@dataclass
class SchurAssemblyResult:
    """Assembled local dual operator plus simulated-time accounting.

    ``f`` is in the *original* multiplier ordering of ``bt``'s columns.
    ``breakdown`` has the simulated seconds per stage: ``transfer``,
    ``permute``, ``trsm``, ``syrk``; ``elapsed`` is their sum.
    """

    f: np.ndarray
    elapsed: float
    breakdown: dict[str, float]
    shape: SteppedShape
    col_perm: np.ndarray
    y: np.ndarray | None = None

    @property
    def n_multipliers(self) -> int:
        return self.f.shape[0]


@dataclass
class MemoryEstimate:
    """Device bytes an assembly needs (for the pipeline's memory pool)."""

    persistent: float  # the SC itself, kept for the iterative solver
    temporary: float  # factor copy + dense RHS, freed after assembly


@dataclass(frozen=True)
class PreparedPattern:
    """Pattern-only artifacts of one assembly, computed once per pattern.

    The batch engine (:mod:`repro.batch`) computes these per *fingerprint
    group* and hands them to :meth:`SchurAssembler.assemble`, which then
    skips the stepped analysis and the pruning scans.  Must describe the
    exact stored pattern of the inputs — sharing across members is only
    valid when their fingerprints match.
    """

    col_perm: np.ndarray
    shape: SteppedShape
    pruning_plan: PruningPlan | None = None


def prepare_pattern(
    bt_rows: sp.csc_matrix,
    config: AssemblyConfig,
    factor_pattern=None,
) -> PreparedPattern:
    """Build the pattern artifacts for one assembly.

    Single source of truth for the stepped-permutation branch, shared by
    :meth:`SchurAssembler.assemble` and the batch engine so the two paths
    cannot drift apart.  *bt_rows* is ``B̃^T`` with the factor's row
    permutation already applied.  When *factor_pattern* (an object exposing
    the factor's sorted CSC ``indptr``/``indices``) is given and the
    configuration uses factor-split pruning, the pruning plan is built too;
    without it the plan stays ``None`` and the kernel scans ad hoc.
    """
    n, m = bt_rows.shape
    if config.use_stepped_permutation:
        col_perm, shape = stepped_permutation(bt_rows)
    else:
        col_perm = np.arange(m, dtype=np.intp)
        shape = SteppedShape(n_rows=n, pivots=np.zeros(m, dtype=np.intp))
    plan = None
    if (
        factor_pattern is not None
        and config.trsm_variant == "factor_split"
        and config.prune
    ):
        plan = PruningPlan.from_pattern(
            factor_pattern.indptr,
            factor_pattern.indices,
            n,
            config.trsm_blocks.resolve(n),
        )
    return PreparedPattern(col_perm=col_perm, shape=shape, pruning_plan=plan)


class SchurAssembler:
    """Assembles explicit Schur complements on a simulated device.

    Parameters
    ----------
    config:
        Kernel variants and block parameters; defaults to the paper's tuned
        GPU/3D configuration.
    spec:
        Device roofline; :data:`~repro.gpu.spec.A100_40GB` or
        :data:`~repro.gpu.spec.EPYC_7763_CORE`.
    transfer:
        Host<->device link; ``None`` (CPU execution) disables transfer
        charges.
    """

    def __init__(
        self,
        config: AssemblyConfig | None = None,
        spec: DeviceSpec = A100_40GB,
        transfer: TransferSpec | None = PCIE4_X16,
    ) -> None:
        self.config = config if config is not None else default_config("gpu", 3)
        self.spec = spec
        self.transfer = transfer if spec.kind == "gpu" else None

    @classmethod
    def for_cpu(cls, config: AssemblyConfig | None = None) -> "SchurAssembler":
        return cls(
            config=config if config is not None else default_config("cpu", 3),
            spec=EPYC_7763_CORE,
            transfer=None,
        )

    def estimate_memory(self, factor: CholeskyFactor, n_multipliers: int) -> MemoryEstimate:
        """Device-memory footprint of assembling one subdomain."""
        persistent = n_multipliers * n_multipliers * FLOAT64_BYTES
        temporary = csx_bytes(factor.nnz, factor.n) + dense_bytes(
            (factor.n, n_multipliers)
        )
        if self.config.factor_storage == "dense":
            temporary += dense_bytes((factor.n, factor.n))
        return MemoryEstimate(persistent=persistent, temporary=temporary)

    def estimate(self, factor: CholeskyFactor, bt: sp.spmatrix) -> dict[str, float]:
        """Price the assembly without executing it (pattern-only dry run).

        Returns the same per-stage breakdown as :meth:`assemble` plus a
        ``"total"`` key; see :mod:`repro.core.estimate`.  Used by the
        benchmark sweeps at subdomain sizes where executing the numerics in
        pure Python would be infeasible.
        """
        from repro.core.estimate import estimate_assembly

        return estimate_assembly(factor, bt, self.config, self.spec, self.transfer)

    def assemble(
        self,
        factor: CholeskyFactor,
        bt: sp.spmatrix,
        executor: Executor | None = None,
        keep_y: bool = False,
        prepared: PreparedPattern | None = None,
        bt_rows: sp.spmatrix | None = None,
    ) -> SchurAssemblyResult:
        """Assemble ``F = B K_reg^{-1} B^T`` for one subdomain.

        Parameters
        ----------
        factor:
            Cholesky factorization of the regularized subdomain matrix.
        bt:
            Sparse ``B̃^T`` (n x m) in the *original* DOF and multiplier
            ordering — the assembler applies the factor's row permutation
            and the stepped column permutation internally.
        executor:
            Optional shared executor (accumulates across subdomains);
            a fresh one is created otherwise.
        keep_y:
            Keep the intermediate ``Y = L^{-1} B̃^T`` in the result (tests).
        prepared:
            Precomputed pattern artifacts (stepped permutation + pruning
            plan) from the batch pattern cache; numerics are identical with
            and without, only the host-side analysis is skipped.
        bt_rows:
            Precomputed ``bt.tocsr()[factor.perm]`` — the batch engine
            permutes it once per item for the fingerprint and shares it
            here instead of paying the row permutation again.
        """
        require(sp.issparse(bt), "bt must be sparse")
        n = factor.n
        require(bt.shape[0] == n, f"bt has {bt.shape[0]} rows, factor order is {n}")
        m = bt.shape[1]
        cfg = self.config
        ex = executor if executor is not None else Executor(self.spec)
        breakdown = {"transfer": 0.0, "permute": 0.0, "trsm": 0.0, "syrk": 0.0}
        mark = ex.elapsed

        # --- stepped permutation (host side) --------------------------------
        if bt_rows is None:
            bt_rows = bt.tocsr()[factor.perm].tocsc()
        else:
            require(
                sp.issparse(bt_rows) and bt_rows.shape == bt.shape,
                "bt_rows must be sparse with the same shape as bt",
            )
            bt_rows = bt_rows.tocsc()
        if prepared is not None:
            require(
                prepared.shape.n_rows == n and prepared.shape.n_cols == m,
                "prepared pattern does not match factor/bt dimensions",
            )
        else:
            prepared = prepare_pattern(bt_rows, cfg)
        col_perm = prepared.col_perm
        shape = prepared.shape
        plan = prepared.pruning_plan
        x = np.asarray(bt_rows[:, col_perm].toarray(), dtype=np.float64)
        # The column permutation + densification is a memory-traffic op.
        ex.charge_bytes(2.0 * x.size * FLOAT64_BYTES)
        breakdown["permute"] += ex.elapsed - mark
        mark = ex.elapsed

        # --- transfers (GPU only) -------------------------------------------
        if self.transfer is not None:
            h2d_bytes = csx_bytes(factor.nnz, n) + dense_bytes((n, m))
            breakdown["transfer"] += self.transfer.time(h2d_bytes)

        # --- TRSM -------------------------------------------------------------
        if cfg.trsm_variant == "orig":
            trsm_orig(ex, factor.l, x, storage=cfg.factor_storage)
        elif cfg.trsm_variant == "rhs_split":
            trsm_rhs_split(
                ex, factor.l, x, shape, cfg.trsm_blocks, storage=cfg.factor_storage
            )
        else:
            trsm_factor_split(
                ex,
                factor.l,
                x,
                shape,
                cfg.trsm_blocks,
                storage=cfg.factor_storage,
                prune=cfg.prune,
                plan=plan,
            )
        breakdown["trsm"] += ex.elapsed - mark
        mark = ex.elapsed

        # --- SYRK -------------------------------------------------------------
        f_perm = np.zeros((m, m), dtype=np.float64)
        if cfg.syrk_variant == "orig":
            syrk_orig(ex, x, f_perm)
        elif cfg.syrk_variant == "input_split":
            syrk_input_split(ex, x, f_perm, shape, cfg.syrk_blocks)
        else:
            syrk_output_split(ex, x, f_perm, shape, cfg.syrk_blocks)
        breakdown["syrk"] += ex.elapsed - mark
        mark = ex.elapsed

        # --- permute the SC back to the original multiplier order ------------
        f = ex.symmetric_permute(f_perm, col_perm, inverse=True)
        breakdown["permute"] += ex.elapsed - mark

        elapsed = sum(breakdown.values())
        return SchurAssemblyResult(
            f=f,
            elapsed=elapsed,
            breakdown=breakdown,
            shape=shape,
            col_perm=col_perm,
            y=x if keep_y else None,
        )


__all__ = [
    "SchurAssembler",
    "SchurAssemblyResult",
    "MemoryEstimate",
    "PreparedPattern",
    "prepare_pattern",
]
