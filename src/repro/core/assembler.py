"""The Schur-complement assembler — the paper's end-to-end algorithm.

Given a Cholesky factor ``L`` of the regularized subdomain matrix and the
transposed gluing matrix ``B̃^T``, assembles the local dual operator

    ``F̃ = B̃ L^{-T} L^{-1} B̃^T = (L^{-1} B̃^T)^T (L^{-1} B̃^T) = Y^T Y``

(eq. 14) with the configured TRSM/SYRK variants:

1. permute the columns of ``B̃^T`` into the stepped shape (§3),
2. (GPU) transfer the factor and the dense RHS to the device,
3. TRSM (orig / RHS-split / factor-split + pruning),
4. SYRK (orig / input-split / output-split),
5. permute the result back to the original multiplier order.

Numerics are exact; time is simulated on the executor's device roofline
plus the PCIe transfer model.  A breakdown per stage is returned so the
benchmarks can reproduce the paper's per-kernel and whole-assembly figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.config import AssemblyConfig, default_config
from repro.core.stepped import SteppedShape, stepped_permutation
from repro.core.syrk_split import (
    batched_syrk_input_split,
    batched_syrk_orig,
    batched_syrk_output_split,
    syrk_input_split,
    syrk_orig,
    syrk_output_split,
)
from repro.core.trsm_split import (
    PruningPlan,
    batched_trsm_factor_split,
    batched_trsm_orig,
    batched_trsm_rhs_split,
    trsm_factor_split,
    trsm_orig,
    trsm_rhs_split,
)
from repro.gpu.costmodel import FLOAT64_BYTES, csx_bytes, dense_bytes
from repro.gpu.runtime import Executor
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE, PCIE4_X16, DeviceSpec, TransferSpec
from repro.sparse.canonical import UnionPlan
from repro.sparse.cholesky import CholeskyFactor
from repro.sparse.stacked import (
    StackedCSC,
    stack_into_union,
    stack_permuted_dense,
    stack_union_permuted_dense,
)
from repro.util import require


@dataclass
class SchurAssemblyResult:
    """Assembled local dual operator plus simulated-time accounting.

    ``f`` is in the *original* multiplier ordering of ``bt``'s columns.
    ``breakdown`` has the simulated seconds per stage: ``transfer``,
    ``permute``, ``trsm``, ``syrk``; ``elapsed`` is their sum.
    """

    f: np.ndarray
    elapsed: float
    breakdown: dict[str, float]
    shape: SteppedShape
    col_perm: np.ndarray
    y: np.ndarray | None = None

    @property
    def n_multipliers(self) -> int:
        return self.f.shape[0]


@dataclass
class MemoryEstimate:
    """Device bytes an assembly needs (for the pipeline's memory pool)."""

    persistent: float  # the SC itself, kept for the iterative solver
    temporary: float  # factor copy + dense RHS, freed after assembly


@dataclass(frozen=True)
class PreparedPattern:
    """Pattern-only artifacts of one assembly, computed once per pattern.

    The batch engine (:mod:`repro.batch`) computes these per *fingerprint
    group* and hands them to :meth:`SchurAssembler.assemble`, which then
    skips the stepped analysis and the pruning scans.  Must describe the
    exact stored pattern of the inputs — sharing across members is only
    valid when their fingerprints match.
    """

    col_perm: np.ndarray
    shape: SteppedShape
    pruning_plan: PruningPlan | None = None


def prepare_pattern(
    bt_rows: sp.csc_matrix,
    config: AssemblyConfig,
    factor_pattern=None,
) -> PreparedPattern:
    """Build the pattern artifacts for one assembly.

    Single source of truth for the stepped-permutation branch, shared by
    :meth:`SchurAssembler.assemble` and the batch engine so the two paths
    cannot drift apart.  *bt_rows* is ``B̃^T`` with the factor's row
    permutation already applied.  When *factor_pattern* (an object exposing
    the factor's sorted CSC ``indptr``/``indices``) is given and the
    configuration uses factor-split pruning, the pruning plan is built too;
    without it the plan stays ``None`` and the kernel scans ad hoc.
    """
    n, m = bt_rows.shape
    if config.use_stepped_permutation:
        col_perm, shape = stepped_permutation(bt_rows)
    else:
        col_perm = np.arange(m, dtype=np.intp)
        shape = SteppedShape(n_rows=n, pivots=np.zeros(m, dtype=np.intp))
    plan = None
    if (
        factor_pattern is not None
        and config.trsm_variant == "factor_split"
        and config.prune
    ):
        plan = PruningPlan.from_pattern(
            factor_pattern.indptr,
            factor_pattern.indices,
            n,
            config.trsm_blocks.resolve(n),
        )
    return PreparedPattern(col_perm=col_perm, shape=shape, pruning_plan=plan)


class SchurAssembler:
    """Assembles explicit Schur complements on a simulated device.

    Parameters
    ----------
    config:
        Kernel variants and block parameters; defaults to the paper's tuned
        GPU/3D configuration.
    spec:
        Device roofline; :data:`~repro.gpu.spec.A100_40GB` or
        :data:`~repro.gpu.spec.EPYC_7763_CORE`.
    transfer:
        Host<->device link; ``None`` (CPU execution) disables transfer
        charges.
    """

    def __init__(
        self,
        config: AssemblyConfig | None = None,
        spec: DeviceSpec = A100_40GB,
        transfer: TransferSpec | None = PCIE4_X16,
    ) -> None:
        self.config = config if config is not None else default_config("gpu", 3)
        self.spec = spec
        self.transfer = transfer if spec.kind == "gpu" else None

    @classmethod
    def for_cpu(cls, config: AssemblyConfig | None = None) -> "SchurAssembler":
        return cls(
            config=config if config is not None else default_config("cpu", 3),
            spec=EPYC_7763_CORE,
            transfer=None,
        )

    def estimate_memory(self, factor: CholeskyFactor, n_multipliers: int) -> MemoryEstimate:
        """Device-memory footprint of assembling one subdomain."""
        persistent = n_multipliers * n_multipliers * FLOAT64_BYTES
        temporary = csx_bytes(factor.nnz, factor.n) + dense_bytes(
            (factor.n, n_multipliers)
        )
        if self.config.factor_storage == "dense":
            temporary += dense_bytes((factor.n, factor.n))
        return MemoryEstimate(persistent=persistent, temporary=temporary)

    def estimate(self, factor: CholeskyFactor, bt: sp.spmatrix) -> dict[str, float]:
        """Price the assembly without executing it (pattern-only dry run).

        Returns the same per-stage breakdown as :meth:`assemble` plus a
        ``"total"`` key; see :mod:`repro.core.estimate`.  Used by the
        benchmark sweeps at subdomain sizes where executing the numerics in
        pure Python would be infeasible.
        """
        from repro.core.estimate import estimate_assembly

        return estimate_assembly(factor, bt, self.config, self.spec, self.transfer)

    def assemble(
        self,
        factor: CholeskyFactor,
        bt: sp.spmatrix,
        executor: Executor | None = None,
        keep_y: bool = False,
        prepared: PreparedPattern | None = None,
        bt_rows: sp.spmatrix | None = None,
    ) -> SchurAssemblyResult:
        """Assemble ``F = B K_reg^{-1} B^T`` for one subdomain.

        Parameters
        ----------
        factor:
            Cholesky factorization of the regularized subdomain matrix.
        bt:
            Sparse ``B̃^T`` (n x m) in the *original* DOF and multiplier
            ordering — the assembler applies the factor's row permutation
            and the stepped column permutation internally.
        executor:
            Optional shared executor (accumulates across subdomains);
            a fresh one is created otherwise.
        keep_y:
            Keep the intermediate ``Y = L^{-1} B̃^T`` in the result (tests).
        prepared:
            Precomputed pattern artifacts (stepped permutation + pruning
            plan) from the batch pattern cache; numerics are identical with
            and without, only the host-side analysis is skipped.
        bt_rows:
            Precomputed ``bt.tocsr()[factor.perm]`` — the batch engine
            permutes it once per item for the fingerprint and shares it
            here instead of paying the row permutation again.
        """
        require(sp.issparse(bt), "bt must be sparse")
        n = factor.n
        require(bt.shape[0] == n, f"bt has {bt.shape[0]} rows, factor order is {n}")
        m = bt.shape[1]
        cfg = self.config
        ex = executor if executor is not None else Executor(self.spec)
        breakdown = {"transfer": 0.0, "permute": 0.0, "trsm": 0.0, "syrk": 0.0}
        mark = ex.elapsed

        # --- stepped permutation (host side) --------------------------------
        if bt_rows is None:
            bt_rows = bt.tocsr()[factor.perm].tocsc()
        else:
            require(
                sp.issparse(bt_rows) and bt_rows.shape == bt.shape,
                "bt_rows must be sparse with the same shape as bt",
            )
            bt_rows = bt_rows.tocsc()
        if prepared is not None:
            require(
                prepared.shape.n_rows == n and prepared.shape.n_cols == m,
                "prepared pattern does not match factor/bt dimensions",
            )
        else:
            prepared = prepare_pattern(bt_rows, cfg)
        col_perm = prepared.col_perm
        shape = prepared.shape
        plan = prepared.pruning_plan
        x = np.asarray(bt_rows[:, col_perm].toarray(), dtype=np.float64)
        # The column permutation + densification is a memory-traffic op.
        ex.charge_bytes(2.0 * x.size * FLOAT64_BYTES)
        breakdown["permute"] += ex.elapsed - mark
        mark = ex.elapsed

        # --- transfers (GPU only) -------------------------------------------
        if self.transfer is not None:
            h2d_bytes = csx_bytes(factor.nnz, n) + dense_bytes((n, m))
            breakdown["transfer"] += self.transfer.time(h2d_bytes)

        # --- TRSM -------------------------------------------------------------
        if cfg.trsm_variant == "orig":
            trsm_orig(ex, factor.l, x, storage=cfg.factor_storage)
        elif cfg.trsm_variant == "rhs_split":
            trsm_rhs_split(
                ex, factor.l, x, shape, cfg.trsm_blocks, storage=cfg.factor_storage
            )
        else:
            trsm_factor_split(
                ex,
                factor.l,
                x,
                shape,
                cfg.trsm_blocks,
                storage=cfg.factor_storage,
                prune=cfg.prune,
                plan=plan,
            )
        breakdown["trsm"] += ex.elapsed - mark
        mark = ex.elapsed

        # --- SYRK -------------------------------------------------------------
        f_perm = np.zeros((m, m), dtype=np.float64)
        if cfg.syrk_variant == "orig":
            syrk_orig(ex, x, f_perm)
        elif cfg.syrk_variant == "input_split":
            syrk_input_split(ex, x, f_perm, shape, cfg.syrk_blocks)
        else:
            syrk_output_split(ex, x, f_perm, shape, cfg.syrk_blocks)
        breakdown["syrk"] += ex.elapsed - mark
        mark = ex.elapsed

        # --- permute the SC back to the original multiplier order ------------
        f = ex.symmetric_permute(f_perm, col_perm, inverse=True)
        breakdown["permute"] += ex.elapsed - mark

        elapsed = sum(breakdown.values())
        return SchurAssemblyResult(
            f=f,
            elapsed=elapsed,
            breakdown=breakdown,
            shape=shape,
            col_perm=col_perm,
            y=x if keep_y else None,
        )

    def assemble_group(
        self,
        factors: list[CholeskyFactor],
        bts: list[sp.spmatrix],
        executor: Executor | None = None,
        keep_y: bool = False,
        prepared: PreparedPattern | None = None,
        bt_rows: list[sp.spmatrix] | None = None,
    ) -> list[SchurAssemblyResult]:
        """Assemble one whole fingerprint group through batched kernels.

        All members must share the exact stored factor pattern and the exact
        (row-permuted) gluing pattern — the guarantee an equal
        :func:`~repro.batch.fingerprint.factor_fingerprint` gives; the
        stacking validates it and raises otherwise.  The numerics are
        stacked: one ``(group, n, m)`` RHS runs through batched TRSM/SYRK so
        the group pays one kernel launch per step instead of one per member.
        Results match :meth:`assemble` to tight floating-point tolerance
        (BLAS association order differs inside the batched solves) and the
        charged FLOPs/traffic are identical — only launches shrink.

        Each returned member's ``breakdown``/``elapsed`` is the group total
        divided by the group size (batched kernels are indivisible; an equal
        share keeps per-member sums equal to the group cost).

        Parameters mirror :meth:`assemble`; *bt_rows* accepts the
        per-member ``bt.tocsr()[factor.perm]`` list the batch engine already
        computed for the fingerprints.
        """
        g = len(factors)
        require(g >= 1, "assemble_group needs at least one member")
        require(len(bts) == g, "factors and bts must have the same length")
        n = factors[0].n
        require(all(f.n == n for f in factors), "group members must share the factor order")
        for idx, bt in enumerate(bts):
            require(sp.issparse(bt), f"member {idx}: bt must be sparse")
            require(bt.shape == bts[0].shape, f"member {idx}: bt shape differs")
        require(bts[0].shape[0] == n, f"bt has {bts[0].shape[0]} rows, factor order is {n}")
        m = bts[0].shape[1]
        cfg = self.config
        ex = executor if executor is not None else Executor(self.spec)
        breakdown = {"transfer": 0.0, "permute": 0.0, "trsm": 0.0, "syrk": 0.0}
        mark = ex.elapsed

        # --- stack the group (host side) ------------------------------------
        if bt_rows is None:
            bt_rows = [
                bt.tocsr()[f.perm].tocsc() for f, bt in zip(factors, bts)
            ]
        else:
            require(len(bt_rows) == g, "bt_rows must have one entry per member")
            bt_rows = [b.tocsc() for b in bt_rows]
        stacked_l = StackedCSC.from_matrices([f.l for f in factors])
        if prepared is not None:
            require(
                prepared.shape.n_rows == n and prepared.shape.n_cols == m,
                "prepared pattern does not match factor/bt dimensions",
            )
        else:
            from repro.core.estimate import FactorPattern

            prepared = prepare_pattern(
                bt_rows[0], cfg, factor_pattern=FactorPattern.from_factor(factors[0])
            )
        col_perm = prepared.col_perm
        shape = prepared.shape
        plan = prepared.pruning_plan
        # One stacked scatter permutes + densifies every member's RHS.
        x_stack = stack_permuted_dense(bt_rows, col_perm)
        ex.charge_bytes(2.0 * x_stack.size * FLOAT64_BYTES)
        breakdown["permute"] += ex.elapsed - mark
        mark = ex.elapsed

        # --- transfers (GPU only): one stacked copy for the group -----------
        if self.transfer is not None:
            h2d_bytes = csx_bytes(stacked_l.nnz, n) + dense_bytes((n, m))
            breakdown["transfer"] += self.transfer.time(g * h2d_bytes)

        f_out = self._batched_trsm_syrk(
            ex, stacked_l, x_stack, shape, plan, col_perm, breakdown
        )

        share = {k: v / g for k, v in breakdown.items()}
        elapsed = sum(share.values())
        return [
            SchurAssemblyResult(
                f=f_out[i],
                elapsed=elapsed,
                breakdown=dict(share),
                shape=shape,
                col_perm=col_perm,
                # Copy: a view would pin the whole group stack through any
                # single retained result.
                y=x_stack[i].copy() if keep_y else None,
            )
            for i in range(g)
        ]

    def _batched_trsm_syrk(
        self,
        ex: Executor,
        stacked_l: StackedCSC,
        x_stack: np.ndarray,
        shape: SteppedShape,
        plan: PruningPlan | None,
        col_perm: np.ndarray,
        breakdown: dict[str, float],
    ) -> np.ndarray:
        """Batched TRSM → SYRK → inverse symmetric permute.

        The shared kernel tail of :meth:`assemble_group` (exact stacked
        patterns) and :meth:`assemble_union` (padded union patterns): the
        kernels are pattern-driven, so the two paths differ only in how the
        stacks were packed.  Mutates *x_stack* in place (the TRSM solution)
        and accumulates the per-stage simulated seconds into *breakdown*.
        """
        cfg = self.config
        g, _, m = x_stack.shape
        mark = ex.elapsed
        if cfg.trsm_variant == "orig":
            batched_trsm_orig(ex, stacked_l, x_stack, storage=cfg.factor_storage)
        elif cfg.trsm_variant == "rhs_split":
            batched_trsm_rhs_split(
                ex, stacked_l, x_stack, shape, cfg.trsm_blocks, storage=cfg.factor_storage
            )
        else:
            batched_trsm_factor_split(
                ex,
                stacked_l,
                x_stack,
                shape,
                cfg.trsm_blocks,
                storage=cfg.factor_storage,
                prune=cfg.prune,
                plan=plan,
            )
        breakdown["trsm"] += ex.elapsed - mark
        mark = ex.elapsed

        f_stack = np.zeros((g, m, m), dtype=np.float64)
        if cfg.syrk_variant == "orig":
            batched_syrk_orig(ex, x_stack, f_stack)
        elif cfg.syrk_variant == "input_split":
            batched_syrk_input_split(ex, x_stack, f_stack, shape, cfg.syrk_blocks)
        else:
            batched_syrk_output_split(ex, x_stack, f_stack, shape, cfg.syrk_blocks)
        breakdown["syrk"] += ex.elapsed - mark
        mark = ex.elapsed

        f_out = ex.batched_symmetric_permute(f_stack, col_perm, inverse=True)
        breakdown["permute"] += ex.elapsed - mark
        return f_out

    def assemble_union(
        self,
        factors: list[CholeskyFactor],
        bt_rows: list[sp.spmatrix],
        plan: "UnionPlan",
        executor: Executor | None = None,
        prepared: PreparedPattern | None = None,
    ) -> list[SchurAssemblyResult]:
        """Assemble one *near class* through padded batched kernels.

        The value-tolerant tier between :meth:`assemble_group` and
        per-member :meth:`assemble`: members need not share a pattern — or
        even a size.  Every member embeds at the identity prefix of the
        class's structural union (:func:`repro.sparse.canonical.union_plan`),
        so the stacked factor is ``[[L, 0], [0, I]]`` and the stacked RHS
        ``[[X], [0]]``; the padding positions hold explicit zeros (and a
        unit diagonal), which forward substitution and the Gram product map
        to structural zeros — each member's Schur complement is recovered
        *exactly* from the leading block, no values approximated, while the
        whole class pays one kernel launch per step.

        The trade is fill: the padded stacks store and stream
        ``plan.fill_ratio`` times the members' exact entries, priced
        faithfully by the kernels (padded flops/bytes are charged like any
        other entries).  The batch engine guards this with its
        ``union_fill_cap``.

        Parameters
        ----------
        factors / bt_rows:
            The members' factors and *row-permuted* (and, for canonical
            items, column-canonicalized) gluing matrices — the same objects
            :func:`repro.sparse.canonical.union_plan` consumed; shapes and
            stored patterns must match the plan member-for-member.
        plan:
            The class's :class:`~repro.sparse.canonical.UnionPlan`.
        prepared:
            Pattern artifacts of the *union* pattern (stepped permutation +
            pruning plan built on the union, conservative supersets of
            every member's); built ad hoc when omitted.

        Returns one :class:`SchurAssemblyResult` per member, with ``f``
        sliced to the member's own ``(m, m)`` multiplier block and the
        breakdown an equal share of the group total, mirroring
        :meth:`assemble_group`.
        """
        g = len(factors)
        require(g >= 1, "assemble_union needs at least one member")
        require(
            len(bt_rows) == g and plan.group == g,
            "factors, bt_rows and plan members must agree",
        )
        n, m = plan.shape
        cfg = self.config
        ex = executor if executor is not None else Executor(self.spec)
        breakdown = {"transfer": 0.0, "permute": 0.0, "trsm": 0.0, "syrk": 0.0}
        mark = ex.elapsed

        # --- pad the class into the union pattern (host side) ----------------
        bt_rows = [b.tocsc() for b in bt_rows]
        stacked_l = stack_into_union(
            [f.l for f in factors], plan.l_union, pad_diagonal=True
        )
        if prepared is not None:
            require(
                prepared.shape.n_rows == n and prepared.shape.n_cols == m,
                "prepared pattern does not match the union shape",
            )
        else:
            from repro.core.estimate import FactorPattern

            prepared = prepare_pattern(
                plan.bt_union.pattern_csc(),
                cfg,
                factor_pattern=FactorPattern(
                    n=n,
                    indptr=np.asarray(plan.l_union.indptr),
                    indices=np.asarray(plan.l_union.indices),
                ),
            )
        col_perm = prepared.col_perm
        x_stack = stack_union_permuted_dense(bt_rows, plan.bt_union, col_perm)
        ex.charge_bytes(2.0 * x_stack.size * FLOAT64_BYTES)
        breakdown["permute"] += ex.elapsed - mark

        # --- transfers (GPU only): every member ships the padded size --------
        if self.transfer is not None:
            h2d_bytes = csx_bytes(stacked_l.nnz, n) + dense_bytes((n, m))
            breakdown["transfer"] += self.transfer.time(g * h2d_bytes)

        f_out = self._batched_trsm_syrk(
            ex, stacked_l, x_stack, prepared.shape, prepared.pruning_plan,
            col_perm, breakdown,
        )

        share = {k: v / g for k, v in breakdown.items()}
        elapsed = sum(share.values())
        # Host-side slice back to each member's own multiplier block — like
        # the engine's unrelabel step, a pure uncharged gather.
        return [
            SchurAssemblyResult(
                f=plan.embeddings[i].extract_sc(f_out[i]),
                elapsed=elapsed,
                breakdown=dict(share),
                shape=prepared.shape,
                col_perm=col_perm,
            )
            for i in range(g)
        ]


__all__ = [
    "SchurAssembler",
    "SchurAssemblyResult",
    "MemoryEstimate",
    "PreparedPattern",
    "prepare_pattern",
]
