"""Dry-run cost estimation: price an assembly without executing numerics.

Replays exactly the block loops of :mod:`repro.core.trsm_split`,
:mod:`repro.core.syrk_split` and :class:`repro.core.assembler.SchurAssembler`
using only *pattern* information (the factor's CSC structure and the stepped
pivots), charging the identical :class:`~repro.gpu.costmodel.KernelCost` for
every kernel the executed path would launch.

Purpose: the benchmark sweeps extend to subdomain sizes (up to 70k DOFs in
3-D) where executing the numerics in pure Python is infeasible on this box,
while the cost model — the thing the simulated timings come from — is
exact at any size.  ``tests/test_estimate.py`` asserts the estimator and the
executed path charge byte-for-byte identical costs on sizes where both run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.config import AssemblyConfig
from repro.core.stepped import SteppedShape, stepped_permutation
from repro.gpu.costmodel import FLOAT64_BYTES, CostLedger, KernelCost, csx_bytes, dense_bytes
from repro.gpu.spec import DeviceSpec, TransferSpec
from repro.sparse.cholesky import CholeskyFactor
from repro.util import (
    gemm_flops,
    require,
    spmm_flops,
    syrk_flops,
    trsm_dense_flops,
    trsm_sparse_flops,
)


@dataclass(frozen=True)
class FactorPattern:
    """Pattern-only view of a lower-triangular CSC factor."""

    n: int
    indptr: np.ndarray
    indices: np.ndarray  # sorted within each column

    @classmethod
    def from_factor(cls, factor: CholeskyFactor) -> "FactorPattern":
        lc = factor.l.tocsc()
        lc.sort_indices()
        return cls(n=factor.n, indptr=lc.indptr, indices=lc.indices)

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def block_nnz(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Stored entries of ``L[r0:r1, c0:c1]``."""
        total = 0
        for j in range(c0, c1):
            col = self.indices[self.indptr[j] : self.indptr[j + 1]]
            total += int(
                np.searchsorted(col, r1, side="left")
                - np.searchsorted(col, r0, side="left")
            )
        return total

    def block_nonempty_rows(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Distinct nonzero rows of ``L[r0:r1, c0:c1]`` (pruning's gather)."""
        chunks = []
        for j in range(c0, c1):
            col = self.indices[self.indptr[j] : self.indptr[j + 1]]
            lo = np.searchsorted(col, r0, side="left")
            hi = np.searchsorted(col, r1, side="left")
            if hi > lo:
                chunks.append(col[lo:hi])
        if not chunks:
            return 0
        return int(np.unique(np.concatenate(chunks)).size)

    def tail_nnz(self, p: int) -> int:
        """Stored entries of ``L[p:, p:]`` (lower triangular: columns >= p)."""
        return int(self.indptr[-1] - self.indptr[p])


class _CostOnlyExecutor:
    """Mirror of :class:`repro.gpu.runtime.Executor` charging costs from
    shapes/patterns only."""

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.ledger = CostLedger(spec)

    @property
    def elapsed(self) -> float:
        return self.ledger.elapsed

    def charge(self, cost: KernelCost) -> float:
        return self.ledger.charge(cost)

    def charge_bytes(self, nbytes: float) -> float:
        return self.charge(KernelCost(flops=0.0, bytes_moved=nbytes, launches=1, char_dim=1.0))

    # Shape-level kernel charges (formulas identical to repro.gpu.kernels).
    def trsm_dense(self, n: int, m: int) -> None:
        self.charge(
            KernelCost(
                flops=trsm_dense_flops(n, m),
                bytes_moved=dense_bytes((n, n)) / 2.0 + 2.0 * dense_bytes((n, m)),
                launches=1,
                char_dim=float(min(n, m)) if min(n, m) > 0 else 1.0,
            )
        )

    def trsm_sparse(self, nnz: int, n: int, m: int) -> None:
        self.charge(
            KernelCost(
                flops=trsm_sparse_flops(nnz, m),
                bytes_moved=csx_bytes(nnz, n) + 2.0 * dense_bytes((n, m)),
                launches=1,
                char_dim=float(m),
                sparse=True,
            )
        )

    def syrk(self, k: int, n: int) -> None:
        self.charge(
            KernelCost(
                flops=syrk_flops(n, k),
                bytes_moved=dense_bytes((k, n)) + dense_bytes((n, n)),
                launches=1,
                char_dim=float(min(n, k)) if min(n, k) > 0 else 1.0,
            )
        )

    def gemm(self, m: int, n: int, k: int) -> None:
        self.charge(
            KernelCost(
                flops=gemm_flops(m, n, k),
                bytes_moved=dense_bytes((m, k), (k, n)) + 2.0 * dense_bytes((m, n)),
                launches=1,
                char_dim=float(min(m, n, k)) if min(m, n, k) > 0 else 1.0,
            )
        )

    def spmm(self, nnz: int, m_rows: int, k: int, n: int) -> None:
        self.charge(
            KernelCost(
                flops=spmm_flops(nnz, n),
                bytes_moved=csx_bytes(nnz, m_rows)
                + dense_bytes((k, n))
                + 2.0 * dense_bytes((m_rows, n)),
                launches=1,
                char_dim=float(n),
                sparse=True,
            )
        )

    def scatter_add_rows(self, rows: int, cols: int) -> None:
        size = float(rows * cols)
        self.charge(
            KernelCost(
                flops=size,
                bytes_moved=3.0 * size * FLOAT64_BYTES,
                launches=1,
                char_dim=float(max(cols, 1)),
                sparse=True,
            )
        )

    def extract_sparse_block(self, nnz: int, n_cols: int) -> None:
        self.charge(
            KernelCost(
                flops=0.0,
                bytes_moved=2.0 * csx_bytes(nnz, max(n_cols, 1)),
                launches=1,
                char_dim=1.0,
                sparse=True,
            )
        )

    def densify(self, nnz: int, rows: int, cols: int) -> None:
        self.charge(
            KernelCost(
                flops=0.0,
                bytes_moved=csx_bytes(nnz, cols) + rows * cols * FLOAT64_BYTES,
                launches=1,
                char_dim=1.0,
                sparse=True,
            )
        )

    def symmetric_permute(self, m: int) -> None:
        self.charge(
            KernelCost(
                flops=0.0,
                bytes_moved=2.0 * m * m * FLOAT64_BYTES,
                launches=1,
                char_dim=float(m),
            )
        )


def _estimate_trsm(
    ex: _CostOnlyExecutor,
    patt: FactorPattern,
    shape: SteppedShape,
    cfg: AssemblyConfig,
) -> None:
    n, m = patt.n, shape.n_cols
    if cfg.trsm_variant == "orig":
        if cfg.factor_storage == "dense":
            ex.densify(patt.nnz, n, n)
            ex.trsm_dense(n, m)
        else:
            ex.trsm_sparse(patt.nnz, n, m)
        return
    if cfg.trsm_variant == "rhs_split":
        if cfg.factor_storage == "dense":
            ex.densify(patt.nnz, n, n)
        for c0, c1 in cfg.trsm_blocks.resolve(m):
            p = shape.first_pivot(c0)
            if p >= n:
                continue
            if cfg.factor_storage == "dense":
                ex.trsm_dense(n - p, c1 - c0)
            else:
                tail = patt.tail_nnz(p)
                ex.extract_sparse_block(tail, n - p)
                ex.trsm_sparse(tail, n - p, c1 - c0)
        return
    # factor_split
    for r0, r1 in cfg.trsm_blocks.resolve(n):
        w = shape.width_below(r1)
        if w == 0:
            continue
        diag_nnz = patt.block_nnz(r0, r1, r0, r1)
        ex.extract_sparse_block(diag_nnz, r1 - r0)
        if cfg.factor_storage == "dense":
            ex.densify(diag_nnz, r1 - r0, r1 - r0)
            ex.trsm_dense(r1 - r0, w)
        else:
            ex.trsm_sparse(diag_nnz, r1 - r0, w)
        if r1 >= n:
            continue
        sub_nnz = patt.block_nnz(r1, n, r0, r1)
        ex.extract_sparse_block(sub_nnz, r1 - r0)
        if sub_nnz == 0:
            continue
        if cfg.prune:
            k_ne = patt.block_nonempty_rows(r1, n, r0, r1)
            ex.densify(sub_nnz, k_ne, r1 - r0)
            ex.gemm(k_ne, w, r1 - r0)
            ex.scatter_add_rows(k_ne, w)
        elif cfg.factor_storage == "dense":
            ex.densify(sub_nnz, n - r1, r1 - r0)
            ex.gemm(n - r1, w, r1 - r0)
        else:
            ex.spmm(sub_nnz, n - r1, r1 - r0, w)


def _estimate_syrk(
    ex: _CostOnlyExecutor,
    shape: SteppedShape,
    cfg: AssemblyConfig,
) -> None:
    n, m = shape.n_rows, shape.n_cols
    if cfg.syrk_variant == "orig":
        ex.syrk(n, m)
        return
    if cfg.syrk_variant == "input_split":
        for k0, k1 in cfg.syrk_blocks.resolve(n):
            w = shape.width_below(k1)
            if w == 0:
                continue
            ex.syrk(k1 - k0, w)
        return
    for c0, c1 in cfg.syrk_blocks.resolve(m):
        k0 = shape.first_pivot(c0)
        if k0 >= n:
            continue
        ex.syrk(n - k0, c1 - c0)
        if c0 > 0:
            ex.gemm(c1 - c0, c0, n - k0)


def estimate_from_patterns(
    patt: FactorPattern,
    shape: SteppedShape,
    config: AssemblyConfig,
    spec: DeviceSpec,
    transfer: TransferSpec | None = None,
) -> dict[str, float]:
    """Price one SC assembly from pattern artifacts alone.

    This is the cacheable core of :func:`estimate_assembly`: given the
    factor pattern and the stepped shape (both pure pattern objects, shared
    by every subdomain with the same fingerprint) it replays the kernel
    loops and returns the per-stage breakdown plus ``"total"``.
    """
    n, m = patt.n, shape.n_cols
    require(shape.n_rows == n, "shape/pattern row mismatch")
    ex = _CostOnlyExecutor(spec)
    breakdown = {"transfer": 0.0, "permute": 0.0, "trsm": 0.0, "syrk": 0.0}

    mark = ex.elapsed
    ex.charge_bytes(2.0 * n * m * FLOAT64_BYTES)
    breakdown["permute"] += ex.elapsed - mark

    if transfer is not None and spec.kind == "gpu":
        breakdown["transfer"] += transfer.time(csx_bytes(patt.nnz, n) + dense_bytes((n, m)))

    mark = ex.elapsed
    _estimate_trsm(ex, patt, shape, config)
    breakdown["trsm"] += ex.elapsed - mark

    mark = ex.elapsed
    _estimate_syrk(ex, shape, config)
    breakdown["syrk"] += ex.elapsed - mark

    mark = ex.elapsed
    ex.symmetric_permute(m)
    breakdown["permute"] += ex.elapsed - mark

    breakdown["total"] = sum(breakdown.values())
    return breakdown


def padding_fill_ratio(padded_nnz: float, member_nnz: float) -> float:
    """Stored-entry overhead of padded union execution.

    ``padded_nnz`` is what one batched union run stores and streams
    (``group * (nnz(L_union) + nnz(bt_union))``), ``member_nnz`` what the
    members would store run exactly per-member.  The ratio is the engine's
    guard input: above ``union_fill_cap`` the extra flops/bytes of the
    padding eat the launch savings and the class falls back to per-member
    execution (:data:`repro.batch.engine.DEFAULT_UNION_FILL_CAP`).
    """
    return padded_nnz / member_nnz if member_nnz else 1.0


def union_padding_overhead(
    union_estimate: dict[str, float], member_estimates: list[dict[str, float]]
) -> float:
    """Priced padding overhead of one union class, in simulated seconds.

    The batched union run charges every member the padded-pattern kernel
    costs, so its priced total is ``group * union_estimate["total"]``; the
    exact per-member runs would charge each member its own estimate.  The
    difference is what the padding costs in flops/traffic — what the launch
    savings of the batched kernels (not visible in these per-member
    estimates; the executor ledger counts launches) must pay for.
    """
    g = len(member_estimates)
    return g * union_estimate["total"] - sum(e["total"] for e in member_estimates)


def estimate_assembly(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    config: AssemblyConfig,
    spec: DeviceSpec,
    transfer: TransferSpec | None = None,
) -> dict[str, float]:
    """Price one SC assembly without executing it.

    Returns the same ``breakdown`` dict as
    :meth:`repro.core.assembler.SchurAssembler.assemble` (plus ``"total"``).
    """
    require(sp.issparse(bt), "bt must be sparse")
    n = factor.n
    require(bt.shape[0] == n, "bt row count mismatch")
    m = bt.shape[1]
    patt = FactorPattern.from_factor(factor)
    bt_rows = bt.tocsr()[factor.perm].tocsc()
    if config.use_stepped_permutation:
        _, shape = stepped_permutation(bt_rows)
    else:
        shape = SteppedShape(n_rows=n, pivots=np.zeros(m, dtype=np.intp))
    return estimate_from_patterns(patt, shape, config, spec, transfer)


__all__ = [
    "estimate_assembly",
    "estimate_from_patterns",
    "padding_fill_ratio",
    "union_padding_overhead",
    "FactorPattern",
]
