"""Sparsity-aware SYRK variants (§3.3 of the paper).

Computes ``F = Y^T Y`` for the stepped dense matrix ``Y`` produced by the
TRSM stage, skipping the structural zeros above the column pivots:

* :func:`syrk_orig` — baseline: one full-size SYRK.
* :func:`syrk_input_split` — partition the *k* loop (block rows of ``Y``,
  Fig. 4a): each block row only has nonzeros in its first ``w`` columns, so
  the inner SYRK updates only the top-left ``w x w`` submatrix of ``F``.
* :func:`syrk_output_split` — partition the output into block rows
  (Fig. 4b): the diagonal block comes from an inner SYRK over the matching
  input block column, the off-diagonal strip from a GEMM; both can start
  their *k* range at the block's topmost pivot.

All variants produce the *full* symmetric ``F`` numerically (BLAS would fill
one triangle; mirroring is free in the cost model, matching the library
behaviour of handling symmetric matrices by reference to one triangle).

The ``batched_*`` twins run a whole fingerprint group per call on
``(group, n, m)`` stacks: identical FLOPs and traffic to ``group``
per-member runs, one launch per batched kernel (cuBLAS ``*Batched``).
"""

from __future__ import annotations

import numpy as np

from repro.core.blocks import BlockSpec
from repro.core.stepped import SteppedShape
from repro.gpu.runtime import Executor
from repro.util import require


def syrk_orig(ex: Executor, y: np.ndarray, f: np.ndarray) -> None:
    """Baseline SYRK of [9]: one full-size update, no sparsity use."""
    _check(y, f)
    ex.syrk(y, f, beta=0.0)


def syrk_input_split(
    ex: Executor,
    y: np.ndarray,
    f: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
) -> None:
    """Input-splitting SYRK (Fig. 4a): split the *k* dimension."""
    _check(y, f, shape)
    f[...] = 0.0
    for k0, k1 in blocks.resolve(shape.n_rows):
        w = shape.width_below(k1)
        if w == 0:
            continue  # block row is entirely structurally zero
        ex.syrk(y[k0:k1, :w], f[:w, :w], beta=1.0)


def syrk_output_split(
    ex: Executor,
    y: np.ndarray,
    f: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
) -> None:
    """Output-splitting SYRK (Fig. 4b): split the output block rows."""
    _check(y, f, shape)
    n = shape.n_rows
    f[...] = 0.0
    for c0, c1 in blocks.resolve(shape.n_cols):
        k0 = shape.first_pivot(c0)
        if k0 >= n:
            continue  # all-zero input columns contribute nothing
        # Diagonal block from an inner SYRK over the block column.
        ex.syrk(y[k0:, c0:c1], f[c0:c1, c0:c1], beta=0.0)
        if c0 > 0:
            # Off-diagonal strip: C_B = C^T B in the paper's notation.
            ex.gemm(
                y[k0:, c0:c1],
                y[k0:, :c0],
                f[c0:c1, :c0],
                beta=0.0,
                trans_a=True,
            )
            # Mirror into the upper triangle (free: BLAS keeps one triangle).
            f[:c0, c0:c1] = f[c0:c1, :c0].T


def _check(y: np.ndarray, f: np.ndarray, shape: SteppedShape | None = None) -> None:
    require(y.ndim == 2, "Y must be 2-D")
    m = y.shape[1]
    require(f.shape == (m, m), f"F must be ({m}, {m})")
    if shape is not None:
        require(
            y.shape == (shape.n_rows, shape.n_cols),
            "Y does not match the stepped shape",
        )


# ---------------------------------------------------------------------------
# batched twins: one fingerprint group per call
# ---------------------------------------------------------------------------


def batched_syrk_orig(ex: Executor, y_stack: np.ndarray, f_stack: np.ndarray) -> None:
    """Batched baseline SYRK: one full-size stacked update for the group."""
    _check_stack(y_stack, f_stack)
    ex.batched_syrk(y_stack, f_stack, beta=0.0)


def batched_syrk_input_split(
    ex: Executor,
    y_stack: np.ndarray,
    f_stack: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
) -> None:
    """Batched input-splitting SYRK (Fig. 4a) over a stacked group."""
    _check_stack(y_stack, f_stack, shape)
    f_stack[...] = 0.0
    for k0, k1 in blocks.resolve(shape.n_rows):
        w = shape.width_below(k1)
        if w == 0:
            continue  # block row is entirely structurally zero
        ex.batched_syrk(y_stack[:, k0:k1, :w], f_stack[:, :w, :w], beta=1.0)


def batched_syrk_output_split(
    ex: Executor,
    y_stack: np.ndarray,
    f_stack: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
) -> None:
    """Batched output-splitting SYRK (Fig. 4b) over a stacked group."""
    _check_stack(y_stack, f_stack, shape)
    n = shape.n_rows
    f_stack[...] = 0.0
    for c0, c1 in blocks.resolve(shape.n_cols):
        k0 = shape.first_pivot(c0)
        if k0 >= n:
            continue  # all-zero input columns contribute nothing
        ex.batched_syrk(y_stack[:, k0:, c0:c1], f_stack[:, c0:c1, c0:c1], beta=0.0)
        if c0 > 0:
            ex.batched_gemm(
                y_stack[:, k0:, c0:c1],
                y_stack[:, k0:, :c0],
                f_stack[:, c0:c1, :c0],
                beta=0.0,
                trans_a=True,
            )
            # Mirror into the upper triangle (free: BLAS keeps one triangle).
            f_stack[:, :c0, c0:c1] = f_stack[:, c0:c1, :c0].transpose(0, 2, 1)


def _check_stack(
    y_stack: np.ndarray, f_stack: np.ndarray, shape: SteppedShape | None = None
) -> None:
    require(y_stack.ndim == 3, "Y must be a (group, n, m) stack")
    g, m = y_stack.shape[0], y_stack.shape[2]
    require(f_stack.shape == (g, m, m), f"F must be ({g}, {m}, {m})")
    if shape is not None:
        require(
            y_stack.shape[1:] == (shape.n_rows, shape.n_cols),
            "Y does not match the stepped shape",
        )


__all__ = [
    "syrk_orig",
    "syrk_input_split",
    "syrk_output_split",
    "batched_syrk_orig",
    "batched_syrk_input_split",
    "batched_syrk_output_split",
]
