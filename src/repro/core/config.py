"""Assembly configuration: variants, block parameters, storage, pruning.

Defaults follow the paper's tuned settings:

* Table 1 — optimal split parameters per algorithm x CPU/GPU x 2D/3D,
* §4.1 ("Format of the matrices") — sparse factor blocks in 2D, dense in
  3D, pruning on,
* §4.2 — factor splitting for TRSM everywhere; input splitting for SYRK
  except CPU/3D where output splitting wins.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.blocks import BlockSpec, by_count, by_size
from repro.util import require

TRSM_VARIANTS = ("orig", "rhs_split", "factor_split")
SYRK_VARIANTS = ("orig", "input_split", "output_split")


@dataclass(frozen=True)
class AssemblyConfig:
    """Complete configuration of one Schur-complement assembly."""

    trsm_variant: str = "factor_split"
    syrk_variant: str = "input_split"
    trsm_blocks: BlockSpec = by_size(500)
    syrk_blocks: BlockSpec = by_size(1000)
    factor_storage: str = "dense"  # storage of (sub)factors fed to TRSM/GEMM
    prune: bool = True  # pruning of empty rows in factor-split GEMM
    use_stepped_permutation: bool = True

    def __post_init__(self) -> None:
        require(self.trsm_variant in TRSM_VARIANTS, f"unknown TRSM variant {self.trsm_variant!r}")
        require(self.syrk_variant in SYRK_VARIANTS, f"unknown SYRK variant {self.syrk_variant!r}")
        require(self.factor_storage in ("sparse", "dense"), f"unknown storage {self.factor_storage!r}")
        if not self.use_stepped_permutation:
            require(
                self.trsm_variant == "orig" and self.syrk_variant == "orig",
                "split variants require the stepped column permutation",
            )

    def with_overrides(self, **kwargs) -> "AssemblyConfig":
        return replace(self, **kwargs)

    def describe(self) -> str:
        return (
            f"trsm={self.trsm_variant}[{self.trsm_blocks.describe()}] "
            f"syrk={self.syrk_variant}[{self.syrk_blocks.describe()}] "
            f"storage={self.factor_storage} prune={self.prune} "
            f"stepped={self.use_stepped_permutation}"
        )


# Table 1 of the paper: optimal splitting of the matrices.
TABLE1_OPTIMA: dict[tuple[str, str, int], BlockSpec] = {
    ("trsm_rhs", "cpu", 2): by_size(100),
    ("trsm_rhs", "cpu", 3): by_size(100),
    ("trsm_rhs", "gpu", 2): by_count(1),
    ("trsm_rhs", "gpu", 3): by_size(1000),
    ("trsm_factor", "cpu", 2): by_size(200),
    ("trsm_factor", "cpu", 3): by_size(200),
    ("trsm_factor", "gpu", 2): by_size(1000),
    ("trsm_factor", "gpu", 3): by_size(500),
    ("syrk_input", "cpu", 2): by_size(200),
    ("syrk_input", "cpu", 3): by_count(50),
    ("syrk_input", "gpu", 2): by_size(2000),
    ("syrk_input", "gpu", 3): by_size(1000),
    ("syrk_output", "cpu", 2): by_size(200),
    ("syrk_output", "cpu", 3): by_count(10),
    ("syrk_output", "gpu", 2): by_size(200),
    ("syrk_output", "gpu", 3): by_size(1000),
}


def default_config(device: str = "gpu", dim: int = 3) -> AssemblyConfig:
    """The paper's tuned optimized configuration for *device* and *dim*.

    TRSM: factor splitting with pruning (§4.2); factor blocks sparse in 2D,
    dense in 3D (§4.1).  SYRK: input splitting, except CPU/3D where output
    splitting is consistently better for mid-sized subdomains.
    """
    require(device in ("cpu", "gpu"), f"device must be 'cpu' or 'gpu', got {device!r}")
    require(dim in (2, 3), f"dim must be 2 or 3, got {dim}")
    syrk_variant = "output_split" if (device, dim) == ("cpu", 3) else "input_split"
    syrk_key = "syrk_output" if syrk_variant == "output_split" else "syrk_input"
    return AssemblyConfig(
        trsm_variant="factor_split",
        syrk_variant=syrk_variant,
        trsm_blocks=TABLE1_OPTIMA[("trsm_factor", device, dim)],
        syrk_blocks=TABLE1_OPTIMA[(syrk_key, device, dim)],
        factor_storage="sparse" if dim == 2 else "dense",
        prune=True,
        use_stepped_permutation=True,
    )


def baseline_config(storage: str = "sparse") -> AssemblyConfig:
    """The original algorithm of [9]: full TRSM + full SYRK, no sparsity."""
    return AssemblyConfig(
        trsm_variant="orig",
        syrk_variant="orig",
        factor_storage=storage,
        prune=False,
        use_stepped_permutation=False,
    )


__all__ = [
    "AssemblyConfig",
    "default_config",
    "baseline_config",
    "TABLE1_OPTIMA",
    "TRSM_VARIANTS",
    "SYRK_VARIANTS",
]
