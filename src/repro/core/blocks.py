"""Uniform block partitions of an index range.

§4.1: matrices are split into uniformly sized blocks, parameterised either
by a fixed *block size* ("S" rows of Table 1) or a fixed *block count*
("C" rows).  The paper found non-uniform splitting gave "no observable
differences" (footnote 3), so uniform is the only strategy implemented;
:func:`BlockSpec.resolve` is the single hook a non-uniform strategy would
replace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import require

BLOCK_MODES = ("size", "count")


@dataclass(frozen=True)
class BlockSpec:
    """How to split a range: by fixed block ``size`` or fixed block ``count``."""

    mode: str
    value: int

    def __post_init__(self) -> None:
        require(self.mode in BLOCK_MODES, f"unknown block mode {self.mode!r}")
        require(self.value >= 1, "block value must be >= 1")

    def resolve(self, n: int) -> list[tuple[int, int]]:
        """Split ``range(n)`` into contiguous ``(start, end)`` blocks."""
        require(n >= 0, "n must be >= 0")
        if n == 0:
            return []
        if self.mode == "size":
            count = max(1, int(np.ceil(n / self.value)))
        else:
            count = min(self.value, n)
        bounds = np.linspace(0, n, count + 1).astype(np.intp)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(count)
            if bounds[i + 1] > bounds[i]
        ]

    def describe(self) -> str:
        """Table-1 style shorthand: ``"S 500"`` or ``"C 10"``."""
        return f"{'S' if self.mode == 'size' else 'C'} {self.value}"


def by_size(size: int) -> BlockSpec:
    """Fixed block size (the "S" setting)."""
    return BlockSpec(mode="size", value=size)


def by_count(count: int) -> BlockSpec:
    """Fixed block count (the "C" setting)."""
    return BlockSpec(mode="count", value=count)


__all__ = ["BlockSpec", "by_size", "by_count", "BLOCK_MODES"]
