"""Host- and model-level tuning: block sweeps and backend crossovers.

Two families:

* Block-parameter sweeps (Table 1 / Figure 5): the block size (or count)
  trades (a) work saved by skipping zeros against (b) the overhead of many
  small kernel launches (§4.1).  These helpers sweep a parameter grid on a
  given workload, report simulated assembly times, and pick the optimum.
* The dense-vs-SuperLU crossover of :mod:`repro.sparse.triangular`'s
  ``"auto"`` backend: :func:`measure_dense_crossover` times both backends on
  *this* host across a size ladder and :func:`tune_dense_cutoff` installs
  the measured cutoff via :func:`repro.sparse.triangular.set_dense_cutoff`,
  replacing the former hard-coded constant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.core.assembler import SchurAssembler
from repro.core.blocks import BlockSpec, by_count, by_size
from repro.core.config import AssemblyConfig
from repro.gpu.spec import DeviceSpec
from repro.sparse.cholesky import CholeskyFactor
from repro.sparse.triangular import TriangularSolver, set_dense_cutoff
from repro.util import require


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter setting."""

    spec: BlockSpec
    elapsed: float
    breakdown: dict[str, float]


def sweep_block_parameter(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    base_config: AssemblyConfig,
    device_spec: DeviceSpec,
    values: list[int],
    mode: str = "size",
    target: str = "trsm",
) -> list[SweepPoint]:
    """Assemble the SC once per parameter value, returning simulated times.

    Parameters
    ----------
    target:
        ``"trsm"``, ``"syrk"`` or ``"both"`` — which stage's block parameter
        to vary (``"both"`` sets them equal, as Figure 5 does).
    """
    require(target in ("trsm", "syrk", "both"), f"unknown target {target!r}")
    require(mode in ("size", "count"), f"unknown mode {mode!r}")
    points: list[SweepPoint] = []
    for v in values:
        spec = by_size(v) if mode == "size" else by_count(v)
        overrides = {}
        if target in ("trsm", "both"):
            overrides["trsm_blocks"] = spec
        if target in ("syrk", "both"):
            overrides["syrk_blocks"] = spec
        cfg = base_config.with_overrides(**overrides)
        assembler = SchurAssembler(config=cfg, spec=device_spec)
        result = assembler.assemble(factor, bt)
        points.append(SweepPoint(spec=spec, elapsed=result.elapsed, breakdown=result.breakdown))
    return points


def best_point(points: list[SweepPoint]) -> SweepPoint:
    """The sweep point with the lowest simulated time."""
    require(len(points) > 0, "empty sweep")
    return min(points, key=lambda p: p.elapsed)


def tune_block_parameter(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    base_config: AssemblyConfig,
    device_spec: DeviceSpec,
    values: list[int],
    mode: str = "size",
    target: str = "trsm",
) -> BlockSpec:
    """Sweep and return the best block specification."""
    return best_point(
        sweep_block_parameter(
            factor, bt, base_config, device_spec, values, mode=mode, target=target
        )
    ).spec


# ---------------------------------------------------------------------------
# dense-vs-SuperLU crossover of the triangular "auto" backend
# ---------------------------------------------------------------------------

#: Size ladder swept by default (brackets the shipped default of 256).
DEFAULT_CROSSOVER_SIZES = (32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class CrossoverPoint:
    """Measured one-shot solve times of both backends at one factor order."""

    n: int
    dense_seconds: float
    superlu_seconds: float

    @property
    def dense_wins(self) -> bool:
        return self.dense_seconds <= self.superlu_seconds


def _bench_factor(n: int, seed: int) -> sp.csc_matrix:
    """Deterministic lower-triangular factor with typical sparse fill."""
    density = min(0.2, max(4.0 / n, 16.0 / (n * n)))
    a = sp.random(n, n, density=density, random_state=seed)
    return sp.csc_matrix(sp.tril(a, -1) + sp.eye(n) * (1.0 + n / 16.0))


def measure_dense_crossover(
    sizes: tuple[int, ...] = DEFAULT_CROSSOVER_SIZES,
    n_rhs: int = 16,
    repeats: int = 3,
    seed: int = 0,
) -> list[CrossoverPoint]:
    """Time dense LAPACK vs SuperLU one-shot triangular solves on this host.

    One-shot means the SuperLU timing *includes* the analysis/factorize
    setup — exactly what the ``"auto"`` backend amortizes away only when a
    factor is reused, so the unamortized cost is the right quantity for the
    crossover decision.  Minimum over *repeats* reduces scheduler noise.
    """
    require(len(sizes) >= 1, "need at least one size")
    require(n_rhs >= 1 and repeats >= 1, "n_rhs and repeats must be >= 1")
    rng = np.random.default_rng(seed)
    points: list[CrossoverPoint] = []
    for n in sorted(sizes):
        l = _bench_factor(n, seed)
        b = rng.standard_normal((n, n_rhs))
        dense_t = []
        superlu_t = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            ld = l.toarray()
            scipy.linalg.solve_triangular(ld, b, lower=True)
            dense_t.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            TriangularSolver(l).solve(b)
            superlu_t.append(time.perf_counter() - t0)
        points.append(
            CrossoverPoint(
                n=n, dense_seconds=min(dense_t), superlu_seconds=min(superlu_t)
            )
        )
    return points


def pick_dense_cutoff(points: list[CrossoverPoint]) -> int:
    """The crossover order: end of the initial dense-winning run (0 if none).

    Scanning sizes in ascending order, the cutoff is the last size of the
    *leading consecutive* run of dense wins — a single noisy dense win high
    up the ladder (after SuperLU already took over) cannot drag the global
    cutoff up with it.
    """
    require(len(points) >= 1, "empty measurement")
    cutoff = 0
    for p in sorted(points, key=lambda p: p.n):
        if not p.dense_wins:
            break
        cutoff = p.n
    return cutoff


def tune_dense_cutoff(
    sizes: tuple[int, ...] = DEFAULT_CROSSOVER_SIZES,
    n_rhs: int = 16,
    repeats: int = 3,
    seed: int = 0,
    apply: bool = True,
) -> int:
    """Measure the crossover and (by default) install it as the auto cutoff."""
    cutoff = pick_dense_cutoff(
        measure_dense_crossover(sizes=sizes, n_rhs=n_rhs, repeats=repeats, seed=seed)
    )
    if apply:
        set_dense_cutoff(cutoff)
    return cutoff


__all__ = [
    "SweepPoint",
    "sweep_block_parameter",
    "best_point",
    "tune_block_parameter",
    "CrossoverPoint",
    "DEFAULT_CROSSOVER_SIZES",
    "measure_dense_crossover",
    "pick_dense_cutoff",
    "tune_dense_cutoff",
]
