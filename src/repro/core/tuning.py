"""Hyperparameter sweeps for the split kernels (Table 1 / Figure 5).

The block size (or count) trades (a) work saved by skipping zeros against
(b) the overhead of many small kernel launches (§4.1).  These helpers sweep
a parameter grid on a given workload, report simulated assembly times, and
pick the optimum — the machinery behind the Table 1 and Figure 5 benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import scipy.sparse as sp

from repro.core.assembler import SchurAssembler
from repro.core.blocks import BlockSpec, by_count, by_size
from repro.core.config import AssemblyConfig
from repro.gpu.spec import DeviceSpec
from repro.sparse.cholesky import CholeskyFactor
from repro.util import require


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter setting."""

    spec: BlockSpec
    elapsed: float
    breakdown: dict[str, float]


def sweep_block_parameter(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    base_config: AssemblyConfig,
    device_spec: DeviceSpec,
    values: list[int],
    mode: str = "size",
    target: str = "trsm",
) -> list[SweepPoint]:
    """Assemble the SC once per parameter value, returning simulated times.

    Parameters
    ----------
    target:
        ``"trsm"``, ``"syrk"`` or ``"both"`` — which stage's block parameter
        to vary (``"both"`` sets them equal, as Figure 5 does).
    """
    require(target in ("trsm", "syrk", "both"), f"unknown target {target!r}")
    require(mode in ("size", "count"), f"unknown mode {mode!r}")
    points: list[SweepPoint] = []
    for v in values:
        spec = by_size(v) if mode == "size" else by_count(v)
        overrides = {}
        if target in ("trsm", "both"):
            overrides["trsm_blocks"] = spec
        if target in ("syrk", "both"):
            overrides["syrk_blocks"] = spec
        cfg = base_config.with_overrides(**overrides)
        assembler = SchurAssembler(config=cfg, spec=device_spec)
        result = assembler.assemble(factor, bt)
        points.append(SweepPoint(spec=spec, elapsed=result.elapsed, breakdown=result.breakdown))
    return points


def best_point(points: list[SweepPoint]) -> SweepPoint:
    """The sweep point with the lowest simulated time."""
    require(len(points) > 0, "empty sweep")
    return min(points, key=lambda p: p.elapsed)


def tune_block_parameter(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    base_config: AssemblyConfig,
    device_spec: DeviceSpec,
    values: list[int],
    mode: str = "size",
    target: str = "trsm",
) -> BlockSpec:
    """Sweep and return the best block specification."""
    return best_point(
        sweep_block_parameter(
            factor, bt, base_config, device_spec, values, mode=mode, target=target
        )
    ).spec


__all__ = ["SweepPoint", "sweep_block_parameter", "best_point", "tune_block_parameter"]
