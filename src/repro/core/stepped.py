"""The stepped shape: column pivots, row trails, and the column permutation.

§3 of the paper: the columns of ``B̃^T`` (rows already ordered by the
fill-reducing permutation of ``K``) are permuted so that *column pivots*
(first nonzero of each column) descend left to right and *row trails* (last
nonzero of each row) move right going down — an approximately lower
triangular, **stepped** matrix.  Rows are never permuted: that would fight
the fill-reducing ordering of the factor.

All optimized TRSM/SYRK variants consume a :class:`SteppedShape`, which
captures exactly the structural zeros that forward substitution preserves
("zeros above the column pivots are preserved").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.util import require


@dataclass(frozen=True)
class SteppedShape:
    """Structural description of a stepped ``(n_rows x m)`` dense matrix.

    ``pivots[j]`` is the row of the first (potential) nonzero of column *j*;
    rows above it are structurally zero and remain so through forward
    substitution.  Pivots are ascending; ``pivots[j] == n_rows`` marks an
    entirely-zero column.
    """

    n_rows: int
    pivots: np.ndarray

    def __post_init__(self) -> None:
        require(self.n_rows >= 0, "n_rows must be >= 0")
        p = np.asarray(self.pivots)
        require(p.ndim == 1, "pivots must be 1-D")
        require(bool(np.all(np.diff(p) >= 0)), "pivots must be ascending (stepped)")
        if p.size:
            require(
                0 <= p[0] and p[-1] <= self.n_rows,
                "pivots must lie in [0, n_rows]",
            )

    @property
    def n_cols(self) -> int:
        return int(np.asarray(self.pivots).size)

    def width_below(self, row: int) -> int:
        """Number of columns with a pivot strictly above *row* (i.e. the
        nonzero width of rows ``< row`` — the ``w`` of factor splitting)."""
        return int(np.searchsorted(self.pivots, row, side="left"))

    def first_pivot(self, col_start: int) -> int:
        """Topmost pivot among columns ``>= col_start`` (they are sorted)."""
        require(0 <= col_start <= self.n_cols, "col_start out of range")
        if col_start == self.n_cols:
            return self.n_rows
        return int(self.pivots[col_start])

    def density(self) -> float:
        """Fraction of structurally nonzero entries (1.0 = fully dense)."""
        if self.n_rows == 0 or self.n_cols == 0:
            return 1.0
        nz = float(np.sum(self.n_rows - self.pivots))
        return nz / (self.n_rows * self.n_cols)


def column_pivots(bt: sp.spmatrix) -> np.ndarray:
    """First nonzero row index of each column (``n_rows`` for empty columns)."""
    require(sp.issparse(bt), "bt must be sparse")
    btc = bt.tocsc()
    n, m = btc.shape
    pivots = np.full(m, n, dtype=np.intp)
    for j in range(m):
        start, end = btc.indptr[j], btc.indptr[j + 1]
        if end > start:
            pivots[j] = btc.indices[start:end].min()
    return pivots


def row_trails(bt: sp.spmatrix) -> np.ndarray:
    """Last nonzero column index of each row (``-1`` for empty rows)."""
    require(sp.issparse(bt), "bt must be sparse")
    btr = bt.tocsr()
    n = btr.shape[0]
    trails = np.full(n, -1, dtype=np.intp)
    for i in range(n):
        start, end = btr.indptr[i], btr.indptr[i + 1]
        if end > start:
            trails[i] = btr.indices[start:end].max()
    return trails


def stepped_permutation(bt: sp.spmatrix) -> tuple[np.ndarray, SteppedShape]:
    """Column permutation bringing *bt* to the stepped shape.

    Returns ``(col_perm, shape)`` such that ``bt[:, col_perm]`` has ascending
    column pivots; *shape* describes the permuted matrix.
    """
    pivots = column_pivots(bt)
    col_perm = np.argsort(pivots, kind="stable").astype(np.intp)
    return col_perm, SteppedShape(n_rows=bt.shape[0], pivots=pivots[col_perm])


def is_stepped(bt: sp.spmatrix | np.ndarray, tol: float = 0.0) -> bool:
    """Check that column pivots are non-decreasing left to right."""
    if sp.issparse(bt):
        pivots = column_pivots(bt)
    else:
        dense = np.asarray(bt)
        n, m = dense.shape
        pivots = np.full(m, n, dtype=np.intp)
        for j in range(m):
            nz = np.flatnonzero(np.abs(dense[:, j]) > tol)
            if nz.size:
                pivots[j] = nz[0]
    return bool(np.all(np.diff(pivots) >= 0))


def check_zeros_above_pivots(
    x: np.ndarray, shape: SteppedShape, tol: float = 0.0
) -> bool:
    """Verify the invariant that entries above the pivots stay (numerically)
    zero — used by tests to validate every optimized kernel."""
    require(x.shape == (shape.n_rows, shape.n_cols), "shape mismatch")
    for j, p in enumerate(shape.pivots):
        if p > 0 and np.abs(x[:p, j]).max(initial=0.0) > tol:
            return False
    return True


__all__ = [
    "SteppedShape",
    "column_pivots",
    "row_trails",
    "stepped_permutation",
    "is_stepped",
    "check_zeros_above_pivots",
]
