"""Sparsity-aware TRSM variants (§3.2 of the paper).

Solves ``L Y = X`` in place on a dense right-hand-side matrix ``X`` that is
in the *stepped* shape, skipping the structural zeros above the column
pivots.  Three variants:

* :func:`trsm_orig` — the baseline of [9]: one library TRSM over the whole
  RHS (sparse or dense factor storage), no sparsity use.
* :func:`trsm_rhs_split` — split the RHS into column blocks; each block is
  solved with only the subfactor below its topmost pivot (Fig. 3a).
* :func:`trsm_factor_split` — block the factor itself: an inner TRSM on the
  diagonal block restricted to the currently-nonzero RHS columns, then a
  GEMM incorporating the sub-diagonal block (Fig. 3b).  With *pruning*, only
  the non-empty rows of the sub-diagonal block enter the GEMM — the same
  trick as CHOLMOD's supernodal packing.

All variants execute through an :class:`~repro.gpu.runtime.Executor`, so the
identical code path is priced on a GPU or CPU roofline.

Each variant also has a ``batched_*`` twin that runs a whole fingerprint
group at once: the control flow (block loop, skip decisions, pruning rows)
depends only on the *shared* pattern, so one pass over the blocks issues one
batched kernel per step for the entire ``(group, n, m)`` RHS stack.  The
batched twins charge exactly the same FLOPs and memory traffic as ``group``
per-member runs — only the launch count shrinks by the group size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.core.blocks import BlockSpec
from repro.core.stepped import SteppedShape
from repro.gpu.runtime import Executor
from repro.sparse.stacked import StackedCSC
from repro.sparse.triangular import TriangularSolver
from repro.util import require

FACTOR_STORAGES = ("sparse", "dense")


@dataclass(frozen=True)
class PruningPlan:
    """Precomputed pruning gather for :func:`trsm_factor_split`.

    For every factor row block ``[r0, r1)`` the plan stores the non-empty
    rows of the sub-diagonal block ``L[r1:, r0:r1]`` (local indices, i.e.
    relative to ``r1``) together with its stored-entry count.  The plan is a
    pure pattern artifact: two factors with identical CSC structure share
    it, which is what the batch pattern cache exploits.

    Callers must guarantee the factor's *stored* pattern matches the one
    the plan was built from (the batch engine does so via exact
    fingerprints); the in-kernel nnz check catches gross mismatches only,
    not same-count permuted patterns.
    """

    n: int
    blocks: tuple[tuple[int, int], ...]
    rows: tuple[np.ndarray, ...]
    nnz: tuple[int, ...]

    def matches(self, n: int, resolved: list[tuple[int, int]]) -> bool:
        """Whether the plan was built for this factor order and block split."""
        return self.n == n and self.blocks == tuple(resolved)

    @classmethod
    def from_pattern(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        n: int,
        resolved: list[tuple[int, int]],
    ) -> "PruningPlan":
        """Build the plan from a lower-triangular CSC pattern (sorted rows)."""
        rows: list[np.ndarray] = []
        nnz: list[int] = []
        for r0, r1 in resolved:
            chunks = []
            total = 0
            for j in range(r0, r1):
                col = indices[indptr[j] : indptr[j + 1]]
                lo = int(np.searchsorted(col, r1, side="left"))
                if col.size > lo:
                    chunks.append(col[lo:])
                    total += col.size - lo
            if chunks:
                rows.append(np.unique(np.concatenate(chunks)) - r1)
            else:
                rows.append(np.empty(0, dtype=np.intp))
            nnz.append(total)
        return cls(n=n, blocks=tuple(resolved), rows=tuple(rows), nnz=tuple(nnz))


def trsm_orig(
    ex: Executor,
    l: sp.csc_matrix,
    x: np.ndarray,
    storage: str = "sparse",
    solver: TriangularSolver | None = None,
) -> None:
    """Baseline TRSM of [9]: one full-size solve, no RHS-sparsity use."""
    require(storage in FACTOR_STORAGES, f"unknown factor storage {storage!r}")
    if storage == "dense":
        ld = ex.densify(l)
        ex.trsm_dense(ld, x)
    else:
        ex.trsm_sparse(l, x, solver=solver)


def trsm_rhs_split(
    ex: Executor,
    l: sp.csc_matrix,
    x: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
    storage: str = "sparse",
) -> None:
    """RHS-splitting TRSM (Fig. 3a).

    Each column block ``[c0, c1)`` is solved with the subfactor
    ``L[p:, p:]`` where ``p`` is the topmost pivot in the block — the rows
    above ``p`` are structurally zero and forward substitution preserves
    them.  Dense storage uses pointer arithmetic into the densified factor
    (free); sparse storage must extract each subfactor (charged).
    """
    require(storage in FACTOR_STORAGES, f"unknown factor storage {storage!r}")
    n = l.shape[0]
    require(x.shape == (shape.n_rows, shape.n_cols), "RHS/shape mismatch")
    require(shape.n_rows == n, "factor order must match RHS rows")
    ld = ex.densify(l) if storage == "dense" else None
    for c0, c1 in blocks.resolve(shape.n_cols):
        p = shape.first_pivot(c0)
        if p >= n:
            continue  # entirely-zero columns
        xsub = x[p:, c0:c1]
        if storage == "dense":
            ex.trsm_dense(ld[p:, p:], xsub)
        else:
            lsub = ex.extract_sparse_block(l, p, n, p, n)
            ex.trsm_sparse(lsub, xsub)


def trsm_factor_split(
    ex: Executor,
    l: sp.csc_matrix,
    x: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
    storage: str = "dense",
    prune: bool = True,
    plan: PruningPlan | None = None,
) -> None:
    """Factor-splitting TRSM (Fig. 3b).

    For each factor row block ``[r0, r1)``:

    1. inner TRSM with the diagonal block ``L[r0:r1, r0:r1]`` on the top RHS
       block restricted to its ``w`` nonzero columns (``w`` = number of
       pivots above ``r1``),
    2. GEMM: ``X[r1:, :w] -= L[r1:, r0:r1] @ X[r0:r1, :w]``.

    With *prune* the GEMM runs only on the non-empty rows of the
    sub-diagonal block (gather -> dense GEMM -> scatter-subtract).  An
    optional precomputed :class:`PruningPlan` (from the batch pattern cache)
    supplies the non-empty rows without rescanning the factor.
    """
    require(storage in FACTOR_STORAGES, f"unknown factor storage {storage!r}")
    n = l.shape[0]
    require(x.shape == (shape.n_rows, shape.n_cols), "RHS/shape mismatch")
    require(shape.n_rows == n, "factor order must match RHS rows")
    resolved = blocks.resolve(n)
    if plan is not None:
        require(plan.matches(n, resolved), "pruning plan does not match factor/blocks")
    for bi, (r0, r1) in enumerate(resolved):
        w = shape.width_below(r1)
        if w == 0:
            continue  # the whole top block is structurally zero
        ldiag = ex.extract_sparse_block(l, r0, r1, r0, r1)
        xtop = x[r0:r1, :w]
        if storage == "dense":
            ld = ex.densify(ldiag)
            ex.trsm_dense(ld, xtop)
        else:
            ex.trsm_sparse(ldiag, xtop)
        if r1 >= n:
            continue
        lsub = ex.extract_sparse_block(l, r1, n, r0, r1)
        if lsub.nnz == 0:
            continue
        if prune:
            lsub_csr = lsub.tocsr()
            if plan is not None:
                require(
                    lsub.nnz == plan.nnz[bi],
                    "pruning plan does not match the factor pattern",
                )
                nonempty = plan.rows[bi]
            else:
                nonempty = np.flatnonzero(np.diff(lsub_csr.indptr)).astype(np.intp)
            a_packed = ex.densify(sp.csr_matrix(lsub_csr[nonempty]))
            tmp = np.zeros((nonempty.size, w))
            ex.gemm(a_packed, xtop, tmp, beta=0.0)
            ex.scatter_add_rows(x[r1:, :w], nonempty, tmp, sign=-1.0)
        elif storage == "dense":
            ld_sub = ex.densify(lsub)
            ex.gemm(ld_sub, xtop, x[r1:, :w], alpha=-1.0, beta=1.0)
        else:
            ex.spmm(lsub, xtop, x[r1:, :w], alpha=-1.0, beta=1.0)


# ---------------------------------------------------------------------------
# batched twins: one fingerprint group per call
# ---------------------------------------------------------------------------


def _check_stacks(l: StackedCSC, x_stack: np.ndarray, shape: SteppedShape | None) -> int:
    n = l.shape[0]
    require(l.shape == (n, n), "stacked factor must be square")
    require(
        x_stack.ndim == 3 and x_stack.shape[0] == l.group,
        "RHS must be a (group, n, m) stack matching the factor stack",
    )
    if shape is not None:
        require(
            x_stack.shape[1:] == (shape.n_rows, shape.n_cols), "RHS/shape mismatch"
        )
        require(shape.n_rows == n, "factor order must match RHS rows")
    else:
        require(x_stack.shape[1] == n, "factor order must match RHS rows")
    return n


def batched_trsm_orig(
    ex: Executor, l: StackedCSC, x_stack: np.ndarray, storage: str = "sparse"
) -> None:
    """Batched baseline TRSM: one full-size stacked solve for the group."""
    require(storage in FACTOR_STORAGES, f"unknown factor storage {storage!r}")
    _check_stacks(l, x_stack, None)
    if storage == "dense":
        ld = ex.batched_densify(l)
        ex.batched_trsm_dense(ld, x_stack)
    else:
        ex.batched_trsm_sparse(l, x_stack)


def batched_trsm_rhs_split(
    ex: Executor,
    l: StackedCSC,
    x_stack: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
    storage: str = "sparse",
) -> None:
    """Batched RHS-splitting TRSM (Fig. 3a) over a stacked group."""
    require(storage in FACTOR_STORAGES, f"unknown factor storage {storage!r}")
    n = _check_stacks(l, x_stack, shape)
    ld = ex.batched_densify(l) if storage == "dense" else None
    for c0, c1 in blocks.resolve(shape.n_cols):
        p = shape.first_pivot(c0)
        if p >= n:
            continue  # entirely-zero columns
        xsub = x_stack[:, p:, c0:c1]
        if storage == "dense":
            ex.batched_trsm_dense(ld[:, p:, p:], xsub)
        else:
            lsub = ex.batched_extract_block(l, p, n, p, n)
            ex.batched_trsm_sparse(lsub, xsub)


def batched_trsm_factor_split(
    ex: Executor,
    l: StackedCSC,
    x_stack: np.ndarray,
    shape: SteppedShape,
    blocks: BlockSpec,
    storage: str = "dense",
    prune: bool = True,
    plan: PruningPlan | None = None,
) -> None:
    """Batched factor-splitting TRSM (Fig. 3b) over a stacked group.

    Mirrors :func:`trsm_factor_split` block by block; pruning gathers the
    shared non-empty rows once per block and packs every member's
    sub-diagonal block in a single stacked densify.
    """
    require(storage in FACTOR_STORAGES, f"unknown factor storage {storage!r}")
    n = _check_stacks(l, x_stack, shape)
    g = l.group
    resolved = blocks.resolve(n)
    if plan is not None:
        require(plan.matches(n, resolved), "pruning plan does not match factor/blocks")
    for bi, (r0, r1) in enumerate(resolved):
        w = shape.width_below(r1)
        if w == 0:
            continue  # the whole top block is structurally zero
        ldiag = ex.batched_extract_block(l, r0, r1, r0, r1)
        xtop = x_stack[:, r0:r1, :w]
        if storage == "dense":
            ld = ex.batched_densify(ldiag)
            ex.batched_trsm_dense(ld, xtop)
        else:
            ex.batched_trsm_sparse(ldiag, xtop)
        if r1 >= n:
            continue
        lsub = ex.batched_extract_block(l, r1, n, r0, r1)
        if lsub.nnz == 0:
            continue
        if prune:
            if plan is not None:
                require(
                    lsub.nnz == plan.nnz[bi],
                    "pruning plan does not match the factor pattern",
                )
                nonempty = plan.rows[bi]
            else:
                nonempty = lsub.nonempty_rows()
            a_packed = ex.batched_densify(lsub, rows=nonempty)
            tmp = np.zeros((g, nonempty.size, w))
            ex.batched_gemm(a_packed, xtop, tmp, beta=0.0)
            ex.batched_scatter_add_rows(x_stack[:, r1:, :w], nonempty, tmp, sign=-1.0)
        elif storage == "dense":
            ld_sub = ex.batched_densify(lsub)
            ex.batched_gemm(ld_sub, xtop, x_stack[:, r1:, :w], alpha=-1.0, beta=1.0)
        else:
            ex.batched_spmm(lsub, xtop, x_stack[:, r1:, :w], alpha=-1.0, beta=1.0)


__all__ = [
    "trsm_orig",
    "trsm_rhs_split",
    "trsm_factor_split",
    "batched_trsm_orig",
    "batched_trsm_rhs_split",
    "batched_trsm_factor_split",
    "PruningPlan",
    "FACTOR_STORAGES",
]
