"""The paper's contribution: sparsity-aware Schur-complement assembly.

Stepped-shape column permutation of ``B̃^T``, split TRSM variants (RHS /
factor splitting with pruning), split SYRK variants (input / output
splitting), and the :class:`SchurAssembler` orchestrating them on a
simulated CPU or GPU.
"""

from repro.core.assembler import (
    MemoryEstimate,
    PreparedPattern,
    SchurAssembler,
    SchurAssemblyResult,
    prepare_pattern,
)
from repro.core.blocks import BLOCK_MODES, BlockSpec, by_count, by_size
from repro.core.config import (
    SYRK_VARIANTS,
    TABLE1_OPTIMA,
    TRSM_VARIANTS,
    AssemblyConfig,
    baseline_config,
    default_config,
)
from repro.core.stepped import (
    SteppedShape,
    check_zeros_above_pivots,
    column_pivots,
    is_stepped,
    row_trails,
    stepped_permutation,
)
from repro.core.syrk_split import (
    batched_syrk_input_split,
    batched_syrk_orig,
    batched_syrk_output_split,
    syrk_input_split,
    syrk_orig,
    syrk_output_split,
)
from repro.core.trsm_split import (
    FACTOR_STORAGES,
    PruningPlan,
    batched_trsm_factor_split,
    batched_trsm_orig,
    batched_trsm_rhs_split,
    trsm_factor_split,
    trsm_orig,
    trsm_rhs_split,
)
from repro.core.tuning import (
    CrossoverPoint,
    SweepPoint,
    best_point,
    measure_dense_crossover,
    pick_dense_cutoff,
    sweep_block_parameter,
    tune_block_parameter,
    tune_dense_cutoff,
)

__all__ = [
    "SchurAssembler",
    "SchurAssemblyResult",
    "MemoryEstimate",
    "PreparedPattern",
    "prepare_pattern",
    "PruningPlan",
    "AssemblyConfig",
    "default_config",
    "baseline_config",
    "TABLE1_OPTIMA",
    "TRSM_VARIANTS",
    "SYRK_VARIANTS",
    "BlockSpec",
    "by_size",
    "by_count",
    "BLOCK_MODES",
    "SteppedShape",
    "column_pivots",
    "row_trails",
    "stepped_permutation",
    "is_stepped",
    "check_zeros_above_pivots",
    "trsm_orig",
    "trsm_rhs_split",
    "trsm_factor_split",
    "batched_trsm_orig",
    "batched_trsm_rhs_split",
    "batched_trsm_factor_split",
    "FACTOR_STORAGES",
    "syrk_orig",
    "syrk_input_split",
    "syrk_output_split",
    "batched_syrk_orig",
    "batched_syrk_input_split",
    "batched_syrk_output_split",
    "SweepPoint",
    "sweep_block_parameter",
    "best_point",
    "tune_block_parameter",
    "CrossoverPoint",
    "measure_dense_crossover",
    "pick_dense_cutoff",
    "tune_dense_cutoff",
]
