"""Unstructured workloads: mesh zoo + METIS-like dual-graph partitioning.

The first workload family where batch grouping is *not* free: meshes with
jittered nodes, random cell splits or non-rectangular domains
(:mod:`repro.part.meshes`), decomposed by a recursive-bisection graph
partitioner with boundary refinement (:mod:`repro.part.partitioner`)
instead of the structured box grid.  Subdomains of such decompositions are
at best *approximately* congruent, which is exactly the regime the
rotation-invariant signatures of :mod:`repro.sparse.canonical` price —
see ``docs/unstructured.md``.
"""

from repro.part.meshes import (
    MESH_ZOO,
    boundary_nodes_from_elements,
    element_facets,
    jittered_square_mesh,
    lshape_mesh,
    make_mesh,
    strip_with_holes_mesh,
    submesh,
)
from repro.part.partitioner import (
    DEFAULT_IMBALANCE,
    PARTITION_METHODS,
    PartitionResult,
    edge_cut,
    element_dual_graph,
    partition_balance,
    partition_mesh,
    rebalance_partition,
    refine_partition,
    repair_connectivity,
)

__all__ = [
    "MESH_ZOO",
    "boundary_nodes_from_elements",
    "element_facets",
    "jittered_square_mesh",
    "lshape_mesh",
    "make_mesh",
    "strip_with_holes_mesh",
    "submesh",
    "DEFAULT_IMBALANCE",
    "PARTITION_METHODS",
    "PartitionResult",
    "edge_cut",
    "element_dual_graph",
    "partition_balance",
    "partition_mesh",
    "rebalance_partition",
    "refine_partition",
    "repair_connectivity",
]
