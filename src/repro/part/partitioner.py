"""METIS-like partitioning of the element dual graph (pure NumPy/SciPy).

:func:`repro.dd.partition.partition_elements` assigns elements to a regular
grid of boxes — exact for structured box meshes, useless for the
unstructured meshes of :mod:`repro.part.meshes` or non-rectangular
domains.  This module is the general-purpose replacement, following the
classic multilevel-partitioner recipe at single level:

1. **Dual graph** (:func:`element_dual_graph`): elements are vertices,
   facet-sharing pairs are edges — the graph METIS partitions.
2. **Recursive bisection** — either coordinate bisection (``"rcb"``: split
   along the widest centroid axis) or spectral bisection (``"spectral"``:
   split by the Fiedler vector of the subgraph Laplacian, with a
   deterministic start vector and an RCB fallback).
3. **Connectivity repair** (:func:`repair_connectivity`): stray components
   of a part are reassigned to the neighbour they touch most, so every
   part is connected in the dual graph (FETI subdomains with several
   islands would have larger kernels than their builder assumes), then
   cap-driven **rebalancing** (:func:`rebalance_partition`) trims parts
   the repair overfilled.
4. **Greedy boundary refinement** (:func:`refine_partition`): a
   Kernighan–Lin-style sweep moving boundary elements to the neighbouring
   part with the highest positive edge-cut gain, subject to the balance
   cap and a connectivity guard — the cut can only decrease.

:func:`partition_mesh` runs the pipeline and reports edge cut and balance;
:func:`repro.dd.decompose` accepts ``partitioner="rcb"|"spectral"`` to use
it end-to-end.  Everything is deterministic under a fixed *seed*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.fem.mesh import Mesh
from repro.obs import get_tracer
from repro.util import require

#: Graph-partitioning methods of :func:`partition_mesh` (``repro.dd.decompose``
#: additionally accepts ``"boxes"`` for the structured grid path).
PARTITION_METHODS = ("rcb", "spectral")

#: Default balance slack: no part may exceed ``ceil(ideal * (1 + imbalance))``.
DEFAULT_IMBALANCE = 0.1

#: Subgraphs smaller than this use coordinate bisection even under
#: ``method="spectral"`` (an eigensolve on a handful of vertices is noise).
_SPECTRAL_MIN = 8


def element_dual_graph(mesh: Mesh) -> sp.csr_matrix:
    """Symmetric adjacency of elements sharing a facet (edge in 2-D, face in 3-D)."""
    from repro.part.meshes import element_facets

    elements = mesh.elements
    ne = elements.shape[0]
    facets, owners = element_facets(elements)
    _, inverse = np.unique(facets, axis=0, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    inv_sorted = inverse[order]
    own_sorted = owners[order]
    dup = np.flatnonzero(inv_sorted[1:] == inv_sorted[:-1])
    a, b = own_sorted[dup], own_sorted[dup + 1]
    data = np.ones(a.size, dtype=np.float64)
    adj = sp.coo_matrix((data, (a, b)), shape=(ne, ne))
    adj = adj + adj.T
    return adj.tocsr()


def edge_cut(graph: sp.spmatrix, owner: np.ndarray) -> int:
    """Number of dual-graph edges whose endpoints lie in different parts."""
    coo = sp.triu(graph, k=1).tocoo()
    return int(np.count_nonzero(owner[coo.row] != owner[coo.col]))


def partition_balance(owner: np.ndarray, n_parts: int) -> float:
    """Largest part size over the ideal size (1.0 = perfectly balanced)."""
    counts = np.bincount(owner, minlength=n_parts)
    ideal = owner.size / n_parts
    return float(counts.max() / ideal) if owner.size else 0.0


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one :func:`partition_mesh` call.

    ``owner[e]`` is the part of element *e*; ``edge_cut``/``balance`` are
    the standard partition-quality metrics (cut dual edges, max part size
    over ideal); ``counts`` the per-part element counts.
    """

    owner: np.ndarray
    n_parts: int
    method: str
    edge_cut: int
    balance: float
    counts: np.ndarray
    refined: bool
    seed: int

    def summary(self) -> str:
        return (
            f"{self.n_parts} parts ({self.method}"
            f"{', refined' if self.refined else ''}): edge cut {self.edge_cut}, "
            f"balance {self.balance:.3f}, sizes {int(self.counts.min())}"
            f"..{int(self.counts.max())}"
        )


def _bisection_sizes(n_items: int, parts: int) -> tuple[int, int, int]:
    """Split *parts* into halves and size the left item block proportionally."""
    left_parts = parts // 2
    right_parts = parts - left_parts
    n_left = int(round(n_items * left_parts / parts))
    # Each side must keep at least one element per part it still owes.
    n_left = min(max(n_left, left_parts), n_items - right_parts)
    return left_parts, right_parts, n_left


def _rcb_key(centroids: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Coordinate along the widest axis of the subset's centroid cloud."""
    sub = centroids[idx]
    extents = sub.max(axis=0) - sub.min(axis=0)
    return sub[:, int(np.argmax(extents))]


def _fiedler_key(
    graph: sp.csr_matrix, centroids: np.ndarray, idx: np.ndarray
) -> np.ndarray:
    """Fiedler vector of the subgraph Laplacian (RCB key as fallback).

    The start vector is the mean-free RCB coordinate — deterministic, and
    generically rich in the Fiedler direction, so repeated runs converge to
    the same (up to sign — irrelevant for a split) vector.
    """
    rcb = _rcb_key(centroids, idx)
    if idx.size < _SPECTRAL_MIN:
        return rcb
    sub = graph[idx][:, idx]
    degree = np.asarray(sub.sum(axis=1)).ravel()
    lap = sp.diags(degree) - sub
    v0 = rcb - rcb.mean()
    norm = np.linalg.norm(v0)
    if norm == 0.0:
        return rcb
    try:
        _, vectors = sp.linalg.eigsh(lap.tocsc(), k=2, sigma=-1e-3, v0=v0 / norm)
    except Exception:  # eigensolver failure: keep the geometric split
        return rcb
    fiedler = vectors[:, 1]
    # Fix the sign so the key (and the resulting split) is deterministic.
    anchor = np.flatnonzero(np.abs(fiedler) > 1e-12)
    if anchor.size and fiedler[anchor[0]] < 0:
        fiedler = -fiedler
    return fiedler


def _bisect(
    graph: sp.csr_matrix,
    centroids: np.ndarray,
    method: str,
    owner: np.ndarray,
    idx: np.ndarray,
    parts: int,
    next_label: int,
) -> int:
    if parts == 1:
        owner[idx] = next_label
        return next_label + 1
    left_parts, right_parts, n_left = _bisection_sizes(idx.size, parts)
    with get_tracer().span(
        "part.bisect", n_elements=int(idx.size), parts=parts, method=method
    ):
        key = _rcb_key(centroids, idx) if method == "rcb" else _fiedler_key(
            graph, centroids, idx
        )
        order = np.argsort(key, kind="stable")
    next_label = _bisect(
        graph, centroids, method, owner, idx[order[:n_left]], left_parts, next_label
    )
    return _bisect(
        graph, centroids, method, owner, idx[order[n_left:]], right_parts, next_label
    )


def _part_members(owner: np.ndarray, part: int) -> np.ndarray:
    return np.flatnonzero(owner == part)


def repair_connectivity(
    graph: sp.csr_matrix,
    owner: np.ndarray,
    n_parts: int,
    imbalance: float = DEFAULT_IMBALANCE,
    max_passes: int = 10,
) -> np.ndarray:
    """Reassign stray components so every part is dual-graph connected.

    For each part with several components, every component except the
    largest moves wholesale to a neighbouring part — the one it shares the
    most dual edges with among those a balance cap (``ceil(ideal * (1 +
    imbalance))``) still admits, or the overall most-connected neighbour
    when every candidate is full (connectivity beats balance; the
    refinement's rebalance phase trims the excess afterwards where
    single-element moves allow).  Moving a whole component into a part it
    touches cannot disconnect the target, so a few passes reach a fixed
    point.
    """
    owner = owner.copy()
    cap = int(np.ceil(owner.size / n_parts * (1.0 + imbalance)))
    for _ in range(max_passes):
        changed = False
        part_counts = np.bincount(owner, minlength=n_parts)
        for part in range(n_parts):
            members = _part_members(owner, part)
            if members.size <= 1:
                continue
            n_comp, comp = connected_components(
                graph[members][:, members], directed=False
            )
            if n_comp <= 1:
                continue
            sizes = np.bincount(comp)
            keep = int(np.argmax(sizes))
            for c in range(n_comp):
                if c == keep:
                    continue
                stray = members[comp == c]
                neighbour_owner = np.concatenate([
                    owner[graph.indices[graph.indptr[e]:graph.indptr[e + 1]]]
                    for e in stray
                ])
                neighbour_owner = neighbour_owner[neighbour_owner != part]
                if neighbour_owner.size == 0:
                    continue  # isolated island: nothing adjacent to join
                links = np.bincount(neighbour_owner, minlength=n_parts)
                fits = links * (part_counts + stray.size <= cap)
                target = int(np.argmax(fits)) if fits.any() else int(np.argmax(links))
                owner[stray] = target
                part_counts[part] -= stray.size
                part_counts[target] += stray.size
                changed = True
        if not changed:
            break
    return owner


def _stays_connected(graph: sp.csr_matrix, owner: np.ndarray, element: int) -> bool:
    """Would the element's part remain connected without it?"""
    part = owner[element]
    members = _part_members(owner, part)
    rest = members[members != element]
    if rest.size <= 1:
        return True
    n_comp, _ = connected_components(graph[rest][:, rest], directed=False)
    return n_comp == 1


def refine_partition(
    graph: sp.csr_matrix,
    owner: np.ndarray,
    n_parts: int,
    imbalance: float = DEFAULT_IMBALANCE,
    max_sweeps: int = 8,
) -> np.ndarray:
    """Greedy KL-style boundary refinement: strictly cut-reducing moves only.

    Elements are visited in index order; a boundary element moves to the
    neighbouring part with the largest *positive* gain (dual edges gained
    minus lost) provided the target stays under the balance cap
    (``ceil(ideal * (1 + imbalance))``), the source keeps at least one
    element, and the source part stays connected.  Every accepted move
    lowers the edge cut by at least one, so the refined cut is never worse
    than the input's and the sweeps terminate.
    """
    owner = owner.copy()
    counts = np.bincount(owner, minlength=n_parts)
    cap = int(np.ceil(owner.size / n_parts * (1.0 + imbalance)))
    for _ in range(max_sweeps):
        moved = 0
        for e in range(owner.size):
            target = _best_move(
                graph, owner, counts, cap, e, require_positive_gain=True
            )
            if target < 0:
                continue
            counts[owner[e]] -= 1
            counts[target] += 1
            owner[e] = target
            moved += 1
        if moved == 0:
            break
    return owner


def rebalance_partition(
    graph: sp.csr_matrix,
    owner: np.ndarray,
    n_parts: int,
    imbalance: float = DEFAULT_IMBALANCE,
    max_sweeps: int = 8,
) -> np.ndarray:
    """Push over-full parts back under the balance cap.

    Connectivity repair moves whole components, so a part can exceed
    ``ceil(ideal * (1 + imbalance))``.  This phase moves boundary elements
    of over-full parts to the adjacent part they are most connected to
    (best gain of *any* sign, connectivity guarded) until every part fits
    or no guarded single-element move remains — parts pinched into
    articulation chains may stay slightly above the cap, which
    :func:`partition_mesh` reports honestly in ``balance``.
    """
    owner = owner.copy()
    counts = np.bincount(owner, minlength=n_parts)
    cap = int(np.ceil(owner.size / n_parts * (1.0 + imbalance)))
    for _ in range(max_sweeps):
        if not np.any(counts > cap):
            break
        moved = 0
        for e in range(owner.size):
            if counts[owner[e]] <= cap:
                continue
            target = _best_move(
                graph, owner, counts, cap, e, require_positive_gain=False
            )
            if target < 0:
                continue
            counts[owner[e]] -= 1
            counts[target] += 1
            owner[e] = target
            moved += 1
        if moved == 0:
            break
    return owner


def _best_move(
    graph: sp.csr_matrix,
    owner: np.ndarray,
    counts: np.ndarray,
    cap: int,
    e: int,
    require_positive_gain: bool,
) -> int:
    """Best target part for element *e*, or -1 when no admissible move exists.

    Cut-reducing sweeps (*require_positive_gain*) respect the cap strictly;
    rebalance moves may also target an at-cap part when that still strictly
    shrinks the over-full source.  Either way the source must keep at least
    one element and stay dual-graph connected.
    """
    own = owner[e]
    indptr, indices = graph.indptr, graph.indices
    neighbour_parts = owner[indices[indptr[e]:indptr[e + 1]]]
    if counts[own] <= 1 or not np.any(neighbour_parts != own):
        return -1
    parts, links = np.unique(neighbour_parts, return_counts=True)
    own_links = int(links[parts == own].sum())
    floor = 1 if require_positive_gain else -own_links
    best_gain, best_part = floor - 1, -1
    for p, link in zip(parts, links):  # parts ascending: ties keep smallest
        if p == own:
            continue
        if counts[p] >= cap and (
            require_positive_gain or counts[p] + 1 >= counts[own]
        ):
            continue
        gain = int(link) - own_links
        if gain > best_gain:
            best_gain, best_part = gain, int(p)
    if best_part >= 0 and not _stays_connected(graph, owner, e):
        return -1
    return best_part


def partition_mesh(
    mesh: Mesh,
    n_parts: int,
    method: str = "rcb",
    refine: bool = True,
    imbalance: float = DEFAULT_IMBALANCE,
    seed: int = 0,
) -> PartitionResult:
    """Partition *mesh*'s elements into *n_parts* connected, balanced parts.

    Recursive bisection (*method*: coordinate ``"rcb"`` or spectral
    ``"spectral"``) over the element dual graph, followed by connectivity
    repair, cap-driven rebalancing and — with *refine* (default) — a
    greedy boundary refinement that can only lower the edge cut (so the
    refined cut is never worse than ``refine=False``'s).  Deterministic
    for fixed inputs
    (*seed* is recorded for provenance and reserved for randomized
    refinements; the current pipeline draws no random numbers).
    """
    require(method in PARTITION_METHODS, f"unknown partition method {method!r}")
    require(n_parts >= 1, "n_parts must be >= 1")
    require(
        n_parts <= mesh.n_elements,
        f"cannot split {mesh.n_elements} elements into {n_parts} parts",
    )
    require(imbalance >= 0.0, "imbalance must be >= 0")
    tracer = get_tracer()
    with tracer.span(
        "part.partition", n_elements=mesh.n_elements, n_parts=n_parts, method=method
    ):
        owner, counts, graph = _partition_stages(
            mesh, n_parts, method, refine, imbalance, tracer
        )
    return PartitionResult(
        owner=owner,
        n_parts=n_parts,
        method=method,
        edge_cut=edge_cut(graph, owner),
        balance=partition_balance(owner, n_parts),
        counts=counts,
        refined=refine,
        seed=seed,
    )


def _partition_stages(mesh, n_parts, method, refine, imbalance, tracer):
    """The staged partition pipeline, each stage a ``part.*`` span."""
    with tracer.span("part.dual_graph"):
        graph = element_dual_graph(mesh)
    n_comp, _ = connected_components(graph, directed=False)
    # The connected-parts guarantee is only meaningful on a connected mesh:
    # islands can neither be repaired into their part's component nor
    # detected downstream (FETI subdomains with several islands have larger
    # kernels than their builder assumes), so refuse loudly.
    require(
        n_comp == 1,
        f"mesh dual graph has {n_comp} connected components; partition each "
        "component separately (partition_mesh guarantees connected parts "
        "only on a connected mesh)",
    )
    centroids = mesh.coords[mesh.elements].mean(axis=1)
    owner = np.empty(mesh.n_elements, dtype=np.intp)
    _bisect(graph, centroids, method, owner, np.arange(mesh.n_elements), n_parts, 0)
    with tracer.span("part.repair"):
        owner = repair_connectivity(graph, owner, n_parts, imbalance=imbalance)
    with tracer.span("part.rebalance"):
        owner = rebalance_partition(graph, owner, n_parts, imbalance=imbalance)
    if refine:
        with tracer.span("part.refine"):
            owner = refine_partition(graph, owner, n_parts, imbalance=imbalance)
    counts = np.bincount(owner, minlength=n_parts)
    require(int(counts.min()) >= 1, "partition produced an empty part")
    return owner, counts, graph


__all__ = [
    "DEFAULT_IMBALANCE",
    "PARTITION_METHODS",
    "PartitionResult",
    "edge_cut",
    "element_dual_graph",
    "partition_balance",
    "partition_mesh",
    "rebalance_partition",
    "refine_partition",
    "repair_connectivity",
]
