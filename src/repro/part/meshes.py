"""Unstructured-mesh zoo: jittered, irregularly-split and non-rectangular.

Every workload before this module was the unit box, uniformly triangulated
and partitioned into congruent boxes — the easiest possible case for the
batch cache, because grouping is free.  The paper's setting is general
decompositions produced by graph partitioners over arbitrary meshes, so
these generators open that regime while staying pure NumPy:

* :func:`jittered_square_mesh` — the unit square with randomly perturbed
  interior nodes and a randomly chosen diagonal per cell (an
  "irregularly-split" simplicial mesh).  No two subdomains of a partition
  are exact translates, so exact fingerprints stop collapsing and only the
  rotation-invariant *pricing* signatures of :mod:`repro.sparse.canonical`
  group anything.
* :func:`lshape_mesh` — the unit square minus its upper-right quadrant
  (the classic re-entrant corner domain).
* :func:`strip_with_holes_mesh` — an elongated strip with square holes
  punched out, the "perforated" domain graph partitioners are built for.

All generators return the ordinary :class:`repro.fem.mesh.Mesh`, so the
whole FEM / dd / batch pipeline downstream is unchanged; boundary groups
are recomputed geometrically (``left``/``right``/``bottom``/``top``) plus
one ``"boundary"`` group holding every node on a free facet — use it for
Dirichlet conditions on domains whose boundary is not four straight sides.
:data:`MESH_ZOO` / :func:`make_mesh` name the generators for the CLI
(``python -m repro batch --mesh ...``; see ``docs/unstructured.md``).
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh, unit_cube_mesh, unit_square_mesh
from repro.util import require


def _signed_areas(coords: np.ndarray, elements: np.ndarray) -> np.ndarray:
    """Signed area of every triangle (positive = counter-clockwise)."""
    a, b, c = (coords[elements[:, k]] for k in range(3))
    return 0.5 * ((b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
                  - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0]))


def element_facets(elements: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """All facets of every simplex, with their owning element indices.

    A facet is an element with one vertex dropped, nodes sorted; the same
    construction serves triangles (edges) and tetrahedra (faces).  Returns
    ``(facets, owners)`` where row *i* of ``facets`` belongs to element
    ``owners[i]`` — interior facets appear twice, boundary facets once.
    """
    elements = np.asarray(elements)
    ne, nv = elements.shape
    facets = np.vstack([
        np.sort(np.delete(elements, k, axis=1), axis=1) for k in range(nv)
    ])
    owners = np.tile(np.arange(ne, dtype=np.intp), nv)
    return facets, owners


def boundary_nodes_from_elements(elements: np.ndarray) -> np.ndarray:
    """Sorted nodes lying on a free facet (one appearing in exactly one cell)."""
    facets, _ = element_facets(elements)
    uniq, counts = np.unique(facets, axis=0, return_counts=True)
    free = uniq[counts == 1]
    return np.unique(free).astype(np.intp)


def _rebuild_groups(coords: np.ndarray, elements: np.ndarray) -> dict[str, np.ndarray]:
    """Geometric side groups + the facet-derived ``"boundary"`` group."""
    boundary = boundary_nodes_from_elements(elements)
    on_boundary = np.zeros(coords.shape[0], dtype=bool)
    on_boundary[boundary] = True
    lo = coords.min(axis=0)
    hi = coords.max(axis=0)
    span = float(np.max(hi - lo))
    tol = 1e-9 * max(span, 1.0)
    groups = {
        "left": np.flatnonzero(on_boundary & (coords[:, 0] <= lo[0] + tol)),
        "right": np.flatnonzero(on_boundary & (coords[:, 0] >= hi[0] - tol)),
        "bottom": np.flatnonzero(on_boundary & (coords[:, 1] <= lo[1] + tol)),
        "top": np.flatnonzero(on_boundary & (coords[:, 1] >= hi[1] - tol)),
        "boundary": boundary,
    }
    return {name: nodes.astype(np.intp) for name, nodes in groups.items()}


def submesh(mesh: Mesh, keep_elements: np.ndarray) -> Mesh:
    """The mesh restricted to *keep_elements*, nodes compacted and boundary
    groups rebuilt from the surviving facets."""
    keep_elements = np.asarray(keep_elements, dtype=np.intp)
    require(keep_elements.size >= 1, "submesh needs at least one element")
    elements = mesh.elements[keep_elements]
    nodes = np.unique(elements)
    remap = np.full(mesh.n_nodes, -1, dtype=np.intp)
    remap[nodes] = np.arange(nodes.size, dtype=np.intp)
    coords = mesh.coords[nodes]
    elements = remap[elements]
    return Mesh(
        coords=coords,
        elements=elements,
        dim=mesh.dim,
        grid_shape=mesh.grid_shape,
        boundary_groups=_rebuild_groups(coords, elements) if mesh.dim == 2 else {
            "boundary": boundary_nodes_from_elements(elements)
        },
    )


def jittered_square_mesh(
    nx: int,
    ny: int | None = None,
    jitter: float = 0.25,
    seed: int = 0,
) -> Mesh:
    """Irregular triangulation of the unit square.

    Starts from :func:`repro.fem.mesh.unit_square_mesh`, then

    * moves every *interior* node by a uniform random offset of up to
      ``jitter/2`` cell widths per axis (boundary nodes stay put, so the
      domain is still the exact unit square), and
    * splits each cell along a randomly chosen diagonal instead of always
      the same one.

    Both draws come from one seeded generator, so the mesh is a pure
    function of ``(nx, ny, jitter, seed)``.  *jitter* is capped at 0.45 —
    beyond that neighbouring nodes could cross and invert a triangle; the
    generator additionally verifies every signed area stays positive.
    """
    require(nx >= 1, "nx must be >= 1")
    ny = nx if ny is None else ny
    require(ny >= 1, "ny must be >= 1")
    require(0.0 <= jitter <= 0.45, "jitter must be in [0, 0.45]")
    base = unit_square_mesh(nx, ny)
    mx, my = base.grid_shape
    rng = np.random.default_rng(seed)

    coords = base.coords.copy()
    node_ix = np.arange(mx * my) // my
    node_iy = np.arange(mx * my) % my
    interior = (node_ix > 0) & (node_ix < nx) & (node_iy > 0) & (node_iy < ny)
    h = np.array([1.0 / nx, 1.0 / ny])
    coords[interior] += rng.uniform(-0.5, 0.5, (int(interior.sum()), 2)) * jitter * h

    ix, iy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    n00 = (ix * my + iy).ravel()
    n10 = ((ix + 1) * my + iy).ravel()
    n01 = (ix * my + iy + 1).ravel()
    n11 = ((ix + 1) * my + iy + 1).ravel()
    main_diagonal = rng.random(n00.size) < 0.5
    # Diagonal n00–n11 (the structured default) or n10–n01; both splits are
    # counter-clockwise, so orientation is uniform across the mesh.
    lower = np.where(
        main_diagonal[:, None],
        np.column_stack([n00, n10, n11]),
        np.column_stack([n00, n10, n01]),
    )
    upper = np.where(
        main_diagonal[:, None],
        np.column_stack([n00, n11, n01]),
        np.column_stack([n10, n11, n01]),
    )
    elements = np.vstack([lower, upper]).astype(np.intp)
    require(
        bool(_signed_areas(coords, elements).min() > 0.0),
        "jitter inverted a triangle; lower the jitter amplitude",
    )
    return Mesh(
        coords=coords,
        elements=elements,
        dim=2,
        grid_shape=(mx, my),
        boundary_groups=_rebuild_groups(coords, elements),
    )


def lshape_mesh(nx: int, ny: int | None = None) -> Mesh:
    """The unit square minus its upper-right quadrant (re-entrant corner).

    *nx*/*ny* are the cell counts of the generating square grid and must be
    even so the cut falls on mesh lines.
    """
    require(nx >= 2 and nx % 2 == 0, "nx must be even and >= 2")
    ny = nx if ny is None else ny
    require(ny >= 2 and ny % 2 == 0, "ny must be even and >= 2")
    base = unit_square_mesh(nx, ny)
    centroids = base.coords[base.elements].mean(axis=1)
    keep = np.flatnonzero(~((centroids[:, 0] > 0.5) & (centroids[:, 1] > 0.5)))
    return submesh(base, keep)


def strip_with_holes_mesh(
    ny: int,
    length: float = 3.0,
    holes: int = 2,
    hole_size: float = 0.5,
) -> Mesh:
    """An elongated strip ``[0, length] x [0, 1]`` with square holes.

    *ny* cells across the strip height (cells are kept square, so there are
    ``round(length * ny)`` cells along the strip); *holes* square holes of
    side *hole_size* are punched out at mid-height, evenly spaced along the
    length.  At least one full cell row must survive above and below each
    hole (``hole_size <= 1 - 2/ny``) so the mesh stays connected; the
    generator verifies connectivity of the result either way.
    """
    require(ny >= 4, "ny must be >= 4")
    require(length >= 1.0, "length must be >= 1")
    require(holes >= 0, "holes must be >= 0")
    require(
        0.0 < hole_size <= 1.0 - 2.0 / ny,
        f"hole_size must be in (0, 1 - 2/ny] = (0, {1.0 - 2.0 / ny:.3f}] so a "
        "cell row survives above and below each hole; raise ny or shrink the hole",
    )
    nx = int(round(length * ny))
    base = unit_square_mesh(nx, ny)
    coords = base.coords.copy()
    coords[:, 0] *= length
    stretched = Mesh(
        coords=coords,
        elements=base.elements,
        dim=2,
        grid_shape=base.grid_shape,
        boundary_groups=base.boundary_groups,
    )
    centroids = coords[base.elements].mean(axis=1)
    inside = np.zeros(base.n_elements, dtype=bool)
    half = hole_size / 2.0
    for k in range(holes):
        xc = (k + 1) * length / (holes + 1)
        inside |= (np.abs(centroids[:, 0] - xc) < half) & (
            np.abs(centroids[:, 1] - 0.5) < half
        )
    out = submesh(stretched, np.flatnonzero(~inside))
    from repro.part.partitioner import element_dual_graph
    from scipy.sparse.csgraph import connected_components

    n_comp, _ = connected_components(element_dual_graph(out), directed=False)
    require(
        n_comp == 1,
        f"strip mesh fell apart into {n_comp} components; "
        "use fewer/smaller holes or a finer ny",
    )
    return out


#: Named generators for the CLI mesh zoo.  Each entry maps the ``--mesh``
#: name to ``(dim, builder)`` where the builder takes ``(cells, seed)``.
#: *cells* is passed through unaltered, so each generator's own validation
#: applies (``lshape`` needs even cells, ``strip`` needs at least 4); only
#: ``jittered`` consumes the seed — the other meshes are deterministic.
MESH_ZOO = {
    "square": (2, lambda cells, seed: unit_square_mesh(cells)),
    "cube": (3, lambda cells, seed: unit_cube_mesh(cells)),
    "jittered": (2, lambda cells, seed: jittered_square_mesh(cells, seed=seed)),
    "lshape": (2, lambda cells, seed: lshape_mesh(cells)),
    "strip": (2, lambda cells, seed: strip_with_holes_mesh(cells)),
}


def make_mesh(name: str, cells: int, seed: int = 0) -> Mesh:
    """Build one mesh-zoo entry by name (see :data:`MESH_ZOO`)."""
    require(name in MESH_ZOO, f"unknown mesh {name!r}; available: {sorted(MESH_ZOO)}")
    _, builder = MESH_ZOO[name]
    return builder(cells, seed)


__all__ = [
    "MESH_ZOO",
    "boundary_nodes_from_elements",
    "element_facets",
    "jittered_square_mesh",
    "lshape_mesh",
    "make_mesh",
    "strip_with_holes_mesh",
    "submesh",
]
