"""Elimination tree of a symmetric sparse matrix (Liu's algorithm).

The elimination tree (etree) is the core data structure of sparse Cholesky:
``parent[j]`` is the row index of the first sub-diagonal nonzero of column
*j* of the factor ``L``.  Row sub-trees of the etree give the nonzero pattern
of each row of ``L``, which both the symbolic factorization and the native
up-looking numeric kernel use.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.util import check_sparse_square


def elimination_tree(a: sp.spmatrix) -> np.ndarray:
    """Compute the elimination tree of the symmetric matrix *a*.

    Only the lower triangle of *a* is referenced.  Returns ``parent`` with
    ``parent[j] == -1`` for roots.  Uses Liu's algorithm with path
    compression (ancestor array), O(nnz * alpha(n)).
    """
    n = check_sparse_square(a, "a")
    a_lower = sp.tril(a, format="csr")
    indptr, indices = a_lower.indptr, a_lower.indices
    parent = np.full(n, -1, dtype=np.intp)
    ancestor = np.full(n, -1, dtype=np.intp)
    for j in range(n):
        # Row j of the lower triangle holds the entries a[j, i] with i <= j,
        # i.e. the column-j entries of the upper triangle.  March each i < j
        # up to the root, compressing paths into `ancestor`.
        for t in range(indptr[j], indptr[j + 1]):
            i = indices[t]
            while i != -1 and i < j:
                i_next = ancestor[i]
                ancestor[i] = j
                if i_next == -1:
                    parent[i] = j
                i = i_next
    return parent


def postorder(parent: np.ndarray) -> np.ndarray:
    """Return a postordering of the forest given by *parent*.

    Children are visited before their parent; the result is a permutation of
    ``range(n)``.
    """
    parent = np.asarray(parent, dtype=np.intp)
    n = parent.size
    # Build child lists (first-child / next-sibling to stay O(n)).
    first_child = np.full(n, -1, dtype=np.intp)
    next_sibling = np.full(n, -1, dtype=np.intp)
    for v in range(n - 1, -1, -1):
        p = parent[v]
        if p != -1:
            next_sibling[v] = first_child[p]
            first_child[p] = v
    order = np.empty(n, dtype=np.intp)
    k = 0
    stack: list[int] = []
    for root in range(n):
        if parent[root] != -1:
            continue
        stack.append(root)
        while stack:
            v = stack[-1]
            c = first_child[v]
            if c != -1:
                stack.append(c)
                first_child[v] = next_sibling[c]  # consume the child edge
            else:
                order[k] = stack.pop()
                k += 1
    if k != n:
        raise ValueError("parent array does not describe a forest")
    return order


def row_pattern(
    a_csr_lower: sp.csr_matrix, parent: np.ndarray, i: int
) -> np.ndarray:
    """Nonzero column pattern of row *i* of the Cholesky factor ``L``.

    *a_csr_lower* is the CSR lower triangle of A.  The pattern of row *i* is
    the union of the etree paths from each nonzero ``a[i, j]`` (j < i) up
    towards *i* — the classic row-subtree characterisation.  Returns sorted
    column indices (excluding the diagonal).
    """
    marked = set()
    indptr, indices = a_csr_lower.indptr, a_csr_lower.indices
    for t in range(indptr[i], indptr[i + 1]):
        j = indices[t]
        if j >= i:
            continue
        while j != -1 and j < i and j not in marked:
            marked.add(j)
            j = parent[j]
    return np.fromiter(sorted(marked), dtype=np.intp, count=len(marked))


__all__ = ["elimination_tree", "postorder", "row_pattern"]
