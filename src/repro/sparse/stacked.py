"""Stacks of same-pattern sparse matrices — the batched numeric substrate.

Members of one fingerprint group of :mod:`repro.batch` share the *exact*
stored CSC pattern of their factor and gluing matrices; only the values
differ.  :class:`StackedCSC` exploits that: it keeps the pattern once
(``indptr``/``indices``) next to a ``(group, nnz)`` value stack, so block
extraction, row packing and densification become single vectorized NumPy
operations over the whole group instead of ``group`` separate SciPy calls —
the host-side analogue of the stacked device buffers a cuBLAS ``*Batched``
kernel consumes.

Everything here is numerics-only; cost accounting lives with the batched
kernels in :mod:`repro.gpu.kernels`.  With orientation-canonical
relabeling (:class:`repro.sparse.canonical.CanonicalRelabeling`) the
members stacked here can come from *different mirror classes* — their
relabeled patterns are bit-equal, which :meth:`StackedCSC.from_matrices`
validates entry-for-entry.  See ``docs/batching.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.util import require


def _canonical_csc(a: sp.spmatrix) -> sp.csc_matrix:
    """CSC with sorted indices and summed duplicates (copy only if needed)."""
    ac = a.tocsc()
    if not ac.has_canonical_format:
        ac = ac.copy()
        ac.sum_duplicates()
    return ac


@dataclass(frozen=True)
class StackedCSC:
    """``group`` CSC matrices with one shared pattern and stacked values.

    Attributes
    ----------
    shape:
        The (rows, cols) shape every member shares.
    indptr / indices:
        The shared CSC pattern (sorted row indices within each column).
    data:
        ``(group, nnz)`` float64 stack; ``data[g]`` are member *g*'s stored
        values in the shared pattern's entry order.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        require(self.data.ndim == 2, "data must be (group, nnz)")
        require(self.data.shape[1] == self.indices.shape[0], "data/pattern nnz mismatch")
        require(self.indptr.shape[0] == self.shape[1] + 1, "indptr/shape mismatch")

    @property
    def group(self) -> int:
        """Number of stacked members."""
        return int(self.data.shape[0])

    @property
    def nnz(self) -> int:
        """Stored entries of *one* member (the shared pattern's count)."""
        return int(self.indices.shape[0])

    @classmethod
    def from_matrices(cls, mats: list[sp.spmatrix]) -> "StackedCSC":
        """Stack same-pattern sparse matrices; raises if any pattern differs."""
        require(len(mats) >= 1, "need at least one matrix to stack")
        first = _canonical_csc(mats[0])
        data = np.empty((len(mats), first.nnz), dtype=np.float64)
        data[0] = first.data
        for g, m in enumerate(mats[1:], start=1):
            mc = _canonical_csc(m)
            require(mc.shape == first.shape, f"member {g}: shape differs")
            require(
                mc.nnz == first.nnz
                and np.array_equal(mc.indptr, first.indptr)
                and np.array_equal(mc.indices, first.indices),
                f"member {g}: stored pattern differs — not one fingerprint group",
            )
            data[g] = mc.data
        return cls(
            shape=first.shape,
            indptr=np.asarray(first.indptr),
            indices=np.asarray(first.indices),
            data=data,
        )

    def entry_columns(self) -> np.ndarray:
        """Column index of every stored entry (CSC expansion of ``indptr``)."""
        return np.repeat(np.arange(self.shape[1], dtype=np.intp), np.diff(self.indptr))

    def block(self, r0: int, r1: int, c0: int, c1: int) -> "StackedCSC":
        """``A[r0:r1, c0:c1]`` of every member in one pattern-driven gather."""
        require(0 <= r0 <= r1 <= self.shape[0], "row range out of bounds")
        require(0 <= c0 <= c1 <= self.shape[1], "column range out of bounds")
        start, end = int(self.indptr[c0]), int(self.indptr[c1])
        rows = self.indices[start:end]
        mask = (rows >= r0) & (rows < r1)
        sel = np.flatnonzero(mask) + start
        cols = np.repeat(
            np.arange(c1 - c0, dtype=np.intp), np.diff(self.indptr[c0 : c1 + 1])
        )[mask]
        indptr = np.zeros(c1 - c0 + 1, dtype=self.indptr.dtype)
        np.cumsum(np.bincount(cols, minlength=c1 - c0), out=indptr[1:])
        return StackedCSC(
            shape=(r1 - r0, c1 - c0),
            indptr=indptr,
            indices=rows[mask] - r0,
            data=self.data[:, sel],
        )

    def nonempty_rows(self) -> np.ndarray:
        """Rows with at least one stored entry (shared across the group)."""
        return np.unique(self.indices).astype(np.intp)

    def toarray(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Densify every member into a ``(group, rows, cols)`` stack.

        With *rows* (sorted local row indices that must cover every stored
        row), the result is the *packed* ``(group, len(rows), cols)`` stack —
        the pruning gather that feeds the batched GEMM.
        """
        cols = self.entry_columns()
        if rows is None:
            out = np.zeros((self.group, self.shape[0], self.shape[1]))
            out[:, self.indices, cols] = self.data
            return out
        rank = np.full(self.shape[0], -1, dtype=np.intp)
        rank[rows] = np.arange(rows.size, dtype=np.intp)
        local = rank[self.indices]
        require(bool(np.all(local >= 0)), "rows must cover every stored entry")
        out = np.zeros((self.group, rows.size, self.shape[1]))
        out[:, local, cols] = self.data
        return out

    def member(self, g: int) -> sp.csc_matrix:
        """Member *g* as an ordinary CSC matrix (tests, debugging)."""
        require(0 <= g < self.group, "member index out of range")
        return sp.csc_matrix(
            (self.data[g].copy(), self.indices.copy(), self.indptr.copy()),
            shape=self.shape,
        )


def stack_into_union(
    mats: list[sp.spmatrix], union, pad_diagonal: bool = False
) -> StackedCSC:
    """Pack different-pattern members into one :class:`StackedCSC` over a
    shared union pattern (:class:`repro.sparse.canonical.PatternUnion`).

    The value-tolerant counterpart of :meth:`StackedCSC.from_matrices`:
    member *g*'s stored values scatter to ``union.scatters[g]``, every
    union position the member does not store stays an explicit ``0.0``.
    With *pad_diagonal* the diagonal entries at rows beyond the member's
    own order are set to ``1.0`` — the identity block that keeps the padded
    triangular factor ``[[L, 0], [0, I]]`` nonsingular for the batched
    solves while contributing nothing to the leading Schur block.
    """
    require(len(mats) == union.group, "one member per union scatter map")
    data = np.zeros((len(mats), union.nnz), dtype=np.float64)
    for g, m in enumerate(mats):
        mc = _canonical_csc(m)
        require(
            tuple(mc.shape) == union.member_shapes[g],
            f"member {g}: shape differs from the union plan",
        )
        require(
            mc.nnz == union.scatters[g].size,
            f"member {g}: stored pattern differs from the union plan",
        )
        data[g, union.scatters[g]] = mc.data
    if pad_diagonal:
        diag_pos = np.flatnonzero(union.indices == union.entry_columns())
        diag_rows = union.indices[diag_pos]
        for g in range(len(mats)):
            n_g = union.member_shapes[g][0]
            pad = diag_pos[diag_rows >= n_g]
            # Only overwrite true padding zeros: a member never stores rows
            # at or beyond its own order, so these positions are untouched.
            data[g, pad] = 1.0
    return StackedCSC(
        shape=union.shape,
        indptr=np.asarray(union.indptr),
        indices=np.asarray(union.indices),
        data=data,
    )


def stack_union_permuted_dense(
    mats: list[sp.spmatrix], union, col_perm: np.ndarray
) -> np.ndarray:
    """Column-permute and densify different-pattern RHS members into the
    ``(group, n, m)`` stack of a union pattern.

    The :func:`stack_permuted_dense` analogue for the padded path: members
    embed at the identity prefix of ``union.shape`` (member entry ``(i, j)``
    lands at dense ``(i, inverse_perm[j])``), rows and columns beyond a
    member's own shape stay zero — the ``[[X], [0]]`` padding whose TRSM/
    SYRK images are structural zeros.
    """
    n, m = union.shape
    col_perm = np.asarray(col_perm, dtype=np.intp)
    require(col_perm.shape == (m,), "col_perm length must match union column count")
    inverse = np.empty(m, dtype=np.intp)
    inverse[col_perm] = np.arange(m, dtype=np.intp)
    out = np.zeros((len(mats), n, m))
    for g, mat in enumerate(mats):
        mc = _canonical_csc(mat)
        require(
            mc.shape[0] <= n and mc.shape[1] <= m,
            f"member {g}: shape exceeds the union shape",
        )
        cols = np.repeat(
            np.arange(mc.shape[1], dtype=np.intp), np.diff(mc.indptr)
        )
        out[g, mc.indices, inverse[cols]] = mc.data
    return out


def stack_permuted_dense(
    bt_rows: list[sp.spmatrix], col_perm: np.ndarray
) -> np.ndarray:
    """Column-permute and densify a group of same-pattern RHS matrices.

    The batched equivalent of the per-member ``bt_rows[:, col_perm].toarray()``
    stepped-shape step of :meth:`repro.core.assembler.SchurAssembler.assemble`:
    one scatter over the shared pattern fills the whole ``(group, n, m)``
    stack.  Raises if the members' stored patterns differ.
    """
    stacked = StackedCSC.from_matrices(bt_rows)
    n, m = stacked.shape
    col_perm = np.asarray(col_perm, dtype=np.intp)
    require(col_perm.shape == (m,), "col_perm length must match column count")
    inverse = np.empty(m, dtype=np.intp)
    inverse[col_perm] = np.arange(m, dtype=np.intp)
    out = np.zeros((stacked.group, n, m))
    out[:, stacked.indices, inverse[stacked.entry_columns()]] = stacked.data
    return out


__all__ = [
    "StackedCSC",
    "stack_into_union",
    "stack_permuted_dense",
    "stack_union_permuted_dense",
]
