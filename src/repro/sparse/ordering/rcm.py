"""Reverse Cuthill–McKee ordering.

A bandwidth-reducing ordering; not the best fill reducer for 3D problems but
cheap and useful as a comparison point.  Wraps SciPy's compiled
implementation and handles disconnected graphs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from repro.util import check_sparse_square


def rcm_ordering(a: sp.spmatrix) -> np.ndarray:
    """Return the reverse Cuthill–McKee permutation of the symmetric matrix *a*.

    The returned array ``perm`` is such that ``a[perm][:, perm]`` has reduced
    bandwidth.  Works on the structural pattern only.
    """
    n = check_sparse_square(a, "a")
    if n == 0:
        return np.arange(0, dtype=np.intp)
    pattern = sp.csr_matrix(
        (np.ones(a.nnz, dtype=np.int8), a.tocsr().indices, a.tocsr().indptr),
        shape=a.shape,
    )
    perm = reverse_cuthill_mckee(pattern, symmetric_mode=True)
    return np.asarray(perm, dtype=np.intp)
