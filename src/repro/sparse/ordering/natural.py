"""Natural (identity) ordering — baseline with no fill reduction."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.util import check_sparse_square


def natural_ordering(a: sp.spmatrix) -> np.ndarray:
    """Return the identity permutation for *a* (no reordering)."""
    n = check_sparse_square(a, "a")
    return np.arange(n, dtype=np.intp)
