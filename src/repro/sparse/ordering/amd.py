"""Approximate minimum-degree (AMD) fill-reducing ordering.

A from-scratch quotient-graph minimum-degree implementation in the spirit of
Amestoy–Davis–Duff.  Eliminated variables become *elements*; the clique a
variable elimination would create is represented implicitly by the element,
and degrees are recomputed approximately (element sizes are summed without
subtracting overlaps, which is exactly the "approximate" in AMD).

The implementation favours clarity over raw speed — it is the reference
ordering for small/medium matrices and for the leaves of nested dissection;
large problems should use :func:`repro.sparse.ordering.nested_dissection.nd_ordering`.
"""

from __future__ import annotations

import heapq

import numpy as np
import scipy.sparse as sp

from repro.util import check_sparse_square


def amd_ordering(a: sp.spmatrix) -> np.ndarray:
    """Return an approximate-minimum-degree permutation of symmetric *a*.

    ``perm[k]`` is the original index of the variable eliminated at step *k*,
    i.e. ``a[perm][:, perm]`` is the reordered matrix.
    """
    n = check_sparse_square(a, "a")
    if n == 0:
        return np.arange(0, dtype=np.intp)
    acsr = a.tocsr()
    # Structural adjacency without the diagonal.
    adj: list[set[int]] = []
    for i in range(n):
        row = acsr.indices[acsr.indptr[i] : acsr.indptr[i + 1]]
        adj.append({int(j) for j in row if j != i})

    elems: list[set[int]] = [set() for _ in range(n)]  # elements adjacent to var
    elem_nodes: dict[int, set[int]] = {}  # element id -> boundary variables
    alive = np.ones(n, dtype=bool)
    degree = np.fromiter((len(s) for s in adj), count=n, dtype=np.int64)

    heap: list[tuple[int, int]] = [(int(degree[i]), i) for i in range(n)]
    heapq.heapify(heap)
    order = np.empty(n, dtype=np.intp)

    for k in range(n):
        # Lazy-deletion pop: skip dead or stale entries.
        while True:
            d, p = heapq.heappop(heap)
            if alive[p] and d == degree[p]:
                break
        order[k] = p
        alive[p] = False

        # Boundary of the new element: direct neighbours plus the boundaries
        # of all adjacent elements (which are hereby absorbed).
        lp = {i for i in adj[p] if alive[i]}
        for e in elems[p]:
            lp.update(i for i in elem_nodes[e] if alive[i])
        lp.discard(p)
        absorbed = elems[p]
        for e in absorbed:
            del elem_nodes[e]
        elem_nodes[p] = lp
        adj[p] = set()
        elems[p] = set()

        lp_size = len(lp)
        for i in lp:
            ai = adj[i]
            ai.difference_update(lp)
            ai.discard(p)
            ei = elems[i]
            ei.difference_update(absorbed)
            ei.add(p)
            # Approximate external degree: direct neighbours plus element
            # boundary sizes (overlaps intentionally overcounted).
            d_i = len(ai) + (lp_size - 1)
            for e in ei:
                if e != p:
                    d_i += len(elem_nodes[e]) - 1
            degree[i] = d_i
            heapq.heappush(heap, (d_i, i))

    return order
