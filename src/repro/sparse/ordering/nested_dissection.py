"""Nested-dissection fill-reducing ordering.

The paper relies on METIS; we implement nested dissection from scratch in two
flavours:

* **geometric** — recursive coordinate bisection when node coordinates are
  available (always the case for FEM meshes).  Splits the widest extent at
  the median, takes the boundary vertices of one half as the separator.
* **graph** — BFS-based bisection from a pseudo-peripheral vertex when no
  coordinates exist.

Both order each subdomain recursively and place separators last, which is
what produces the approximately-uniform distribution of column pivots that
the stepped-shape permutation of :mod:`repro.core.stepped` needs (§3 of the
paper: "which holds, e.g., for permutation provided by Metis").
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.canonical import DEFAULT_TOLERANCE, canonical_coords
from repro.sparse.ordering.amd import amd_ordering
from repro.util import check_sparse_square, require


def nd_ordering(
    a: sp.spmatrix,
    coords: np.ndarray | None = None,
    leaf_size: int = 100,
    leaf_method: str = "amd",
    canonicalize: bool = True,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Return a nested-dissection permutation of symmetric *a*.

    Parameters
    ----------
    a:
        Square symmetric sparse matrix (pattern only is used).
    coords:
        Optional ``(n, d)`` node coordinates enabling geometric bisection.
    leaf_size:
        Subgraphs at or below this size are ordered directly.
    leaf_method:
        ``"amd"`` (default) or ``"natural"`` ordering for the leaves.
    canonicalize:
        Map *coords* to the canonical local frame before bisecting
        (default).  Geometric bisection picks the widest axis with
        ``argmax`` over extents — on square subdomains the extents tie
        exactly in exact arithmetic, so the last-ulp jitter of absolute
        coordinates decides the axis differently per grid position.  In the
        canonical frame translate-identical inputs are bit-identical and
        produce the same permutation (see :mod:`repro.sparse.canonical`).
    tolerance:
        Relative quantization tolerance of the canonical frame.
    """
    n = check_sparse_square(a, "a")
    require(leaf_size >= 1, "leaf_size must be >= 1")
    require(leaf_method in ("amd", "natural"), f"unknown leaf_method {leaf_method!r}")
    if coords is not None:
        coords = np.asarray(coords, dtype=np.float64)
        require(
            coords.ndim == 2 and coords.shape[0] == n,
            f"coords must have shape (n, d) with n={n}, got {coords.shape}",
        )
        if canonicalize:
            coords = canonical_coords(coords, tolerance)
    if n == 0:
        return np.arange(0, dtype=np.intp)

    acsr = a.tocsr()
    indptr, indices = acsr.indptr, acsr.indices
    # Structural adjacency (pattern only) for vectorized separator detection.
    adjacency = sp.csr_matrix(
        (np.ones(indices.size, dtype=np.int8), indices, indptr), shape=a.shape
    )
    out: list[np.ndarray] = []
    # Explicit stack instead of recursion: (nodes,) subproblems.  Children are
    # pushed so that emission order is left, right, separator.
    stack: list[tuple[np.ndarray, bool]] = [(np.arange(n, dtype=np.intp), False)]
    while stack:
        nodes, is_separator = stack.pop()
        if is_separator or nodes.size <= leaf_size:
            out.append(_order_leaf(acsr, nodes, leaf_method if not is_separator else "natural"))
            continue
        left, right, sep = _bisect(adjacency, indptr, indices, nodes, coords)
        if left.size == 0 or right.size == 0:
            # Bisection failed to make progress (e.g. a clique): order directly.
            out.append(_order_leaf(acsr, nodes, leaf_method))
            continue
        # LIFO: push separator first so it is emitted last.
        stack.append((sep, True))
        stack.append((right, False))
        stack.append((left, False))

    perm = np.concatenate(out) if out else np.arange(0, dtype=np.intp)
    return perm.astype(np.intp, copy=False)


def _order_leaf(acsr: sp.csr_matrix, nodes: np.ndarray, method: str) -> np.ndarray:
    if nodes.size <= 2 or method == "natural":
        return nodes
    sub = acsr[nodes][:, nodes]
    local = amd_ordering(sub)
    return nodes[local]


def _bisect(
    adjacency: sp.csr_matrix,
    indptr: np.ndarray,
    indices: np.ndarray,
    nodes: np.ndarray,
    coords: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split *nodes* into (left, right, separator) with no left-right edges."""
    if coords is not None:
        half_mask = _geometric_half(coords, nodes)
    else:
        half_mask = _bfs_half(indptr, indices, nodes)

    # Separator: left vertices adjacent to a right vertex (vectorized as a
    # pattern mat-vec against the right-half indicator).
    right_indicator = np.zeros(adjacency.shape[0], dtype=np.int8)
    right_indicator[nodes[~half_mask]] = 1
    left_nodes = nodes[half_mask]
    touches_right = adjacency[left_nodes] @ right_indicator > 0
    left = left_nodes[~touches_right]
    right = nodes[~half_mask]
    sep = left_nodes[touches_right]
    return left, right, sep


def _geometric_half(coords: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Boolean mask: True for nodes on the lower side of the median split."""
    pts = coords[nodes]
    extents = pts.max(axis=0) - pts.min(axis=0)
    dim = int(np.argmax(extents))
    vals = pts[:, dim]
    # argsort-based split is robust to many equal coordinates (structured grids).
    order = np.argsort(vals, kind="stable")
    half = np.zeros(nodes.size, dtype=bool)
    half[order[: nodes.size // 2]] = True
    return half


def _bfs_half(indptr: np.ndarray, indices: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Grow half of the subgraph by BFS from a pseudo-peripheral vertex."""
    n_all = indptr.size - 1
    local_id = -np.ones(n_all, dtype=np.intp)
    local_id[nodes] = np.arange(nodes.size)
    # Pseudo-peripheral start: two BFS sweeps.
    start = nodes[0]
    for _ in range(2):
        dist = _bfs_distances(indptr, indices, local_id, nodes, start)
        start = nodes[int(np.argmax(dist))]
    dist = _bfs_distances(indptr, indices, local_id, nodes, start)
    order = np.argsort(dist, kind="stable")
    half = np.zeros(nodes.size, dtype=bool)
    half[order[: nodes.size // 2]] = True
    return half


def _bfs_distances(
    indptr: np.ndarray,
    indices: np.ndarray,
    local_id: np.ndarray,
    nodes: np.ndarray,
    start: int,
) -> np.ndarray:
    dist = np.full(nodes.size, np.iinfo(np.int64).max, dtype=np.int64)
    dist[local_id[start]] = 0
    frontier = [start]
    d = 0
    while frontier:
        d += 1
        nxt = []
        for v in frontier:
            for w in indices[indptr[v] : indptr[v + 1]]:
                lw = local_id[w]
                if lw >= 0 and dist[lw] > d:
                    dist[lw] = d
                    nxt.append(int(w))
        frontier = nxt
    # Unreachable nodes (disconnected subgraph) get max distance, which simply
    # puts them in the far half.
    return dist


__all__ = ["nd_ordering"]
