"""Fill-reducing orderings: natural, RCM, AMD, nested dissection."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.ordering.amd import amd_ordering
from repro.sparse.ordering.natural import natural_ordering
from repro.sparse.ordering.nested_dissection import nd_ordering
from repro.sparse.ordering.rcm import rcm_ordering
from repro.util import require

ORDERING_METHODS = ("natural", "rcm", "amd", "nd")


def compute_ordering(
    a: sp.spmatrix,
    method: str = "nd",
    coords: np.ndarray | None = None,
    **kwargs,
) -> np.ndarray:
    """Compute a fill-reducing permutation of the symmetric matrix *a*.

    Parameters
    ----------
    a:
        Square symmetric sparse matrix (pattern is what matters).
    method:
        One of ``"natural"``, ``"rcm"``, ``"amd"``, ``"nd"`` (default —
        nested dissection, the METIS stand-in the paper's stepped shape
        relies on).
    coords:
        Optional node coordinates, used by geometric nested dissection.

    Returns
    -------
    numpy.ndarray
        Permutation ``perm`` such that ``a[perm][:, perm]`` is the reordered
        matrix.
    """
    require(method in ORDERING_METHODS, f"unknown ordering method {method!r}")
    if method == "natural":
        return natural_ordering(a)
    if method == "rcm":
        return rcm_ordering(a)
    if method == "amd":
        return amd_ordering(a)
    return nd_ordering(a, coords=coords, **kwargs)


__all__ = [
    "compute_ordering",
    "natural_ordering",
    "rcm_ordering",
    "amd_ordering",
    "nd_ordering",
    "ORDERING_METHODS",
]
