"""Kernel (null-space) bases ``R_i`` of subdomain matrices.

FETI needs, for every floating subdomain, a basis of ``Ker K_i`` — the
columns of ``R_i`` in §2.1.  For scalar diffusion the kernel is the constant
field; for elasticity it would be the rigid-body modes.  A dense
eigen-decomposition fallback handles arbitrary small matrices in tests.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.util import check_sparse_square, require


def constant_nullspace(n: int) -> np.ndarray:
    """Normalised constant kernel basis for a scalar diffusion operator."""
    require(n > 0, "n must be positive")
    return np.full((n, 1), 1.0 / np.sqrt(n))


def nullspace_dense(k: sp.spmatrix | np.ndarray, tol: float = 1e-8) -> np.ndarray:
    """Orthonormal kernel basis of a small symmetric matrix via ``eigh``.

    Eigenvectors whose eigenvalue is below ``tol * max_eigenvalue`` span the
    numerical kernel.  Intended for verification on small matrices — O(n^3).
    """
    kd = k.toarray() if sp.issparse(k) else np.asarray(k, dtype=np.float64)
    n = kd.shape[0]
    require(kd.shape == (n, n), "matrix must be square")
    w, v = scipy.linalg.eigh(kd)
    cutoff = tol * max(abs(w[0]), abs(w[-1]), 1e-300)
    kernel = v[:, np.abs(w) <= cutoff]
    return kernel


def verify_nullspace(
    k: sp.spmatrix, r: np.ndarray, tol: float = 1e-8
) -> bool:
    """Check ``||K R|| <= tol * ||K||`` column-wise."""
    n = check_sparse_square(k, "k")
    r = np.asarray(r, dtype=np.float64)
    require(r.ndim == 2 and r.shape[0] == n, "R must be (n, kernel_dim)")
    if r.shape[1] == 0:
        return True
    knorm = spnorm_inf(k)
    residual = np.abs(k @ r).max()
    return bool(residual <= tol * max(knorm, 1e-300))


def spnorm_inf(a: sp.spmatrix) -> float:
    """Infinity norm of a sparse matrix (max absolute row sum)."""
    return float(np.abs(a).sum(axis=1).max()) if a.nnz else 0.0


__all__ = ["constant_nullspace", "nullspace_dense", "verify_nullspace", "spnorm_inf"]
