"""Translation-invariant canonicalization of subdomain geometry.

On structured decompositions, most subdomains are *translates* of one
another: interior subdomains of a 5x5 grid share the stiffness pattern, the
gluing pattern and the mesh geometry — only the absolute position differs.
Every pattern-cache key in :mod:`repro.batch` is therefore supposed to
collapse them into one group.  In practice absolute node coordinates leak
into two decisions upstream of the fingerprint:

* :func:`repro.sparse.regularization.choose_fixing_dofs` breaks distance
  ties with float jitter that differs per grid position, and
* geometric nested dissection (:mod:`repro.sparse.ordering.nested_dissection`)
  picks its bisection axis with ``argmax`` over extents whose last-ulp
  noise differs per grid position,

so translate-identical subdomains end up with different fixing DOFs and
different permutations — and fingerprint apart (observed: 5x5 grid → 25
groups despite 9 interior subdomains sharing all patterns).

The fix is a **canonical local frame**: coordinates are translated to the
bounding-box origin and quantized onto an integer lattice whose quantum is
a *relative* tolerance times the bounding-box size.  Quantized lattice
coordinates of translate-identical subdomains are bit-for-bit equal, so
every decision derived from them (ties included) is identical, and their
digest is a translation-invariant geometry key.

A second, stronger key canonicalizes *orientation* as well:
:func:`canonical_signature` minimizes the lattice over all axis
permutations and flips (the 8 symmetries of the square, 48 of the cube),
so mirror- and rotation-identical subdomains — the four corner subdomains
of a grid, say — also share a key.  That coarser key is what
:func:`repro.feti.planner.plan_population` groups by: approach pricing only
depends on patterns up to isomorphism, so reflected subdomains can share
one plan even though their exact patterns differ.

The strongest construct is :class:`CanonicalRelabeling`: an *invertible*
map of a subdomain's DOFs (and gluing columns) into the canonical
orientation frame.  Relabeled mirror-identical subdomains have bit-equal
stiffness and gluing patterns, so the whole pattern-only analysis — fixing
DOFs, fill-reducing ordering, symbolic factor, stepped permutation,
pruning plan — done once in the canonical frame serves every member, and
assembled Schur complements are mapped back to each member's original
multiplier order by the inverse.  See ``docs/batching.md`` for how
:mod:`repro.batch` threads the relabeling through its cache and the
grouped executor.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.util import require

#: Default relative quantization tolerance.  Coordinate jitter below
#: ``tolerance * bounding_box_size / 2`` cannot split a group; geometric
#: features closer together than the quantum are merged.
DEFAULT_TOLERANCE = 1e-6

#: Default relative *value* quantization used when canonicalizing matrix
#: patterns: stored entries whose magnitude is at most
#: ``value_tolerance * max|A|`` are treated as structural zeros.  The value
#: analogue of the coordinate quantum — on a uniformly triangulated square,
#: the cross-diagonal stiffness couplings cancel to 0.0 in some subdomains
#: and to ~1e-17 roundoff in others, and only the quantized pattern is
#: symmetric under the full orientation group.
DEFAULT_VALUE_TOLERANCE = 1e-12


@dataclass(frozen=True)
class CanonicalFrame:
    """A subdomain's geometry in its canonical (translation-free) frame.

    Attributes
    ----------
    origin:
        Per-axis minimum of the raw coordinates (the frame's anchor).
    quantum:
        Nominal lattice spacing in raw units (``tolerance * scale``).
    scale:
        Bounding-box size used to make the tolerance relative.
    tolerance:
        The relative tolerance the frame was built with.
    lattice:
        ``(n, d)`` integer lattice coordinates — bit-identical for
        translate-identical point sets.
    axis_quanta:
        Per-axis lattice spacings actually used.  With extent snapping
        (the default) each axis's quantum is adjusted so the axis extent
        is an *integral* number of quanta — the symmetry-aware rounding
        that keeps mirror images of the lattice bit-comparable even when
        ``extent / quantum`` is fractional.  ``None`` on frames built with
        ``snap_extents=False`` (every axis uses ``quantum``).
    """

    origin: np.ndarray
    quantum: float
    scale: float
    tolerance: float
    lattice: np.ndarray
    axis_quanta: np.ndarray | None = None

    @property
    def n_points(self) -> int:
        return self.lattice.shape[0]

    @property
    def dim(self) -> int:
        return self.lattice.shape[1]

    def coords(self) -> np.ndarray:
        """Float canonical coordinates (lattice scaled by the tolerance).

        The uniform positive scaling preserves every comparison the
        ordering/fixing heuristics make (distances, extents, ties), while
        keeping magnitudes O(1) regardless of the raw units.
        """
        return self.lattice.astype(np.float64) * self.tolerance

    def digest(self) -> str:
        """Translation-invariant hex digest of the canonical geometry."""
        h = hashlib.sha256()
        h.update(np.asarray(self.lattice.shape, dtype=np.int64).tobytes())
        h.update(b"|")
        h.update(np.ascontiguousarray(self.lattice).tobytes())
        return h.hexdigest()


def canonical_frame(
    coords: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
    snap_extents: bool = True,
) -> CanonicalFrame:
    """Map *coords* to their canonical local frame.

    Coordinates are shifted so the bounding-box minimum is the origin and
    rounded to an integer lattice with spacing ``tolerance * scale`` where
    *scale* is the largest bounding-box extent.  Rounding absorbs the float
    jitter a rigid translation introduces (relative error ``eps * |offset|``
    per coordinate), so two point sets that are translates of each other up
    to jitter far below the quantum produce bit-identical lattices.

    With *snap_extents* (the default), each axis's quantum is additionally
    snapped so the axis extent is an **integral** number of quanta
    (``extent / round(extent / quantum)``).  A flip maps lattice value
    ``l`` to ``N - l`` where ``N`` is the integral extent; when the raw
    extent is fractional in quanta (``N + f``), a point at ``x`` and its
    mirror image at ``extent - x`` round to values differing by the stray
    fraction ``f``, so mirror-identical subdomains used to split into
    separate conservative classes whenever their extents did not happen to
    be integral.  Snapping rescales each axis by at most ``quantum / 2``
    over the whole extent — far below what any downstream tie-break can
    observe — and is the identity (up to float noise) on lattices whose
    extents are already integral, such as uniform structured subdomains.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim == 1:
        coords = coords[:, None]
    require(coords.ndim == 2, "coords must be (n, d)")
    require(0.0 < tolerance < 1.0, "tolerance must be in (0, 1)")
    if coords.shape[0] == 0:
        return CanonicalFrame(
            origin=np.zeros(coords.shape[1]),
            quantum=tolerance,
            scale=0.0,
            tolerance=tolerance,
            lattice=np.empty(coords.shape, dtype=np.int64),
        )
    require(np.all(np.isfinite(coords)), "coords must be finite")
    origin = coords.min(axis=0)
    rel = coords - origin
    scale = float(rel.max())
    quantum = tolerance * scale if scale > 0.0 else tolerance
    axis_quanta = None
    if snap_extents and scale > 0.0:
        extents = rel.max(axis=0)
        n_quanta = np.maximum(np.round(extents / quantum), 1.0)
        # Snap only axes at least one quantum wide: a sub-quantum extent is
        # (numerical) noise, and snapping to it would resolve that noise at
        # full precision — sub-quantum axes keep the nominal quantum so
        # jitter far below it still cannot split a class.
        axis_quanta = np.where(extents >= quantum, extents / n_quanta, quantum)
        lattice = np.round(rel / axis_quanta).astype(np.int64)
    else:
        lattice = np.round(rel / quantum).astype(np.int64)
    return CanonicalFrame(
        origin=origin,
        quantum=quantum,
        scale=scale,
        tolerance=tolerance,
        lattice=lattice,
        axis_quanta=axis_quanta,
    )


def canonical_coords(
    coords: np.ndarray, tolerance: float = DEFAULT_TOLERANCE
) -> np.ndarray:
    """Translation-invariant float coordinates (see :class:`CanonicalFrame`).

    The drop-in replacement for absolute coordinates in
    :func:`repro.sparse.regularization.choose_fixing_dofs` and
    :func:`repro.sparse.ordering.nested_dissection.nd_ordering`: any two
    translate-identical inputs yield bit-identical outputs, so argmin /
    argmax / stable-sort tie-breaks are reproduced exactly across the
    group.
    """
    return canonical_frame(coords, tolerance).coords()


def frame_digest(coords: np.ndarray, tolerance: float = DEFAULT_TOLERANCE) -> str:
    """Digest of the canonical frame — a translation-invariant geometry key."""
    return canonical_frame(coords, tolerance).digest()


def orientation_transforms(dim: int) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All axis permutations x sign flips of a *dim*-dimensional frame.

    The hyperoctahedral group: 8 transforms in 2-D (the dihedral symmetries
    of the square), 48 in 3-D.
    """
    require(1 <= dim <= 3, "orientation canonicalization supports dim 1..3")
    return [
        (perm, signs)
        for perm in itertools.permutations(range(dim))
        for signs in itertools.product((1, -1), repeat=dim)
    ]


def canonical_signature(
    coords: np.ndarray,
    features: np.ndarray | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    snap_extents: bool = True,
) -> str:
    """Orientation- and translation-invariant digest of labelled geometry.

    Minimizes the canonical lattice over every axis permutation and flip,
    sorting points lexicographically in each candidate orientation, and
    hashes the smallest byte string.  *features* — per-point integer labels
    such as the gluing multiplicity of each DOF — ride along in the sorted
    rows, so two subdomains share a signature exactly when some rigid
    lattice symmetry maps one labelled point set onto the other.

    This is the coarse pricing key of
    :func:`repro.feti.planner.plan_population`: the four corner subdomains
    of a structured grid are mirror images with isomorphic patterns, and
    isomorphic patterns cost the same.
    """
    frame = canonical_frame(coords, tolerance, snap_extents=snap_extents)
    lat = frame.lattice
    n, d = lat.shape
    feats = _as_features(features, n)
    best: bytes | None = None
    for perm, signs in orientation_transforms(max(d, 1)) if d else [((), ())]:
        _, rows, order = _oriented_rows(lat, feats, perm, signs)
        cand = np.ascontiguousarray(rows[order]).tobytes()
        if best is None or cand < best:
            best = cand
    h = hashlib.sha256()
    h.update(np.asarray([n, d, feats.shape[1]], dtype=np.int64).tobytes())
    h.update(b"|")
    h.update(best if best is not None else b"")
    return h.hexdigest()


def _as_features(features: np.ndarray | None, n: int) -> np.ndarray:
    """Normalize per-point integer labels to an ``(n, k)`` int64 array."""
    if features is None:
        return np.empty((n, 0), dtype=np.int64)
    feats = np.asarray(features, dtype=np.int64)
    if feats.ndim == 1:
        feats = feats[:, None]
    require(feats.shape[0] == n, "features must have one row per point")
    return feats


def _oriented_rows(
    lattice: np.ndarray,
    feats: np.ndarray,
    perm: tuple[int, ...],
    signs: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lattice under one axis perm/flip, its labelled rows, and their lexsort.

    Returns ``(pts, rows, order)``: the transformed lattice shifted back to a
    zero minimum, the ``[pts | feats]`` row matrix, and the lexicographic
    sort order of its rows (the candidate canonical DOF order).
    """
    n = lattice.shape[0]
    pts = lattice[:, perm] * np.asarray(signs, dtype=np.int64)
    if n:
        pts = pts - pts.min(axis=0)
    rows = np.concatenate([pts, feats], axis=1)
    order = (
        np.lexsort(rows.T[::-1]) if rows.size else np.arange(n, dtype=np.intp)
    )
    return pts, rows, np.asarray(order, dtype=np.intp)


def quantize_pattern(
    a: sp.spmatrix, value_tolerance: float = DEFAULT_VALUE_TOLERANCE
) -> sp.csr_matrix:
    """Stored pattern of *a* with below-tolerance entries treated as zeros.

    Entries with ``|value| <= value_tolerance * max|A|`` are dropped — the
    value analogue of the coordinate quantization above.  Needed because
    assembled stiffness matrices carry *near*-structural zeros (couplings
    that cancel analytically but evaluate to 0.0 in one subdomain and
    ~1e-17 in its translate or mirror image); only the quantized pattern is
    invariant under the rigid symmetries the relabeling searches over.
    """
    require(sp.issparse(a), "quantize_pattern needs a sparse matrix")
    out = a.tocsr().copy()
    if out.nnz:
        scale = float(np.abs(out.data).max())
        out.data[np.abs(out.data) <= value_tolerance * scale] = 0.0
        out.eliminate_zeros()
    return out


#: Relative eigen-gap of the inertia spectrum below which the PCA alignment
#: refuses to rotate: degenerate principal directions are numerically
#: arbitrary, and rotating into them would *split* classes that the
#: axis-aligned frame keeps together (an isotropic structured subdomain is
#: the common case).  Falling back to the identity is always conservative.
INERTIA_GAP_TOLERANCE = 1e-6

#: Near-match mode defaults: relative width of the logarithmic size buckets
#: (DOF / multiplier / nonzero counts) and the quantization step of the
#: dimensionless shape invariants (inertia fractions, radial histogram).
DEFAULT_NEAR_SIZE_TOLERANCE = 0.1
DEFAULT_NEAR_SHAPE_TOLERANCE = 0.35


def inertia_alignment(
    coords: np.ndarray, gap_tolerance: float = INERTIA_GAP_TOLERANCE
) -> np.ndarray | None:
    """Principal axes of the centred point cloud, or ``None`` when unstable.

    Columns of the returned ``(d, d)`` orthogonal matrix are the inertia
    eigenvectors in order of *descending* moment.  ``None`` is returned
    when any relative eigen-gap falls below *gap_tolerance* (degenerate
    spectra make the eigenvectors arbitrary — e.g. any axis-isotropic point
    set) or when the cloud has no spatial extent; callers then keep the
    axis-aligned frame.  Two congruent point clouds have identically
    degenerate spectra, so the rotate/don't-rotate decision itself is
    rotation-invariant.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim == 1:
        coords = coords[:, None]
    n, d = coords.shape
    if n == 0 or d < 2:
        return None
    centred = coords - coords.mean(axis=0)
    cov = centred.T @ centred / n
    moments, axes = np.linalg.eigh(cov)
    order = np.argsort(moments)[::-1]
    moments = moments[order]
    axes = axes[:, order]
    top = float(moments[0])
    if top <= 0.0:
        return None
    gaps = (moments[:-1] - moments[1:]) / top
    if np.any(gaps < gap_tolerance):
        return None
    return axes


def rotation_coords(
    coords: np.ndarray, gap_tolerance: float = INERTIA_GAP_TOLERANCE
) -> tuple[np.ndarray, bool]:
    """Centred coordinates in the inertia-aligned frame.

    Returns ``(aligned, rotated)``: with a stable inertia spectrum the
    cloud is centred at its centroid and rotated onto its principal axes
    (moment-descending), so free rotations of the input produce outputs
    equal up to per-axis sign — exactly the ambiguity the downstream
    flip/permutation minimization resolves.  With a degenerate spectrum the
    input is returned unrotated (``rotated=False``).
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim == 1:
        coords = coords[:, None]
    axes = inertia_alignment(coords, gap_tolerance)
    if axes is None:
        return coords, False
    return (coords - coords.mean(axis=0)) @ axes, True


def rotation_signature(
    coords: np.ndarray,
    features: np.ndarray | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    gap_tolerance: float = INERTIA_GAP_TOLERANCE,
) -> str:
    """Rotation-, translation- and flip-invariant digest of labelled geometry.

    The PCA/inertia extension of :func:`canonical_signature`: coordinates
    are first rotated into the inertia-aligned frame (stable spectra only;
    see :func:`inertia_alignment`), then quantized and minimized over axis
    permutations and flips exactly like the axis-aligned signature — the
    lexicographic minimization doubles as the distance-multiset tie-break
    (sorted lattice rows *are* the labelled point multiset).  The quantized
    distance-from-centroid multiset is mixed into the hash as an extra
    congruence invariant.

    Two subdomains share this key exactly when a rigid motion (translation
    + free rotation + reflection) maps one quantized labelled point set
    onto the other — the signature a METIS-like decomposition needs, where
    congruent subdomains show up at arbitrary orientations.  Like the
    axis-aligned signature it is safe for *pricing* only; exact artifact
    sharing stays gated on bitwise relabeled-pattern equality.
    """
    aligned, rotated = rotation_coords(coords, gap_tolerance)
    frame = canonical_frame(aligned, tolerance)
    lat = frame.lattice
    n, d = lat.shape
    feats = _as_features(features, n)
    best: bytes | None = None
    for perm, signs in orientation_transforms(max(d, 1)) if d else [((), ())]:
        _, rows, order = _oriented_rows(lat, feats, perm, signs)
        cand = np.ascontiguousarray(rows[order]).tobytes()
        if best is None or cand < best:
            best = cand
    centred = aligned - aligned.mean(axis=0) if n else aligned
    radii = np.linalg.norm(centred, axis=1) if n else np.empty(0)
    quantum = frame.quantum if frame.scale > 0.0 else tolerance
    radius_multiset = np.sort(np.round(radii / quantum).astype(np.int64))
    h = hashlib.sha256()
    h.update(
        np.asarray([n, d, feats.shape[1], int(rotated)], dtype=np.int64).tobytes()
    )
    h.update(b"|rot|")
    h.update(best if best is not None else b"")
    h.update(b"|")
    h.update(radius_multiset.tobytes())
    return h.hexdigest()


def log_bucket(value: float, tolerance: float) -> int:
    """Index of the logarithmic bucket of width ``1 + tolerance`` holding
    *value* (relative quantization: values within ~*tolerance* share it)."""
    if value <= 0.0:
        return -1
    return int(np.round(np.log(value) / np.log1p(tolerance)))


def near_signature(
    coords: np.ndarray,
    features: np.ndarray | None = None,
    size_tolerance: float = DEFAULT_NEAR_SIZE_TOLERANCE,
    shape_tolerance: float = DEFAULT_NEAR_SHAPE_TOLERANCE,
    radial_bins: int = 4,
) -> str:
    """Near-match pricing key: groups *approximately* congruent point sets.

    Unlike the exact signatures, nothing here is a lattice — the key is a
    vector of coarsely quantized rigid-motion invariants:

    * the point count in logarithmic buckets of relative width
      *size_tolerance* (a balanced partitioner's subdomains differ by a few
      per cent in size and must not split on that),
    * the normalized inertia moments (shape anisotropy) quantized in steps
      of *shape_tolerance*,
    * a *radial_bins*-bin histogram of centroid distances (normalized by
      the RMS radius), fractions quantized in steps of *shape_tolerance*,
    * the labelled fraction and mean label of *features* (e.g. gluing
      multiplicity), quantized likewise.

    Everything is normalized, so the key is invariant under translation,
    rotation, reflection **and scaling** — correct for pricing, where cost
    depends on pattern sizes and shapes, not on physical units.  Members of
    a near class have *similar*, not equal, patterns: use it to share
    approach plans and cost estimates across a METIS-like decomposition
    (where exact classes are almost all singletons), never to transfer
    exact pattern artifacts.  Two nearly identical subdomains straddling a
    bucket boundary may still split — the grouping is a heuristic upper
    bound on sharing, tuned by the two tolerances.
    """
    require(size_tolerance > 0.0, "size_tolerance must be > 0")
    require(shape_tolerance > 0.0, "shape_tolerance must be > 0")
    require(radial_bins >= 0, "radial_bins must be >= 0")
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim == 1:
        coords = coords[:, None]
    n, d = coords.shape
    feats = _as_features(features, n)
    key: list[int] = [d, feats.shape[1], log_bucket(float(n), size_tolerance)]
    if n:
        centred = coords - coords.mean(axis=0)
        cov = centred.T @ centred / n
        moments = np.sort(np.linalg.eigvalsh(cov))[::-1]
        trace = float(moments.sum())
        if trace > 0.0:
            key.extend(int(np.round(m / trace / shape_tolerance)) for m in moments)
        radii = np.linalg.norm(centred, axis=1)
        rms = float(np.sqrt(np.mean(radii**2)))
        if rms > 0.0 and radial_bins:
            spread = radii / rms
            hist, _ = np.histogram(spread, bins=radial_bins, range=(0.0, 2.0))
            key.extend(int(np.round(f / shape_tolerance)) for f in hist / n)
            key.append(int(np.round(float(spread.max()) / shape_tolerance)))
        if feats.size:
            labelled = feats != 0
            key.append(
                int(np.round(float(labelled.any(axis=1).mean()) / shape_tolerance))
            )
            key.append(
                log_bucket(float(np.abs(feats).sum()) / n, size_tolerance)
            )
    h = hashlib.sha256()
    h.update(np.asarray(key, dtype=np.int64).tobytes())
    h.update(b"|near|")
    return h.hexdigest()


def _pattern_bytes(a: sp.spmatrix) -> bytes:
    ac = a.tocsc()
    ac.sort_indices()
    return b"".join(
        np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes() + b"|"
        for arr in (np.asarray(ac.shape), ac.indptr, ac.indices)
    )


def _canonical_columns(bt_rows: sp.spmatrix) -> tuple[np.ndarray, bytes]:
    """Canonical column order of a gluing matrix with relabeled rows.

    Columns are sorted by ``(nnz, row-index sequence)`` — a total order that
    depends only on which *canonical* DOF slots each column touches, so two
    mirror-identical subdomains (whose relabeled row sets coincide) sort
    their columns into bit-equal patterns.  Columns with identical patterns
    (redundant multipliers on one DOF) keep their relative order; any
    resolution of that tie yields the same pattern.  Returns the column
    permutation (canonical position ``j`` holds original column
    ``col_perm[j]``) and the sorted key bytes.
    """
    bc = bt_rows.tocsc()
    bc.sort_indices()
    m = bc.shape[1]
    keys = []
    for j in range(m):
        rows = np.asarray(bc.indices[bc.indptr[j] : bc.indptr[j + 1]], dtype=">i8")
        keys.append((rows.size, rows.tobytes()))
    col_perm = np.asarray(sorted(range(m), key=keys.__getitem__), dtype=np.intp)
    key_bytes = b"".join(keys[j][1] + b";" for j in col_perm)
    return col_perm, key_bytes


def _invert(perm: np.ndarray) -> np.ndarray:
    inverse = np.empty(perm.size, dtype=np.intp)
    inverse[perm] = np.arange(perm.size, dtype=np.intp)
    return inverse


@dataclass(frozen=True)
class CanonicalRelabeling:
    """Invertible map of one subdomain into its canonical orientation frame.

    Chosen by minimizing, over every axis permutation and flip of the
    canonical lattice, the byte string of the labelled point set, the
    relabeled (quantized) stiffness pattern, and the canonical gluing
    column keys — so two subdomains share a ``signature`` exactly when some
    rigid lattice symmetry maps one labelled structure onto the other, and
    equal signatures guarantee bit-equal *relabeled* patterns.

    Conventions (all "canonical ← original"):

    * ``dof_perm[k]`` is the original DOF sitting at canonical slot ``k``;
      ``apply_matrix``/``apply_bt``/``apply_vector`` reindex rows with it.
    * ``col_perm[j]`` is the original gluing column at canonical column
      ``j``; :meth:`unapply_sc` undoes it on an assembled Schur complement.

    Attributes
    ----------
    signature:
        Orientation-canonical class digest (the shared-artifact cache key
        component; see :func:`repro.batch.fingerprint.factor_fingerprint`).
    axis_perm / axis_signs:
        The minimizing axis permutation and flips.
    dof_perm / col_perm:
        The DOF and gluing-column relabelings (canonical ← original).
    lattice:
        ``(n, d)`` canonical-oriented integer lattice in relabeled row
        order — the geometry every decision in the canonical frame sees.
    tolerance / value_tolerance:
        The coordinate and value quanta the relabeling was built with.
    """

    signature: str
    axis_perm: tuple[int, ...]
    axis_signs: tuple[int, ...]
    dof_perm: np.ndarray
    col_perm: np.ndarray
    lattice: np.ndarray
    tolerance: float
    value_tolerance: float

    def __post_init__(self) -> None:
        require(
            np.array_equal(np.sort(self.dof_perm), np.arange(self.dof_perm.size)),
            "dof_perm must be a permutation",
        )
        require(
            np.array_equal(np.sort(self.col_perm), np.arange(self.col_perm.size)),
            "col_perm must be a permutation",
        )
        require(
            self.lattice.shape[0] == self.dof_perm.size,
            "lattice must have one row per DOF",
        )

    @property
    def n_dofs(self) -> int:
        return int(self.dof_perm.size)

    @property
    def n_cols(self) -> int:
        return int(self.col_perm.size)

    @property
    def is_identity(self) -> bool:
        """True when both relabelings are the identity (already canonical)."""
        n, m = self.n_dofs, self.n_cols
        return bool(
            np.array_equal(self.dof_perm, np.arange(n))
            and np.array_equal(self.col_perm, np.arange(m))
        )

    def dof_inverse(self) -> np.ndarray:
        """``dof_inverse()[i]`` is the canonical slot of original DOF *i*."""
        return _invert(self.dof_perm)

    def col_inverse(self) -> np.ndarray:
        """``col_inverse()[j]`` is the canonical position of original column *j*."""
        return _invert(self.col_perm)

    def coords(self) -> np.ndarray:
        """Float canonical coordinates (relabeled row order, O(1) magnitude).

        The drop-in replacement for the subdomain's coordinates inside the
        canonical-frame factorization: bit-identical across every member of
        the canonical class, so fixing-DOF and ordering decisions coincide.
        """
        return self.lattice.astype(np.float64) * self.tolerance

    def apply_matrix(self, k: sp.spmatrix, quantize: bool = True) -> sp.csr_matrix:
        """Relabel a DOF-indexed square matrix into the canonical frame.

        With *quantize* (default) below-tolerance entries are dropped first
        (:func:`quantize_pattern`) so the relabeled pattern matches the one
        the signature minimized over — required for exact sharing.
        """
        require(sp.issparse(k), "k must be sparse")
        require(k.shape == (self.n_dofs, self.n_dofs), "k shape mismatch")
        kk = quantize_pattern(k, self.value_tolerance) if quantize else k.tocsr()
        return kk[self.dof_perm][:, self.dof_perm].tocsr()

    def apply_bt(self, bt: sp.spmatrix) -> sp.csc_matrix:
        """Relabel a gluing matrix: canonical DOF rows, canonical columns."""
        require(sp.issparse(bt), "bt must be sparse")
        require(bt.shape == (self.n_dofs, self.n_cols), "bt shape mismatch")
        return bt.tocsr()[self.dof_perm].tocsc()[:, self.col_perm]

    def apply_vector(self, v: np.ndarray) -> np.ndarray:
        """Reindex a DOF vector into the canonical frame."""
        return np.asarray(v)[self.dof_perm]

    def unapply_vector(self, v: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`apply_vector`."""
        v = np.asarray(v)
        out = np.empty_like(v)
        out[self.dof_perm] = v
        return out

    def unapply_sc(self, f: np.ndarray) -> np.ndarray:
        """Map an assembled SC from canonical back to original column order.

        The exact inverse of assembling against ``bt[:, col_perm]``: entry
        ``(i, j)`` of the canonical result describes the original multiplier
        pair ``(col_perm[i], col_perm[j])``.  A pure host-side reindex — the
        values are untouched, so the result is bit-equal to assembling the
        un-relabeled columns up to kernel association order.
        """
        f = np.asarray(f)
        m = self.n_cols
        require(f.shape == (m, m), "f must be (n_cols, n_cols)")
        out = np.empty_like(f)
        out[np.ix_(self.col_perm, self.col_perm)] = f
        return out


def canonical_relabeling(
    coords: np.ndarray,
    k: sp.spmatrix | None = None,
    bt: sp.spmatrix | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    value_tolerance: float = DEFAULT_VALUE_TOLERANCE,
    rotations: bool = False,
) -> CanonicalRelabeling:
    """Build the :class:`CanonicalRelabeling` of one subdomain.

    Enumerates every orientation transform of the canonical lattice and
    picks the one minimizing the concatenated byte string of

    1. the lexsorted labelled point set (coordinates + per-DOF gluing
       multiplicity — the :func:`canonical_signature` candidate),
    2. the relabeled pattern of the quantized stiffness *k* (when given —
       triangulated meshes have adjacency the point set alone cannot see),
    3. the canonical gluing-column keys of *bt* (when given).

    The minimum is the class representative: members of one canonical class
    relabel onto bit-equal structures, members of different classes cannot
    collide.  DOFs that remain indistinguishable (same lattice point, same
    labels — e.g. vector components at one node) keep their original
    relative order, which can conservatively split a class but never
    corrupts results: sharing is gated downstream by the *exact* relabeled
    fingerprint.

    Exactness caveat: flips act on the *quantized* lattice, so two mirror
    images relabel onto bit-equal structures only when the lattice itself
    is mirror-symmetric — the extent snapping of :func:`canonical_frame`
    guarantees integral per-axis extents, so the remaining conservative
    splits come from points landing exactly between lattice sites.

    With *rotations* the lattice is built in the inertia-aligned frame
    (:func:`rotation_coords`) before the orientation search, extending the
    canonical classes from axis permutations/flips to free rotations —
    congruent subdomains of a METIS-like decomposition relabel together
    regardless of orientation.  Point sets with degenerate inertia spectra
    (structured boxes) keep the axis-aligned frame, so the option is safe
    to leave on for mixed populations; it defaults to off because the two
    modes emit different signature namespaces.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim == 1:
        coords = coords[:, None]
    rotated = False
    if rotations:
        coords, rotated = rotation_coords(coords)
    frame = canonical_frame(coords, tolerance)
    lat = frame.lattice
    n, d = lat.shape
    multiplicity = None
    kq = None
    btr = None
    if bt is not None:
        require(sp.issparse(bt), "bt must be sparse")
        require(bt.shape[0] == n, "bt must have one row per DOF")
        btr = bt.tocsr()
        multiplicity = np.asarray(btr.getnnz(axis=1), dtype=np.int64)
    if k is not None:
        require(sp.issparse(k), "k must be sparse")
        require(k.shape == (n, n), "k must be square with one row per DOF")
        kq = quantize_pattern(k, value_tolerance)
    feats = _as_features(multiplicity, n)

    best = None
    for perm, signs in orientation_transforms(max(d, 1)) if d else [((), ())]:
        pts, rows, order = _oriented_rows(lat, feats, perm, signs)
        cand = np.ascontiguousarray(rows[order]).tobytes()
        cp = np.empty(0, dtype=np.intp)
        if kq is not None:
            cand += b"#" + _pattern_bytes(kq[order][:, order])
        if btr is not None:
            cp, col_bytes = _canonical_columns(btr[order])
            cand += b"#" + col_bytes
        if best is None or cand < best[0]:
            best = (cand, perm, signs, order, pts[order], cp)

    cand, axis_perm, axis_signs, dof_perm, lattice, col_perm = best
    h = hashlib.sha256()
    h.update(
        np.asarray(
            [
                n,
                d,
                feats.shape[1],
                int(k is not None),
                int(bt is not None),
                # Namespace the rotated frame: identical lattices reached
                # with and without inertia alignment are different classes.
                int(rotations) + int(rotated),
            ],
            dtype=np.int64,
        ).tobytes()
    )
    h.update(b"|")
    h.update(cand)
    return CanonicalRelabeling(
        signature=h.hexdigest(),
        axis_perm=tuple(int(p) for p in axis_perm),
        axis_signs=tuple(int(s) for s in axis_signs),
        dof_perm=dof_perm,
        col_perm=col_perm,
        lattice=lattice,
        tolerance=tolerance,
        value_tolerance=value_tolerance,
    )


# ---------------------------------------------------------------------------
# Union patterns: padded exact execution of near-congruent members
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnionEmbedding:
    """Injective index maps embedding one member into a union pattern.

    ``rows[i]`` is the union row holding member row *i* and ``cols[j]`` the
    union column holding member multiplier *j*.  The construction used by
    :func:`union_plan` is the identity prefix — member index *i* maps to
    union index *i* — which keeps the maps trivially injective and makes
    the inverse a plain leading slice, but the extraction below only relies
    on injectivity, so tests can exercise arbitrary embeddings.
    """

    rows: np.ndarray
    cols: np.ndarray

    def __post_init__(self) -> None:
        for name, arr in (("rows", self.rows), ("cols", self.cols)):
            require(
                np.unique(np.asarray(arr)).size == np.asarray(arr).size,
                f"embedding {name} must be injective",
            )

    @property
    def n_rows(self) -> int:
        return int(np.asarray(self.rows).size)

    @property
    def n_cols(self) -> int:
        return int(np.asarray(self.cols).size)

    def extract_sc(self, f_union: np.ndarray) -> np.ndarray:
        """Member Schur complement out of a union-shaped SC.

        The exact inverse of the padded assembly: padding columns carry
        structural zeros through TRSM/SYRK, so the member's ``(m, m)``
        block is bit-equal to what the unpadded assembly of that member
        would have produced (up to kernel association order).
        """
        f_union = np.asarray(f_union)
        require(
            f_union.ndim == 2 and f_union.shape[0] == f_union.shape[1],
            "f_union must be square",
        )
        cols = np.asarray(self.cols, dtype=np.intp)
        return np.ascontiguousarray(f_union[np.ix_(cols, cols)])


@dataclass(frozen=True)
class PatternUnion:
    """Structural union of several same-role sparse patterns.

    The shared CSC pattern (``indptr``/``indices``) holds every entry any
    member stores, in canonical sorted order; ``scatters[g]`` maps member
    *g*'s stored entries (canonical CSC entry order) to their positions in
    the union's entry order, so packing a member into the union is one
    vectorized scatter.  Members embed with the identity prefix: member
    row/column *i* is union row/column *i*.
    """

    shape: tuple[int, int]
    indptr: np.ndarray
    indices: np.ndarray
    scatters: tuple[np.ndarray, ...]
    member_shapes: tuple[tuple[int, int], ...]

    @property
    def nnz(self) -> int:
        """Stored entries of the union pattern."""
        return int(self.indices.shape[0])

    @property
    def group(self) -> int:
        """Number of members the union was built from."""
        return len(self.scatters)

    def entry_columns(self) -> np.ndarray:
        """Column index of every stored entry (CSC expansion of ``indptr``)."""
        return np.repeat(np.arange(self.shape[1], dtype=np.intp), np.diff(self.indptr))

    def pattern_csc(self) -> sp.csc_matrix:
        """The union pattern as an all-ones CSC matrix (for the pattern-only
        analysis: stepped permutation, pruning plan, cost estimate)."""
        return sp.csc_matrix(
            (
                np.ones(self.nnz, dtype=np.float64),
                self.indices.copy(),
                self.indptr.copy(),
            ),
            shape=self.shape,
        )


def pattern_union(
    mats: list[sp.spmatrix],
    shape: tuple[int, int],
    force_diagonal: bool = False,
) -> PatternUnion:
    """Union the stored patterns of *mats* inside a common *shape*.

    Every member must fit the union shape (identity-prefix embedding:
    member entry ``(i, j)`` lands at union ``(i, j)``).  With
    *force_diagonal* the full main diagonal of the union shape is added
    even where no member stores it — the factor-union case, where padded
    members get an identity block and the batched triangular solves need
    every diagonal entry present.
    """
    require(len(mats) >= 1, "need at least one matrix to union")
    rows_u, cols_u = int(shape[0]), int(shape[1])
    keys_per: list[np.ndarray] = []
    member_shapes: list[tuple[int, int]] = []
    for g, m in enumerate(mats):
        require(sp.issparse(m), f"member {g}: must be sparse")
        mc = m.tocsc()
        if not mc.has_canonical_format:
            mc = mc.copy()
            mc.sum_duplicates()
        require(
            mc.shape[0] <= rows_u and mc.shape[1] <= cols_u,
            f"member {g}: shape {mc.shape} exceeds union shape {shape}",
        )
        cols = np.repeat(
            np.arange(mc.shape[1], dtype=np.int64), np.diff(mc.indptr)
        )
        keys_per.append(cols * rows_u + mc.indices.astype(np.int64))
        member_shapes.append((int(mc.shape[0]), int(mc.shape[1])))
    all_keys = np.concatenate(keys_per)
    if force_diagonal:
        diag = np.arange(min(rows_u, cols_u), dtype=np.int64)
        all_keys = np.concatenate([all_keys, diag * rows_u + diag])
    # Sorted unique (col, row) keys ARE canonical CSC entry order: ascending
    # column-major with rows sorted within each column.
    union_keys = np.unique(all_keys)
    scatters = tuple(
        np.searchsorted(union_keys, k).astype(np.intp) for k in keys_per
    )
    union_cols = (union_keys // rows_u).astype(np.intp)
    indptr = np.zeros(cols_u + 1, dtype=np.intp)
    np.cumsum(np.bincount(union_cols, minlength=cols_u), out=indptr[1:])
    return PatternUnion(
        shape=(rows_u, cols_u),
        indptr=indptr,
        indices=(union_keys % rows_u).astype(np.intp),
        scatters=scatters,
        member_shapes=tuple(member_shapes),
    )


@dataclass(frozen=True)
class UnionPlan:
    """Everything the batched path needs to execute one near class padded.

    ``l_union`` is the structural union of the members' factor patterns
    (square at the largest member order, diagonal forced so the padded
    identity block exists); ``bt_union`` the union of the permuted gluing
    patterns at ``(n_max, m_max)``.  ``embeddings[g]`` maps member *g*'s
    rows/multipliers into the union frame (identity prefix), and the two
    nnz totals price the padding: ``padded_nnz`` is what the batched run
    stores and streams, ``member_nnz`` what the members would store
    per-member — their ratio is the fill the union trades for one launch
    per kernel step (see :attr:`fill_ratio` and the engine's
    ``union_fill_cap`` guard).
    """

    l_union: PatternUnion
    bt_union: PatternUnion
    embeddings: tuple[UnionEmbedding, ...]
    padded_nnz: float
    member_nnz: float

    @property
    def group(self) -> int:
        return len(self.embeddings)

    @property
    def shape(self) -> tuple[int, int]:
        """The padded per-member problem shape ``(n_max, m_max)``."""
        return self.bt_union.shape

    @property
    def fill_ratio(self) -> float:
        """Padded stored entries over exact stored entries (>= 1.0)."""
        return self.padded_nnz / self.member_nnz if self.member_nnz else 1.0


def union_plan(
    l_mats: list[sp.spmatrix], bt_mats: list[sp.spmatrix]
) -> UnionPlan:
    """Build the padded-execution plan of one near class.

    *l_mats* are the members' (lower-triangular) factor matrices, *bt_mats*
    their row-permuted gluing matrices ``bt[perm][:, col_perm]`` — the same
    objects the exact grouped path stacks, except their patterns (and even
    shapes) may differ.  Every member embeds at the identity prefix of the
    ``(n_max, n_max)`` / ``(n_max, m_max)`` union, so the padded stacked
    factor is ``[[L, 0], [0, I]]`` and the padded RHS ``[[X], [0]]``:
    forward substitution and the Gram product then reproduce the member's
    exact Schur complement in the leading ``(m, m)`` block, with the
    padding contributing structural zeros only — values are never
    approximated.
    """
    require(
        len(l_mats) == len(bt_mats) and len(l_mats) >= 1,
        "need matching non-empty factor and gluing lists",
    )
    n_max = max(int(l.shape[0]) for l in l_mats)
    m_max = max(int(b.shape[1]) for b in bt_mats)
    for g, (l, b) in enumerate(zip(l_mats, bt_mats)):
        require(
            l.shape[0] == l.shape[1], f"member {g}: factor must be square"
        )
        require(
            b.shape[0] == l.shape[0],
            f"member {g}: gluing rows must match factor order",
        )
    l_union = pattern_union(l_mats, (n_max, n_max), force_diagonal=True)
    bt_union = pattern_union(bt_mats, (n_max, m_max))
    embeddings = tuple(
        UnionEmbedding(
            rows=np.arange(int(l.shape[0]), dtype=np.intp),
            cols=np.arange(int(b.shape[1]), dtype=np.intp),
        )
        for l, b in zip(l_mats, bt_mats)
    )
    g = len(l_mats)
    member_nnz = float(
        sum(s.size for s in l_union.scatters)
        + sum(s.size for s in bt_union.scatters)
    )
    padded_nnz = float(g * (l_union.nnz + bt_union.nnz))
    return UnionPlan(
        l_union=l_union,
        bt_union=bt_union,
        embeddings=embeddings,
        padded_nnz=padded_nnz,
        member_nnz=member_nnz,
    )


__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_VALUE_TOLERANCE",
    "DEFAULT_NEAR_SIZE_TOLERANCE",
    "DEFAULT_NEAR_SHAPE_TOLERANCE",
    "INERTIA_GAP_TOLERANCE",
    "CanonicalFrame",
    "CanonicalRelabeling",
    "canonical_frame",
    "canonical_coords",
    "canonical_relabeling",
    "frame_digest",
    "inertia_alignment",
    "log_bucket",
    "near_signature",
    "orientation_transforms",
    "canonical_signature",
    "rotation_coords",
    "rotation_signature",
    "quantize_pattern",
    "PatternUnion",
    "UnionEmbedding",
    "UnionPlan",
    "pattern_union",
    "union_plan",
]
