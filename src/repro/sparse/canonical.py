"""Translation-invariant canonicalization of subdomain geometry.

On structured decompositions, most subdomains are *translates* of one
another: interior subdomains of a 5x5 grid share the stiffness pattern, the
gluing pattern and the mesh geometry — only the absolute position differs.
Every pattern-cache key in :mod:`repro.batch` is therefore supposed to
collapse them into one group.  In practice absolute node coordinates leak
into two decisions upstream of the fingerprint:

* :func:`repro.sparse.regularization.choose_fixing_dofs` breaks distance
  ties with float jitter that differs per grid position, and
* geometric nested dissection (:mod:`repro.sparse.ordering.nested_dissection`)
  picks its bisection axis with ``argmax`` over extents whose last-ulp
  noise differs per grid position,

so translate-identical subdomains end up with different fixing DOFs and
different permutations — and fingerprint apart (observed: 5x5 grid → 25
groups despite 9 interior subdomains sharing all patterns).

The fix is a **canonical local frame**: coordinates are translated to the
bounding-box origin and quantized onto an integer lattice whose quantum is
a *relative* tolerance times the bounding-box size.  Quantized lattice
coordinates of translate-identical subdomains are bit-for-bit equal, so
every decision derived from them (ties included) is identical, and their
digest is a translation-invariant geometry key.

A second, stronger key canonicalizes *orientation* as well:
:func:`canonical_signature` minimizes the lattice over all axis
permutations and flips (the 8 symmetries of the square, 48 of the cube),
so mirror- and rotation-identical subdomains — the four corner subdomains
of a grid, say — also share a key.  That coarser key is what
:func:`repro.feti.planner.plan_population` groups by: approach pricing only
depends on patterns up to isomorphism, so reflected subdomains can share
one plan even though their exact patterns differ.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

import numpy as np

from repro.util import require

#: Default relative quantization tolerance.  Coordinate jitter below
#: ``tolerance * bounding_box_size / 2`` cannot split a group; geometric
#: features closer together than the quantum are merged.
DEFAULT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class CanonicalFrame:
    """A subdomain's geometry in its canonical (translation-free) frame.

    Attributes
    ----------
    origin:
        Per-axis minimum of the raw coordinates (the frame's anchor).
    quantum:
        Lattice spacing in raw units (``tolerance * scale``).
    scale:
        Bounding-box size used to make the tolerance relative.
    tolerance:
        The relative tolerance the frame was built with.
    lattice:
        ``(n, d)`` integer lattice coordinates — bit-identical for
        translate-identical point sets.
    """

    origin: np.ndarray
    quantum: float
    scale: float
    tolerance: float
    lattice: np.ndarray

    @property
    def n_points(self) -> int:
        return self.lattice.shape[0]

    @property
    def dim(self) -> int:
        return self.lattice.shape[1]

    def coords(self) -> np.ndarray:
        """Float canonical coordinates (lattice scaled by the tolerance).

        The uniform positive scaling preserves every comparison the
        ordering/fixing heuristics make (distances, extents, ties), while
        keeping magnitudes O(1) regardless of the raw units.
        """
        return self.lattice.astype(np.float64) * self.tolerance

    def digest(self) -> str:
        """Translation-invariant hex digest of the canonical geometry."""
        h = hashlib.sha256()
        h.update(np.asarray(self.lattice.shape, dtype=np.int64).tobytes())
        h.update(b"|")
        h.update(np.ascontiguousarray(self.lattice).tobytes())
        return h.hexdigest()


def canonical_frame(
    coords: np.ndarray, tolerance: float = DEFAULT_TOLERANCE
) -> CanonicalFrame:
    """Map *coords* to their canonical local frame.

    Coordinates are shifted so the bounding-box minimum is the origin and
    rounded to an integer lattice with spacing ``tolerance * scale`` where
    *scale* is the largest bounding-box extent.  Rounding absorbs the float
    jitter a rigid translation introduces (relative error ``eps * |offset|``
    per coordinate), so two point sets that are translates of each other up
    to jitter far below the quantum produce bit-identical lattices.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim == 1:
        coords = coords[:, None]
    require(coords.ndim == 2, "coords must be (n, d)")
    require(0.0 < tolerance < 1.0, "tolerance must be in (0, 1)")
    if coords.shape[0] == 0:
        return CanonicalFrame(
            origin=np.zeros(coords.shape[1]),
            quantum=tolerance,
            scale=0.0,
            tolerance=tolerance,
            lattice=np.empty(coords.shape, dtype=np.int64),
        )
    require(np.all(np.isfinite(coords)), "coords must be finite")
    origin = coords.min(axis=0)
    rel = coords - origin
    scale = float(rel.max())
    quantum = tolerance * scale if scale > 0.0 else tolerance
    lattice = np.round(rel / quantum).astype(np.int64)
    return CanonicalFrame(
        origin=origin,
        quantum=quantum,
        scale=scale,
        tolerance=tolerance,
        lattice=lattice,
    )


def canonical_coords(
    coords: np.ndarray, tolerance: float = DEFAULT_TOLERANCE
) -> np.ndarray:
    """Translation-invariant float coordinates (see :class:`CanonicalFrame`).

    The drop-in replacement for absolute coordinates in
    :func:`repro.sparse.regularization.choose_fixing_dofs` and
    :func:`repro.sparse.ordering.nested_dissection.nd_ordering`: any two
    translate-identical inputs yield bit-identical outputs, so argmin /
    argmax / stable-sort tie-breaks are reproduced exactly across the
    group.
    """
    return canonical_frame(coords, tolerance).coords()


def frame_digest(coords: np.ndarray, tolerance: float = DEFAULT_TOLERANCE) -> str:
    """Digest of the canonical frame — a translation-invariant geometry key."""
    return canonical_frame(coords, tolerance).digest()


def orientation_transforms(dim: int) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """All axis permutations x sign flips of a *dim*-dimensional frame.

    The hyperoctahedral group: 8 transforms in 2-D (the dihedral symmetries
    of the square), 48 in 3-D.
    """
    require(1 <= dim <= 3, "orientation canonicalization supports dim 1..3")
    return [
        (perm, signs)
        for perm in itertools.permutations(range(dim))
        for signs in itertools.product((1, -1), repeat=dim)
    ]


def canonical_signature(
    coords: np.ndarray,
    features: np.ndarray | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """Orientation- and translation-invariant digest of labelled geometry.

    Minimizes the canonical lattice over every axis permutation and flip,
    sorting points lexicographically in each candidate orientation, and
    hashes the smallest byte string.  *features* — per-point integer labels
    such as the gluing multiplicity of each DOF — ride along in the sorted
    rows, so two subdomains share a signature exactly when some rigid
    lattice symmetry maps one labelled point set onto the other.

    This is the coarse pricing key of
    :func:`repro.feti.planner.plan_population`: the four corner subdomains
    of a structured grid are mirror images with isomorphic patterns, and
    isomorphic patterns cost the same.
    """
    frame = canonical_frame(coords, tolerance)
    lat = frame.lattice
    n, d = lat.shape
    if features is None:
        feats = np.empty((n, 0), dtype=np.int64)
    else:
        feats = np.asarray(features, dtype=np.int64)
        if feats.ndim == 1:
            feats = feats[:, None]
        require(feats.shape[0] == n, "features must have one row per point")
    best: bytes | None = None
    for perm, signs in orientation_transforms(max(d, 1)) if d else [((), ())]:
        pts = lat[:, perm] * np.asarray(signs, dtype=np.int64)
        if n:
            pts = pts - pts.min(axis=0)
        rows = np.concatenate([pts, feats], axis=1)
        order = np.lexsort(rows.T[::-1]) if rows.size else np.arange(n)
        cand = np.ascontiguousarray(rows[order]).tobytes()
        if best is None or cand < best:
            best = cand
    h = hashlib.sha256()
    h.update(np.asarray([n, d, feats.shape[1]], dtype=np.int64).tobytes())
    h.update(b"|")
    h.update(best if best is not None else b"")
    return h.hexdigest()


__all__ = [
    "DEFAULT_TOLERANCE",
    "CanonicalFrame",
    "canonical_frame",
    "canonical_coords",
    "frame_digest",
    "orientation_transforms",
    "canonical_signature",
]
