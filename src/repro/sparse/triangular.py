"""Triangular solves with sparse factors.

Provides the three TRSM flavours the paper's algorithm needs:

* :func:`solve_lower` / :func:`solve_upper` — sparse factor, **dense** RHS
  (the classic TRSM of §3.2), with three interchangeable backends:
  ``"python"`` (reference column-oriented forward substitution),
  ``"superlu"`` (factor the triangle with zero fill and use SuperLU's
  compiled solve — the fast path), and ``"dense"`` (densify + LAPACK
  ``trsm``, what the *dense factor storage* setting of the paper does).
* :class:`TriangularSolver` — caches the SuperLU object so repeated solves
  with one factor (FETI iterations) pay the analysis once.  The module-level
  ``"superlu"`` path amortizes too: :func:`cached_triangular_solver` memoizes
  the solver per factor object in a small LRU, so repeated
  :func:`solve_lower`/:func:`solve_upper` calls with the same factor pay the
  SuperLU analysis once instead of per call.
* :func:`spsolve_lower_sparse` — sparse factor, **sparse** RHS via
  Gilbert–Peierls reach + numeric scatter; returns the exact FLOPs
  performed.  This is what makes the augmented-factorization Schur
  complement (PARDISO stand-in) cheap for very sparse problems.

The ``"auto"`` backend picks dense LAPACK below a *dense cutoff* (SuperLU
setup dominates for small orders).  The cutoff defaults to
:data:`DEFAULT_DENSE_CUTOFF` and is host-tunable: measure the actual
crossover with :func:`repro.core.tuning.tune_dense_cutoff` or set it
directly with :func:`set_dense_cutoff`.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import get_tracer
from repro.util import check_lower_triangular, check_sparse_square, require

_BACKENDS = ("auto", "python", "superlu", "dense")

#: Default factor order below which the dense LAPACK path beats SuperLU setup.
DEFAULT_DENSE_CUTOFF = 256

_dense_cutoff = DEFAULT_DENSE_CUTOFF


def get_dense_cutoff() -> int:
    """Current dense-vs-SuperLU crossover used by the ``"auto"`` backend."""
    return _dense_cutoff


def set_dense_cutoff(n: int) -> int:
    """Set the ``"auto"`` crossover; returns the previous value.

    ``0`` sends every auto solve to SuperLU; a very large value sends every
    auto solve to dense LAPACK.  :func:`repro.core.tuning.tune_dense_cutoff`
    measures the right value for this host.
    """
    global _dense_cutoff
    require(n >= 0, "dense cutoff must be >= 0")
    previous = _dense_cutoff
    _dense_cutoff = int(n)
    return previous


def solve_lower(
    l: sp.spmatrix,
    b: np.ndarray,
    method: str = "auto",
    unit_diagonal: bool = False,
) -> np.ndarray:
    """Solve ``L x = b`` with sparse lower-triangular *l* and dense *b*."""
    return _solve_triangular(l, b, lower=True, method=method, unit_diagonal=unit_diagonal)


def solve_upper(
    l: sp.spmatrix,
    b: np.ndarray,
    method: str = "auto",
    unit_diagonal: bool = False,
) -> np.ndarray:
    """Solve ``L^T x = b`` given the *lower* factor *l* and dense *b*."""
    return _solve_triangular(l, b, lower=False, method=method, unit_diagonal=unit_diagonal)


def _solve_triangular(
    l: sp.spmatrix,
    b: np.ndarray,
    lower: bool,
    method: str,
    unit_diagonal: bool,
) -> np.ndarray:
    n = check_sparse_square(l, "L")
    require(method in _BACKENDS, f"unknown method {method!r}")
    b = np.asarray(b, dtype=np.float64)
    squeeze = b.ndim == 1
    if squeeze:
        b = b[:, None]
    require(b.shape[0] == n, f"RHS has {b.shape[0]} rows, factor has order {n}")
    if method == "auto":
        method = "dense" if n <= _dense_cutoff else "superlu"

    with get_tracer().span(
        "sparse.trsm", n=n, nrhs=int(b.shape[1]), method=method, lower=lower
    ):
        if method == "python":
            x = _forward_python(l, b) if lower else _backward_python(l, b)
        elif method == "dense":
            ld = l.toarray()
            x = scipy.linalg.solve_triangular(
                ld, b, lower=True, trans="N" if lower else "T", unit_diagonal=unit_diagonal
            )
        else:  # superlu, amortized per factor object
            solver = cached_triangular_solver(l)
            x = solver.solve(b, transpose=not lower)
    return x[:, 0] if squeeze else x


def _forward_python(l: sp.spmatrix, b: np.ndarray) -> np.ndarray:
    """Reference column-oriented forward substitution (lower triangular)."""
    lc = l.tocsc()
    check_lower_triangular(lc, "L")
    indptr, indices, data = lc.indptr, lc.indices, lc.data
    x = b.astype(np.float64, copy=True)
    n = lc.shape[0]
    for j in range(n):
        start, end = indptr[j], indptr[j + 1]
        if start == end or indices[start] != j:
            raise ValueError(f"factor has a structurally zero diagonal at {j}")
        x[j] /= data[start]
        rows = indices[start + 1 : end]
        if rows.size:
            x[rows] -= np.outer(data[start + 1 : end], x[j])
    return x


def _backward_python(l: sp.spmatrix, b: np.ndarray) -> np.ndarray:
    """Reference backward substitution solving ``L^T x = b``."""
    lc = l.tocsc()
    check_lower_triangular(lc, "L")
    indptr, indices, data = lc.indptr, lc.indices, lc.data
    x = b.astype(np.float64, copy=True)
    n = lc.shape[0]
    for j in range(n - 1, -1, -1):
        start, end = indptr[j], indptr[j + 1]
        if start == end or indices[start] != j:
            raise ValueError(f"factor has a structurally zero diagonal at {j}")
        rows = indices[start + 1 : end]
        if rows.size:
            x[j] -= data[start + 1 : end] @ x[rows]
        x[j] /= data[start]
    return x


class TriangularSolver:
    """Cached compiled solver for one sparse lower-triangular factor.

    SuperLU factorizes the triangle with the natural ordering — zero fill,
    cheap setup — and its compiled triangular solves are then reused for any
    number of right-hand sides, forward (``L x = b``) or transposed
    (``L^T x = b``).
    """

    def __init__(self, l: sp.spmatrix) -> None:
        n = check_sparse_square(l, "L")
        self.n = n
        self.nnz = l.nnz
        lc = l.tocsc()
        check_lower_triangular(lc, "L")
        self._lu = spla.splu(
            lc,
            permc_spec="NATURAL",
            diag_pivot_thresh=0.0,
            options={"Equil": False, "SymmetricMode": False, "ColPerm": "NATURAL"},
        )

    def solve(self, b: np.ndarray, transpose: bool = False) -> np.ndarray:
        """Solve ``L x = b`` (or ``L^T x = b`` when *transpose*)."""
        b = np.asarray(b, dtype=np.float64)
        return self._lu.solve(b, trans="T" if transpose else "N")


#: Bound of the per-factor solver memo (each entry holds one SuperLU object).
SOLVER_CACHE_MAX_ENTRIES = 32

_solver_cache: OrderedDict[int, tuple[weakref.ref, np.ndarray, TriangularSolver]] = (
    OrderedDict()
)
_solver_cache_lock = threading.Lock()


def cached_triangular_solver(l: sp.spmatrix) -> TriangularSolver:
    """Memoized :class:`TriangularSolver` for *l* (small thread-safe LRU).

    Keyed on the factor *object's* identity, guarded by a weak reference (a
    recycled ``id`` after garbage collection can never alias a stale solver)
    and a snapshot of the stored values: mutating ``l.data`` in place simply
    rebuilds the solver, never returns stale numerics.  The value check is a
    flat array compare — O(nnz), negligible next to both the SuperLU
    analysis it avoids and the solve that follows.  This is what lets the
    module-level ``solve_lower``/``solve_upper`` ``"superlu"`` path pay the
    analysis once per factor instead of once per call.
    """
    if not sp.issparse(l) or l.format not in ("csc", "csr"):
        return TriangularSolver(l)  # exotic formats: no stable value buffer
    key = id(l)
    with _solver_cache_lock:
        entry = _solver_cache.get(key)
        if entry is not None:
            ref, data_snapshot, solver = entry
            if (
                ref() is l
                and data_snapshot.shape == l.data.shape
                and np.array_equal(data_snapshot, l.data)
            ):
                _solver_cache.move_to_end(key)
                return solver
            del _solver_cache[key]  # stale: id recycled or values mutated
    solver = TriangularSolver(l)  # build outside the lock — splu can be slow

    def _evict_on_death(dead_ref: weakref.ref, _key: int = key) -> None:
        # Free the SuperLU object + value snapshot as soon as the factor
        # dies, instead of pinning them until LRU churn evicts the entry.
        with _solver_cache_lock:
            entry = _solver_cache.get(_key)
            if entry is not None and entry[0] is dead_ref:
                del _solver_cache[_key]

    with _solver_cache_lock:
        _solver_cache[key] = (weakref.ref(l, _evict_on_death), l.data.copy(), solver)
        _solver_cache.move_to_end(key)
        while len(_solver_cache) > SOLVER_CACHE_MAX_ENTRIES:
            _solver_cache.popitem(last=False)
    return solver


def spsolve_lower_sparse(
    l: sp.spmatrix, b: sp.spmatrix
) -> tuple[sp.csc_matrix, float]:
    """Solve ``L Y = B`` with sparse *l* (lower) and sparse *b* columns.

    Gilbert–Peierls: for each RHS column, a DFS over the graph of ``L``
    computes the reach (the nonzero pattern of the solution column in
    topological order), then the numeric phase only touches those entries.

    Returns ``(Y, flops)`` with *Y* sparse CSC and *flops* the operation
    count of the numeric phase — the quantity the simulated cost model
    charges for PARDISO-style sparse Schur assembly.

    The numeric phase processes the *structural* reach: entries whose value
    happens to be exactly zero are kept (and their work counted) rather than
    value-pruned.  This keeps the pattern of ``Y`` and the reported flops a
    pure function of the patterns of ``L`` and ``B`` — so the executed cost
    agrees with the pattern-only estimator of
    :mod:`repro.sparse.schur_estimate` and stays identical across a
    fingerprint group of :mod:`repro.batch` regardless of value jitter.
    """
    n = check_sparse_square(l, "L")
    lc = l.tocsc()
    check_lower_triangular(lc, "L")
    indptr, indices, data = lc.indptr, lc.indices, lc.data
    # Diagonal-first check once.
    for j in range(n):
        if indptr[j] == indptr[j + 1] or indices[indptr[j]] != j:
            raise ValueError(f"factor has a structurally zero diagonal at {j}")

    bc = b.tocsc()
    require(bc.shape[0] == n, f"RHS has {bc.shape[0]} rows, factor has order {n}")
    m = bc.shape[1]

    out_indptr = [0]
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    flops = 0.0

    visited = np.zeros(n, dtype=bool)
    x = np.zeros(n, dtype=np.float64)

    for col in range(m):
        b_rows = bc.indices[bc.indptr[col] : bc.indptr[col + 1]]
        b_vals = bc.data[bc.indptr[col] : bc.indptr[col + 1]]
        topo = _reach(indptr, indices, b_rows, visited)
        x[b_rows] = b_vals
        keep_rows = []
        keep_vals = []
        for j in topo:
            xj = x[j] / data[indptr[j]]
            rows = indices[indptr[j] + 1 : indptr[j + 1]]
            if rows.size:
                x[rows] -= data[indptr[j] + 1 : indptr[j + 1]] * xj
            flops += 2.0 * rows.size + 1.0
            keep_rows.append(j)
            keep_vals.append(xj)
            x[j] = 0.0  # reset workspace while we are here
            visited[j] = False
        # x entries of rows updated but outside topo cannot exist: every
        # updated row is in the reach by construction.
        order = np.argsort(keep_rows)
        rows_arr = np.asarray(keep_rows, dtype=np.intp)[order]
        vals_arr = np.asarray(keep_vals, dtype=np.float64)[order]
        out_indices.append(rows_arr)
        out_data.append(vals_arr)
        out_indptr.append(out_indptr[-1] + rows_arr.size)

    y = sp.csc_matrix(
        (
            np.concatenate(out_data) if out_data else np.empty(0),
            np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.intp),
            np.asarray(out_indptr, dtype=np.intp),
        ),
        shape=(n, m),
    )
    return y, flops


def _reach(
    indptr: np.ndarray,
    indices: np.ndarray,
    seeds: np.ndarray,
    visited: np.ndarray,
) -> list[int]:
    """Topologically-ordered reach of *seeds* in the DAG of a lower factor."""
    topo: list[int] = []
    for s in seeds:
        if visited[s]:
            continue
        # Iterative DFS with an explicit (node, next-edge-offset) stack.
        stack: list[list[int]] = [[int(s), int(indptr[s]) + 1]]
        visited[s] = True
        while stack:
            node, ptr = stack[-1]
            end = indptr[node + 1]
            advanced = False
            while ptr < end:
                child = indices[ptr]
                ptr += 1
                if not visited[child]:
                    visited[child] = True
                    stack[-1][1] = ptr
                    stack.append([int(child), int(indptr[child]) + 1])
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                topo.append(node)
    topo.reverse()
    return topo


__all__ = [
    "solve_lower",
    "solve_upper",
    "TriangularSolver",
    "cached_triangular_solver",
    "SOLVER_CACHE_MAX_ENTRIES",
    "DEFAULT_DENSE_CUTOFF",
    "get_dense_cutoff",
    "set_dense_cutoff",
    "spsolve_lower_sparse",
]
