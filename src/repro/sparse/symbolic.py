"""Symbolic Cholesky factorization.

Computes, without touching numerical values:

* the elimination tree,
* per-column nonzero counts of the factor ``L``,
* (optionally) the full row-wise pattern of ``L``,
* the factorization FLOP count,
* fundamental supernodes (columns with identical below-diagonal pattern),
  used by the pruning optimization in :mod:`repro.core.trsm_split` the same
  way CHOLMOD's supernodal factorization packs dense rows.

This is the "initialization" stage of the paper's three-stage FETI solver
(§2.2): performed once, reused across repeated numeric factorizations.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.sparse.etree import elimination_tree, row_pattern
from repro.util import cholesky_flops, check_sparse_square, require


def pattern_digest(a: sp.spmatrix) -> str:
    """Hex digest of a sparsity pattern (shape + sorted CSC structure).

    The one canonical pattern-hashing routine — reused by the batch
    fingerprints (:mod:`repro.batch.fingerprint`) and the symbolic-pattern
    memo of :mod:`repro.sparse.cholesky` so the implementations cannot
    drift apart.
    """
    require(sp.issparse(a), "pattern_digest needs a sparse matrix")
    ac = a.tocsc()
    ac.sort_indices()
    h = hashlib.sha256()
    for arr in (np.asarray(ac.shape), ac.indptr, ac.indices):
        h.update(np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes())
        h.update(b"|")
    return h.hexdigest()


@dataclass(frozen=True)
class SymbolicFactor:
    """Result of the symbolic analysis of ``A = L L^T``.

    Attributes
    ----------
    n:
        Matrix order.
    parent:
        Elimination tree (``-1`` marks roots).
    col_counts:
        Number of nonzeros per column of ``L`` including the diagonal.
    nnz_l:
        Total nonzeros of ``L``.
    flops:
        Estimated factorization FLOPs.
    row_indptr / row_indices:
        CSR-style row pattern of ``L`` (below-diagonal columns per row),
        present only when ``with_pattern=True`` was requested.
    supernodes:
        Start columns of fundamental supernodes (ascending, ends with ``n``).
    """

    n: int
    parent: np.ndarray
    col_counts: np.ndarray
    nnz_l: int
    flops: float
    row_indptr: np.ndarray | None = None
    row_indices: np.ndarray | None = None
    supernodes: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))

    def row(self, i: int) -> np.ndarray:
        """Below-diagonal column pattern of row *i* of ``L`` (sorted)."""
        if self.row_indptr is None or self.row_indices is None:
            raise ValueError("symbolic factor was computed without the full pattern")
        return self.row_indices[self.row_indptr[i] : self.row_indptr[i + 1]]

    def pattern_digest(self) -> str:
        """Stable hex digest of the factor pattern — the hashable view used
        as a cache key by :mod:`repro.batch`.

        Hashes the full row pattern when present, otherwise the elimination
        tree plus the column counts (which determine the pattern for a given
        matrix but are cheaper to store).
        """
        h = hashlib.sha256()
        for arr in (
            np.asarray([self.n], dtype=np.int64),
            np.asarray(self.parent, dtype=np.int64),
            np.asarray(self.col_counts, dtype=np.int64),
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
            h.update(b"|")
        if self.row_indptr is not None and self.row_indices is not None:
            for arr in (self.row_indptr, self.row_indices):
                h.update(np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes())
                h.update(b"|")
        return h.hexdigest()


def symbolic_factorize(a: sp.spmatrix, with_pattern: bool = True) -> SymbolicFactor:
    """Symbolic Cholesky analysis of the symmetric matrix *a*.

    When *with_pattern* is set the full row pattern of ``L`` is stored
    (memory O(nnz(L))); otherwise only column counts are kept.
    """
    n = check_sparse_square(a, "a")
    a_lower = sp.tril(a, format="csr")
    parent = elimination_tree(a_lower)

    col_counts = np.ones(n, dtype=np.int64)  # diagonal entries
    indptr_list: list[int] = [0]
    rows: list[np.ndarray] = []
    nnz_below = 0
    for i in range(n):
        patt = row_pattern(a_lower, parent, i)
        col_counts[patt] += 1
        nnz_below += patt.size
        if with_pattern:
            rows.append(patt)
            indptr_list.append(nnz_below)

    nnz_l = int(col_counts.sum())
    flops = cholesky_flops(col_counts)
    supernodes = _fundamental_supernodes(parent, col_counts)
    if with_pattern:
        row_indices = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.intp)
        )
        row_indptr = np.asarray(indptr_list, dtype=np.intp)
        return SymbolicFactor(
            n=n,
            parent=parent,
            col_counts=col_counts,
            nnz_l=nnz_l,
            flops=flops,
            row_indptr=row_indptr,
            row_indices=row_indices,
            supernodes=supernodes,
        )
    return SymbolicFactor(
        n=n,
        parent=parent,
        col_counts=col_counts,
        nnz_l=nnz_l,
        flops=flops,
        supernodes=supernodes,
    )


def _fundamental_supernodes(parent: np.ndarray, col_counts: np.ndarray) -> np.ndarray:
    """Start columns of fundamental supernodes.

    Column ``j+1`` continues the supernode of ``j`` iff ``parent[j] == j+1``
    and ``col_counts[j] == col_counts[j+1] + 1`` (identical structure below
    the diagonal, shifted by one).
    """
    n = parent.size
    if n == 0:
        return np.asarray([0], dtype=np.intp)
    starts = [0]
    for j in range(n - 1):
        if not (parent[j] == j + 1 and col_counts[j] == col_counts[j + 1] + 1):
            starts.append(j + 1)
    starts.append(n)
    return np.asarray(starts, dtype=np.intp)


def symbolic_from_factor(l: sp.spmatrix) -> SymbolicFactor:
    """Recover the symbolic description from an existing factor's pattern.

    The cheap path used by the batch pattern cache: no elimination-tree
    traversal of ``A`` is needed because the factor already *is* the filled
    pattern — the etree parent of column ``j`` is the first below-diagonal
    row of column ``j`` of ``L``, column counts come straight from the CSC
    pointers, and the row pattern is the CSR view minus the diagonal.
    """
    lc = l.tocsc()
    lc.sort_indices()
    n = check_sparse_square(lc, "l")
    return symbolic_from_pattern(lc.indptr, lc.indices, n)


def symbolic_from_pattern(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> SymbolicFactor:
    """:func:`symbolic_from_factor` from raw sorted-CSC pattern arrays.

    Used where no factor matrix exists — notably the structural *union* of
    several factor patterns (:func:`repro.sparse.canonical.union_plan`),
    which the batched padded path analyzes and prices like a factor of its
    own.  A union of filled patterns need not be closed under elimination-
    tree fill itself; that is fine here because every consumer (pruning
    plan, cost replay, flop counts) reads the stored pattern structurally
    and the padded numerics densify per block.
    """
    indptr = np.asarray(indptr, dtype=np.intp)
    indices = np.asarray(indices, dtype=np.intp)
    require(indptr.shape == (n + 1,), "indptr must have n + 1 entries")
    parent = np.full(n, -1, dtype=np.intp)
    for j in range(n):
        col = indices[indptr[j] : indptr[j + 1]]
        below = col[col > j]
        if below.size:
            parent[j] = below[0]
    col_counts = np.asarray(np.diff(indptr), dtype=np.int64)

    lr = sp.csc_matrix(
        (np.ones(indices.size, dtype=np.float64), indices, indptr), shape=(n, n)
    ).tocsr()
    lr.sort_indices()
    rows: list[np.ndarray] = []
    indptr_list: list[int] = [0]
    nnz_below = 0
    for i in range(n):
        cols = lr.indices[lr.indptr[i] : lr.indptr[i + 1]]
        patt = np.asarray(cols[cols < i], dtype=np.intp)
        rows.append(patt)
        nnz_below += patt.size
        indptr_list.append(nnz_below)

    return SymbolicFactor(
        n=n,
        parent=parent,
        col_counts=col_counts,
        nnz_l=int(col_counts.sum()),
        flops=cholesky_flops(col_counts),
        row_indptr=np.asarray(indptr_list, dtype=np.intp),
        row_indices=np.concatenate(rows) if rows else np.empty(0, dtype=np.intp),
        supernodes=_fundamental_supernodes(parent, col_counts),
    )


def factor_pattern_csc(sym: SymbolicFactor) -> sp.csc_matrix:
    """Materialise the pattern of ``L`` as a CSC boolean matrix (incl. diagonal)."""
    if sym.row_indptr is None or sym.row_indices is None:
        raise ValueError("symbolic factor was computed without the full pattern")
    n = sym.n
    rows = []
    cols = []
    for i in range(n):
        patt = sym.row(i)
        rows.append(np.full(patt.size + 1, i, dtype=np.intp))
        cols.append(np.append(patt, i))
    rows_arr = np.concatenate(rows) if rows else np.empty(0, dtype=np.intp)
    cols_arr = np.concatenate(cols) if cols else np.empty(0, dtype=np.intp)
    data = np.ones(rows_arr.size, dtype=np.float64)
    return sp.csc_matrix((data, (rows_arr, cols_arr)), shape=(n, n))


__all__ = [
    "SymbolicFactor",
    "symbolic_factorize",
    "symbolic_from_factor",
    "symbolic_from_pattern",
    "factor_pattern_csc",
    "pattern_digest",
]
