"""CPU Schur complement via augmented factorization (PARDISO stand-in).

The paper's strongest CPU baseline (``expl_mkl``) is PARDISO's *augmented
incomplete factorization* [8]: the Schur complement ``F = B K^{-1} B^T`` is
obtained as the negative Schur complement of the ``K`` block in the augmented
matrix ``[[K, B^T], [B, 0]]``, computed inside the factorization so that the
sparsity of **both** ``K`` and ``B`` is exploited and no dense intermediate
``Y = L^{-1} B^T`` is ever formed.

We reproduce that behaviour with explicit sparse building blocks:

1. factor ``K_reg = L L^T`` with a fill-reducing ordering,
2. solve ``L Y = P B^T`` column-by-column with the Gilbert–Peierls
   sparse-RHS solve (cost proportional to the *reach*, not to ``n``),
3. accumulate ``F = Y^T Y`` as a sparse SYRK over the rows of ``Y``.

The returned :class:`AugmentedSchurResult` carries the exact FLOPs performed
so the simulated cost model can price the approach fairly against the
GPU pipelines.  For 2D problems the factor reach stays tiny and this method
wins — exactly the paper's Figure 9 conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.cholesky import CholeskyFactor, cholesky
from repro.sparse.triangular import spsolve_lower_sparse
from repro.util import require


@dataclass(frozen=True)
class AugmentedSchurResult:
    """Schur complement computed on the CPU via sparse augmented factorization."""

    schur: np.ndarray  # dense (m, m), symmetric, F = B K^{-1} B^T
    factor: CholeskyFactor
    solve_flops: float  # FLOPs of the sparse triangular solves
    syrk_flops: float  # FLOPs of the sparse SYRK accumulation
    y_nnz: int  # nonzeros of the intermediate Y

    @property
    def total_flops(self) -> float:
        return self.factor.flops + self.solve_flops + self.syrk_flops


def schur_augmented(
    k_reg: sp.spmatrix,
    bt: sp.spmatrix,
    ordering: str = "nd",
    coords: np.ndarray | None = None,
    factor: CholeskyFactor | None = None,
    engine: str = "superlu",
) -> AugmentedSchurResult:
    """Compute ``F = B K_reg^{-1} B^T`` exploiting sparsity of both inputs.

    Parameters
    ----------
    k_reg:
        Regularized SPD subdomain matrix.
    bt:
        Sparse ``B^T`` (n x m) — the transposed gluing matrix.
    ordering, coords, engine:
        Forwarded to :func:`repro.sparse.cholesky.cholesky` when *factor*
        is not supplied.
    factor:
        Reuse an existing factorization (the FETI preprocessing loop shares
        factors between the implicit operator and the SC assembly).
    """
    require(sp.issparse(bt), "bt must be sparse")
    n = k_reg.shape[0]
    require(bt.shape[0] == n, f"bt has {bt.shape[0]} rows, K has order {n}")
    if factor is None:
        factor = cholesky(k_reg, ordering=ordering, coords=coords, engine=engine)
    # Permute B^T rows consistently with the factor: Y = L^{-1} (P B^T).
    bt_perm = bt.tocsr()[factor.perm].tocsc()
    y, solve_flops = spsolve_lower_sparse(factor.l, bt_perm)

    # Sparse SYRK: F = Y^T Y accumulated row-by-row of Y (outer products of
    # sparse rows).  FLOPs: one multiply-add per (nonzero, nonzero) pair per
    # row — sum over rows of nnz_row^2.
    y_csr = y.tocsr()
    row_nnz = np.diff(y_csr.indptr).astype(np.float64)
    syrk_flops = float(np.sum(row_nnz * row_nnz))
    f = (y.T @ y).toarray()
    # Symmetrise exactly (the product is symmetric up to roundoff).
    f = 0.5 * (f + f.T)
    return AugmentedSchurResult(
        schur=f,
        factor=factor,
        solve_flops=solve_flops,
        syrk_flops=syrk_flops,
        y_nnz=int(y.nnz),
    )


__all__ = ["schur_augmented", "AugmentedSchurResult"]
