"""Numeric sparse Cholesky factorization ``P A P^T = L L^T``.

Two interchangeable engines behind one API:

* ``"native"`` — an up-looking row Cholesky written here from scratch,
  driven by the elimination tree of :mod:`repro.sparse.etree`.  Reference
  implementation: clear, exact, O(flops) in Python — use for small/medium
  matrices and in tests.
* ``"superlu"`` — applies our fill-reducing permutation, then runs SciPy's
  compiled SuperLU with the *natural* column ordering and diagonal pivoting
  disabled; for an SPD matrix this yields ``A = L_u U`` with ``U = D L_u^T``,
  from which the Cholesky factor ``L = L_u sqrt(D)`` is extracted.  This is
  the fast engine (the MKL/CHOLMOD stand-in of the reproduction).

Both expose the factor ``L`` in CSC form — the property the paper needs from
CHOLMOD ("only Cholmod allows extraction of factors", §5).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.obs import get_tracer
from repro.sparse.etree import elimination_tree, row_pattern
from repro.sparse.ordering import compute_ordering
from repro.sparse.triangular import TriangularSolver
from repro.util import check_permutation, check_sparse_square, cholesky_flops, require

ENGINES = ("native", "superlu")


class NotPositiveDefiniteError(ValueError):
    """Raised when a matrix passed to :func:`cholesky` is not SPD."""


@dataclass
class CholeskyFactor:
    """Cholesky factorization ``A[perm][:, perm] = L @ L.T``.

    Attributes
    ----------
    l:
        Lower-triangular factor (CSC, diagonal first in every column).
    perm:
        Fill-reducing permutation applied to *a* before factorizing.
    flops:
        Numeric-factorization FLOP estimate (from the factor's column counts).
    engine:
        Which engine produced the factor.
    """

    l: sp.csc_matrix
    perm: np.ndarray
    flops: float
    engine: str

    _solver: TriangularSolver | None = None

    @property
    def n(self) -> int:
        return self.l.shape[0]

    @property
    def nnz(self) -> int:
        return self.l.nnz

    def solver(self) -> TriangularSolver:
        """Cached compiled triangular solver for this factor."""
        if self._solver is None:
            self._solver = TriangularSolver(self.l)
        return self._solver

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` (in the original, unpermuted ordering)."""
        b = np.asarray(b, dtype=np.float64)
        squeeze = b.ndim == 1
        bp = b[self.perm]
        s = self.solver()
        y = s.solve(bp)
        xp = s.solve(y, transpose=True)
        x = np.empty_like(xp)
        x[self.perm] = xp
        return x if not squeeze else x

    def solve_permuted(self, b: np.ndarray) -> np.ndarray:
        """Solve ``(L L^T) x = b`` in the permuted ordering (no perm applied)."""
        s = self.solver()
        return s.solve(s.solve(np.asarray(b, dtype=np.float64)), transpose=True)

    def logdet(self) -> float:
        """``log det A`` from the factor diagonal."""
        return 2.0 * float(np.sum(np.log(self.l.diagonal())))


def cholesky(
    a: sp.spmatrix,
    ordering: str = "nd",
    perm: np.ndarray | None = None,
    coords: np.ndarray | None = None,
    engine: str = "superlu",
    conform: bool = False,
) -> CholeskyFactor:
    """Factorize the SPD matrix *a* as ``a[perm][:, perm] = L L^T``.

    Parameters
    ----------
    a:
        Sparse SPD matrix.
    ordering:
        Fill-reducing ordering method (see
        :func:`repro.sparse.ordering.compute_ordering`); ignored when *perm*
        is given.
    perm:
        Explicit permutation to use instead of computing one.
    coords:
        Node coordinates forwarded to geometric nested dissection.
    engine:
        ``"superlu"`` (fast, default) or ``"native"`` (reference).
    conform:
        Pad the stored factor to the full *symbolic* fill pattern (explicit
        zeros included).  SuperLU drops factor entries whose numerical value
        is exactly zero, so the stored pattern of ``L`` depends on values:
        translate-identical subdomains whose stiffness entries are ``0.0``
        versus ``~1e-17`` store *different* patterns and split the
        :mod:`repro.batch` pattern cache.  Conforming makes the stored
        pattern a pure function of ``pattern(A)`` and ``perm`` — the
        canonical factor structure CHOLMOD's supernodal storage provides
        for free.  The native engine is already symbolic-patterned.
    """
    n = check_sparse_square(a, "a")
    require(engine in ENGINES, f"unknown engine {engine!r}")
    with get_tracer().span("sparse.cholesky", n=n, nnz=int(a.nnz), engine=engine) as span:
        if perm is None:
            perm = compute_ordering(a, method=ordering, coords=coords)
        else:
            perm = check_permutation(perm, n, "perm")
        ap = sp.csc_matrix(a.tocsr()[perm][:, perm])

        if engine == "native":
            l = _native_cholesky(ap)
        else:
            l = _superlu_cholesky(ap)
            if conform:
                l = conform_to_symbolic(l, ap)

        counts = np.diff(l.indptr)
        span.set(nnz_l=int(l.nnz))
    return CholeskyFactor(l=l, perm=perm, flops=cholesky_flops(counts), engine=engine)


#: Bounded memo of symbolic fill patterns keyed by the input pattern digest.
#: A structured decomposition factorizes many translate-identical K_reg
#: patterns with conform=True; without the memo each member would repeat the
#: (Python, O(nnz(L))) symbolic analysis that canonicalization exists to
#: amortize.  Entries are (indptr, indices) pairs of the pattern's CSC form.
_SYMBOLIC_PATTERN_CACHE: "OrderedDict[str, tuple[np.ndarray, np.ndarray]]" = OrderedDict()
_SYMBOLIC_PATTERN_CACHE_MAX = 64


def _symbolic_pattern(ap: sp.csc_matrix) -> tuple[np.ndarray, np.ndarray]:
    """CSC ``(indptr, indices)`` of the symbolic fill pattern of *ap*, memoized."""
    from repro.sparse.symbolic import (
        factor_pattern_csc,
        pattern_digest,
        symbolic_factorize,
    )

    key = pattern_digest(ap)
    hit = _SYMBOLIC_PATTERN_CACHE.get(key)
    if hit is not None:
        _SYMBOLIC_PATTERN_CACHE.move_to_end(key)
        return hit
    patt = factor_pattern_csc(symbolic_factorize(ap)).tocsc()
    patt.sort_indices()
    entry = (patt.indptr.copy(), patt.indices.copy())
    _SYMBOLIC_PATTERN_CACHE[key] = entry
    while len(_SYMBOLIC_PATTERN_CACHE) > _SYMBOLIC_PATTERN_CACHE_MAX:
        _SYMBOLIC_PATTERN_CACHE.popitem(last=False)
    return entry


def conform_to_symbolic(l: sp.csc_matrix, ap: sp.csc_matrix) -> sp.csc_matrix:
    """Scatter the stored factor *l* into the symbolic fill pattern of *ap*.

    Returns a CSC factor whose structure is exactly the symbolic Cholesky
    pattern of ``ap`` (value-independent); positions the numeric engine
    dropped as exact zeros are stored explicitly as ``0.0``.  The stored
    pattern must be a subset of the symbolic pattern — guaranteed for an
    SPD matrix factorized without pivoting.  The symbolic pattern is
    memoized by input-pattern digest, so a population of pattern-identical
    subdomains pays the symbolic analysis once.
    """
    n = l.shape[0]
    if n == 0:
        return l
    patt_indptr, patt_indices = _symbolic_pattern(ap)
    if patt_indices.size == l.nnz:
        return l  # no numerical drops: already the symbolic pattern
    data = np.zeros(patt_indices.size, dtype=np.float64)
    for j in range(n):
        l0, l1 = l.indptr[j], l.indptr[j + 1]
        stored = l.indices[l0:l1]
        if stored.size == 0:
            continue
        sym = patt_indices[patt_indptr[j] : patt_indptr[j + 1]]
        pos = np.searchsorted(sym, stored)
        require(
            bool(np.all(pos < sym.size)) and bool(np.array_equal(sym[pos], stored)),
            "stored factor pattern is not a subset of the symbolic pattern",
        )
        data[patt_indptr[j] + pos] = l.data[l0:l1]
    out = sp.csc_matrix(
        (data, patt_indices.copy(), patt_indptr.copy()), shape=(n, n)
    )
    out.sort_indices()
    return out


def _superlu_cholesky(ap: sp.csc_matrix) -> sp.csc_matrix:
    """Extract the Cholesky factor of SPD *ap* from a SuperLU factorization."""
    n = ap.shape[0]
    if n == 0:
        return sp.csc_matrix((0, 0))
    try:
        lu = spla.splu(
            ap,
            permc_spec="NATURAL",
            diag_pivot_thresh=0.0,
            options={"Equil": False, "SymmetricMode": True, "ColPerm": "NATURAL"},
        )
    except RuntimeError as exc:  # singular matrix
        raise NotPositiveDefiniteError(f"matrix is singular: {exc}") from exc
    if not np.array_equal(lu.perm_r, np.arange(n)):
        raise NotPositiveDefiniteError(
            "SuperLU performed row pivoting; matrix is not positive definite"
        )
    d = lu.U.diagonal()
    if np.any(d <= 0.0):
        raise NotPositiveDefiniteError("non-positive pivot encountered")
    l = (lu.L @ sp.diags(np.sqrt(d))).tocsc()
    l.sort_indices()
    return l


def _native_cholesky(ap: sp.csc_matrix) -> sp.csc_matrix:
    """Up-looking row Cholesky (reference implementation).

    Row *i* of ``L`` solves ``L[:i, :i] y = A[:i, i]`` on the row pattern
    given by the etree row subtree, then the diagonal entry closes the row.
    """
    n = ap.shape[0]
    a_lower = sp.tril(ap, format="csr")
    parent = elimination_tree(a_lower)

    indptr_a, indices_a, data_a = a_lower.indptr, a_lower.indices, a_lower.data
    row_cols: list[np.ndarray] = []
    row_vals: list[np.ndarray] = []
    diag = np.zeros(n, dtype=np.float64)
    x = np.zeros(n, dtype=np.float64)

    for i in range(n):
        patt = row_pattern(a_lower, parent, i)
        # Scatter row i of A (below-diagonal part + diagonal).
        aii = 0.0
        for t in range(indptr_a[i], indptr_a[i + 1]):
            j = indices_a[t]
            if j == i:
                aii = data_a[t]
            else:
                x[j] = data_a[t]
        # Forward substitution restricted to the row pattern.
        for j in patt:
            cols_j = row_cols[j]
            if cols_j.size:
                x[j] -= row_vals[j] @ x[cols_j]
            x[j] /= diag[j]
        vals = x[patt]
        d2 = aii - float(vals @ vals)
        if d2 <= 0.0:
            # Clean workspace before raising.
            x[patt] = 0.0
            raise NotPositiveDefiniteError(
                f"non-positive pivot {d2:.3e} at column {i}"
            )
        diag[i] = np.sqrt(d2)
        row_cols.append(patt)
        row_vals.append(vals.copy())
        x[patt] = 0.0

    # Assemble CSR rows (below-diagonal) + diagonal, convert to CSC.
    nnz = sum(c.size for c in row_cols) + n
    indptr = np.zeros(n + 1, dtype=np.intp)
    indices = np.empty(nnz, dtype=np.intp)
    data = np.empty(nnz, dtype=np.float64)
    pos = 0
    for i in range(n):
        c = row_cols[i]
        k = c.size
        indices[pos : pos + k] = c
        data[pos : pos + k] = row_vals[i]
        indices[pos + k] = i
        data[pos + k] = diag[i]
        pos += k + 1
        indptr[i + 1] = pos
    l_csr = sp.csr_matrix((data, indices, indptr), shape=(n, n))
    l = l_csr.tocsc()
    l.sort_indices()
    return l


__all__ = [
    "cholesky",
    "CholeskyFactor",
    "NotPositiveDefiniteError",
    "ENGINES",
    "conform_to_symbolic",
]
