"""Analytic regularization of singular subdomain matrices.

Floating FETI subdomains have symmetric positive *semi*-definite matrices
``K_i`` whose kernel (rigid modes / constant temperature field) makes plain
Cholesky fail.  Following Brzobohatý et al. [11], the paper regularizes with
*fixing nodes*: ``K_reg = K + rho * sum_{d in fixed} e_d e_d^T``, where the
fixing DOFs are chosen to intersect every kernel vector.  For the scalar
heat-transfer problems in the evaluation (kernel = constants) a single
well-placed fixing node suffices.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.canonical import DEFAULT_TOLERANCE, canonical_coords
from repro.util import check_sparse_square, require


def choose_fixing_dofs(
    k: sp.spmatrix,
    kernel_dim: int,
    coords: np.ndarray | None = None,
    canonicalize: bool = True,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Choose *kernel_dim* fixing DOFs for the SPSD matrix *k*.

    The heuristic spreads the fixing nodes geometrically (when coordinates
    are available) so each kernel vector has a substantial component on them:
    the first is the DOF closest to the domain barycentre; subsequent ones
    maximise the minimum distance to those already chosen (farthest-point
    sampling).  Without coordinates the largest-diagonal DOFs are used.

    With *canonicalize* (the default) the coordinates are mapped to their
    canonical local frame first (:func:`repro.sparse.canonical.canonical_coords`),
    so the choice depends only on subdomain-relative geometry: translate-
    identical subdomains pick the same fixing DOFs even when absolute
    coordinates carry float jitter that would break argmin/argmax ties
    differently per grid position.
    """
    n = check_sparse_square(k, "k")
    require(0 <= kernel_dim <= n, "kernel_dim out of range")
    if kernel_dim == 0:
        return np.empty(0, dtype=np.intp)
    if coords is None:
        diag = k.diagonal()
        return np.argsort(diag)[::-1][:kernel_dim].astype(np.intp)
    coords = np.asarray(coords, dtype=np.float64)
    require(coords.shape[0] == n, "coords must have one row per DOF")
    if canonicalize:
        coords = canonical_coords(coords, tolerance)
    centre = coords.mean(axis=0)
    first = int(np.argmin(np.linalg.norm(coords - centre, axis=1)))
    chosen = [first]
    if kernel_dim > 1:
        dist = np.linalg.norm(coords - coords[first], axis=1)
        for _ in range(kernel_dim - 1):
            nxt = int(np.argmax(dist))
            chosen.append(nxt)
            dist = np.minimum(dist, np.linalg.norm(coords - coords[nxt], axis=1))
    return np.asarray(chosen, dtype=np.intp)


def choose_fixing_nodes(
    coords: np.ndarray,
    n_nodes: int,
    dofs_per_node: int,
    canonicalize: bool = True,
    tolerance: float = DEFAULT_TOLERANCE,
) -> np.ndarray:
    """Choose fixing *nodes* for vector-valued (e.g. elasticity) problems.

    For rigid-body kernels, fixing single components is not enough (three
    x-components leave the y-translation free); the standard choice [11]
    fixes *all* components of a few well-spread nodes.  Returns the DOF
    indices (interleaved numbering: ``node * dofs_per_node + component``)
    of ``n_nodes`` farthest-point-sampled nodes.  *canonicalize* maps the
    coordinates to the canonical local frame first, making the choice
    translation-invariant (see :func:`choose_fixing_dofs`).
    """
    coords = np.asarray(coords, dtype=np.float64)
    require(coords.ndim == 2, "coords must be (n_nodes, dim)")
    require(1 <= n_nodes <= coords.shape[0], "n_nodes out of range")
    require(dofs_per_node >= 1, "dofs_per_node must be >= 1")
    if canonicalize:
        coords = canonical_coords(coords, tolerance)
    centre = coords.mean(axis=0)
    first = int(np.argmin(np.linalg.norm(coords - centre, axis=1)))
    chosen = [first]
    dist = np.linalg.norm(coords - coords[first], axis=1)
    for _ in range(n_nodes - 1):
        nxt = int(np.argmax(dist))
        chosen.append(nxt)
        dist = np.minimum(dist, np.linalg.norm(coords - coords[nxt], axis=1))
    nodes = np.asarray(chosen, dtype=np.intp)
    return (nodes[:, None] * dofs_per_node + np.arange(dofs_per_node)[None, :]).ravel()


def choose_fixing_dofs_by_kernel(r: np.ndarray) -> np.ndarray:
    """Choose exactly ``kernel_dim`` fixing DOFs from the kernel basis *r*.

    ``K_reg^{-1}`` is an *exact* generalized inverse of ``K`` precisely when
    the number of fixing DOFs equals the kernel dimension and the kernel
    restricted to them (``R^T S``) is invertible: with ``K R = 0``,
    ``R^T K_reg = rho (R^T S) S^T`` gives ``rho S^T K_reg^{-1} S = I`` and
    the defect ``E (I - E^T K_reg^{-1} E) E^T`` vanishes.  QR with column
    pivoting on ``R^T`` picks the most independent DOFs, maximising the
    conditioning of ``R^T S``.
    """
    import scipy.linalg

    r = np.asarray(r, dtype=np.float64)
    require(r.ndim == 2, "kernel basis must be (n, kernel_dim)")
    n, k = r.shape
    require(1 <= k <= n, "kernel dimension out of range")
    _, _, pivots = scipy.linalg.qr(r.T, pivoting=True, mode="economic")
    return np.sort(pivots[:k]).astype(np.intp)


def regularize(
    k: sp.spmatrix,
    fixing_dofs: np.ndarray,
    rho: float | None = None,
) -> sp.csr_matrix:
    """Return ``K_reg = K + rho * sum e_d e_d^T`` over the fixing DOFs.

    *rho* defaults to the mean diagonal of *k*, which keeps the conditioning
    of the regularized matrix comparable to the original.
    The regularization changes ``K^+`` only on the kernel — FETI projects
    that component out through the coarse problem, so the solver is exact.

    The sum is built by COO concatenation rather than sparse ``+``: SciPy's
    sparse addition drops entries whose *numerical* result is exactly zero,
    so the output pattern would depend on values, not structure.  Structured
    triangulations assemble stiffness entries that are exactly ``0.0`` in
    one subdomain and ``~1e-17`` in its translate, and a value-pruned
    ``K_reg`` pattern splits translate-identical subdomains apart in the
    :mod:`repro.batch` fingerprint cache.  The stored pattern of the result
    is always the union of the input pattern and the fixing diagonal,
    explicit zeros included.
    """
    n = check_sparse_square(k, "k")
    fixing_dofs = np.asarray(fixing_dofs, dtype=np.intp)
    if fixing_dofs.size == 0:
        return k.tocsr().copy()
    require(
        fixing_dofs.min() >= 0 and fixing_dofs.max() < n,
        "fixing DOF out of range",
    )
    if rho is None:
        rho = float(k.diagonal().mean())
    require(rho > 0, "rho must be positive")
    kc = k.tocoo()
    rows = np.concatenate([kc.row, fixing_dofs])
    cols = np.concatenate([kc.col, fixing_dofs])
    data = np.concatenate([kc.data, np.full(fixing_dofs.size, rho)])
    out = sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()
    out.sum_duplicates()
    out.sort_indices()
    return out


__all__ = [
    "choose_fixing_dofs",
    "choose_fixing_nodes",
    "choose_fixing_dofs_by_kernel",
    "regularize",
]
