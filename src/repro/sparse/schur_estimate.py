"""Pattern-based cost estimation of the augmented Schur complement.

Gilbert's theorem: the nonzero pattern of the solution of ``L y = b`` is the
union of the elimination-tree paths from the nonzeros of ``b`` to the root.
For a Cholesky factor the etree is directly readable from the pattern
(``parent[j]`` = first sub-diagonal row of column *j*), so the exact
Gilbert–Peierls work of :func:`repro.sparse.schur_augmented.schur_augmented`
can be *predicted* without numerics:

* ``solve_flops``: per RHS column, sum of ``2 (c_j - 1) + 1`` over the reach
  (``c_j`` = column count of ``L``),
* ``y_nnz``: total reach size,
* ``syrk_flops``: sum over factor rows of (number of RHS columns whose reach
  contains the row) squared.

For many-column gluing matrices a deterministic column sample extrapolates
the totals — benchmarks at 3-D sizes where running the real sparse solve in
Python is infeasible use this path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.cholesky import CholeskyFactor
from repro.util import require


@dataclass(frozen=True)
class AugmentedCostEstimate:
    """Predicted Gilbert–Peierls + sparse-SYRK work."""

    solve_flops: float
    syrk_flops: float
    y_nnz: float
    sampled: bool


def factor_etree(factor: CholeskyFactor) -> np.ndarray:
    """Elimination tree read off the factor pattern (first subdiagonal row)."""
    lc = factor.l.tocsc()
    lc.sort_indices()
    n = factor.n
    parent = np.full(n, -1, dtype=np.intp)
    for j in range(n):
        start, end = lc.indptr[j], lc.indptr[j + 1]
        if end - start > 1:
            parent[j] = lc.indices[start + 1]
    return parent


def estimate_augmented_cost(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    max_columns: int = 512,
    seed: int = 0,
) -> AugmentedCostEstimate:
    """Predict the augmented-SC assembly work for ``F = B K^{-1} B^T``.

    Parameters
    ----------
    factor:
        The Cholesky factorization of the (regularized) subdomain matrix.
    bt:
        Sparse ``B^T`` in the *original* row order (the factor's permutation
        is applied internally, as :func:`schur_augmented` does).
    max_columns:
        Columns are sampled (deterministically) above this count and totals
        extrapolated; pass ``bt.shape[1]`` or more for an exact estimate.
    """
    require(sp.issparse(bt), "bt must be sparse")
    require(bt.shape[0] == factor.n, "bt row count mismatch")
    require(max_columns >= 1, "max_columns must be >= 1")
    n = factor.n
    m = bt.shape[1]
    if m == 0:
        return AugmentedCostEstimate(0.0, 0.0, 0.0, sampled=False)

    parent = factor_etree(factor)
    col_counts = np.diff(factor.l.tocsc().indptr)
    bt_perm = bt.tocsr()[factor.perm].tocsc()

    if m > max_columns:
        rng = np.random.default_rng(seed)
        cols = np.sort(rng.choice(m, size=max_columns, replace=False))
        scale = m / float(max_columns)
        sampled = True
    else:
        cols = np.arange(m)
        scale = 1.0
        sampled = False

    stamp = np.full(n, -1, dtype=np.int64)
    occupancy = np.zeros(n, dtype=np.float64)
    solve_flops = 0.0
    y_nnz = 0.0
    for tag, col in enumerate(cols):
        seeds = bt_perm.indices[bt_perm.indptr[col] : bt_perm.indptr[col + 1]]
        for s in seeds:
            j = int(s)
            while j != -1 and stamp[j] != tag:
                stamp[j] = tag
                occupancy[j] += 1.0
                solve_flops += 2.0 * (col_counts[j] - 1.0) + 1.0
                y_nnz += 1.0
                j = int(parent[j])

    # SYRK work: sum over rows of (columns whose reach hits the row)^2;
    # under sampling the per-row count scales by `scale`, its square by
    # `scale^2` — but the number of *distinct* contributing rows does not
    # grow, so scaling the squared sample keeps the estimator consistent.
    syrk_flops = float(np.sum((occupancy * scale) ** 2))
    return AugmentedCostEstimate(
        solve_flops=solve_flops * scale,
        syrk_flops=syrk_flops,
        y_nnz=y_nnz * scale,
        sampled=sampled,
    )


__all__ = ["estimate_augmented_cost", "AugmentedCostEstimate", "factor_etree"]
