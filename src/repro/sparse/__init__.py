"""Sparse direct-solver substrate: orderings, symbolic/numeric Cholesky,
triangular solves, augmented Schur complement, regularization, null spaces.

This package is the from-scratch stand-in for MKL PARDISO / CHOLMOD / METIS
that the paper's FETI implementation builds on.
"""

from repro.sparse.canonical import (
    DEFAULT_NEAR_SHAPE_TOLERANCE,
    DEFAULT_NEAR_SIZE_TOLERANCE,
    DEFAULT_TOLERANCE,
    DEFAULT_VALUE_TOLERANCE,
    INERTIA_GAP_TOLERANCE,
    CanonicalFrame,
    CanonicalRelabeling,
    canonical_coords,
    canonical_frame,
    canonical_relabeling,
    canonical_signature,
    frame_digest,
    inertia_alignment,
    near_signature,
    orientation_transforms,
    quantize_pattern,
    rotation_coords,
    rotation_signature,
)
from repro.sparse.cholesky import (
    ENGINES,
    CholeskyFactor,
    NotPositiveDefiniteError,
    cholesky,
    conform_to_symbolic,
)
from repro.sparse.etree import elimination_tree, postorder, row_pattern
from repro.sparse.nullspace import (
    constant_nullspace,
    nullspace_dense,
    spnorm_inf,
    verify_nullspace,
)
from repro.sparse.ordering import (
    ORDERING_METHODS,
    amd_ordering,
    compute_ordering,
    natural_ordering,
    nd_ordering,
    rcm_ordering,
)
from repro.sparse.regularization import (
    choose_fixing_dofs,
    choose_fixing_dofs_by_kernel,
    choose_fixing_nodes,
    regularize,
)
from repro.sparse.schur_augmented import AugmentedSchurResult, schur_augmented
from repro.sparse.schur_estimate import (
    AugmentedCostEstimate,
    estimate_augmented_cost,
    factor_etree,
)
from repro.sparse.symbolic import (
    SymbolicFactor,
    factor_pattern_csc,
    symbolic_factorize,
    symbolic_from_factor,
)
from repro.sparse.stacked import StackedCSC, stack_permuted_dense
from repro.sparse.triangular import (
    DEFAULT_DENSE_CUTOFF,
    TriangularSolver,
    cached_triangular_solver,
    get_dense_cutoff,
    set_dense_cutoff,
    solve_lower,
    solve_upper,
    spsolve_lower_sparse,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "DEFAULT_VALUE_TOLERANCE",
    "DEFAULT_NEAR_SIZE_TOLERANCE",
    "DEFAULT_NEAR_SHAPE_TOLERANCE",
    "INERTIA_GAP_TOLERANCE",
    "CanonicalFrame",
    "CanonicalRelabeling",
    "canonical_frame",
    "canonical_coords",
    "canonical_relabeling",
    "canonical_signature",
    "frame_digest",
    "inertia_alignment",
    "near_signature",
    "orientation_transforms",
    "quantize_pattern",
    "rotation_coords",
    "rotation_signature",
    "conform_to_symbolic",
    "cholesky",
    "CholeskyFactor",
    "NotPositiveDefiniteError",
    "ENGINES",
    "elimination_tree",
    "postorder",
    "row_pattern",
    "symbolic_factorize",
    "symbolic_from_factor",
    "SymbolicFactor",
    "factor_pattern_csc",
    "compute_ordering",
    "natural_ordering",
    "rcm_ordering",
    "amd_ordering",
    "nd_ordering",
    "ORDERING_METHODS",
    "solve_lower",
    "solve_upper",
    "TriangularSolver",
    "cached_triangular_solver",
    "DEFAULT_DENSE_CUTOFF",
    "get_dense_cutoff",
    "set_dense_cutoff",
    "spsolve_lower_sparse",
    "StackedCSC",
    "stack_permuted_dense",
    "schur_augmented",
    "AugmentedSchurResult",
    "estimate_augmented_cost",
    "AugmentedCostEstimate",
    "factor_etree",
    "choose_fixing_dofs",
    "choose_fixing_nodes",
    "choose_fixing_dofs_by_kernel",
    "regularize",
    "constant_nullspace",
    "nullspace_dense",
    "verify_nullspace",
    "spnorm_inf",
]
