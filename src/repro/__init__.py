"""repro — sparsity-aware (simulated-)GPU assembly of Schur complements in FETI.

Reproduction of: Homola, Meca, Říha, Brzobohatý, *Utilizing Sparsity in the
GPU-accelerated Assembly of Schur Complement Matrices in Domain Decomposition
Methods*, SC 2025 (arXiv:2509.21037).

The most common entry points are re-exported here lazily (so that importing
``repro`` stays cheap):

* :class:`repro.core.SchurAssembler` — the paper's contribution,
* :func:`repro.core.default_config` / :func:`repro.core.baseline_config`,
* :func:`repro.fem.heat_transfer_2d` / :func:`repro.fem.heat_transfer_3d`,
* :func:`repro.dd.decompose`,
* :class:`repro.feti.FetiSolver` / :func:`repro.feti.solve_feti`,
* :func:`repro.bench.make_workload`,
* :class:`repro.batch.BatchAssembler` / :class:`repro.batch.PatternCache` —
  population-scale assembly with symbolic-pattern reuse (see
  :mod:`repro.batch`).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

_LAZY = {
    "SchurAssembler": ("repro.core", "SchurAssembler"),
    "AssemblyConfig": ("repro.core", "AssemblyConfig"),
    "default_config": ("repro.core", "default_config"),
    "baseline_config": ("repro.core", "baseline_config"),
    "heat_transfer_2d": ("repro.fem", "heat_transfer_2d"),
    "heat_transfer_3d": ("repro.fem", "heat_transfer_3d"),
    "heat_problem": ("repro.fem", "heat_problem"),
    "decompose": ("repro.dd", "decompose"),
    "make_mesh": ("repro.part", "make_mesh"),
    "jittered_square_mesh": ("repro.part", "jittered_square_mesh"),
    "lshape_mesh": ("repro.part", "lshape_mesh"),
    "strip_with_holes_mesh": ("repro.part", "strip_with_holes_mesh"),
    "partition_mesh": ("repro.part", "partition_mesh"),
    "PartitionResult": ("repro.part", "PartitionResult"),
    "FetiSolver": ("repro.feti", "FetiSolver"),
    "solve_feti": ("repro.feti", "solve_feti"),
    "make_workload": ("repro.bench", "make_workload"),
    "BatchAssembler": ("repro.batch", "BatchAssembler"),
    "BatchItem": ("repro.batch", "BatchItem"),
    "PatternCache": ("repro.batch", "PatternCache"),
    "BatchStats": ("repro.batch", "BatchStats"),
    "items_from_decomposition": ("repro.batch", "items_from_decomposition"),
    "geometric_fingerprint": ("repro.batch", "geometric_fingerprint"),
    "canonical_frame": ("repro.sparse", "canonical_frame"),
    "canonical_coords": ("repro.sparse", "canonical_coords"),
    "cholesky": ("repro.sparse", "cholesky"),
    "A100_40GB": ("repro.gpu", "A100_40GB"),
    "EPYC_7763_CORE": ("repro.gpu", "EPYC_7763_CORE"),
}

__all__ = ["__version__", *_LAZY]


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(__all__)
