"""Structural fingerprints of subdomains.

On structured decompositions many subdomains are translates of one another:
the pattern of the regularized ``K``, the pattern of the gluing ``B̃^T``
and the ordering choice — everything the symbolic stage consumes — are
identical, only the numerical values differ.  A fingerprint hashes exactly
that structural identity into a stable key, so the batch engine
(:mod:`repro.batch.engine`) can do the expensive pattern-only analysis once
per *group* instead of once per subdomain, the same way the paper's
three-stage solver performs symbolic analysis once and reuses it across
repeated numeric factorizations (§2.2).

Two granularities:

* :func:`subdomain_fingerprint` — from the regularized stiffness pattern,
  the gluing pattern, and the ordering *name* (cheap, available before any
  factorization; used by :func:`repro.feti.planner.plan_population`).
* :func:`factor_fingerprint` — from the *stored* pattern of the numeric
  factor ``L``, its permutation, and the gluing pattern.  This is the exact
  key: equal fingerprints guarantee that every cached pattern artifact
  (stepped permutation, pruning plan, cost estimate) transfers bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.cholesky import CholeskyFactor
from repro.util import require


@dataclass(frozen=True)
class Fingerprint:
    """Stable structural identity of one subdomain.

    ``key`` is a sha256 hex digest; ``n``/``m``/``nnz`` are carried along
    for display and sanity checks (collisions across different shapes are
    impossible anyway because the shapes are hashed).
    """

    key: str
    n: int
    m: int
    nnz: int

    def short(self) -> str:
        """Abbreviated key for logs and tables."""
        return self.key[:12]


def _update(h, arr: np.ndarray) -> None:
    h.update(np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes())
    h.update(b"|")


def _update_pattern(h, a: sp.spmatrix) -> int:
    ac = a.tocsc()
    ac.sort_indices()
    _update(h, np.asarray(ac.shape))
    _update(h, ac.indptr)
    _update(h, ac.indices)
    return int(ac.nnz)


def pattern_digest(a: sp.spmatrix) -> str:
    """Hex digest of the sparsity pattern (shape + sorted CSC structure)."""
    require(sp.issparse(a), "pattern_digest needs a sparse matrix")
    h = hashlib.sha256()
    _update_pattern(h, a)
    return h.hexdigest()


def subdomain_fingerprint(
    k: sp.spmatrix,
    bt: sp.spmatrix,
    ordering: str = "nd",
    extra: str = "",
) -> Fingerprint:
    """Fingerprint a subdomain before factorization.

    Hashes the pattern of the (regularized) stiffness *k*, the pattern of
    the transposed gluing *bt*, and the fill-reducing *ordering* choice.
    Subdomains sharing this fingerprint produce identically-structured
    factors whenever the ordering is computed deterministically from the
    pattern (natural/RCM/AMD) or shared explicitly across the group.
    """
    require(sp.issparse(k) and sp.issparse(bt), "k and bt must be sparse")
    require(k.shape[0] == bt.shape[0], "k and bt row counts differ")
    h = hashlib.sha256()
    nnz = _update_pattern(h, k)
    _update_pattern(h, bt)
    h.update(ordering.encode())
    h.update(b"|")
    h.update(extra.encode())
    return Fingerprint(key=h.hexdigest(), n=k.shape[0], m=bt.shape[1], nnz=nnz)


def factor_fingerprint(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    extra: str = "",
) -> Fingerprint:
    """Fingerprint a factorized subdomain (the batch engine's cache key).

    Hashes the stored pattern of ``L``, the fill-reducing permutation, and
    the pattern of *bt*.  *extra* lets callers mix configuration identity
    into the key (the engine passes ``config.describe()`` so one cache can
    serve several assembly configurations).
    """
    require(sp.issparse(bt), "bt must be sparse")
    require(bt.shape[0] == factor.n, "bt row count must match factor order")
    h = hashlib.sha256()
    nnz = _update_pattern(h, factor.l)
    _update(h, factor.perm)
    _update_pattern(h, bt)
    h.update(extra.encode())
    return Fingerprint(key=h.hexdigest(), n=factor.n, m=bt.shape[1], nnz=nnz)


__all__ = [
    "Fingerprint",
    "pattern_digest",
    "subdomain_fingerprint",
    "factor_fingerprint",
]
