"""Structural fingerprints of subdomains.

On structured decompositions many subdomains are translates of one another:
the pattern of the regularized ``K``, the pattern of the gluing ``B̃^T``
and the ordering choice — everything the symbolic stage consumes — are
identical, only the numerical values differ.  A fingerprint hashes exactly
that structural identity into a stable key, so the batch engine
(:mod:`repro.batch.engine`) can do the expensive pattern-only analysis once
per *group* instead of once per subdomain, the same way the paper's
three-stage solver performs symbolic analysis once and reuses it across
repeated numeric factorizations (§2.2).

Three granularities:

* :func:`subdomain_fingerprint` — from the regularized stiffness pattern,
  the gluing pattern, and the ordering *name* (cheap, available before any
  factorization).  Pass ``coords`` to mix in the canonical-frame digest —
  the geometry-aware variant that guards against pattern collisions between
  geometrically different subdomains.
* :func:`factor_fingerprint` — from the *stored* pattern of the numeric
  factor ``L``, the permuted gluing pattern, and the gluing shape.  This is
  the exact key: equal fingerprints guarantee that every cached pattern
  artifact (stepped permutation, pruning plan, cost estimate) transfers
  bit-for-bit.
* :func:`geometric_fingerprint` — from the orientation- and translation-
  canonical lattice geometry labelled with the per-DOF gluing multiplicity
  (:func:`repro.sparse.canonical.canonical_signature`).  The coarsest key:
  mirror- and rotation-identical subdomains (the corner/edge classes of a
  structured grid) collapse together.  Safe for *pricing* — isomorphic
  patterns cost the same — and used by
  :func:`repro.feti.planner.plan_population`.

Exact sharing *across* mirror classes is the job of
:class:`repro.sparse.canonical.CanonicalRelabeling`: passed to
:func:`subdomain_fingerprint` / :func:`factor_fingerprint`, the patterns
are relabeled into the canonical orientation frame before hashing, so the
emitted key is the *canonical-class* key — mirror-identical subdomains
collide on purpose, and the per-member relabeling is the invertible map
that makes their cached artifacts transfer exactly (``docs/batching.md``
walks through the mechanism).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.sparse.canonical import (
    DEFAULT_NEAR_SHAPE_TOLERANCE,
    DEFAULT_NEAR_SIZE_TOLERANCE,
    DEFAULT_TOLERANCE,
    canonical_signature,
    frame_digest,
    near_signature,
    rotation_signature,
)
from repro.sparse.cholesky import CholeskyFactor
from repro.sparse.symbolic import pattern_digest
from repro.util import require


@dataclass(frozen=True)
class Fingerprint:
    """Stable structural identity of one subdomain.

    ``key`` is a sha256 hex digest; ``n``/``m``/``nnz`` are carried along
    for display and sanity checks (collisions across different shapes are
    impossible anyway because the shapes are hashed).
    """

    key: str
    n: int
    m: int
    nnz: int

    def short(self) -> str:
        """Abbreviated key for logs and tables."""
        return self.key[:12]


def _update(h, arr: np.ndarray) -> None:
    h.update(np.ascontiguousarray(np.asarray(arr, dtype=np.int64)).tobytes())
    h.update(b"|")


def _update_pattern(h, a: sp.spmatrix) -> int:
    ac = a.tocsc()
    ac.sort_indices()
    _update(h, np.asarray(ac.shape))
    _update(h, ac.indptr)
    _update(h, ac.indices)
    return int(ac.nnz)


def subdomain_fingerprint(
    k: sp.spmatrix,
    bt: sp.spmatrix,
    ordering: str = "nd",
    extra: str = "",
    coords: np.ndarray | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    relabeling=None,
) -> Fingerprint:
    """Fingerprint a subdomain before factorization.

    Hashes the pattern of the (regularized) stiffness *k*, the pattern of
    the transposed gluing *bt*, and the fill-reducing *ordering* choice.
    Subdomains sharing this fingerprint produce identically-structured
    factors whenever the ordering is computed deterministically from the
    pattern (natural/RCM/AMD) or shared explicitly across the group.

    With *coords*, the digest of the canonical local frame
    (:func:`repro.sparse.canonical.frame_digest`) is mixed in — the
    geometry-aware variant.  The frame digest is translation-invariant, so
    translate-identical subdomains still collapse, while subdomains whose
    patterns coincide by accident but whose geometry differs (and whose
    geometric ND permutations could therefore differ) stay apart.

    With *relabeling* (a :class:`~repro.sparse.canonical.CanonicalRelabeling`)
    the key becomes the **canonical-class** key: *k* and *bt* are relabeled
    into the canonical orientation frame before hashing and the relabeling's
    signature is mixed in, so mirror-identical subdomains — whose raw
    patterns differ — fingerprint together, which is exactly when their
    relabeled artifacts are interchangeable.
    """
    require(sp.issparse(k) and sp.issparse(bt), "k and bt must be sparse")
    require(k.shape[0] == bt.shape[0], "k and bt row counts differ")
    if relabeling is not None:
        k = relabeling.apply_matrix(k)
        bt = relabeling.apply_bt(bt)
    h = hashlib.sha256()
    nnz = _update_pattern(h, k)
    _update_pattern(h, bt)
    h.update(ordering.encode())
    h.update(b"|")
    if relabeling is not None:
        h.update(relabeling.signature.encode())
        h.update(b"|")
    if coords is not None and relabeling is None:
        # The relabeling signature already fixes the geometry; the raw frame
        # digest is only translation-invariant and would split mirror classes.
        require(
            np.asarray(coords).shape[0] == k.shape[0],
            "coords must have one row per DOF",
        )
        h.update(frame_digest(coords, tolerance).encode())
        h.update(b"|")
    h.update(extra.encode())
    return Fingerprint(key=h.hexdigest(), n=k.shape[0], m=bt.shape[1], nnz=nnz)


def factor_fingerprint(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    extra: str = "",
    bt_rows: sp.spmatrix | None = None,
    relabeling=None,
) -> Fingerprint:
    """Fingerprint a factorized subdomain (the batch engine's cache key).

    Hashes the stored pattern of ``L`` and the pattern of *bt with the
    factor's permutation applied to its rows* — exactly the two patterns
    every cached artifact is computed from (the stepped permutation and
    pruning plan consume ``bt[perm]`` and ``pattern(L)``, nothing else).

    The permutation is deliberately **not** hashed raw: two members of the
    same canonical group can carry permutations that differ only by a
    relabeling of tied nested-dissection separators, and such permutations
    still produce the same ``pattern(L)`` and the same permuted gluing
    pattern — hashing the raw ``perm`` would split the cache for no reason.
    Equal fingerprints guarantee bit-for-bit artifact transfer because the
    key *is* the full input of the pattern-only analysis.

    *extra* lets callers mix configuration identity into the key (the
    engine passes ``config.describe()`` plus the device identity so one
    cache can serve several assembly configurations).  *bt_rows* accepts a
    precomputed ``bt.tocsr()[factor.perm]`` so hot loops that need the
    permuted gluing anyway (the batch engine) don't permute twice.

    With *relabeling* the key is the **canonical-class** key: the gluing
    columns are put in canonical order before hashing, so mirror-identical
    subdomains whose factors were built in the canonical frame
    (:func:`repro.feti.operator.factorize_subdomain` with the same
    relabeling) collide and share one artifact set — the per-member
    ``relabeling.col_perm`` is the invertible map back to each member's
    multiplier order.
    """
    require(sp.issparse(bt), "bt must be sparse")
    require(bt.shape[0] == factor.n, "bt row count must match factor order")
    if bt_rows is None:
        bt_rows = bt.tocsr()[factor.perm]
        if relabeling is not None:
            bt_rows = bt_rows.tocsc()[:, relabeling.col_perm]
    h = hashlib.sha256()
    nnz = _update_pattern(h, factor.l)
    _update_pattern(h, bt_rows)
    h.update(extra.encode())
    return Fingerprint(key=h.hexdigest(), n=factor.n, m=bt.shape[1], nnz=nnz)


def geometric_fingerprint(
    coords: np.ndarray,
    bt: sp.spmatrix,
    tolerance: float = DEFAULT_TOLERANCE,
    extra: str = "",
) -> Fingerprint:
    """Orientation/translation-invariant pricing key of one subdomain.

    Hashes the canonical signature of the DOF coordinates labelled with
    each DOF's gluing multiplicity (how many columns of ``B̃^T`` touch it),
    plus the gluing shape and nonzero count.  Two subdomains share this key
    exactly when a rigid lattice symmetry (translation + axis permutation +
    flips) maps one glued point set onto the other — e.g. the four corner
    subdomains of a structured grid, or the twelve edge subdomains.

    Members of a geometric group have *isomorphic* (not bit-equal) patterns:
    use it to share per-group decisions that only depend on pattern shape
    and size — approach pricing, cost estimates — never to transfer exact
    pattern artifacts such as stepped permutations.
    """
    require(sp.issparse(bt), "bt must be sparse")
    coords = np.asarray(coords, dtype=np.float64)
    require(coords.shape[0] == bt.shape[0], "coords must have one row per DOF")
    multiplicity = np.asarray(bt.tocsr().getnnz(axis=1), dtype=np.int64)
    h = hashlib.sha256()
    h.update(canonical_signature(coords, multiplicity, tolerance).encode())
    h.update(b"|")
    _update(h, np.asarray([bt.shape[0], bt.shape[1], bt.nnz]))
    h.update(extra.encode())
    return Fingerprint(
        key=h.hexdigest(), n=bt.shape[0], m=bt.shape[1], nnz=int(bt.nnz)
    )


def rotation_fingerprint(
    coords: np.ndarray,
    bt: sp.spmatrix,
    tolerance: float = DEFAULT_TOLERANCE,
    extra: str = "",
) -> Fingerprint:
    """Rotation-invariant pricing key (free rotations, not just axis flips).

    The :func:`geometric_fingerprint` analogue built on
    :func:`repro.sparse.canonical.rotation_signature`: coordinates are
    inertia-aligned before the orientation minimization, so congruent
    subdomains of a METIS-like decomposition share the key at *any*
    orientation.  Same contract as the geometric key — members have
    isomorphic-up-to-quantization patterns, safe for pricing, never for
    exact artifact transfer.
    """
    require(sp.issparse(bt), "bt must be sparse")
    coords = np.asarray(coords, dtype=np.float64)
    require(coords.shape[0] == bt.shape[0], "coords must have one row per DOF")
    multiplicity = np.asarray(bt.tocsr().getnnz(axis=1), dtype=np.int64)
    h = hashlib.sha256()
    h.update(rotation_signature(coords, multiplicity, tolerance).encode())
    h.update(b"|")
    _update(h, np.asarray([bt.shape[0], bt.shape[1], bt.nnz]))
    h.update(extra.encode())
    return Fingerprint(
        key=h.hexdigest(), n=bt.shape[0], m=bt.shape[1], nnz=int(bt.nnz)
    )


def near_fingerprint(
    coords: np.ndarray,
    bt: sp.spmatrix,
    size_tolerance: float = DEFAULT_NEAR_SIZE_TOLERANCE,
    shape_tolerance: float = DEFAULT_NEAR_SHAPE_TOLERANCE,
    extra: str = "",
) -> Fingerprint:
    """Near-match pricing key: approximately-congruent subdomains collide.

    Built on :func:`repro.sparse.canonical.near_signature` — coarsely
    quantized rigid-motion invariants of the glued point set — plus the
    gluing size in the same logarithmic buckets (multiplier count and
    nonzeros within ~*size_tolerance* share a bucket; hashing the raw
    shape would re-split everything a balanced partitioner produces).

    This is the unstructured-decomposition pricing key: exact and even
    rotation-exact classes are almost all singletons there, but a balanced
    METIS-like partition yields many subdomains of similar size and shape
    whose preprocessing costs are near-identical — one plan and one cost
    estimate per near class is the right spend.  Never use it to transfer
    exact pattern artifacts; sharing those stays gated on the bitwise
    :func:`factor_fingerprint`.
    """
    require(sp.issparse(bt), "bt must be sparse")
    coords = np.asarray(coords, dtype=np.float64)
    require(coords.shape[0] == bt.shape[0], "coords must have one row per DOF")
    multiplicity = np.asarray(bt.tocsr().getnnz(axis=1), dtype=np.int64)
    from repro.sparse.canonical import log_bucket

    h = hashlib.sha256()
    h.update(
        near_signature(
            coords,
            multiplicity,
            size_tolerance=size_tolerance,
            shape_tolerance=shape_tolerance,
        ).encode()
    )
    h.update(b"|")
    _update(
        h,
        np.asarray(
            [
                log_bucket(float(bt.shape[1]), size_tolerance),
                log_bucket(float(bt.nnz), size_tolerance),
            ]
        ),
    )
    h.update(extra.encode())
    return Fingerprint(
        key=h.hexdigest(), n=bt.shape[0], m=bt.shape[1], nnz=int(bt.nnz)
    )


def union_fingerprint(l_union, bt_union, extra: str = "") -> Fingerprint:
    """Cache key of one union-pattern artifact set (the padded tier).

    Hashes the two union patterns (:class:`repro.sparse.canonical.PatternUnion`
    of the members' factor and permuted-gluing patterns) — the full input of
    the union's pattern-only analysis, exactly like :func:`factor_fingerprint`
    hashes the exact analysis input.  Two near classes whose unions coincide
    structurally (common on meshes with repeated local topology) share one
    stepped permutation, pruning plan and cost estimate.  *extra* mixes in
    the configuration/device identity, as everywhere.
    """
    h = hashlib.sha256()
    for patt in (l_union, bt_union):
        _update(h, np.asarray(patt.shape))
        _update(h, patt.indptr)
        _update(h, patt.indices)
    h.update(b"union|")
    h.update(extra.encode())
    return Fingerprint(
        key=h.hexdigest(),
        n=int(l_union.shape[0]),
        m=int(bt_union.shape[1]),
        nnz=int(l_union.nnz),
    )


#: Geometric pricing-signature modes accepted by
#: :class:`repro.batch.engine.BatchAssembler` and
#: :func:`repro.feti.planner.plan_population`: ``"frame"`` (translation +
#: axis perms/flips), ``"rotation"`` (adds free rotations), ``"near"``
#: (approximate congruence; coarse invariants).
SIGNATURE_MODES = ("frame", "rotation", "near")


def geometric_fingerprint_for(
    mode: str,
    coords: np.ndarray,
    bt: sp.spmatrix,
    tolerance: float = DEFAULT_TOLERANCE,
    size_tolerance: float = DEFAULT_NEAR_SIZE_TOLERANCE,
    shape_tolerance: float = DEFAULT_NEAR_SHAPE_TOLERANCE,
    extra: str = "",
) -> Fingerprint:
    """Dispatch one of the three geometric pricing keys by *mode*.

    *tolerance* (the coordinate quantum) parameterizes the two lattice
    modes; the ``"near"`` mode is lattice-free and takes the bucket widths
    *size_tolerance* / *shape_tolerance* instead.
    """
    require(mode in SIGNATURE_MODES, f"unknown signature mode {mode!r}")
    if mode == "frame":
        return geometric_fingerprint(coords, bt, tolerance=tolerance, extra=extra)
    if mode == "rotation":
        return rotation_fingerprint(coords, bt, tolerance=tolerance, extra=extra)
    return near_fingerprint(
        coords,
        bt,
        size_tolerance=size_tolerance,
        shape_tolerance=shape_tolerance,
        extra=extra,
    )


__all__ = [
    "Fingerprint",
    "SIGNATURE_MODES",
    "pattern_digest",
    "subdomain_fingerprint",
    "factor_fingerprint",
    "geometric_fingerprint",
    "geometric_fingerprint_for",
    "near_fingerprint",
    "rotation_fingerprint",
    "union_fingerprint",
]
