"""Aggregated statistics of one batched assembly run.

The batch engine reports three things the per-subdomain code path cannot:
how much of the population shared a pattern (cache hit rate), how much
simulated preprocessing time the sharing saved (symbolic analysis charged
once per group instead of once per subdomain), and the resulting
throughput.  :class:`BatchStats` carries the counters; :meth:`BatchStats.merge`
lets long-running services aggregate across many batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BatchStats:
    """Counters and simulated-time aggregates of one batch.

    ``analysis_seconds`` is the simulated host-side symbolic-analysis time
    actually charged (once per fingerprint group); ``analysis_seconds_saved``
    is what the cache hits avoided — the no-cache baseline would have
    charged ``analysis_seconds + analysis_seconds_saved``.

    ``n_groups`` counts the *executed* groups (canonical classes when the
    items carry relabelings); ``n_exact_groups`` the finer raw-pattern
    classes the run would have executed without orientation-canonical
    sharing.  Their difference — :attr:`mirrors_shared` — is how many
    mirror classes piggybacked on another class's artifacts (the 9 → 3
    collapse of a floating 5x5 grid shows up as ``n_exact_groups=9,
    n_groups=3, mirrors_shared=6``).  ``n_singleton_groups`` counts the
    executed groups with exactly one member — with
    :attr:`members_per_group` and :attr:`singleton_share` it is the
    grouping-efficiency report for unstructured decompositions, where
    sharing is not free and a run needs to say how much it actually got.

    The execution counters describe the *numeric* phase:
    ``execution`` is the requested mode (``"per-member"``/``"grouped"``/
    ``"auto"``), ``n_grouped`` how many members actually ran through the
    batched group path, ``kernel_launches`` the total kernel launches the
    execution charged, and ``group_execute_seconds``/``group_launches`` the
    host wall clock and launch count per fingerprint group (keyed like
    :attr:`~repro.batch.engine.BatchResult.groups`) — the numbers behind the
    grouped-vs-per-member speedup benchmark.

    The union counters describe the padded tier (``execution="union"``):
    ``n_union_groups`` near classes executed padded with ``n_union_members``
    members total, ``n_union_skipped`` classes that tripped the fill-cap
    guard, and ``union_padded_nnz``/``union_member_nnz`` the padded vs exact
    stored entries of the executed classes (additive across merges; their
    ratio is :attr:`union_fill_ratio`).  ``n_degraded`` counts batches whose
    grouped execution silently degraded to all-singleton groups — the case
    the union tier exists for.

    The durability counters describe the persistent tier (present when the
    engine runs over a :class:`repro.store.tiered.TieredPatternCache`):
    ``store_hits``/``store_misses`` are the lookups that fell through the
    in-memory LRU and were served from / missed by the artifact store on
    disk (a store hit still counts in ``hits`` — the analysis was reused),
    and ``n_quarantined`` counts corrupted store entries quarantined (and
    recomputed — never served) during this batch.  ``n_exec_fallbacks``
    counts grouped/union execution tasks that raised on their worker
    thread and were re-executed per-member — graceful degradation instead
    of aborting the whole batch.
    """

    n_subdomains: int = 0
    n_groups: int = 0
    n_exact_groups: int = 0
    n_geometric_groups: int = 0
    n_singleton_groups: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    analysis_seconds: float = 0.0
    analysis_seconds_saved: float = 0.0
    factorization_seconds: float = 0.0
    assembly_seconds: float = 0.0
    wall_seconds: float = 0.0
    execution: str = "per-member"
    n_grouped: int = 0
    kernel_launches: int = 0
    execute_seconds: float = 0.0
    group_execute_seconds: dict[str, float] = field(default_factory=dict)
    group_launches: dict[str, int] = field(default_factory=dict)
    n_union_groups: int = 0
    n_union_members: int = 0
    n_union_skipped: int = 0
    union_padded_nnz: float = 0.0
    union_member_nnz: float = 0.0
    n_degraded: int = 0
    store_hits: int = 0
    store_misses: int = 0
    n_quarantined: int = 0
    n_exec_fallbacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Cache hit fraction over this batch (0.0 for an empty batch)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @property
    def mirrors_shared(self) -> int:
        """Mirror classes that reused another class's artifacts through a
        canonical relabeling (exact classes minus executed groups)."""
        return max(0, self.n_exact_groups - self.n_groups)

    @property
    def members_per_group(self) -> float:
        """Mean members per executed pattern group — the sharing leverage.

        1.0 means no two subdomains shared anything (every group a
        singleton, the worst case of an unstructured decomposition);
        structured grids reach ``n_subdomains / #classes``."""
        return self.n_subdomains / self.n_groups if self.n_groups else 0.0

    @property
    def singleton_share(self) -> float:
        """Fraction of executed groups with exactly one member."""
        return (
            self.n_singleton_groups / self.n_groups if self.n_groups else 0.0
        )

    @property
    def union_fill_ratio(self) -> float:
        """Padded over exact stored entries of the union-executed classes
        (1.0 when nothing ran padded)."""
        return (
            self.union_padded_nnz / self.union_member_nnz
            if self.union_member_nnz
            else 1.0
        )

    @property
    def preprocessing_seconds(self) -> float:
        """Total simulated serial preprocessing: analysis + factorization +
        assembly (the pipeline overlaps these; see :meth:`throughput`)."""
        return self.analysis_seconds + self.factorization_seconds + self.assembly_seconds

    def throughput(self, makespan: float | None = None) -> float:
        """Subdomains per simulated second.

        Against the pipeline *makespan* when given (the multi-stream
        figure), otherwise against the serial preprocessing total.
        """
        denom = makespan if makespan is not None else self.preprocessing_seconds
        return self.n_subdomains / denom if denom > 0 else 0.0

    def merge(self, other: "BatchStats") -> "BatchStats":
        """Combine two batches' statistics (counters and times add)."""

        def merge_dicts(a: dict, b: dict) -> dict:
            out = dict(a)
            for k, v in b.items():
                out[k] = out.get(k, 0) + v
            return out

        return BatchStats(
            n_subdomains=self.n_subdomains + other.n_subdomains,
            n_groups=self.n_groups + other.n_groups,
            n_exact_groups=self.n_exact_groups + other.n_exact_groups,
            n_geometric_groups=self.n_geometric_groups + other.n_geometric_groups,
            n_singleton_groups=self.n_singleton_groups + other.n_singleton_groups,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            analysis_seconds=self.analysis_seconds + other.analysis_seconds,
            analysis_seconds_saved=self.analysis_seconds_saved + other.analysis_seconds_saved,
            factorization_seconds=self.factorization_seconds + other.factorization_seconds,
            assembly_seconds=self.assembly_seconds + other.assembly_seconds,
            wall_seconds=self.wall_seconds + other.wall_seconds,
            execution=self.execution if self.execution == other.execution else "mixed",
            n_grouped=self.n_grouped + other.n_grouped,
            kernel_launches=self.kernel_launches + other.kernel_launches,
            execute_seconds=self.execute_seconds + other.execute_seconds,
            group_execute_seconds=merge_dicts(
                self.group_execute_seconds, other.group_execute_seconds
            ),
            group_launches=merge_dicts(self.group_launches, other.group_launches),
            n_union_groups=self.n_union_groups + other.n_union_groups,
            n_union_members=self.n_union_members + other.n_union_members,
            n_union_skipped=self.n_union_skipped + other.n_union_skipped,
            union_padded_nnz=self.union_padded_nnz + other.union_padded_nnz,
            union_member_nnz=self.union_member_nnz + other.union_member_nnz,
            n_degraded=self.n_degraded + other.n_degraded,
            store_hits=self.store_hits + other.store_hits,
            store_misses=self.store_misses + other.store_misses,
            n_quarantined=self.n_quarantined + other.n_quarantined,
            n_exec_fallbacks=self.n_exec_fallbacks + other.n_exec_fallbacks,
        )

    def summary(self) -> str:
        """Human-readable multi-line report."""
        geo = (
            f", {self.n_geometric_groups} geometric class(es)"
            if self.n_geometric_groups
            else ""
        )
        exact = ""
        if self.mirrors_shared:
            exact = (
                f" [{self.n_exact_groups} exact class(es); {self.mirrors_shared} "
                f"mirror class(es) share artifacts via relabeling]"
            )
        grouping = ""
        if self.n_groups:
            grouping = (
                f"grouping:          {self.members_per_group:.2f} member(s) per "
                f"executed group, {self.singleton_share * 100.0:.0f}% singleton "
                f"group(s) ({self.n_singleton_groups}/{self.n_groups})"
            )
        lines = [
            f"subdomains:        {self.n_subdomains} in {self.n_groups} pattern group(s){exact}{geo}",
            grouping,
            f"cache:             {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100.0:.1f}% hit rate, {self.evictions} evictions)",
            f"analysis:          {self.analysis_seconds * 1e3:.3f} ms charged, "
            f"{self.analysis_seconds_saved * 1e3:.3f} ms saved by reuse",
            f"factorization:     {self.factorization_seconds * 1e3:.3f} ms",
            f"assembly:          {self.assembly_seconds * 1e3:.3f} ms",
            f"preprocessing:     {self.preprocessing_seconds * 1e3:.3f} ms (serial total)",
            f"throughput:        {self.throughput():.1f} subdomains/s (serial)",
        ]
        if self.kernel_launches:
            lines.append(
                f"execution:         {self.execution} — {self.n_grouped}/"
                f"{self.n_subdomains} member(s) batched, "
                f"{self.kernel_launches} kernel launch(es), "
                f"{self.execute_seconds * 1e3:.3f} ms host wall"
            )
        if self.n_union_groups or self.n_union_skipped:
            lines.append(
                f"union:             {self.n_union_members} member(s) padded "
                f"into {self.n_union_groups} near class(es) at "
                f"{self.union_fill_ratio:.2f}x fill, "
                f"{self.n_union_skipped} class(es) over the fill cap"
            )
        if self.n_degraded:
            lines.append(
                f"degraded:          {self.n_degraded} batch(es) with only "
                f"singleton groups — grouped execution gained nothing "
                f"(consider execution='union')"
            )
        if self.store_hits or self.store_misses or self.n_quarantined:
            store_lookups = self.store_hits + self.store_misses
            store_rate = self.store_hits / store_lookups if store_lookups else 0.0
            lines.append(
                f"store:             {self.store_hits} hit(s) / "
                f"{self.store_misses} miss(es) from the persistent tier "
                f"({store_rate * 100.0:.1f}% of LRU misses served from disk, "
                f"{self.n_quarantined} quarantined)"
            )
        if self.n_exec_fallbacks:
            lines.append(
                f"fallbacks:         {self.n_exec_fallbacks} group(s) "
                f"re-executed per-member after a batched-execution failure"
            )
        return "\n".join(line for line in lines if line)


@dataclass
class SolveStats:
    """Counters and simulated-time aggregates of one (block) FETI solve.

    The solve-phase twin of :class:`BatchStats`: where the assembly
    counters say how much preprocessing the population shared, these say
    how the per-iteration work executed — how many RHS columns rode one
    block solve, how many kernel launches each iteration cost grouped vs
    per-subdomain, and how much simulated per-iteration time the batched
    dual-operator path charged.  ``launches_sequential_per_iteration`` is
    the comparator (6 launches per subdomain per application); their ratio
    — :attr:`launch_reduction` — is the solve-side analogue of the
    assembly engine's grouped-vs-per-member speedup.  ``n_deflated``
    counts RHS columns retired early by the block recurrence's
    convergence deflation.
    """

    n_rhs: int = 0
    n_subdomains: int = 0
    n_groups: int = 0
    iterations: int = 0
    n_deflated: int = 0
    launches_per_iteration: int = 0
    launches_sequential_per_iteration: int = 0
    apply_seconds: float = 0.0
    apply_seconds_per_iteration: float = 0.0
    lowrank_rank: int = 0

    @property
    def launch_reduction(self) -> float:
        """Sequential over grouped launches per iteration (>= 1.0 when
        grouping helps; 0.0 for an empty solve)."""
        return (
            self.launches_sequential_per_iteration / self.launches_per_iteration
            if self.launches_per_iteration
            else 0.0
        )

    def merge(self, other: "SolveStats") -> "SolveStats":
        """Combine two solves' statistics (counters and times add)."""
        return SolveStats(
            n_rhs=self.n_rhs + other.n_rhs,
            n_subdomains=self.n_subdomains + other.n_subdomains,
            n_groups=self.n_groups + other.n_groups,
            iterations=self.iterations + other.iterations,
            n_deflated=self.n_deflated + other.n_deflated,
            launches_per_iteration=self.launches_per_iteration
            + other.launches_per_iteration,
            launches_sequential_per_iteration=self.launches_sequential_per_iteration
            + other.launches_sequential_per_iteration,
            apply_seconds=self.apply_seconds + other.apply_seconds,
            apply_seconds_per_iteration=self.apply_seconds_per_iteration
            + other.apply_seconds_per_iteration,
            lowrank_rank=max(self.lowrank_rank, other.lowrank_rank),
        )

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"solve:             {self.n_rhs} RHS column(s) over "
            f"{self.n_subdomains} subdomain(s) in {self.n_groups} group(s)",
            f"iterations:        {self.iterations} "
            f"({self.n_deflated} column(s) deflated early)",
            f"launches/iter:     {self.launches_per_iteration} grouped vs "
            f"{self.launches_sequential_per_iteration} per-subdomain "
            f"({self.launch_reduction:.2f}x reduction)",
            f"apply:             {self.apply_seconds * 1e3:.3f} ms simulated "
            f"({self.apply_seconds_per_iteration * 1e3:.3f} ms per iteration)",
        ]
        if self.lowrank_rank:
            lines.append(f"low-rank:          rank-{self.lowrank_rank} coarse correction")
        return "\n".join(lines)


__all__ = ["BatchStats", "SolveStats"]
