"""The batch assembler: population-scale SC assembly with pattern reuse.

Instead of assembling subdomains one at a time, :class:`BatchAssembler`
takes a whole population, groups it by structural fingerprint, performs the
pattern-only analysis (stepped permutation, pruning plan, symbolic factor,
cost estimate) **once per group** through the :class:`~repro.batch.cache.PatternCache`,
and then:

* executes every member's numerics with the cached
  :class:`~repro.core.assembler.PreparedPattern` — results are numerically
  identical to independent :meth:`~repro.core.assembler.SchurAssembler.assemble`
  calls, and
* prices every member from the cached estimate into a
  :class:`~repro.runtime.pipeline.SubdomainWork` list that feeds the
  existing ``sep``/``mix`` multi-stream scheduler of
  :mod:`repro.runtime.pipeline` / :mod:`repro.runtime.node`.

The simulated win is the host-side symbolic analysis: charged once per
distinct pattern instead of once per subdomain (CHOLMOD-style supernodal
reuse, "performed once, reused across repeated numeric factorizations").
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.batch.cache import PatternCache, SymbolicArtifacts
from repro.batch.fingerprint import factor_fingerprint, geometric_fingerprint
from repro.batch.stats import BatchStats
from repro.core.assembler import SchurAssembler, SchurAssemblyResult, prepare_pattern
from repro.core.config import AssemblyConfig
from repro.core.estimate import FactorPattern, estimate_from_patterns
from repro.feti.timing import CHOLMOD, FactorizationLibrary
from repro.gpu.costmodel import KernelCost, csx_bytes
from repro.gpu.runtime import Executor
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE, PCIE4_X16, DeviceSpec, TransferSpec
from repro.runtime.pipeline import PipelineResult, SubdomainWork, run_preprocessing_pipeline
from repro.sparse.cholesky import CholeskyFactor
from repro.sparse.symbolic import symbolic_from_factor
from repro.util import require


@dataclass(frozen=True)
class BatchItem:
    """One member of an assembly batch.

    *coords* — the subdomain's DOF coordinates — is optional; when present
    the engine additionally reports the coarser translation/orientation-
    invariant geometric grouping alongside the exact pattern groups (see
    :func:`repro.batch.fingerprint.geometric_fingerprint`).
    """

    factor: CholeskyFactor
    bt: sp.spmatrix
    label: str | None = None
    coords: np.ndarray | None = None


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchAssembler.assemble_batch` call.

    ``results[i]`` corresponds to the i-th input item (``None`` entries when
    the batch was planned without execution); ``work[i]`` is its priced
    preprocessing; ``groups`` maps fingerprint keys to member indices and
    ``artifacts`` to the shared pattern artifacts.  ``geometric_groups``
    maps geometric fingerprint keys to member indices for the items that
    carried coordinates (empty otherwise) — the symmetry classes a
    structured decomposition's members fall into.
    """

    results: list[SchurAssemblyResult | None]
    work: list[SubdomainWork]
    stats: BatchStats
    groups: dict[str, list[int]]
    artifacts: dict[str, SymbolicArtifacts]
    geometric_groups: dict[str, list[int]]

    @property
    def n_subdomains(self) -> int:
        return len(self.work)


def symbolic_analysis_cost(
    n: int,
    nnz_l: int,
    m: int,
    nnz_bt: int,
    spec: DeviceSpec = EPYC_7763_CORE,
) -> float:
    """Simulated host seconds of the pattern-only analysis of one subdomain.

    Model: the analysis streams the factor pattern several times (etree +
    supernodes, pruning-plan scan, cost-estimate replay, memory estimate)
    and the gluing pattern twice (column pivots, permutation), all
    bandwidth-bound on one CPU core.  Deliberately simple — the point is
    that it scales with pattern size and is charged per *group* when cached
    versus per *subdomain* without.
    """
    nbytes = 4.0 * csx_bytes(nnz_l, n) + 2.0 * csx_bytes(nnz_bt, max(m, 1))
    cost = KernelCost(flops=0.0, bytes_moved=nbytes, launches=6, char_dim=1.0, sparse=True)
    return cost.time_on(spec)


def build_artifacts(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    config: AssemblyConfig,
    spec: DeviceSpec,
    transfer: TransferSpec | None,
    fingerprint,
    bt_rows: sp.spmatrix | None = None,
) -> SymbolicArtifacts:
    """Run the full pattern-only analysis for one fingerprint group.

    *bt_rows* accepts a precomputed ``bt.tocsr()[factor.perm]`` (the engine
    already permutes it for the fingerprint).
    """
    n, m = factor.n, bt.shape[1]
    patt = FactorPattern.from_factor(factor)
    if bt_rows is None:
        bt_rows = bt.tocsr()[factor.perm]
    prepared = prepare_pattern(bt_rows.tocsc(), config, factor_pattern=patt)
    estimate = estimate_from_patterns(patt, prepared.shape, config, spec, transfer)
    assembler = SchurAssembler(config=config, spec=spec, transfer=transfer)
    memory = assembler.estimate_memory(factor, m)
    return SymbolicArtifacts(
        fingerprint=fingerprint,
        prepared=prepared,
        factor_pattern=patt,
        symbolic=symbolic_from_factor(factor.l),
        estimate=estimate,
        memory=memory,
        analysis_seconds=symbolic_analysis_cost(n, patt.nnz, m, bt.nnz),
    )


class BatchAssembler:
    """Assembles *populations* of subdomains with symbolic-pattern reuse.

    Parameters mirror :class:`~repro.core.assembler.SchurAssembler`; *cache*
    may be shared across engines/batches (``PatternCache(max_entries=0)``
    disables reuse — the benchmark baseline), *library* prices the
    per-subdomain numeric factorization fed to the pipeline scheduler.
    """

    def __init__(
        self,
        config: AssemblyConfig | None = None,
        spec: DeviceSpec = A100_40GB,
        transfer: TransferSpec | None = PCIE4_X16,
        cache: PatternCache | None = None,
        library: FactorizationLibrary = CHOLMOD,
        tolerance: float | None = None,
    ) -> None:
        from repro.sparse.canonical import DEFAULT_TOLERANCE

        self.assembler = SchurAssembler(config=config, spec=spec, transfer=transfer)
        self.cache = cache if cache is not None else PatternCache()
        self.library = library
        #: Relative quantization tolerance of the geometric grouping (for
        #: items carrying coordinates); raise it for noisy mesh coordinates.
        self.tolerance = DEFAULT_TOLERANCE if tolerance is None else tolerance

    @classmethod
    def for_cpu(
        cls,
        config: AssemblyConfig | None = None,
        cache: PatternCache | None = None,
        library: FactorizationLibrary = CHOLMOD,
        tolerance: float | None = None,
    ) -> "BatchAssembler":
        cpu = SchurAssembler.for_cpu(config=config)
        return cls(
            config=cpu.config,
            spec=cpu.spec,
            transfer=None,
            cache=cache,
            library=library,
            tolerance=tolerance,
        )

    @property
    def config(self) -> AssemblyConfig:
        return self.assembler.config

    @property
    def spec(self) -> DeviceSpec:
        return self.assembler.spec

    def analyze(
        self,
        factor: CholeskyFactor,
        bt: sp.spmatrix,
        bt_rows: sp.spmatrix | None = None,
    ) -> tuple[SymbolicArtifacts, bool]:
        """Fetch (or build) the pattern artifacts for one subdomain.

        Returns ``(artifacts, was_cache_hit)``.  The cache key mixes in the
        assembly configuration *and* the device/transfer identity: cached
        estimates are priced on a specific roofline, so one cache can be
        shared across engines with different configs or specs safely.
        *bt_rows* accepts a precomputed ``bt.tocsr()[factor.perm]``.
        """
        extra = (
            f"{self.config.describe()}|{self.assembler.spec!r}|{self.assembler.transfer!r}"
        )
        if bt_rows is None:
            bt_rows = bt.tocsr()[factor.perm].tocsc()  # permute once, share
        fp = factor_fingerprint(factor, bt, extra=extra, bt_rows=bt_rows)
        return self.cache.get_or_build(
            fp.key,
            lambda: build_artifacts(
                factor,
                bt,
                self.config,
                self.assembler.spec,
                self.assembler.transfer,
                fp,
                bt_rows=bt_rows,
            ),
        )

    def assemble_batch(
        self,
        items: list[BatchItem | tuple],
        execute: bool = True,
        executor: Executor | None = None,
    ) -> BatchResult:
        """Analyze, price and (optionally) execute a batch of subdomains.

        Parameters
        ----------
        items:
            :class:`BatchItem` instances or ``(factor, bt)`` tuples.
        execute:
            Run the numerics through the shared prepared patterns.  With
            ``False`` only the symbolic analysis and pricing happen (the
            population-scale planning mode); ``results`` is all ``None``.
        executor:
            Optional shared executor for the executed numerics.
        """
        t0 = time.perf_counter()
        norm = [it if isinstance(it, BatchItem) else BatchItem(*it) for it in items]
        before = self.cache.stats.snapshot()

        results: list[SchurAssemblyResult | None] = []
        work: list[SubdomainWork] = []
        groups: dict[str, list[int]] = {}
        geometric_groups: dict[str, list[int]] = {}
        artifacts: dict[str, SymbolicArtifacts] = {}
        analysis = 0.0
        saved = 0.0
        for idx, item in enumerate(norm):
            require(sp.issparse(item.bt), f"item {idx}: bt must be sparse")
            # One row permutation per item, shared by the fingerprint, the
            # artifact build (on a miss) and the executed numerics.
            bt_rows = item.bt.tocsr()[item.factor.perm].tocsc()
            art, hit = self.analyze(item.factor, item.bt, bt_rows=bt_rows)
            key = art.fingerprint.key
            groups.setdefault(key, []).append(idx)
            artifacts[key] = art
            if item.coords is not None:
                geo = geometric_fingerprint(item.coords, item.bt, tolerance=self.tolerance)
                geometric_groups.setdefault(geo.key, []).append(idx)
            if hit:
                saved += art.analysis_seconds
            else:
                analysis += art.analysis_seconds
            work.append(
                SubdomainWork(
                    factorization=self.library.factorization_time(item.factor),
                    assembly=art.estimate["total"],
                    temp_bytes=art.memory.temporary,
                    persistent_bytes=art.memory.persistent,
                )
            )
            if execute:
                results.append(
                    self.assembler.assemble(
                        item.factor,
                        item.bt,
                        executor=executor,
                        prepared=art.prepared,
                        bt_rows=bt_rows,
                    )
                )
            else:
                results.append(None)

        after = self.cache.stats
        stats = BatchStats(
            n_subdomains=len(norm),
            n_groups=len(groups),
            n_geometric_groups=len(geometric_groups),
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            evictions=after.evictions - before.evictions,
            analysis_seconds=analysis,
            analysis_seconds_saved=saved,
            factorization_seconds=sum(w.factorization for w in work),
            assembly_seconds=sum(w.assembly for w in work),
            wall_seconds=time.perf_counter() - t0,
        )
        return BatchResult(
            results=results,
            work=work,
            stats=stats,
            groups=groups,
            artifacts=artifacts,
            geometric_groups=geometric_groups,
        )

    def plan_batch(self, items: list[BatchItem | tuple]) -> BatchResult:
        """Price a batch without executing any numerics."""
        return self.assemble_batch(items, execute=False)

    def schedule(
        self,
        work: list[SubdomainWork],
        mode: str = "mix",
        n_threads: int = 16,
        n_streams: int = 16,
        memory_pool=None,
    ) -> PipelineResult:
        """Feed priced batch work to the multi-stream preprocessing pipeline."""
        return run_preprocessing_pipeline(
            work,
            mode=mode,
            n_threads=n_threads,
            n_streams=n_streams,
            assembly_on_gpu=self.assembler.spec.kind == "gpu",
            memory_pool=memory_pool,
        )


def items_from_decomposition(
    decomposition,
    ordering: str = "nd",
    engine: str = "superlu",
    conform: bool = True,
) -> list[BatchItem]:
    """Factorize every subdomain of a :class:`~repro.dd.decomposition.Decomposition`
    into :class:`BatchItem` inputs — the dd → batch bridge.

    Each item carries the subdomain's DOF coordinates so the engine can
    report the geometric symmetry classes, and the factorization goes
    through :func:`repro.feti.operator.factorize_subdomain`, whose
    canonical-frame ordering and symbolic-conformed factor structure make
    translate-identical subdomains hit the same pattern-cache entry.
    """
    from repro.feti.operator import factorize_subdomain

    return [
        BatchItem(
            factor=factorize_subdomain(sub, ordering=ordering, engine=engine, conform=conform),
            bt=sub.bt,
            label=f"sub{sub.index}",
            coords=sub.coords,
        )
        for sub in decomposition.subdomains
    ]


__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchAssembler",
    "build_artifacts",
    "items_from_decomposition",
    "symbolic_analysis_cost",
]
