"""The batch assembler: population-scale SC assembly with pattern reuse.

Instead of assembling subdomains one at a time, :class:`BatchAssembler`
takes a whole population, groups it by structural fingerprint, performs the
pattern-only analysis (stepped permutation, pruning plan, symbolic factor,
cost estimate) **once per group** through the :class:`~repro.batch.cache.PatternCache`,
and then:

* executes every member's numerics with the cached
  :class:`~repro.core.assembler.PreparedPattern` — results are numerically
  identical to independent :meth:`~repro.core.assembler.SchurAssembler.assemble`
  calls, and
* prices every member from the cached estimate into a
  :class:`~repro.runtime.pipeline.SubdomainWork` list that feeds the
  existing ``sep``/``mix`` multi-stream scheduler of
  :mod:`repro.runtime.pipeline` / :mod:`repro.runtime.node`.

The simulated win is the host-side symbolic analysis: charged once per
distinct pattern instead of once per subdomain (CHOLMOD-style supernodal
reuse, "performed once, reused across repeated numeric factorizations").

Items that carry a :class:`~repro.sparse.canonical.CanonicalRelabeling`
(built by :func:`items_from_decomposition` with ``canonicalize=True``, the
default) group by the **canonical-class** key instead of the raw exact
key: mirror- and rotation-identical subdomains — factorized in the shared
canonical orientation frame — collide on purpose, share one artifact set,
stack into one batched numeric group, and have their Schur complements
mapped back to each member's own multiplier order on the way out
(``relabeling.unapply_sc``).  A floating 5x5 grid drops from 9 executed
groups to 3; see ``docs/batching.md`` for the full mechanism.

Numeric execution comes in four modes (``execution=``):

* ``"per-member"`` (default) — one :meth:`SchurAssembler.assemble` per item,
  bit-identical to independent assembly.
* ``"grouped"`` — every fingerprint group runs end-to-end through
  :meth:`SchurAssembler.assemble_group`: stacked RHS, batched TRSM/SYRK, one
  kernel launch per step for the whole group.  Identical FLOPs/traffic,
  launches shrink by the group size, results allclose at tight tolerance.
  Independent groups additionally fan out across a ``ThreadPoolExecutor``
  (*n_workers*; NumPy/SciPy release the GIL in BLAS).
* ``"auto"`` — grouped for groups of at least
  :data:`GROUPED_AUTO_THRESHOLD` members (where the stacking overhead is
  clearly amortized), per-member otherwise.  With sparse factor storage,
  large-order groups (above :data:`GROUPED_AUTO_MAX_SPARSE_ORDER`) also
  stay per-member: stacked kernels are dense, and a big sparse factor's
  SuperLU solves do far less host arithmetic.
* ``"union"`` — grouped, plus the padded tier for unstructured
  decompositions: near-signature classes spanning several exact
  fingerprints (where ``"grouped"`` degrades to singleton groups) pad every
  member into the class's structural pattern union with explicit zeros and
  run one batched launch per kernel step for the whole class
  (:meth:`SchurAssembler.assemble_union`).  Results stay exact — padding
  inserts structural zeros only — at the price of
  :attr:`~repro.sparse.canonical.UnionPlan.fill_ratio` times the stored
  entries; classes above *union_fill_cap* (default
  :data:`DEFAULT_UNION_FILL_CAP`) fall back to the exact paths.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.batch.cache import PatternCache, SymbolicArtifacts
from repro.batch.fingerprint import (
    SIGNATURE_MODES,
    factor_fingerprint,
    geometric_fingerprint_for,
    pattern_digest,
    union_fingerprint,
)
from repro.batch.stats import BatchStats
from repro.core.assembler import SchurAssembler, SchurAssemblyResult, prepare_pattern
from repro.core.config import AssemblyConfig
from repro.core.estimate import (
    FactorPattern,
    estimate_from_patterns,
    union_padding_overhead,
)
from repro.feti.timing import CHOLMOD, FactorizationLibrary
from repro.gpu.costmodel import KernelCost, csx_bytes
from repro.gpu.runtime import Executor
from repro.gpu.spec import A100_40GB, EPYC_7763_CORE, PCIE4_X16, DeviceSpec, TransferSpec
from repro.obs import Trace, get_tracer, record_batch_stats, record_cost_ledger
from repro.runtime.pipeline import PipelineResult, SubdomainWork, run_preprocessing_pipeline
from repro.runtime.scheduler import host_worker_count
from repro.sparse.canonical import CanonicalRelabeling, UnionPlan, union_plan
from repro.sparse.cholesky import CholeskyFactor
from repro.sparse.symbolic import symbolic_from_factor, symbolic_from_pattern
from repro.util import require


#: Numeric-execution modes of :meth:`BatchAssembler.assemble_batch`.
EXECUTION_MODES = ("per-member", "grouped", "auto", "union")

#: Default fill-ratio cap of the ``"union"`` tier: a near class whose padded
#: stacks would store/stream more than this multiple of the members' exact
#: entries falls back to the exact paths.  Deliberately lenient — the
#: batched kernels work on dense blocks, so moderate structural fill mostly
#: costs entries that were transferred as dense zeros anyway, while the
#: launch savings scale with the class size.
DEFAULT_UNION_FILL_CAP = 8.0

#: Histogram buckets of the ``batch.union_fill_ratio`` metric.
UNION_FILL_BUCKETS = (1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)

#: Minimum group size at which ``execution="auto"`` picks the batched path.
GROUPED_AUTO_THRESHOLD = 4

#: With *sparse* factor storage, ``"auto"`` batches only groups whose factor
#: order stays at or below this: the stacked kernels work on dense blocks, so
#: for large sparse factors the per-member SuperLU path does asymptotically
#: less host arithmetic (O(nnz·m) vs O(n²·m)) and wins the wall clock.  With
#: dense storage the per-member path densifies anyway and grouped is
#: strictly better, so no order cap applies.
GROUPED_AUTO_MAX_SPARSE_ORDER = 256


@dataclass(frozen=True)
class BatchItem:
    """One member of an assembly batch.

    *coords* — the subdomain's DOF coordinates — is optional; when present
    the engine additionally reports the coarser translation/orientation-
    invariant geometric grouping alongside the exact pattern groups (see
    :func:`repro.batch.fingerprint.geometric_fingerprint`).

    *relabeling* — a :class:`~repro.sparse.canonical.CanonicalRelabeling`
    matching *factor* (i.e. the factor was built in the canonical frame,
    :func:`repro.feti.operator.factorize_subdomain` with the same
    relabeling) — switches the item to canonical-class grouping: its
    gluing columns are canonicalized for the fingerprint and the executed
    numerics, and the assembled SC is mapped back to the original
    multiplier order before it is returned.
    """

    factor: CholeskyFactor
    bt: sp.spmatrix
    label: str | None = None
    coords: np.ndarray | None = None
    relabeling: "CanonicalRelabeling | None" = None


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchAssembler.assemble_batch` call.

    ``results[i]`` corresponds to the i-th input item (``None`` entries when
    the batch was planned without execution); ``work[i]`` is its priced
    preprocessing; ``groups`` maps the *executed* fingerprint keys
    (canonical-class keys for items carrying a relabeling) to member
    indices and ``artifacts`` to the shared pattern artifacts.
    ``exact_groups`` holds the finer raw-pattern grouping (no column
    canonicalization) — the groups the batch would have executed without
    orientation-canonical sharing; for items without a relabeling the two
    coincide.  ``geometric_groups`` maps geometric fingerprint keys to
    member indices for the items that carried coordinates (empty
    otherwise) — the symmetry classes a structured decomposition's members
    fall into.  ``union_groups`` maps the geometric keys of the near
    classes the ``"union"`` execution actually padded and batched to their
    member indices (empty for every other mode).

    ``trace`` is the observability handle of the run — the spans and
    metrics collected while a :mod:`repro.obs` tracer was installed
    (``with tracing(): ...``); ``None`` when tracing was off.  Save it with
    ``result.trace.save("out.json")`` (Chrome trace-event JSON, opens in
    Perfetto) or render it with ``result.trace.render()``.
    """

    results: list[SchurAssemblyResult | None]
    work: list[SubdomainWork]
    stats: BatchStats
    groups: dict[str, list[int]]
    artifacts: dict[str, SymbolicArtifacts]
    exact_groups: dict[str, list[int]]
    geometric_groups: dict[str, list[int]]
    union_groups: dict[str, list[int]] = field(default_factory=dict)
    trace: Trace | None = None

    @property
    def n_subdomains(self) -> int:
        return len(self.work)


def symbolic_analysis_cost(
    n: int,
    nnz_l: int,
    m: int,
    nnz_bt: int,
    spec: DeviceSpec = EPYC_7763_CORE,
) -> float:
    """Simulated host seconds of the pattern-only analysis of one subdomain.

    Model: the analysis streams the factor pattern several times (etree +
    supernodes, pruning-plan scan, cost-estimate replay, memory estimate)
    and the gluing pattern twice (column pivots, permutation), all
    bandwidth-bound on one CPU core.  Deliberately simple — the point is
    that it scales with pattern size and is charged per *group* when cached
    versus per *subdomain* without.
    """
    nbytes = 4.0 * csx_bytes(nnz_l, n) + 2.0 * csx_bytes(nnz_bt, max(m, 1))
    cost = KernelCost(flops=0.0, bytes_moved=nbytes, launches=6, char_dim=1.0, sparse=True)
    return cost.time_on(spec)


def build_artifacts(
    factor: CholeskyFactor,
    bt: sp.spmatrix,
    config: AssemblyConfig,
    spec: DeviceSpec,
    transfer: TransferSpec | None,
    fingerprint,
    bt_rows: sp.spmatrix | None = None,
) -> SymbolicArtifacts:
    """Run the full pattern-only analysis for one fingerprint group.

    *bt_rows* accepts a precomputed ``bt.tocsr()[factor.perm]`` (the engine
    already permutes it for the fingerprint).
    """
    n, m = factor.n, bt.shape[1]
    with get_tracer().span("batch.symbolic", n=n, m=m):
        patt = FactorPattern.from_factor(factor)
        if bt_rows is None:
            bt_rows = bt.tocsr()[factor.perm]
        prepared = prepare_pattern(bt_rows.tocsc(), config, factor_pattern=patt)
        estimate = estimate_from_patterns(patt, prepared.shape, config, spec, transfer)
        assembler = SchurAssembler(config=config, spec=spec, transfer=transfer)
        memory = assembler.estimate_memory(factor, m)
    return SymbolicArtifacts(
        fingerprint=fingerprint,
        prepared=prepared,
        factor_pattern=patt,
        symbolic=symbolic_from_factor(factor.l),
        estimate=estimate,
        memory=memory,
        analysis_seconds=symbolic_analysis_cost(n, patt.nnz, m, bt.nnz),
    )


def build_union_artifacts(
    plan: UnionPlan,
    config: AssemblyConfig,
    spec: DeviceSpec,
    transfer: TransferSpec | None,
    fingerprint,
) -> SymbolicArtifacts:
    """Pattern-only analysis of one near class's *union* pattern.

    The padded twin of :func:`build_artifacts`: stepped permutation,
    pruning plan, cost estimate and memory footprint are computed on the
    structural union — conservative supersets of every member's own
    artifacts, so the padded numerics stay exact while the estimate prices
    the padding fill faithfully.  Cached under the
    :func:`~repro.batch.fingerprint.union_fingerprint` key: structurally
    coincident unions (repeated local mesh topology) share one build.
    """
    n, m = plan.shape
    with get_tracer().span("batch.symbolic", n=n, m=m, union=True):
        patt = FactorPattern(
            n=n,
            indptr=np.asarray(plan.l_union.indptr),
            indices=np.asarray(plan.l_union.indices),
        )
        prepared = prepare_pattern(
            plan.bt_union.pattern_csc(), config, factor_pattern=patt
        )
        estimate = estimate_from_patterns(patt, prepared.shape, config, spec, transfer)
        assembler = SchurAssembler(config=config, spec=spec, transfer=transfer)
        # FactorPattern quacks enough like a factor for the memory model
        # (order + stored entries are all it reads).
        memory = assembler.estimate_memory(patt, m)
    return SymbolicArtifacts(
        fingerprint=fingerprint,
        prepared=prepared,
        factor_pattern=patt,
        symbolic=symbolic_from_pattern(plan.l_union.indptr, plan.l_union.indices, n),
        estimate=estimate,
        memory=memory,
        analysis_seconds=symbolic_analysis_cost(n, patt.nnz, m, plan.bt_union.nnz),
    )


class BatchAssembler:
    """Assembles *populations* of subdomains with symbolic-pattern reuse.

    Parameters mirror :class:`~repro.core.assembler.SchurAssembler`; *cache*
    may be shared across engines/batches (``PatternCache(max_entries=0)``
    disables reuse — the benchmark baseline), *library* prices the
    per-subdomain numeric factorization fed to the pipeline scheduler.
    """

    def __init__(
        self,
        config: AssemblyConfig | None = None,
        spec: DeviceSpec = A100_40GB,
        transfer: TransferSpec | None = PCIE4_X16,
        cache: PatternCache | None = None,
        library: FactorizationLibrary = CHOLMOD,
        tolerance: float | None = None,
        signature_mode: str = "frame",
        near_size_tolerance: float | None = None,
        near_shape_tolerance: float | None = None,
        union_fill_cap: float | None = None,
    ) -> None:
        from repro.sparse.canonical import (
            DEFAULT_NEAR_SHAPE_TOLERANCE,
            DEFAULT_NEAR_SIZE_TOLERANCE,
            DEFAULT_TOLERANCE,
        )

        require(
            signature_mode in SIGNATURE_MODES,
            f"unknown signature mode {signature_mode!r}; choose from {SIGNATURE_MODES}",
        )
        self.assembler = SchurAssembler(config=config, spec=spec, transfer=transfer)
        self.cache = cache if cache is not None else PatternCache()
        self.library = library
        #: Relative coordinate quantum of the ``"frame"``/``"rotation"``
        #: geometric grouping (for items carrying coordinates); raise it
        #: for noisy mesh coordinates.  The lattice-free ``"near"`` mode is
        #: parameterized by the two bucket widths below instead.
        self.tolerance = DEFAULT_TOLERANCE if tolerance is None else tolerance
        #: Bucket widths of ``signature_mode="near"`` (see
        #: :func:`repro.sparse.canonical.near_signature`).
        self.near_size_tolerance = (
            DEFAULT_NEAR_SIZE_TOLERANCE
            if near_size_tolerance is None
            else near_size_tolerance
        )
        self.near_shape_tolerance = (
            DEFAULT_NEAR_SHAPE_TOLERANCE
            if near_shape_tolerance is None
            else near_shape_tolerance
        )
        #: Pricing-signature mode of the geometric grouping: ``"frame"``
        #: (translation + axis perms/flips — structured grids),
        #: ``"rotation"`` (adds free rotations) or ``"near"`` (approximate
        #: congruence — the mode for METIS-like decompositions, where exact
        #: classes are almost all singletons).
        self.signature_mode = signature_mode
        #: Fill-ratio guard of ``execution="union"``: near classes whose
        #: padded stacks would exceed this multiple of the members' exact
        #: stored entries fall back to the exact execution paths.
        self.union_fill_cap = (
            DEFAULT_UNION_FILL_CAP if union_fill_cap is None else union_fill_cap
        )

    @classmethod
    def for_cpu(
        cls,
        config: AssemblyConfig | None = None,
        cache: PatternCache | None = None,
        library: FactorizationLibrary = CHOLMOD,
        tolerance: float | None = None,
        signature_mode: str = "frame",
        near_size_tolerance: float | None = None,
        near_shape_tolerance: float | None = None,
        union_fill_cap: float | None = None,
    ) -> "BatchAssembler":
        cpu = SchurAssembler.for_cpu(config=config)
        return cls(
            config=cpu.config,
            spec=cpu.spec,
            transfer=None,
            cache=cache,
            library=library,
            tolerance=tolerance,
            signature_mode=signature_mode,
            near_size_tolerance=near_size_tolerance,
            near_shape_tolerance=near_shape_tolerance,
            union_fill_cap=union_fill_cap,
        )

    @property
    def config(self) -> AssemblyConfig:
        return self.assembler.config

    @property
    def spec(self) -> DeviceSpec:
        return self.assembler.spec

    def _fingerprint_extra(self) -> str:
        """Configuration/device identity mixed into every cache key."""
        return (
            f"{self.config.describe()}|{self.assembler.spec!r}|{self.assembler.transfer!r}"
        )

    def analyze(
        self,
        factor: CholeskyFactor,
        bt: sp.spmatrix,
        bt_rows: sp.spmatrix | None = None,
    ) -> tuple[SymbolicArtifacts, bool]:
        """Fetch (or build) the pattern artifacts for one subdomain.

        Returns ``(artifacts, was_cache_hit)``.  The cache key mixes in the
        assembly configuration *and* the device/transfer identity: cached
        estimates are priced on a specific roofline, so one cache can be
        shared across engines with different configs or specs safely.
        *bt_rows* accepts a precomputed ``bt.tocsr()[factor.perm]`` — with
        its columns additionally in canonical order when the caller shares
        artifacts across a canonical class.
        """
        extra = self._fingerprint_extra()
        if bt_rows is None:
            bt_rows = bt.tocsr()[factor.perm].tocsc()  # permute once, share
        with get_tracer().span("batch.fingerprint", n=factor.n, m=bt.shape[1]):
            fp = factor_fingerprint(factor, bt, extra=extra, bt_rows=bt_rows)
        return self.cache.get_or_build(
            fp.key,
            lambda: build_artifacts(
                factor,
                bt,
                self.config,
                self.assembler.spec,
                self.assembler.transfer,
                fp,
                bt_rows=bt_rows,
            ),
        )

    def assemble_batch(
        self,
        items: list[BatchItem | tuple],
        execute: bool = True,
        executor: Executor | None = None,
        execution: str = "per-member",
        n_workers: int | None = 1,
    ) -> BatchResult:
        """Analyze, price and (optionally) execute a batch of subdomains.

        Parameters
        ----------
        items:
            :class:`BatchItem` instances or ``(factor, bt)`` tuples.
        execute:
            Run the numerics through the shared prepared patterns.  With
            ``False`` only the symbolic analysis and pricing happen (the
            population-scale planning mode); ``results`` is all ``None``.
        executor:
            Optional shared executor for the executed numerics; group
            executors of a grouped run are folded into it.
        execution:
            ``"per-member"`` (default, bit-identical per-item assembly),
            ``"grouped"`` (batched whole-group kernels; allclose to
            per-member at tight tolerance, one launch per kernel step per
            group), ``"auto"`` (grouped from
            :data:`GROUPED_AUTO_THRESHOLD` members per group, capped at
            :data:`GROUPED_AUTO_MAX_SPARSE_ORDER` for sparse storage), or
            ``"union"`` (grouped, plus near-signature classes spanning
            several exact fingerprints execute padded into their structural
            pattern union — exact numerics, one batched launch per kernel
            step per class, guarded by ``union_fill_cap``).
        n_workers:
            Host threads for fanning independent grouped groups out in
            parallel: ``1`` (default) is serial, ``None`` takes every host
            core; resolved by :func:`repro.runtime.scheduler.host_worker_count`.
            Per-member execution is always serial.

        With a :mod:`repro.obs` tracer installed (``with tracing(): ...``)
        the run is fully instrumented — a ``batch.assemble`` root span with
        ``batch.analyze``/``batch.execute``/``batch.unrelabel`` phases,
        per-member and per-group spans (grouped groups on their worker
        threads' own tracks), simulated-kernel spans from the executors —
        and the returned :attr:`BatchResult.trace` scopes exactly this
        call's spans plus the tracer-wide metrics registry.
        """
        require(execution in EXECUTION_MODES, f"unknown execution mode {execution!r}")
        tracer = get_tracer()
        mark = tracer.mark() if tracer.enabled else 0
        with tracer.span(
            "batch.assemble", n_items=len(items), execution=execution, execute=execute
        ) as root:
            result = self._assemble_batch(
                items,
                execute=execute,
                executor=executor,
                execution=execution,
                n_workers=n_workers,
            )
            root.set(
                n_groups=result.stats.n_groups,
                cache_hits=result.stats.hits,
                cache_misses=result.stats.misses,
            )
        if tracer.enabled:
            record_batch_stats(tracer.metrics, result.stats)
            result.trace = tracer.trace(mark)
        return result

    @staticmethod
    def record_solve_stats(stats) -> None:
        """Publish solve-phase counters (:class:`repro.batch.stats.SolveStats`)
        into the active tracer's metrics registry under the ``solve.``
        prefix — the solve-side twin of the ``batch.`` counters this
        engine records after every assembly, so one metrics export carries
        the whole assemble-then-solve story."""
        tracer = get_tracer()
        if tracer.enabled:
            record_batch_stats(tracer.metrics, stats, prefix="solve.")

    def _assemble_batch(
        self,
        items: list[BatchItem | tuple],
        execute: bool,
        executor: Executor | None,
        execution: str,
        n_workers: int | None,
    ) -> BatchResult:
        tracer = get_tracer()
        t0 = time.perf_counter()
        norm = [it if isinstance(it, BatchItem) else BatchItem(*it) for it in items]
        before = self.cache.stats.snapshot()

        results: list[SchurAssemblyResult | None] = [None] * len(norm)
        n_grouped = 0
        n_exec_fallbacks = 0
        launches = 0
        execute_seconds = 0.0
        group_execute_seconds: dict[str, float] = {}
        group_launches: dict[str, int] = {}
        ex: Executor | None = None
        base_launches = 0
        if execute:
            ex = executor if executor is not None else Executor(self.assembler.spec)
            base_launches = ex.ledger.total.launches
        # Pure per-member execution streams inside the analysis loop — each
        # permuted bt copy is dropped right after its assemble call, the
        # pre-grouped peak-memory footprint.  Grouped/auto retain the copies
        # until their fingerprint group is fully known and stacked.
        stream = execute and execution == "per-member"

        # --- analysis phase: fingerprint, cache, price ----------------------
        work: list[SubdomainWork] = []
        groups: dict[str, list[int]] = {}
        exact_groups: dict[str, list[int]] = {}
        geometric_groups: dict[str, list[int]] = {}
        artifacts: dict[str, SymbolicArtifacts] = {}
        bt_rows_all: list[sp.csc_matrix | None] = []
        key_of: list[str] = []
        analysis = 0.0
        saved = 0.0
        with tracer.span("batch.analyze", n_items=len(norm)):
            for idx, item in enumerate(norm):
                require(sp.issparse(item.bt), f"item {idx}: bt must be sparse")
                rel = item.relabeling
                if rel is not None:
                    require(
                        rel.n_dofs == item.factor.n and rel.n_cols == item.bt.shape[1],
                        f"item {idx}: relabeling does not match factor/bt shapes",
                    )
                # One row permutation per item, shared by the fingerprint, the
                # artifact build (on a miss) and the executed numerics.  With a
                # relabeling the gluing columns additionally go to canonical
                # order: mirror-identical members then present bit-equal
                # patterns and land in one shared (executable) group.
                bt_perm = item.bt.tocsr()[item.factor.perm].tocsc()
                bt_rows = bt_perm[:, rel.col_perm] if rel is not None else bt_perm
                # Retain the copy only when the deferred execution phase will
                # consume it (grouped/auto); streamed and plan-only runs drop it.
                bt_rows_all.append(bt_rows if execute and not stream else None)
                art, hit = self.analyze(item.factor, item.bt, bt_rows=bt_rows)
                key = art.fingerprint.key
                key_of.append(key)
                groups.setdefault(key, []).append(idx)
                artifacts[key] = art
                if rel is None:
                    exact_key = key
                else:
                    # The grouping the run would have had without orientation-
                    # canonical sharing: same factor pattern, original column
                    # order.  The canonical key already pins pattern(L) (and the
                    # canonical column order is a pure function of the raw
                    # pattern), so appending the raw permuted-gluing digest
                    # yields the identical partition without re-hashing L.
                    exact_key = f"{key}|{pattern_digest(bt_perm)}"
                exact_groups.setdefault(exact_key, []).append(idx)
                if item.coords is not None:
                    geo = geometric_fingerprint_for(
                        self.signature_mode,
                        item.coords,
                        item.bt,
                        tolerance=self.tolerance,
                        size_tolerance=self.near_size_tolerance,
                        shape_tolerance=self.near_shape_tolerance,
                    )
                    geometric_groups.setdefault(geo.key, []).append(idx)
                if hit:
                    saved += art.analysis_seconds
                else:
                    analysis += art.analysis_seconds
                work.append(
                    SubdomainWork(
                        factorization=self.library.factorization_time(item.factor),
                        assembly=art.estimate["total"],
                        temp_bytes=art.memory.temporary,
                        persistent_bytes=art.memory.persistent,
                    )
                )
                if stream:
                    l0 = ex.ledger.total.launches
                    w0 = time.perf_counter()
                    with tracer.span("batch.member", index=idx, group=key[:16]):
                        results[idx] = self.assembler.assemble(
                            item.factor,
                            item.bt,
                            executor=ex,
                            prepared=art.prepared,
                            bt_rows=bt_rows,
                        )
                    dt = time.perf_counter() - w0
                    execute_seconds += dt
                    group_launches[key] = (
                        group_launches.get(key, 0) + ex.ledger.total.launches - l0
                    )
                    group_execute_seconds[key] = group_execute_seconds.get(key, 0.0) + dt

        # --- union planning (execution == "union"): pad near classes --------
        # A near class is worth padding when it spans several exact
        # fingerprints (the grouped path already batches a single exact
        # class) and its structural fill stays under the cap.
        union_groups: dict[str, list[int]] = {}
        union_plans: dict[str, UnionPlan] = {}
        union_arts: dict[str, SymbolicArtifacts] = {}
        in_union: set[int] = set()
        n_union_skipped = 0
        union_padded_nnz = 0.0
        union_member_nnz = 0.0
        if execute and norm and execution == "union":
            extra = self._fingerprint_extra()
            for geo_key, members in geometric_groups.items():
                if len(members) < 2 or len({key_of[i] for i in members}) < 2:
                    continue
                with tracer.span(
                    "batch.union_pad", group=geo_key[:16], n_members=len(members)
                ):
                    plan = union_plan(
                        [norm[i].factor.l for i in members],
                        [bt_rows_all[i] for i in members],
                    )
                if tracer.enabled:
                    tracer.metrics.observe(
                        "batch.union_fill_ratio",
                        plan.fill_ratio,
                        boundaries=UNION_FILL_BUCKETS,
                    )
                if plan.fill_ratio > self.union_fill_cap:
                    n_union_skipped += 1
                    continue
                ufp = union_fingerprint(plan.l_union, plan.bt_union, extra=extra)
                art, hit = self.cache.get_or_build(
                    ufp.key,
                    lambda: build_union_artifacts(
                        plan,
                        self.config,
                        self.assembler.spec,
                        self.assembler.transfer,
                        ufp,
                    ),
                )
                if hit:
                    saved += art.analysis_seconds
                else:
                    analysis += art.analysis_seconds
                if tracer.enabled:
                    tracer.metrics.observe(
                        "batch.union_overhead_seconds",
                        union_padding_overhead(
                            art.estimate,
                            [artifacts[key_of[i]].estimate for i in members],
                        ),
                    )
                union_groups[geo_key] = members
                union_plans[geo_key] = plan
                union_arts[geo_key] = art
                in_union.update(members)
                union_padded_nnz += plan.padded_nnz
                union_member_nnz += plan.member_nnz

        # --- execution phase (grouped / auto / union) ------------------------
        if execute and norm and not stream:
            with tracer.span("batch.execute", execution=execution):
                exec_t0 = time.perf_counter()
                # Union-mode members executing padded leave their exact
                # groups; the remainder runs the exact paths unchanged.
                exec_members = {
                    key: [i for i in members if i not in in_union]
                    for key, members in groups.items()
                }

                def auto_picks_grouped(key: str) -> bool:
                    if len(exec_members[key]) < GROUPED_AUTO_THRESHOLD:
                        return False
                    return (
                        self.config.factor_storage == "dense"
                        or artifacts[key].fingerprint.n <= GROUPED_AUTO_MAX_SPARSE_ORDER
                    )

                grouped_keys = [
                    key
                    for key in groups
                    if exec_members[key]
                    and (execution in ("grouped", "union") or auto_picks_grouped(key))
                ]
                grouped_set = set(grouped_keys)
                # Per-member members first (serial; bit-identical path).
                for key, members in exec_members.items():
                    if key in grouped_set:
                        continue
                    for idx in members:
                        l0 = ex.ledger.total.launches
                        w0 = time.perf_counter()
                        with tracer.span("batch.member", index=idx, group=key[:16]):
                            results[idx] = self.assembler.assemble(
                                norm[idx].factor,
                                norm[idx].bt,
                                executor=ex,
                                prepared=artifacts[key].prepared,
                                bt_rows=bt_rows_all[idx],
                            )
                        bt_rows_all[idx] = None
                        group_launches[key] = (
                            group_launches.get(key, 0) + ex.ledger.total.launches - l0
                        )
                        group_execute_seconds[key] = (
                            group_execute_seconds.get(key, 0.0) + time.perf_counter() - w0
                        )

                # Grouped groups: whole-group batched kernels, one executor per
                # group so independent groups can run on parallel host threads.
                def run_group(key: str):
                    members = exec_members[key]
                    gex = Executor(self.assembler.spec)
                    w0 = time.perf_counter()
                    with tracer.span(
                        "batch.group", group=key[:16], n_members=len(members)
                    ):
                        res = self.assembler.assemble_group(
                            [norm[i].factor for i in members],
                            [norm[i].bt for i in members],
                            executor=gex,
                            prepared=artifacts[key].prepared,
                            bt_rows=[bt_rows_all[i] for i in members],
                        )
                    for i in members:
                        bt_rows_all[i] = None  # stacked: copy no longer needed
                    return key, members, res, gex, time.perf_counter() - w0

                # Union classes: whole-class padded batched kernels, same
                # one-executor-per-task fan-out as the exact groups.
                def run_union(geo_key: str):
                    members = union_groups[geo_key]
                    gex = Executor(self.assembler.spec)
                    w0 = time.perf_counter()
                    with tracer.span(
                        "batch.union",
                        group=geo_key[:16],
                        n_members=len(members),
                        fill_ratio=round(union_plans[geo_key].fill_ratio, 3),
                    ):
                        res = self.assembler.assemble_union(
                            [norm[i].factor for i in members],
                            [bt_rows_all[i] for i in members],
                            union_plans[geo_key],
                            executor=gex,
                            prepared=union_arts[geo_key].prepared,
                        )
                    for i in members:
                        bt_rows_all[i] = None
                    return f"union:{geo_key}", members, res, gex, time.perf_counter() - w0

                # Graceful degradation: a failure inside one batched task
                # (grouped or union) falls back to per-member execution of
                # that task's members instead of aborting the whole batch.
                # Each member's own exact artifacts are always valid for the
                # per-member path, and its permuted-bt copy is still intact
                # (the batched paths only release copies after succeeding).
                def run_fallback(label: str, members: list[int]):
                    gex = Executor(self.assembler.spec)
                    w0 = time.perf_counter()
                    res = []
                    for i in members:
                        with tracer.span(
                            "batch.fallback_member", index=i, group=label[:16]
                        ):
                            res.append(
                                self.assembler.assemble(
                                    norm[i].factor,
                                    norm[i].bt,
                                    executor=gex,
                                    prepared=artifacts[key_of[i]].prepared,
                                    bt_rows=bt_rows_all[i],
                                )
                            )
                        bt_rows_all[i] = None
                    return res, gex, time.perf_counter() - w0

                def run_task(fn, key: str):
                    try:
                        label, members, res, gex, wall = fn(key)
                        return label, members, res, gex, wall, False
                    except Exception as exc:  # noqa: BLE001 — degrade, don't abort
                        members = (
                            union_groups[key] if fn is run_union else exec_members[key]
                        )
                        warnings.warn(
                            f"batched execution of group {key[:16]!r} "
                            f"({len(members)} member(s)) failed with "
                            f"{type(exc).__name__}: {exc} — falling back to "
                            "per-member execution for this group",
                            RuntimeWarning,
                        )
                        label = f"union:{key}" if fn is run_union else key
                        res, gex, wall = run_fallback(label, members)
                        return label, members, res, gex, wall, True

                tasks = [(run_group, key) for key in grouped_keys] + [
                    (run_union, key) for key in union_groups
                ]
                workers = host_worker_count(n_workers, n_tasks=len(tasks))
                if workers > 1 and len(tasks) > 1:
                    with ThreadPoolExecutor(max_workers=workers) as pool:
                        outcomes = list(pool.map(lambda t: run_task(*t), tasks))
                else:
                    outcomes = [run_task(fn, key) for fn, key in tasks]
                for label, members, res, gex, wall, fell_back in outcomes:
                    for idx, r in zip(members, res):
                        results[idx] = r
                    ex.ledger.absorb(gex.ledger)
                    group_launches[label] = (
                        group_launches.get(label, 0) + gex.ledger.total.launches
                    )
                    group_execute_seconds[label] = (
                        group_execute_seconds.get(label, 0.0) + wall
                    )
                    if fell_back:
                        n_exec_fallbacks += 1
                    else:
                        n_grouped += len(members)
                execute_seconds += time.perf_counter() - exec_t0
        if execute and norm:
            launches = ex.ledger.total.launches - base_launches
            # Canonical-class members assembled against canonically ordered
            # gluing columns: reindex each SC back to its own multiplier
            # order (pure host-side gather, exact inverse of the column
            # relabeling).
            with tracer.span("batch.unrelabel"):
                for idx, item in enumerate(norm):
                    if item.relabeling is not None and results[idx] is not None:
                        results[idx].f = item.relabeling.unapply_sc(results[idx].f)
            if tracer.enabled:
                record_cost_ledger(tracer.metrics, ex.ledger)

        n_degraded = 0
        if (
            execute
            and execution == "grouped"
            and len(norm) > 1
            and groups
            and all(len(m) == 1 for m in groups.values())
        ):
            # Grouped execution silently degraded: every exact class is a
            # singleton, so the batched kernels launched once per member and
            # saved nothing over per-member execution.
            n_degraded = 1
            warnings.warn(
                f"grouped execution degraded: all {len(groups)} exact "
                f"fingerprint classes of {len(norm)} subdomains are "
                "singletons, so batched kernels gained nothing — "
                "execution='union' pads near-signature classes into shared "
                "patterns and batches them exactly",
                RuntimeWarning,
                stacklevel=3,
            )

        after = self.cache.stats
        stats = BatchStats(
            n_subdomains=len(norm),
            n_groups=len(groups),
            n_exact_groups=len(exact_groups),
            n_geometric_groups=len(geometric_groups),
            n_singleton_groups=sum(
                1 for members in groups.values() if len(members) == 1
            ),
            hits=after.hits - before.hits,
            misses=after.misses - before.misses,
            evictions=after.evictions - before.evictions,
            analysis_seconds=analysis,
            analysis_seconds_saved=saved,
            factorization_seconds=sum(w.factorization for w in work),
            assembly_seconds=sum(w.assembly for w in work),
            wall_seconds=time.perf_counter() - t0,
            execution=execution,
            n_grouped=n_grouped,
            kernel_launches=launches,
            execute_seconds=execute_seconds,
            group_execute_seconds=group_execute_seconds,
            group_launches=group_launches,
            n_union_groups=len(union_groups),
            n_union_members=sum(len(m) for m in union_groups.values()),
            n_union_skipped=n_union_skipped,
            union_padded_nnz=union_padded_nnz,
            union_member_nnz=union_member_nnz,
            n_degraded=n_degraded,
            store_hits=after.store_hits - before.store_hits,
            store_misses=after.store_misses - before.store_misses,
            n_quarantined=after.store_quarantined - before.store_quarantined,
            n_exec_fallbacks=n_exec_fallbacks,
        )
        return BatchResult(
            results=results,
            work=work,
            stats=stats,
            groups=groups,
            artifacts=artifacts,
            exact_groups=exact_groups,
            geometric_groups=geometric_groups,
            union_groups=union_groups,
        )

    def plan_batch(self, items: list[BatchItem | tuple]) -> BatchResult:
        """Price a batch without executing any numerics."""
        return self.assemble_batch(items, execute=False)

    def schedule(
        self,
        work: list[SubdomainWork],
        mode: str = "mix",
        n_threads: int = 16,
        n_streams: int = 16,
        memory_pool=None,
    ) -> PipelineResult:
        """Feed priced batch work to the multi-stream preprocessing pipeline."""
        return run_preprocessing_pipeline(
            work,
            mode=mode,
            n_threads=n_threads,
            n_streams=n_streams,
            assembly_on_gpu=self.assembler.spec.kind == "gpu",
            memory_pool=memory_pool,
        )


def items_from_decomposition(
    decomposition,
    ordering: str = "nd",
    engine: str = "superlu",
    conform: bool = True,
    canonicalize: bool = True,
    tolerance: float | None = None,
    rotations: bool = False,
) -> list[BatchItem]:
    """Factorize every subdomain of a :class:`~repro.dd.decomposition.Decomposition`
    into :class:`BatchItem` inputs — the dd → batch bridge.

    Each item carries the subdomain's DOF coordinates so the engine can
    report the geometric symmetry classes, and the factorization goes
    through :func:`repro.feti.operator.factorize_subdomain`, whose
    canonical-frame ordering and symbolic-conformed factor structure make
    translate-identical subdomains hit the same pattern-cache entry.

    With *canonicalize* (the default) each subdomain additionally gets a
    :class:`~repro.sparse.canonical.CanonicalRelabeling` and is factorized
    in its canonical *orientation* frame: mirror- and rotation-identical
    subdomains then share one cache entry and one batched numeric group
    (the 9 translate-classes of a floating grid collapse to 3).  Disable it
    to reproduce the translation-only grouping.  *tolerance* overrides the
    relabeling's relative coordinate quantum.  *rotations* extends the
    canonical frame search from axis perms/flips to free rotations
    (inertia-aligned; see :func:`repro.sparse.canonical.canonical_relabeling`)
    — worthwhile on decompositions whose congruent subdomains appear at
    arbitrary orientations.
    """
    from repro.feti.operator import factorize_subdomain
    from repro.sparse.canonical import DEFAULT_TOLERANCE, canonical_relabeling

    tol = DEFAULT_TOLERANCE if tolerance is None else tolerance
    items = []
    for sub in decomposition.subdomains:
        rel = None
        if canonicalize and sub.bt is not None:
            rel = canonical_relabeling(
                sub.coords, k=sub.k, bt=sub.bt, tolerance=tol, rotations=rotations
            )
        items.append(
            BatchItem(
                factor=factorize_subdomain(
                    sub,
                    ordering=ordering,
                    engine=engine,
                    conform=conform,
                    relabeling=rel,
                ),
                bt=sub.bt,
                label=f"sub{sub.index}",
                coords=sub.coords,
                relabeling=rel,
            )
        )
    return items


__all__ = [
    "BatchItem",
    "BatchResult",
    "BatchAssembler",
    "EXECUTION_MODES",
    "GROUPED_AUTO_THRESHOLD",
    "GROUPED_AUTO_MAX_SPARSE_ORDER",
    "DEFAULT_UNION_FILL_CAP",
    "UNION_FILL_BUCKETS",
    "build_artifacts",
    "build_union_artifacts",
    "items_from_decomposition",
    "symbolic_analysis_cost",
]
