"""Keyed store for pattern-only assembly artifacts.

One cache entry holds everything the symbolic stage of an assembly
produces for a given fingerprint — the stepped permutation and
:class:`~repro.core.stepped.SteppedShape`, the TRSM pruning plan, the
factor pattern, the :class:`~repro.sparse.symbolic.SymbolicFactor`, the
per-stage cost estimate and the device-memory estimate.  All of it is pure
pattern data, so any subdomain with the same fingerprint can reuse the
entry verbatim; the cache tracks hits, misses and LRU evictions so the
batch statistics can report the reuse achieved.

When the engine groups by *canonical-class* keys (items carrying a
:class:`~repro.sparse.canonical.CanonicalRelabeling`), one entry serves
every member of a whole orientation class — mirror- and rotation-identical
subdomains included — because the key hashes the *relabeled* patterns and
each member's relabeling is the invertible bridge between the shared
artifacts and its own DOF/multiplier order.  See ``docs/batching.md``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.assembler import MemoryEstimate, PreparedPattern
from repro.core.estimate import FactorPattern
from repro.batch.fingerprint import Fingerprint
from repro.sparse.symbolic import SymbolicFactor
from repro.util import require


@dataclass(frozen=True)
class SymbolicArtifacts:
    """Everything pattern-only that one assembly needs, computed once per
    fingerprint group.

    ``analysis_seconds`` is the simulated host-side cost of producing these
    artifacts (see :func:`repro.batch.engine.symbolic_analysis_cost`) — on a
    cache hit that cost is *saved*, which is what the batch statistics
    aggregate.
    """

    fingerprint: Fingerprint
    prepared: PreparedPattern
    factor_pattern: FactorPattern
    symbolic: SymbolicFactor
    estimate: dict[str, float]
    memory: MemoryEstimate
    analysis_seconds: float


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`PatternCache`.

    The ``store_*`` counters are written by the persistent second tier
    (:class:`repro.store.tiered.TieredPatternCache`) and stay zero for a
    plain in-memory cache: ``store_hits`` lookups that missed the memory
    LRU but were served from the artifact store on disk (counted in
    ``hits`` too — the analysis was reused either way), ``store_misses``
    lookups that had to rebuild from scratch, and ``store_quarantined``
    corrupted store entries that were quarantined (recomputed, never
    served) during this cache's lookups.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    store_hits: int = 0
    store_misses: int = 0
    store_quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            store_hits=self.store_hits,
            store_misses=self.store_misses,
            store_quarantined=self.store_quarantined,
        )


class PatternCache:
    """LRU store of :class:`SymbolicArtifacts` keyed by fingerprint.

    Parameters
    ----------
    max_entries:
        ``None`` (default) keeps every entry; a positive bound evicts the
        least recently used entry beyond it; ``0`` disables caching
        entirely (every lookup misses and nothing is stored) — the
        benchmark's no-cache baseline.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        require(
            max_entries is None or max_entries >= 0,
            "max_entries must be None or >= 0",
        )
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._store: OrderedDict[str, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def get(self, key: str) -> Any | None:
        """Peek an entry without touching counters or LRU order."""
        return self._store.get(key)

    def get_or_build(self, key: str, builder: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(value, was_hit)``, building and storing on a miss."""
        if key in self._store:
            self.stats.hits += 1
            self._store.move_to_end(key)
            return self._store[key], True
        self.stats.misses += 1
        value = builder()
        if self.max_entries == 0:
            return value, False
        self._store[key] = value
        if self.max_entries is not None:
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self.stats.evictions += 1
        return value, False

    def clear(self) -> None:
        """Drop all entries (counters are kept — they describe history)."""
        self._store.clear()


__all__ = ["SymbolicArtifacts", "CacheStats", "PatternCache"]
