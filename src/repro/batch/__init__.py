"""Batched assembly engine with a symbolic pattern cache.

Population-scale Schur-complement assembly: fingerprint subdomains by
structural identity (:mod:`repro.batch.fingerprint`), cache the expensive
pattern-only artifacts per fingerprint (:mod:`repro.batch.cache`), assemble
whole batches with one symbolic analysis per group
(:mod:`repro.batch.engine`), and report throughput / hit-rate / time-saved
statistics (:mod:`repro.batch.stats`).  Priced batch work plugs straight
into the multi-stream scheduler of :mod:`repro.runtime`.

Grouping happens at the *canonical-class* level by default: items built by
:func:`repro.batch.engine.items_from_decomposition` carry a
:class:`repro.sparse.canonical.CanonicalRelabeling`, so mirror- and
rotation-identical subdomains share one cache entry and one stacked
numeric group, and their Schur complements are mapped back to each
member's own multiplier order on the way out.  ``docs/batching.md``
documents the whole stack; ``docs/architecture.md`` places it in the
system.
"""

from repro.batch.cache import CacheStats, PatternCache, SymbolicArtifacts
from repro.batch.engine import (
    DEFAULT_UNION_FILL_CAP,
    EXECUTION_MODES,
    GROUPED_AUTO_MAX_SPARSE_ORDER,
    GROUPED_AUTO_THRESHOLD,
    UNION_FILL_BUCKETS,
    BatchAssembler,
    BatchItem,
    BatchResult,
    build_artifacts,
    build_union_artifacts,
    items_from_decomposition,
    symbolic_analysis_cost,
)
from repro.batch.fingerprint import (
    SIGNATURE_MODES,
    Fingerprint,
    factor_fingerprint,
    geometric_fingerprint,
    geometric_fingerprint_for,
    near_fingerprint,
    pattern_digest,
    rotation_fingerprint,
    subdomain_fingerprint,
    union_fingerprint,
)
from repro.batch.stats import BatchStats, SolveStats

__all__ = [
    "BatchAssembler",
    "BatchItem",
    "BatchResult",
    "BatchStats",
    "SolveStats",
    "EXECUTION_MODES",
    "GROUPED_AUTO_THRESHOLD",
    "GROUPED_AUTO_MAX_SPARSE_ORDER",
    "DEFAULT_UNION_FILL_CAP",
    "UNION_FILL_BUCKETS",
    "PatternCache",
    "CacheStats",
    "SymbolicArtifacts",
    "Fingerprint",
    "SIGNATURE_MODES",
    "pattern_digest",
    "subdomain_fingerprint",
    "factor_fingerprint",
    "geometric_fingerprint",
    "geometric_fingerprint_for",
    "near_fingerprint",
    "rotation_fingerprint",
    "union_fingerprint",
    "build_artifacts",
    "build_union_artifacts",
    "items_from_decomposition",
    "symbolic_analysis_cost",
]
