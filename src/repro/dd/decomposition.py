"""Top-level decomposition of a heat-transfer problem into FETI subdomains."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dd.cluster import Cluster, make_clusters
from repro.dd.interface import build_interface, check_gluing_consistency
from repro.dd.partition import partition_elements, subdomain_grid_for
from repro.dd.subdomain import Subdomain, build_subdomain
from repro.fem.heat_transfer import HeatProblem
from repro.util import require


@dataclass
class Decomposition:
    """A problem torn into subdomains with gluing constraints.

    The decomposed system is the block system (2) of the paper:
    block-diagonal ``K`` of the local ``K_i``, gluing ``B`` with
    ``n_multipliers`` rows, and constraint right-hand side ``c = 0``
    (continuity with homogeneous Dirichlet data).
    """

    problem: HeatProblem
    subdomains: list[Subdomain]
    n_multipliers: int
    clusters: list[Cluster]
    gluing: str
    #: Quality report of the graph partitioner (``None`` for box grids);
    #: see :class:`repro.part.partitioner.PartitionResult`.
    partition: object | None = None

    @property
    def n_subdomains(self) -> int:
        return len(self.subdomains)

    def gather_dual(self, local_contribs: list[np.ndarray]) -> np.ndarray:
        """Sum per-subdomain dual contributions into a global dual vector.

        Contributions may be vectors ``(m_i,)`` or multi-RHS panels
        ``(m_i, k)``; the gathered result matches their trailing shape.
        """
        trailing = ()
        for contrib in local_contribs:
            if contrib.ndim > 1:
                trailing = contrib.shape[1:]
                break
        out = np.zeros((self.n_multipliers, *trailing))
        for sub, contrib in zip(self.subdomains, local_contribs):
            out[sub.multiplier_ids] += contrib
        return out

    def scatter_dual(self, lam: np.ndarray) -> list[np.ndarray]:
        """Restrict a global dual vector to each subdomain's multipliers."""
        return [lam[sub.multiplier_ids] for sub in self.subdomains]

    def expand_solution(self, u_locals: list[np.ndarray]) -> np.ndarray:
        """Assemble a global nodal field from per-subdomain solutions.

        Shared nodes are averaged — after FETI convergence the copies agree
        up to solver tolerance, so averaging is a no-op within tolerance.
        """
        n = self.problem.n_dofs
        acc = np.zeros(n)
        cnt = np.zeros(n)
        for sub, u in zip(self.subdomains, u_locals):
            acc[sub.free_nodes] += u
            cnt[sub.free_nodes] += 1.0
        out = np.zeros(n)
        nz = cnt > 0
        out[nz] = acc[nz] / cnt[nz]
        return out

    def check_consistency(self) -> bool:
        """Validate the gluing against a continuous test field."""
        return check_gluing_consistency(self.subdomains, self.n_multipliers)


def decompose(
    problem: HeatProblem,
    grid: tuple[int, ...] | None = None,
    n_subdomains: int | None = None,
    n_clusters: int = 1,
    gluing: str = "redundant",
    partitioner: str = "boxes",
    seed: int = 0,
) -> Decomposition:
    """Tear *problem* into subdomains with Lagrange-multiplier gluing.

    Exactly one of *grid* / *n_subdomains* must be given.  With the default
    ``partitioner="boxes"`` elements are binned on a regular box grid —
    exact for structured box meshes; empty subdomains (possible when the
    grid is finer than the mesh) are dropped.  ``partitioner="rcb"`` /
    ``"spectral"`` instead run the METIS-like dual-graph partitioner of
    :mod:`repro.part.partitioner` (recursive coordinate or spectral
    bisection + boundary refinement) — the right choice for the
    unstructured meshes of :mod:`repro.part.meshes` and non-rectangular
    domains, where boxes would produce wildly unbalanced or disconnected
    subdomains.  A *grid* given with a graph partitioner only sets the part
    count (its product); the partition quality report lands in
    ``Decomposition.partition``.
    """
    require(
        (grid is None) != (n_subdomains is None),
        "specify exactly one of grid= or n_subdomains=",
    )
    mesh = problem.mesh
    partition_report = None
    if partitioner == "boxes":
        if grid is None:
            grid = subdomain_grid_for(n_subdomains, mesh.dim)
        element_owner = partition_elements(mesh, grid)
    else:
        from repro.part.partitioner import partition_mesh

        n_parts = int(np.prod(grid)) if n_subdomains is None else n_subdomains
        partition_report = partition_mesh(
            mesh, n_parts, method=partitioner, seed=seed
        )
        element_owner = partition_report.owner

    subdomains: list[Subdomain] = []
    for sub_id in range(int(element_owner.max()) + 1 if element_owner.size else 0):
        element_ids = np.flatnonzero(element_owner == sub_id)
        if element_ids.size == 0:
            continue
        subdomains.append(
            build_subdomain(
                mesh,
                index=len(subdomains),
                element_ids=element_ids,
                dirichlet_nodes=problem.dirichlet_nodes,
                conductivity=problem.conductivity,
            )
        )
    require(len(subdomains) >= 1, "decomposition produced no subdomains")

    n_multipliers = build_interface(subdomains, mesh.n_nodes, gluing=gluing)
    clusters = make_clusters(len(subdomains), min(n_clusters, len(subdomains)))
    return Decomposition(
        problem=problem,
        subdomains=subdomains,
        n_multipliers=n_multipliers,
        clusters=clusters,
        gluing=gluing,
        partition=partition_report,
    )


__all__ = ["Decomposition", "decompose"]
