"""Clusters of subdomains — the process/thread mapping of §2.2.

Each *cluster* is handled by one (simulated) process bound to one NUMA
domain and one GPU; subdomains within a cluster are processed by OpenMP
threads.  The paper uses "number of subdomains per cluster [as] an integer
multiple of the number of threads"; :func:`make_clusters` keeps clusters
balanced the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import require


@dataclass(frozen=True)
class Cluster:
    """A group of subdomains mapped to one process / GPU."""

    index: int
    subdomain_ids: np.ndarray

    @property
    def size(self) -> int:
        return self.subdomain_ids.size


def make_clusters(n_subdomains: int, n_clusters: int) -> list[Cluster]:
    """Split ``range(n_subdomains)`` into contiguous balanced clusters."""
    require(n_subdomains >= 1, "n_subdomains must be >= 1")
    require(1 <= n_clusters <= n_subdomains, "need 1 <= n_clusters <= n_subdomains")
    bounds = np.linspace(0, n_subdomains, n_clusters + 1).astype(np.intp)
    return [
        Cluster(index=i, subdomain_ids=np.arange(bounds[i], bounds[i + 1]))
        for i in range(n_clusters)
    ]


__all__ = ["Cluster", "make_clusters"]
