"""Lagrange-multiplier gluing across subdomain interfaces.

Every free mesh node shared by several subdomains generates equality
constraints forcing the duplicated DOFs to coincide.  Two standard gluing
strategies are provided:

* ``"redundant"`` (default, what TFETI implementations such as ESPRESO use)
  — one multiplier per *pair* of subdomains sharing the node;
* ``"chain"`` — multipliers only between consecutive subdomains (a minimal,
  non-redundant set).

The builder fills ``subdomain.bt`` (the ``B_i^T`` of the paper, §2.1) and
returns the total number of multipliers.  Signs follow the convention
``+1`` on the lower-indexed subdomain, ``-1`` on the higher one.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np
import scipy.sparse as sp

from repro.dd.subdomain import Subdomain
from repro.util import require

GLUING_METHODS = ("redundant", "chain")


def build_interface(
    subdomains: list[Subdomain],
    n_mesh_nodes: int,
    gluing: str = "redundant",
) -> int:
    """Create the gluing matrices ``B_i^T`` for all *subdomains* in place.

    Returns the total number of Lagrange multipliers (rows of the global
    ``B``).
    """
    require(gluing in GLUING_METHODS, f"unknown gluing method {gluing!r}")

    # node -> [(subdomain position in list, local dof)] over free DOFs.
    owners: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for pos, sub in enumerate(subdomains):
        for local, node in enumerate(sub.free_nodes):
            owners[int(node)].append((pos, local))

    # Per-subdomain COO triplets of B_i^T (row = local dof, col = local
    # multiplier index) plus the global multiplier id of each column.
    rows: list[list[int]] = [[] for _ in subdomains]
    cols: list[list[int]] = [[] for _ in subdomains]
    vals: list[list[float]] = [[] for _ in subdomains]
    mult_ids: list[list[int]] = [[] for _ in subdomains]
    next_multiplier = 0

    for node in sorted(owners):
        sharers = owners[node]
        if len(sharers) < 2:
            continue
        sharers = sorted(sharers)  # deterministic: by subdomain position
        if gluing == "chain":
            pairs = list(zip(sharers[:-1], sharers[1:]))
        else:
            pairs = [
                (sharers[a], sharers[b])
                for a in range(len(sharers))
                for b in range(a + 1, len(sharers))
            ]
        for (pos_a, loc_a), (pos_b, loc_b) in pairs:
            for pos, loc, val in ((pos_a, loc_a, 1.0), (pos_b, loc_b, -1.0)):
                rows[pos].append(loc)
                cols[pos].append(len(mult_ids[pos]))
                vals[pos].append(val)
                mult_ids[pos].append(next_multiplier)
            next_multiplier += 1

    for pos, sub in enumerate(subdomains):
        m_i = len(mult_ids[pos])
        sub.bt = sp.csc_matrix(
            (vals[pos], (rows[pos], cols[pos])), shape=(sub.n_dofs, m_i)
        )
        sub.multiplier_ids = np.asarray(mult_ids[pos], dtype=np.intp)
    return next_multiplier


def check_gluing_consistency(
    subdomains: list[Subdomain], n_multipliers: int, tol: float = 1e-12
) -> bool:
    """Verify that ``sum_i B_i u_i == 0`` for any *continuous* field.

    Uses the global node index itself as the test field — a field that is
    single-valued per mesh node must satisfy all gluing constraints.
    """
    total = np.zeros(n_multipliers)
    for sub in subdomains:
        if sub.bt is None:
            raise ValueError("interface not built yet")
        u = sub.free_nodes.astype(np.float64)
        total[sub.multiplier_ids] += sub.bt.T @ u
    return bool(np.abs(total).max() <= tol) if n_multipliers else True


__all__ = ["build_interface", "check_gluing_consistency", "GLUING_METHODS"]
