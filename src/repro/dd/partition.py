"""Structured partition of a mesh into box subdomains.

Elements are assigned to subdomains by centroid location on a regular
``px x py (x pz)`` grid of boxes — exact for the structured meshes of
:mod:`repro.fem.mesh` and deterministic for any mesh.
"""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh
from repro.util import require


def partition_elements(mesh: Mesh, grid: tuple[int, ...]) -> np.ndarray:
    """Assign every element to a subdomain on a regular box grid.

    Parameters
    ----------
    mesh:
        The mesh to partition.
    grid:
        Subdomain counts per axis, length equal to ``mesh.dim``.

    Returns
    -------
    numpy.ndarray
        ``(n_elements,)`` subdomain index per element, in row-major box
        order.
    """
    require(len(grid) == mesh.dim, f"grid must have {mesh.dim} entries")
    require(all(g >= 1 for g in grid), "all grid entries must be >= 1")
    centroids = mesh.coords[mesh.elements].mean(axis=1)
    lo = mesh.coords.min(axis=0)
    hi = mesh.coords.max(axis=0)
    for axis, g in enumerate(grid):
        # A degenerate axis cannot be split: the span fallback below would
        # silently collapse all g boxes onto box 0 and the caller would get
        # g-fold fewer subdomains than requested.
        require(
            g == 1 or hi[axis] > lo[axis],
            f"mesh is degenerate along axis {axis} (all coordinates equal); "
            f"cannot split it into {g} boxes — use 1 for that axis",
        )
    span = np.where(hi > lo, hi - lo, 1.0)
    rel = (centroids - lo) / span
    ids = np.zeros(mesh.n_elements, dtype=np.intp)
    for axis, g in enumerate(grid):
        box = np.clip((rel[:, axis] * g).astype(np.intp), 0, g - 1)
        ids = ids * g + box
    return ids


def subdomain_grid_for(n_subdomains: int, dim: int) -> tuple[int, ...]:
    """A near-cubic subdomain grid with at least *n_subdomains* boxes.

    Used when callers ask for "about N subdomains" without specifying the
    grid; returns the smallest ``g^dim`` grid with ``g^dim >= n``.
    """
    require(n_subdomains >= 1, "n_subdomains must be >= 1")
    g = int(np.ceil(n_subdomains ** (1.0 / dim)))
    return (g,) * dim


__all__ = ["partition_elements", "subdomain_grid_for"]
