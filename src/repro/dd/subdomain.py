"""Per-subdomain data: local stiffness, load, kernel, gluing.

A :class:`Subdomain` owns everything FETI needs locally: the SPSD matrix
``K_i`` restricted to its free DOFs, the local load, the kernel basis
``R_i`` (floating subdomains), the fixing-node regularization, and — filled
in by :mod:`repro.dd.interface` — the transposed gluing matrix ``B_i^T``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.fem.assembly import assemble_load, assemble_stiffness
from repro.fem.mesh import Mesh
from repro.sparse import choose_fixing_dofs, constant_nullspace, regularize


@dataclass
class Subdomain:
    """One FETI subdomain (free-DOF local numbering).

    Attributes
    ----------
    index:
        Subdomain id within the decomposition.
    element_ids:
        Mesh element indices owned by this subdomain.
    nodes:
        Global mesh nodes of the subdomain (sorted; includes Dirichlet).
    free_nodes:
        Global mesh nodes backing the local DOFs (Dirichlet removed).
    k:
        Local SPSD stiffness on free DOFs.
    f:
        Local load on free DOFs.
    coords:
        Coordinates of the free DOFs (for orderings / fixing nodes).
    floating:
        True when the subdomain has no Dirichlet DOF (singular ``k``).
    r:
        Kernel basis of ``k`` (``(n, kdim)``; empty for non-floating).
    bt:
        ``(n, m_i)`` transposed local gluing matrix (set by the interface
        builder).
    multiplier_ids:
        Global Lagrange-multiplier ids of the columns of *bt*.
    """

    index: int
    element_ids: np.ndarray
    nodes: np.ndarray
    free_nodes: np.ndarray
    k: sp.csr_matrix
    f: np.ndarray
    coords: np.ndarray
    floating: bool
    r: np.ndarray
    bt: sp.csc_matrix | None = None
    multiplier_ids: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))

    @property
    def n_dofs(self) -> int:
        return self.k.shape[0]

    @property
    def n_multipliers(self) -> int:
        return 0 if self.bt is None else self.bt.shape[1]

    @property
    def kernel_dim(self) -> int:
        return self.r.shape[1]

    def regularized(self, rho: float | None = None) -> sp.csr_matrix:
        """Fixing-node regularization ``K_reg`` (identity op when SPD)."""
        if not self.floating:
            return self.k
        fixing = choose_fixing_dofs(self.k, self.kernel_dim, coords=self.coords)
        return regularize(self.k, fixing, rho=rho)


def build_subdomain(
    mesh: Mesh,
    index: int,
    element_ids: np.ndarray,
    dirichlet_nodes: np.ndarray,
    conductivity: float | np.ndarray = 1.0,
    source: float | np.ndarray = 1.0,
) -> Subdomain:
    """Assemble one subdomain from its element set."""
    element_ids = np.asarray(element_ids, dtype=np.intp)
    nodes = np.unique(mesh.elements[element_ids])
    k_all = assemble_stiffness(mesh, conductivity, nodes=nodes, elements=element_ids)
    f_all = assemble_load(mesh, source, nodes=nodes, elements=element_ids)

    dirichlet_set = np.zeros(mesh.n_nodes, dtype=bool)
    dirichlet_set[dirichlet_nodes] = True
    local_free_mask = ~dirichlet_set[nodes]
    free_nodes = nodes[local_free_mask]
    free_local = np.flatnonzero(local_free_mask)

    k = sp.csr_matrix(k_all[free_local][:, free_local])
    f = f_all[free_local]
    coords = mesh.coords[free_nodes]
    floating = bool(local_free_mask.all())
    r = constant_nullspace(free_nodes.size) if floating else np.empty((free_nodes.size, 0))
    return Subdomain(
        index=index,
        element_ids=element_ids,
        nodes=nodes,
        free_nodes=free_nodes,
        k=k,
        f=f,
        coords=coords,
        floating=floating,
        r=r,
    )


__all__ = ["Subdomain", "build_subdomain"]
