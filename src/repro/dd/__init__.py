"""Domain decomposition substrate: partitioning, subdomains, gluing, clusters."""

from repro.dd.cluster import Cluster, make_clusters
from repro.dd.decomposition import Decomposition, decompose
from repro.dd.interface import GLUING_METHODS, build_interface, check_gluing_consistency
from repro.dd.partition import partition_elements, subdomain_grid_for
from repro.dd.subdomain import Subdomain, build_subdomain

__all__ = [
    "decompose",
    "Decomposition",
    "Subdomain",
    "build_subdomain",
    "build_interface",
    "check_gluing_consistency",
    "GLUING_METHODS",
    "partition_elements",
    "subdomain_grid_for",
    "Cluster",
    "make_clusters",
]
