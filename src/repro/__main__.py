"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiment drivers.
``run <experiment> [--paper-scale] [--out DIR]``
    Run one table/figure reproduction and print (and save) its tables.
``solve [--dim {2,3}] [--cells N] [--grid PxP..] [--approach NAME]``
    Solve a heat-transfer problem with FETI and report iterations/timings.
    ``--rhs K`` solves a panel of K load cases; ``--block`` runs them
    through one block PCPG with the grouped (one-launch-per-pattern-class)
    dual operator and stacked preconditioner, ``--sequential`` solves the
    columns one by one with scalar PCPG (the comparator), and
    ``--lowrank-rank R`` adds a rank-R Li–Xi–Saad low-rank correction to
    the preconditioner (``docs/solving.md``).
``batch [--dim {2,3}] [--cells N] [--grid PxP..] [--device {gpu,cpu}]``
    Batch-assemble all subdomains of a decomposition through the symbolic
    pattern cache (``repro.batch``) and report cache/throughput statistics
    plus the multi-stream pipeline makespan.  ``--execution`` selects the
    numeric path (per-member kernels, batched whole-group kernels, or
    ``union`` — near-signature classes padded into one shared pattern and
    batched exactly, guarded by ``--union-fill-cap``);
    ``--workers`` fans independent groups across host threads;
    ``--no-canonicalize`` turns off orientation-canonical artifact sharing
    (mirror classes then execute as separate groups).  ``--mesh`` picks an
    unstructured mesh-zoo workload, ``--partitioner`` swaps the box grid
    for the METIS-like dual-graph partitioner (``--parts``/``--seed``
    parameterize it) and ``--signature near`` prices approximately-
    congruent subdomains together.  ``--trace FILE`` records the run
    through :mod:`repro.obs` and writes Chrome trace-event JSON (open in
    Perfetto); ``--metrics-out FILE`` dumps the metrics registry (JSON, or
    CSV by extension).  The knobs are documented in ``docs/batching.md``,
    ``docs/unstructured.md`` and ``docs/observability.md``.
``trace <file.json> [--top N] [--depth D]``
    Render the phase breakdown of a saved trace: an inclusive-time tree,
    the top-N phases and histogram percentiles — the terminal view of
    ``batch --trace`` output.  Reads leniently: metrics-only dumps and
    partial traces from crashed workers render with warnings.
``trace merge <w1.json> <w2.json> ... [--out FILE]``
    Stitch per-worker trace snapshots into one multi-track fleet timeline
    (one Perfetto process per worker, wall-clock aligned, cross-process
    submit→job links as flow arrows); see ``docs/observability.md``.
``obs report <w1.json> ... [--json]``
    Aggregate per-worker metrics snapshots fleet-wide: per-worker job
    throughput, summed store/queue/gpu/solver counters, merged histograms
    with p50/p90/p99.
``work {submit,run,status} [--root DIR]``
    Assembly-as-a-service (``repro.store``; see ``docs/service.md``):
    ``submit`` enqueues assemble jobs into the service root's SQLite work
    queue, ``run`` starts a stateless worker draining it against the
    shared persistent artifact store (crash-safe: a killed worker loses
    at most its current attempt), ``status`` reports the job table.
    ``--faults`` injects deterministic failures for drills.
``store {stats,ls,verify} [--root DIR]``
    Inspect the persistent artifact store: entry counts and bytes by
    kind, the full entry listing, or a full-content integrity check that
    quarantines corrupted entries and sweeps stale tmp files.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from repro.bench import EXPERIMENTS

    print("available experiments:")
    for name, fn in EXPERIMENTS.items():
        lines = (fn.__doc__ or "").strip().splitlines()
        print(f"  {name:20s} {lines[0] if lines else ''}")
    return 0


def _cmd_run(args) -> int:
    from repro.bench import results_dir, run_experiment

    result = run_experiment(args.experiment, quick=not args.paper_scale)
    print(result.render())
    path = result.save(args.out or results_dir())
    print(f"\n[saved to {path}]")
    return 0


def _cmd_solve(args) -> int:
    import numpy as np

    from repro.dd import decompose
    from repro.fem import heat_transfer_2d, heat_transfer_3d
    from repro.feti import FetiSolver

    if args.dim == 2:
        problem = heat_transfer_2d(args.cells, dirichlet=("left",))
    else:
        problem = heat_transfer_3d(args.cells, dirichlet=("left",))
    grid = tuple(int(g) for g in args.grid.split("x"))
    decomposition = decompose(problem, grid=grid)
    solver = FetiSolver(
        decomposition,
        approach=args.approach,
        expected_iterations=args.expected_iterations,
    )
    solver.preprocess()
    if args.rhs > 1 or args.block:
        sol = solver.solve_block(
            n_rhs=args.rhs,
            block=not args.sequential,
            lowrank_rank=args.lowrank_rank,
        )
        # column 0 of the panel is the problem's own load, so it must
        # reproduce the single-RHS answer
        err = float(np.abs(sol.u[:, 0] - problem.solve_direct()).max())
        print(sol.stats.summary())
        print(f"approach:        {solver.approach.name}")
        print(f"max error (col 0): {err:.3e}")
        return 0 if sol.converged else 1
    sol = solver.solve()
    err = float(np.abs(sol.u - problem.solve_direct()).max())
    t = sol.timings
    print(f"approach:        {solver.approach.name}")
    print(f"subdomains:      {decomposition.n_subdomains}")
    print(f"multipliers:     {decomposition.n_multipliers}")
    print(f"iterations:      {sol.iterations} (converged={sol.info.converged})")
    print(f"max error:       {err:.3e}")
    print(f"prep/subdomain:  {t.preprocessing_per_subdomain * 1e3:.3f} ms (simulated)")
    print(f"apply/subdomain: {t.apply_mean_per_subdomain * 1e3:.4f} ms (simulated)")
    return 0 if sol.info.converged else 1


def _cmd_batch(args) -> int:
    import numpy as np

    from repro.batch import BatchAssembler, PatternCache, items_from_decomposition
    from repro.core import default_config
    from repro.dd import decompose
    from repro.fem import heat_problem, heat_transfer_2d, heat_transfer_3d
    from repro.part import MESH_ZOO, make_mesh

    dirichlet = () if args.floating else ("left",)
    mesh_name = args.mesh or ("square" if (args.dim or 2) == 2 else "cube")
    mesh_dim, _ = MESH_ZOO[mesh_name]
    if args.dim is not None and args.dim != mesh_dim:
        raise ValueError(
            f"--dim {args.dim} contradicts --mesh {mesh_name} "
            f"(a {mesh_dim}-D mesh); drop --dim or pick a matching mesh"
        )
    if args.parts and args.partitioner == "boxes":
        raise ValueError(
            "--parts only applies to graph partitioners; use --grid for "
            "--partitioner boxes, or pick --partitioner rcb/spectral"
        )
    if mesh_name == "square":
        problem = heat_transfer_2d(args.cells, dirichlet=dirichlet)
    elif mesh_name == "cube":
        problem = heat_transfer_3d(args.cells, dirichlet=dirichlet)
    else:
        problem = heat_problem(
            make_mesh(mesh_name, args.cells, seed=args.seed), dirichlet=dirichlet
        )
    grid = tuple(int(g) for g in args.grid.split("x"))
    if args.partitioner == "boxes":
        decomposition = decompose(problem, grid=grid)
    else:
        n_parts = args.parts if args.parts else int(np.prod(grid))
        decomposition = decompose(
            problem,
            n_subdomains=n_parts,
            partitioner=args.partitioner,
            seed=args.seed,
        )
        print(f"partition:         {decomposition.partition.summary()}")
    items = items_from_decomposition(decomposition, canonicalize=not args.no_canonicalize)
    cache = PatternCache(max_entries=0) if args.no_cache else PatternCache()
    config = default_config(args.device, mesh_dim)
    if args.device == "gpu":
        engine = BatchAssembler(
            config=config,
            cache=cache,
            signature_mode=args.signature,
            union_fill_cap=args.union_fill_cap,
        )
    else:
        engine = BatchAssembler.for_cpu(
            config=config,
            cache=cache,
            signature_mode=args.signature,
            union_fill_cap=args.union_fill_cap,
        )
    if args.trace or args.metrics_out:
        from repro.obs import tracing, write_metrics

        with tracing() as tracer:
            batch = engine.assemble_batch(
                items,
                execute=not args.estimate_only,
                execution=args.execution,
                n_workers=None if args.workers == 0 else args.workers,
            )
        if args.trace:
            path = batch.trace.save(args.trace)
            print(f"[trace written to {path}]")
        if args.metrics_out:
            path = write_metrics(args.metrics_out, tracer.metrics)
            print(f"[metrics written to {path}]")
        print(batch.trace.render(max_depth=3))
    else:
        batch = engine.assemble_batch(
            items,
            execute=not args.estimate_only,
            execution=args.execution,
            n_workers=None if args.workers == 0 else args.workers,
        )
    print(batch.stats.summary())
    pipe = engine.schedule(
        batch.work, mode=args.mode, n_threads=args.threads, n_streams=args.streams
    )
    print(f"pipeline makespan: {pipe.makespan * 1e3:.3f} ms "
          f"({args.mode}, {args.threads} threads, {args.streams} streams)")
    print(f"pipeline rate:     {batch.stats.throughput(pipe.makespan):.1f} subdomains/s")
    return 0


def _cmd_trace_merge(args) -> int:
    from repro.obs import load_worker_traces, merge_traces

    files = load_worker_traces(args.files[1:])
    merged = merge_traces(files)
    for warning in merged.warnings:
        print(f"[warn] {warning}", file=sys.stderr)
    path = merged.save(args.out)
    links = len([link for link in merged.links if link.parent_span_id])
    print(f"merged {len(merged.workers)} worker trace(s) into {path}")
    print(f"  workers: {', '.join(merged.workers)}")
    print(f"  {len(merged.spans)} span(s), {links} cross-process link(s) "
          f"resolved of {len(merged.links)} remote-parent reference(s)")
    for worker, offset in sorted(merged.clock_offsets.items()):
        print(f"  clock offset {worker}: {offset * 1e3:+.3f} ms")
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import phase_tree, read_trace, render_phase_tree, top_phases
    from repro.obs.metrics import SUMMARY_PERCENTILES, Histogram
    from repro.util import format_si

    if args.files[0] == "merge":
        if len(args.files) < 2:
            print("trace merge: no input trace files given", file=sys.stderr)
            return 2
        return _cmd_trace_merge(args)
    if len(args.files) > 1:
        print("trace: one FILE to render, or 'merge FILE...' to merge",
              file=sys.stderr)
        return 2
    loaded = read_trace(args.files[0])
    for warning in loaded.warnings:
        print(f"[warn] {warning}", file=sys.stderr)
    if loaded.spans:
        print(render_phase_tree(phase_tree(loaded.spans), max_depth=args.depth))
        print()
        print(f"top {args.top} phases by inclusive time:")
        for name, seconds, count in top_phases(loaded.spans, n=args.top):
            print(f"  {name:32s} {format_si(seconds, 's'):>10s}  (x{count})")
    else:
        print("no spans recorded in this file")
    metrics = loaded.metrics
    counters = metrics.get("counters", {}) if metrics else {}
    if counters:
        print()
        print(f"metrics: {len(counters)} counter(s) recorded "
              "(see otherData.metrics in the file)")
    hists = metrics.get("histograms", {}) if metrics else {}
    if hists:
        print()
        header = f"{'histogram':34s} {'n':>6s}"
        header += "".join(f" {'p%g' % q:>10s}" for q in SUMMARY_PERCENTILES)
        print(header)
        for name, snap in sorted(hists.items()):
            h = Histogram.from_dict(snap)
            line = f"{name[:34]:34s} {h.n:6d}"
            line += "".join(
                f" {h.percentile(q):10.4g}" for q in SUMMARY_PERCENTILES
            )
            print(line)
    return 0


def _cmd_obs(args) -> int:
    import json

    from repro.obs import fleet_report, fleet_report_json, load_worker_traces

    files = load_worker_traces(args.files)
    for f in files:
        for warning in f.warnings:
            print(f"[warn] {f.path}: {warning}", file=sys.stderr)
    if args.json:
        print(json.dumps(fleet_report_json(files), indent=2, sort_keys=True))
    else:
        print(fleet_report(files))
    return 0


def _service_parts(root: str):
    """Open the service root's store and queue (``<root>/store/`` +
    ``<root>/queue.db``), creating them on first use."""
    from pathlib import Path

    from repro.store import ArtifactStore, JobQueue

    base = Path(root)
    return ArtifactStore(base / "store"), base / "queue.db", JobQueue


def _cmd_work(args) -> int:
    import json
    from contextlib import ExitStack

    from repro.store import (
        DEFAULT_ASSEMBLE_PAYLOAD,
        FaultInjector,
        InjectedCrash,
        run_worker,
        snapshot_worker_trace,
    )

    store, queue_path, JobQueue = _service_parts(args.root)

    if args.work_command == "submit":
        from repro.obs import tracing

        payload = dict(DEFAULT_ASSEMBLE_PAYLOAD)
        for key in ("cells", "grid", "mesh", "partitioner", "parts", "seed",
                    "device", "execution", "signature"):
            value = getattr(args, key)
            if value is not None:
                payload[key] = value
        if args.payload:
            payload.update(json.loads(args.payload))
        queue = JobQueue(queue_path)
        with ExitStack() as stack:
            tracer = stack.enter_context(tracing()) if args.trace_dir else None
            ids = [
                queue.submit("assemble", payload, max_attempts=args.max_attempts)
                for _ in range(args.count)
            ]
            if tracer is not None:
                path = snapshot_worker_trace(tracer, args.trace_dir, "submit")
                print(f"[submit trace written to {path}]")
        print(f"submitted {len(ids)} assemble job(s): "
              f"{ids[0]}..{ids[-1]}" if len(ids) > 1 else f"submitted job {ids[0]}")
        print(queue.summary())
        return 0

    if args.work_command == "run":
        from repro.obs import tracing

        # One injector shared by all three layers, so a --faults plan can
        # name any FAULT_POINT (store.*, queue.*, worker.*).
        faults = FaultInjector(args.faults, seed=args.fault_seed)
        store.faults = faults
        queue = JobQueue(
            queue_path,
            backoff_base=args.backoff,
            backoff_cap=args.backoff_cap,
            faults=faults,
        )
        with ExitStack() as stack:
            tracer = stack.enter_context(tracing()) if args.trace_dir else None
            try:
                stats = run_worker(
                    queue,
                    store,
                    owner=args.worker_id,
                    lease_seconds=args.lease,
                    poll_seconds=args.poll,
                    max_jobs=args.max_jobs,
                    timeout=args.timeout,
                    faults=faults,
                    trace_dir=args.trace_dir,
                )
            except InjectedCrash as crash:
                # Simulated process death: report like a kill -9 would
                # (nothing cleaned up, distinctive exit status for the drill
                # harness) — except the trace snapshot, which stands in for
                # the per-job checkpoint a real crash would leave behind.
                if tracer is not None:
                    path = snapshot_worker_trace(
                        tracer, args.trace_dir, args.worker_id
                    )
                    if path:
                        print(f"[crash trace written to {path}]", file=sys.stderr)
                print(f"worker {args.worker_id} crashed: {crash}", file=sys.stderr)
                return 42
        print(stats.summary())
        if stats.trace_path:
            print(f"[worker trace written to {stats.trace_path}]")
        print(store.stats.summary())
        print(queue.summary())
        return 0

    # status
    queue = JobQueue(queue_path)
    print(queue.summary())
    if args.jobs:
        for job in queue.jobs():
            line = (f"  #{job.id} {job.kind:10s} {job.status:7s} "
                    f"attempts={job.attempts}/{job.max_attempts}")
            if job.owner:
                line += f" owner={job.owner}"
            if job.error:
                line += f" error={job.error!r}"
            print(line)
    if args.strict:
        counts = queue.counts()
        bad = counts["failed"] + counts["dead"] + counts["open"] + counts["leased"]
        return 1 if bad else 0
    return 0


def _cmd_store(args) -> int:
    store, _, _ = _service_parts(args.root)

    if args.store_command == "ls":
        n = 0
        for entry in store.entries():
            print(f"  {entry.kind:12s} {entry.payload_bytes:10d} B  {entry.key}")
            n += 1
        print(f"{n} committed artifact(s) under {store.root}")
        return 0

    if args.store_command == "verify":
        n_ok, n_bad = store.verify()
        n_tmp = store.gc()
        print(f"verified {n_ok + n_bad} artifact(s): {n_ok} ok, "
              f"{n_bad} quarantined, {n_tmp} stale tmp file(s) swept")
        return 1 if n_bad else 0

    # stats
    by_kind: dict[str, list[int]] = {}
    for entry in store.entries():
        by_kind.setdefault(entry.kind, []).append(entry.payload_bytes)
    total = sum(len(v) for v in by_kind.values())
    total_bytes = sum(sum(v) for v in by_kind.values())
    print(f"store root: {store.root}")
    print(f"{total} committed artifact(s), {total_bytes} payload byte(s)")
    for kind in sorted(by_kind):
        sizes = by_kind[kind]
        print(f"  {kind:12s} {len(sizes):6d} entr(ies)  {sum(sizes):10d} B")
    quarantined = sorted(store.quarantine_dir.glob("*")) if store.quarantine_dir.is_dir() else []
    print(f"{len(quarantined)} quarantined file(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Schur-complement sparsity reproduction (SC 2025)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment drivers")

    p_run = sub.add_parser("run", help="run one table/figure reproduction")
    p_run.add_argument("experiment", help="table1, fig05..fig10, ablation_*, elasticity")
    p_run.add_argument("--paper-scale", action="store_true", help="full size ladders")
    p_run.add_argument("--out", default=None, help="results directory")

    p_solve = sub.add_parser("solve", help="FETI-solve a heat-transfer problem")
    p_solve.add_argument("--dim", type=int, default=2, choices=(2, 3))
    p_solve.add_argument("--cells", type=int, default=24, help="mesh cells per axis")
    p_solve.add_argument("--grid", default="3x3", help="subdomain grid, e.g. 4x4 or 2x2x2")
    p_solve.add_argument(
        "--approach", default="auto", help="Table-2 approach name or 'auto'"
    )
    p_solve.add_argument("--expected-iterations", type=int, default=100)
    p_solve.add_argument(
        "--rhs",
        type=int,
        default=1,
        help="number of load cases to solve as one panel (default 1)",
    )
    mode = p_solve.add_mutually_exclusive_group()
    mode.add_argument(
        "--block",
        action="store_true",
        help="solve the panel with one block PCPG (default when --rhs > 1)",
    )
    mode.add_argument(
        "--sequential",
        action="store_true",
        help="solve the panel column by column with scalar PCPG (comparator)",
    )
    p_solve.add_argument(
        "--lowrank-rank",
        type=int,
        default=0,
        metavar="R",
        help="rank of the Li-Xi-Saad low-rank preconditioner correction "
        "(0 = off, the default)",
    )

    p_batch = sub.add_parser(
        "batch", help="batch-assemble a decomposition through the pattern cache"
    )
    p_batch.add_argument(
        "--dim",
        type=int,
        default=None,
        choices=(2, 3),
        help="space dimension (default 2; must match --mesh when both given)",
    )
    p_batch.add_argument("--cells", type=int, default=24, help="mesh cells per axis")
    p_batch.add_argument("--grid", default="3x3", help="subdomain grid, e.g. 4x4 or 2x2x2")
    p_batch.add_argument("--device", default="gpu", choices=("gpu", "cpu"))
    p_batch.add_argument("--mode", default="mix", choices=("mix", "sep"))
    p_batch.add_argument("--threads", type=int, default=16)
    p_batch.add_argument("--streams", type=int, default=16)
    p_batch.add_argument(
        "--no-cache", action="store_true", help="disable pattern reuse (baseline)"
    )
    p_batch.add_argument(
        "--estimate-only", action="store_true", help="price the batch without numerics"
    )
    p_batch.add_argument(
        "--execution",
        default="auto",
        choices=("per-member", "grouped", "auto", "union"),
        help="numeric execution: per-item kernels, batched whole-group "
        "kernels, grouped-from-a-size-threshold (default: auto), or "
        "union — pad near-signature classes into one shared pattern and "
        "batch them exactly (pair with --signature near)",
    )
    p_batch.add_argument(
        "--union-fill-cap",
        type=float,
        default=None,
        metavar="RATIO",
        help="fill-ratio cost guard for --execution union: skip padding a "
        "near class when padded/exact stored entries exceed RATIO "
        "(default: engine default, 8.0); skipped classes fall back to "
        "the grouped path",
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="host threads for parallel grouped execution (0 = all cores)",
    )
    p_batch.add_argument(
        "--floating",
        action="store_true",
        help="no Dirichlet boundary: every subdomain floats (maximal grouping)",
    )
    p_batch.add_argument(
        "--no-canonicalize",
        action="store_true",
        help="disable orientation-canonical artifact sharing (mirror classes "
        "then execute as separate groups)",
    )
    p_batch.add_argument(
        "--mesh",
        default=None,
        choices=("square", "cube", "jittered", "lshape", "strip"),
        help="mesh-zoo workload (default: square/cube per --dim); jittered/"
        "lshape/strip are the 2-D unstructured meshes of repro.part.meshes",
    )
    p_batch.add_argument(
        "--partitioner",
        default="boxes",
        choices=("boxes", "rcb", "spectral"),
        help="element partitioner: structured box grid (default) or the "
        "METIS-like dual-graph partitioner (coordinate/spectral bisection "
        "+ boundary refinement)",
    )
    p_batch.add_argument(
        "--parts",
        type=int,
        default=0,
        help="subdomain count for graph partitioners (0 = product of --grid)",
    )
    p_batch.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed of the jittered mesh generator (lshape/strip are "
        "deterministic; the partitioner records it for provenance)",
    )
    p_batch.add_argument(
        "--signature",
        default="frame",
        choices=("frame", "rotation", "near"),
        help="geometric pricing-signature mode: canonical frame (structured "
        "grids), rotation-invariant, or near-match (unstructured "
        "decompositions; groups approximately-congruent subdomains)",
    )
    p_batch.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record the run with repro.obs and write Chrome trace-event "
        "JSON to FILE (open in Perfetto / chrome://tracing)",
    )
    p_batch.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the collected metrics registry to FILE "
        "(JSON, or flat CSV with a .csv extension)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="render a saved trace file, or merge per-worker traces "
        "('trace merge FILE... --out MERGED.json')",
    )
    p_trace.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="one trace file to render, or 'merge' followed by the "
        "per-worker trace files to stitch into one fleet timeline",
    )
    p_trace.add_argument(
        "--top", type=int, default=3, help="how many top phases to list (default 3)"
    )
    p_trace.add_argument(
        "--depth", type=int, default=None, help="maximum phase-tree depth to print"
    )
    p_trace.add_argument(
        "--out",
        default="FLEET_TRACE.json",
        metavar="FILE",
        help="output path of 'trace merge' (default FLEET_TRACE.json)",
    )

    p_obs = sub.add_parser(
        "obs", help="fleet-wide observability reports over worker snapshots"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    o_report = obs_sub.add_parser(
        "report",
        help="aggregate per-worker metrics snapshots into one fleet report",
    )
    o_report.add_argument(
        "files",
        nargs="+",
        metavar="FILE",
        help="per-worker trace or metrics JSON files (WORKER_*.json)",
    )
    o_report.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable aggregation instead of the table",
    )

    p_work = sub.add_parser(
        "work", help="assembly-as-a-service work queue (submit/run/status)"
    )
    work_sub = p_work.add_subparsers(dest="work_command", required=True)

    w_submit = work_sub.add_parser("submit", help="enqueue assemble jobs")
    w_submit.add_argument(
        "--root", default="service", help="service root directory (default: service/)"
    )
    w_submit.add_argument(
        "--count", type=int, default=1, help="how many copies of the job to enqueue"
    )
    w_submit.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="attempts before the job is dead-lettered (default 5)",
    )
    w_submit.add_argument("--cells", type=int, default=None, help="mesh cells per axis")
    w_submit.add_argument("--grid", default=None, help="subdomain grid, e.g. 4x4")
    w_submit.add_argument(
        "--mesh", default=None, choices=("square", "cube", "jittered", "lshape", "strip")
    )
    w_submit.add_argument(
        "--partitioner", default=None, choices=("boxes", "rcb", "spectral")
    )
    w_submit.add_argument("--parts", type=int, default=None)
    w_submit.add_argument("--seed", type=int, default=None)
    w_submit.add_argument("--device", default=None, choices=("gpu", "cpu"))
    w_submit.add_argument(
        "--execution",
        default=None,
        choices=("per-member", "grouped", "auto", "union"),
    )
    w_submit.add_argument(
        "--signature", default=None, choices=("frame", "rotation", "near")
    )
    w_submit.add_argument(
        "--payload",
        default=None,
        metavar="JSON",
        help="raw payload overrides merged over the flags (JSON object)",
    )
    w_submit.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="record the submission (trace-context minting) and write a "
        "SUBMIT trace snapshot under DIR for the fleet merge",
    )

    w_run = work_sub.add_parser("run", help="run a worker until the queue drains")
    w_run.add_argument("--root", default="service", help="service root directory")
    w_run.add_argument(
        "--worker-id", default="worker", help="lease owner name (unique per worker)"
    )
    w_run.add_argument(
        "--lease", type=float, default=30.0, help="lease seconds per claim (default 30)"
    )
    w_run.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="seconds between claim attempts while others hold leases",
    )
    w_run.add_argument(
        "--max-jobs", type=int, default=None, help="stop after N jobs (default: drain)"
    )
    w_run.add_argument(
        "--timeout", type=float, default=None, help="stop after S wall seconds"
    )
    w_run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault plan, e.g. 'worker.job.crash:2' "
        "(see repro.store.faults; crashes exit with status 42)",
    )
    w_run.add_argument(
        "--fault-seed", type=int, default=0, help="seed for probabilistic fault triggers"
    )
    w_run.add_argument(
        "--backoff",
        type=float,
        default=1.0,
        help="base seconds of the failed-job exponential backoff",
    )
    w_run.add_argument(
        "--backoff-cap", type=float, default=60.0, help="backoff ceiling in seconds"
    )
    w_run.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="enable tracing and checkpoint this worker's trace + metrics "
        "snapshot (WORKER_<id>.json) under DIR after every job; merge the "
        "fleet's snapshots with 'repro trace merge'",
    )

    w_status = work_sub.add_parser("status", help="report the job table")
    w_status.add_argument("--root", default="service", help="service root directory")
    w_status.add_argument(
        "--jobs", action="store_true", help="list every job row, not just the counts"
    )
    w_status.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 unless every job is done (CI gate after a drain)",
    )

    p_store = sub.add_parser(
        "store", help="inspect the persistent artifact store (stats/ls/verify)"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    s_stats = store_sub.add_parser("stats", help="entry counts and bytes by kind")
    s_ls = store_sub.add_parser("ls", help="list committed artifacts")
    s_verify = store_sub.add_parser(
        "verify", help="full-content check; quarantines corrupt entries, sweeps tmp"
    )
    for p in (s_stats, s_ls, s_verify):
        p.add_argument("--root", default="service", help="service root directory")

    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "solve": _cmd_solve,
        "batch": _cmd_batch,
        "trace": _cmd_trace,
        "obs": _cmd_obs,
        "work": _cmd_work,
        "store": _cmd_store,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
