"""Tests for meshes, P1 elements and assembly."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import (
    assemble_load,
    assemble_stiffness,
    eliminate_dirichlet,
    heat_transfer_2d,
    heat_transfer_3d,
    p1_gradients,
    p1_load,
    p1_stiffness,
    unit_cube_mesh,
    unit_square_mesh,
)


def test_square_mesh_counts():
    m = unit_square_mesh(5, 3)
    assert m.n_nodes == 6 * 4
    assert m.n_elements == 2 * 5 * 3
    assert m.dim == 2


def test_cube_mesh_counts():
    m = unit_cube_mesh(3, 2, 4)
    assert m.n_nodes == 4 * 3 * 5
    assert m.n_elements == 6 * 3 * 2 * 4
    assert m.dim == 3


def test_mesh_rejects_bad_sizes():
    with pytest.raises(ValueError):
        unit_square_mesh(0)
    with pytest.raises(ValueError):
        unit_cube_mesh(2, 0, 1)


def test_square_boundary_groups():
    m = unit_square_mesh(4)
    assert m.boundary_groups["left"].size == 5
    assert m.boundary_groups["right"].size == 5
    # Left boundary nodes have x == 0.
    assert np.all(m.coords[m.boundary_groups["left"], 0] == 0.0)
    assert np.all(m.coords[m.boundary_groups["right"], 0] == 1.0)
    corners = set(m.boundary_groups["left"]) & set(m.boundary_groups["bottom"])
    assert len(corners) == 1


def test_cube_boundary_groups_cover_surface():
    m = unit_cube_mesh(3)
    surface = m.boundary_nodes()
    interior = (3 + 1 - 2) ** 3
    assert surface.size == m.n_nodes - interior


def test_triangle_areas_sum_to_one():
    m = unit_square_mesh(6, 4)
    _, areas = p1_gradients(m.coords, m.elements)
    assert np.isclose(areas.sum(), 1.0)


def test_tet_volumes_sum_to_one():
    m = unit_cube_mesh(3, 2, 2)
    _, vols = p1_gradients(m.coords, m.elements)
    assert np.isclose(vols.sum(), 1.0)


def test_gradients_partition_of_unity():
    """Basis-function gradients sum to zero within each element."""
    m = unit_cube_mesh(2)
    grads, _ = p1_gradients(m.coords, m.elements)
    assert np.allclose(grads.sum(axis=1), 0.0, atol=1e-13)


def test_degenerate_element_rejected():
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])  # collinear
    with pytest.raises(ValueError, match="degenerate"):
        p1_gradients(coords, np.array([[0, 1, 2]]))


def test_local_stiffness_rows_sum_to_zero():
    """Constants are in the kernel of every element stiffness."""
    m = unit_square_mesh(3)
    ke = p1_stiffness(m.coords, m.elements)
    assert np.allclose(ke.sum(axis=2), 0.0, atol=1e-13)


def test_local_stiffness_spsd():
    m = unit_cube_mesh(2)
    ke = p1_stiffness(m.coords, m.elements)
    for e in range(0, m.n_elements, 7):
        w = np.linalg.eigvalsh(ke[e])
        assert w.min() > -1e-12


def test_stiffness_scaling_with_conductivity():
    m = unit_square_mesh(4)
    k1 = assemble_stiffness(m, 1.0)
    k2 = assemble_stiffness(m, 2.5)
    assert np.allclose((k2 - 2.5 * k1).data if (k2 - 2.5 * k1).nnz else [0], 0)


def test_global_stiffness_symmetric_and_kernel():
    m = unit_square_mesh(5)
    k = assemble_stiffness(m)
    assert (abs(k - k.T)).max() < 1e-13
    ones = np.ones(m.n_nodes)
    assert np.abs(k @ ones).max() < 1e-12  # pure Neumann kernel


def test_load_total_mass():
    m = unit_square_mesh(5)
    f = assemble_load(m, source=3.0)
    assert np.isclose(f.sum(), 3.0)  # integral of constant source over domain


def test_per_element_source_array():
    m = unit_square_mesh(3)
    src = np.zeros(m.n_elements)
    src[0] = 1.0
    f = assemble_load(m, source=src)
    _, areas = p1_gradients(m.coords, m.elements)
    assert np.isclose(f.sum(), areas[0])


def test_subdomain_local_assembly_matches_restriction():
    m = unit_square_mesh(4)
    elements = np.arange(6)
    nodes = np.unique(m.elements[elements])
    k_local = assemble_stiffness(m, nodes=nodes, elements=elements)
    # Assemble globally with only those elements, restrict.
    mask_mesh = unit_square_mesh(4)
    ke = p1_stiffness(m.coords, m.elements[elements])
    d1 = 3
    conn = m.elements[elements]
    rows = np.repeat(conn, d1, axis=1).ravel()
    cols = np.tile(conn, (1, d1)).ravel()
    k_glob = sp.coo_matrix(
        (ke.ravel(), (rows, cols)), shape=(m.n_nodes, m.n_nodes)
    ).tocsr()
    assert np.allclose(
        k_local.toarray(), k_glob[nodes][:, nodes].toarray(), atol=1e-14
    )


def test_assembly_rejects_foreign_nodes():
    m = unit_square_mesh(4)
    with pytest.raises(ValueError, match="outside"):
        assemble_stiffness(m, nodes=np.array([0, 1]), elements=np.array([0]))


def test_eliminate_dirichlet_homogeneous():
    p = heat_transfer_2d(4, dirichlet=("left",))
    k_ff, f_f, free = p.reduced()
    assert k_ff.shape[0] == free.size == p.n_dofs - 5
    w = np.linalg.eigvalsh(k_ff.toarray())
    assert w.min() > 0  # SPD after elimination


def test_eliminate_dirichlet_inhomogeneous():
    m = unit_square_mesh(3)
    k = assemble_stiffness(m)
    f = assemble_load(m)
    bdry = m.boundary_groups["left"]
    k_ff, rhs, free = eliminate_dirichlet(k, f, bdry, values=2.0)
    # Solving with lifted values reproduces u == 2 on an equilibrium problem
    # with zero source: check shape/consistency only here.
    assert rhs.shape == (free.size,)
    assert not np.allclose(rhs, f[free])  # lifting changed the RHS


def test_heat_2d_solution_properties():
    p = heat_transfer_2d(8, dirichlet=("left", "right", "top", "bottom"))
    u = p.solve_direct()
    assert np.allclose(u[p.dirichlet_nodes], 0.0)
    assert u.max() > 0 and u.min() >= -1e-12  # discrete maximum principle
    centre = np.argmin(np.linalg.norm(p.mesh.coords - 0.5, axis=1))
    assert u[centre] == pytest.approx(u.max(), rel=0.2)


def test_heat_2d_matches_manufactured_solution():
    """u = sin(pi x) sin(pi y) with f = 2 pi^2 u converges at O(h^2)."""
    errs = []
    for n in (8, 16):
        p = heat_transfer_2d(n, dirichlet=("left", "right", "top", "bottom"))
        x, y = p.mesh.coords[:, 0], p.mesh.coords[:, 1]
        exact = np.sin(np.pi * x) * np.sin(np.pi * y)
        k_ff, _, free = p.reduced()
        # consistent load for the manufactured solution
        from repro.fem.assembly import assemble_load

        f = 2 * np.pi**2 * _project_source(p, exact)
        u = np.zeros(p.n_dofs)
        u[free] = sp.linalg.spsolve(k_ff.tocsc(), f[free])
        errs.append(np.abs(u - exact).max())
    assert errs[1] < errs[0] / 2.5  # ~4x for O(h^2)


def _project_source(p, values):
    """Consistent load vector of a nodal source field (mass-lumped)."""
    from repro.fem.element import p1_gradients

    _, areas = p1_gradients(p.mesh.coords, p.mesh.elements)
    f = np.zeros(p.n_dofs)
    d1 = p.mesh.elements.shape[1]
    contrib = (areas / d1)[:, None] * values[p.mesh.elements]
    np.add.at(f, p.mesh.elements.ravel(), contrib.ravel())
    return f


def test_heat_3d_solution_finite():
    p = heat_transfer_3d(3, dirichlet=("left",))
    u = p.solve_direct()
    assert np.isfinite(u).all()
    assert np.allclose(u[p.dirichlet_nodes], 0.0)


def test_heat_unknown_boundary_group():
    with pytest.raises(ValueError, match="unknown boundary group"):
        heat_transfer_2d(3, dirichlet=("north",))


def test_heat_no_dirichlet_is_singular_system():
    p = heat_transfer_2d(3, dirichlet=())
    assert p.dirichlet_nodes.size == 0
    ones = np.ones(p.n_dofs)
    assert np.abs(p.k @ ones).max() < 1e-12


@settings(max_examples=10, deadline=None)
@given(nx=st.integers(2, 8), ny=st.integers(2, 8))
def test_property_2d_stiffness_kernel_and_symmetry(nx, ny):
    m = unit_square_mesh(nx, ny)
    k = assemble_stiffness(m)
    assert np.abs(k @ np.ones(m.n_nodes)).max() < 1e-11
    assert (abs(k - k.T)).max() < 1e-12


@settings(max_examples=6, deadline=None)
@given(n=st.integers(1, 4))
def test_property_3d_volumes(n):
    m = unit_cube_mesh(n)
    _, vols = p1_gradients(m.coords, m.elements)
    assert np.isclose(vols.sum(), 1.0)
    assert vols.min() > 0
