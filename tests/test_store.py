"""Tests for the persistent artifact store (``repro.store``).

Covers the envelope format, atomic commits, quarantine-and-recompute on
every corruption mode (torn writes, checksum flips, schema drift), fault
injection at the put/get sites, and the two-tier pattern cache.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.batch import BatchAssembler, PatternCache, items_from_decomposition
from repro.dd import decompose
from repro.fem import heat_transfer_2d
from repro.store import (
    KIND_PRICED_PLAN,
    KIND_RELABELING,
    KIND_SYMBOLIC,
    KIND_UNION_PLAN,
    SCHEMA_VERSION,
    ArtifactCorrupt,
    ArtifactSchemaMismatch,
    ArtifactStore,
    FaultInjector,
    InjectedCrash,
    TieredPatternCache,
    decode_artifact,
    encode_artifact,
    key_digest,
)


def _store(tmp_path, **kwargs) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store", **kwargs)


# ---------------------------------------------------------------------------
# envelope


@pytest.mark.parametrize(
    "kind", [KIND_SYMBOLIC, KIND_RELABELING, KIND_UNION_PLAN, KIND_PRICED_PLAN]
)
def test_envelope_roundtrip_all_kinds(kind):
    obj = {"kind": kind, "payload": list(range(10))}
    data = encode_artifact(obj, kind, "some/key|with weird chars")
    out, header = decode_artifact(data, kind, "some/key|with weird chars")
    assert out == obj
    assert header.schema == SCHEMA_VERSION
    assert header.kind == kind


def test_envelope_rejects_wrong_kind_and_key():
    data = encode_artifact([1, 2], KIND_SYMBOLIC, "k1")
    with pytest.raises(ArtifactCorrupt):
        decode_artifact(data, KIND_RELABELING, "k1")
    with pytest.raises(ArtifactCorrupt):
        decode_artifact(data, KIND_SYMBOLIC, "other-key")


def test_envelope_detects_truncation_and_flips():
    data = encode_artifact({"x": 1}, KIND_SYMBOLIC, "k")
    with pytest.raises(ArtifactCorrupt):
        decode_artifact(data[: len(data) - 3], KIND_SYMBOLIC, "k")
    flipped = bytearray(data)
    flipped[-1] ^= 0xFF
    with pytest.raises(ArtifactCorrupt):
        decode_artifact(bytes(flipped), KIND_SYMBOLIC, "k")


def test_envelope_rejects_bad_magic_and_schema():
    data = encode_artifact({"x": 1}, KIND_SYMBOLIC, "k")
    with pytest.raises(ArtifactCorrupt):
        decode_artifact(b"XXXX" + data[4:], KIND_SYMBOLIC, "k")
    # Rewrite the header with a future schema version (checksum intact).
    import struct

    hlen = struct.unpack(">I", data[4:8])[0]
    header = json.loads(data[8 : 8 + hlen])
    header["schema"] = SCHEMA_VERSION + 1
    raw = json.dumps(header, sort_keys=True).encode()
    forged = data[:4] + struct.pack(">I", len(raw)) + raw + data[8 + hlen :]
    with pytest.raises(ArtifactSchemaMismatch):
        decode_artifact(forged, KIND_SYMBOLIC, "k")


def test_key_digest_is_filename_safe():
    digest = key_digest("key with / and | and spaces")
    assert len(digest) == 64
    assert digest == key_digest("key with / and | and spaces")
    assert digest != key_digest("another key")


# ---------------------------------------------------------------------------
# store


def test_store_put_get_roundtrip(tmp_path):
    store = _store(tmp_path)
    obj = {"rows": [1, 2, 3], "name": "sym"}
    assert store.put("k1", KIND_SYMBOLIC, obj)
    assert store.contains("k1", KIND_SYMBOLIC)
    assert store.get("k1", KIND_SYMBOLIC) == obj
    assert store.stats.hits == 1 and store.stats.puts == 1
    assert len(store) == 1


def test_store_get_missing_is_miss_not_error(tmp_path):
    store = _store(tmp_path)
    assert store.get("nope", KIND_SYMBOLIC) is None
    assert store.stats.misses == 1


def test_store_put_no_overwrite(tmp_path):
    store = _store(tmp_path)
    assert store.put("k", KIND_SYMBOLIC, 1)
    assert not store.put("k", KIND_SYMBOLIC, 2, overwrite=False)
    assert store.get("k", KIND_SYMBOLIC) == 1
    assert store.put("k", KIND_SYMBOLIC, 2)
    assert store.get("k", KIND_SYMBOLIC) == 2


def test_store_crash_before_commit_leaves_no_entry(tmp_path):
    faults = FaultInjector("store.put.crash:1")
    store = _store(tmp_path, faults=faults)
    with pytest.raises(InjectedCrash):
        store.put("k", KIND_SYMBOLIC, {"x": 1})
    # Nothing committed; the orphaned tmp file is visible to gc().
    clean = _store(tmp_path)
    assert clean.get("k", KIND_SYMBOLIC) is None
    assert len(clean) == 0
    assert clean.gc() == 1
    # After the "restart", the put succeeds.
    assert clean.put("k", KIND_SYMBOLIC, {"x": 1})
    assert clean.get("k", KIND_SYMBOLIC) == {"x": 1}


def test_store_torn_write_quarantined_never_served(tmp_path):
    faults = FaultInjector("store.put.torn:1")
    store = _store(tmp_path, faults=faults)
    store.put("k", KIND_SYMBOLIC, {"x": 1})  # commits truncated bytes
    reader = _store(tmp_path)
    assert reader.get("k", KIND_SYMBOLIC) is None
    assert reader.stats.quarantined == 1
    assert not reader.contains("k", KIND_SYMBOLIC)
    assert list(reader.quarantine_dir.iterdir())
    # Recompute-and-put heals the entry.
    reader.put("k", KIND_SYMBOLIC, {"x": 1})
    assert reader.get("k", KIND_SYMBOLIC) == {"x": 1}


def test_store_corrupt_payload_quarantined(tmp_path):
    store = _store(tmp_path)
    store.put("k", KIND_SYMBOLIC, {"x": 1})
    path = store.path_for("k", KIND_SYMBOLIC)
    raw = bytearray(path.read_bytes())
    raw[-2] ^= 0x55
    path.write_bytes(bytes(raw))
    assert store.get("k", KIND_SYMBOLIC) is None
    assert store.stats.quarantined == 1
    assert not path.exists()


def test_store_unpicklable_quarantined_not_crash(tmp_path):
    store = _store(tmp_path)
    store.put("k", KIND_SYMBOLIC, {"x": 1})
    path = store.path_for("k", KIND_SYMBOLIC)
    # Valid envelope framing around a garbage payload: recompute checksum
    # so only the unpickle step can object.
    import hashlib
    import struct

    data = path.read_bytes()
    hlen = struct.unpack(">I", data[4:8])[0]
    header = json.loads(data[8 : 8 + hlen])
    payload = b"not a pickle at all"
    header["payload_bytes"] = len(payload)
    header["checksum"] = hashlib.sha256(payload).hexdigest()
    raw = json.dumps(header, sort_keys=True).encode()
    path.write_bytes(data[:4] + struct.pack(">I", len(raw)) + raw + payload)
    assert store.get("k", KIND_SYMBOLIC) is None
    assert store.stats.quarantined == 1


def test_store_transient_read_retries(tmp_path):
    store = _store(tmp_path)
    store.put("k", KIND_SYMBOLIC, {"x": 1})
    flaky = _store(tmp_path, faults=FaultInjector("store.get.transient:1"))
    assert flaky.get("k", KIND_SYMBOLIC) == {"x": 1}
    assert flaky.stats.transient_retries == 1


def test_store_transient_exhaustion_degrades_to_miss(tmp_path):
    store = _store(tmp_path)
    store.put("k", KIND_SYMBOLIC, {"x": 1})
    dead = _store(tmp_path, faults=FaultInjector("store.get.transient:*"))
    assert dead.get("k", KIND_SYMBOLIC) is None
    assert dead.stats.misses == 1
    assert dead.stats.transient_retries == dead.max_read_retries


def test_store_entries_and_verify(tmp_path):
    store = _store(tmp_path)
    store.put("a", KIND_SYMBOLIC, 1)
    store.put("b", KIND_RELABELING, 2)
    entries = {(e.key, e.kind) for e in store.entries()}
    assert entries == {("a", KIND_SYMBOLIC), ("b", KIND_RELABELING)}
    assert store.verify() == (2, 0)
    # Corrupt one entry: verify quarantines it.
    path = store.path_for("a", KIND_SYMBOLIC)
    path.write_bytes(path.read_bytes()[:-4])
    assert store.verify() == (1, 1)
    assert len(store) == 1


def test_store_pickles_real_symbolic_artifacts(tmp_path):
    """The store round-trips the engine's actual per-group artifacts."""
    problem = heat_transfer_2d(10)
    items = items_from_decomposition(decompose(problem, grid=(2, 2)))
    engine = BatchAssembler.for_cpu()
    batch = engine.assemble_batch(items)
    store = _store(tmp_path)
    for key, art in batch.artifacts.items():
        assert store.put(key, KIND_SYMBOLIC, art)
    for key, art in batch.artifacts.items():
        loaded = store.get(key, KIND_SYMBOLIC)
        assert loaded.fingerprint == art.fingerprint
        assert type(loaded.estimate) is type(art.estimate)
        assert loaded.prepared is not None
    assert pickle.loads(pickle.dumps(batch.artifacts)) is not None


# ---------------------------------------------------------------------------
# tiered cache


def _items(cells=10, grid=(3, 3)):
    problem = heat_transfer_2d(cells)
    return items_from_decomposition(decompose(problem, grid=grid))


def test_tiered_cache_matches_plain_cache(tmp_path):
    items = _items()
    plain = BatchAssembler.for_cpu(cache=PatternCache()).assemble_batch(items)
    tiered = BatchAssembler.for_cpu(
        cache=TieredPatternCache(_store(tmp_path))
    ).assemble_batch(items)
    import numpy as np

    for a, b in zip(plain.results, tiered.results):
        assert np.allclose(a.f, b.f)
    assert plain.stats.hits == tiered.stats.hits
    assert tiered.stats.store_misses == plain.stats.misses


def test_tiered_cache_warm_run_hits_store(tmp_path):
    store = _store(tmp_path)
    items = _items()
    cold = BatchAssembler.for_cpu(cache=TieredPatternCache(store)).assemble_batch(items)
    assert cold.stats.store_misses > 0 and cold.stats.store_hits == 0
    warm = BatchAssembler.for_cpu(cache=TieredPatternCache(store)).assemble_batch(items)
    assert warm.stats.store_misses == 0
    assert warm.stats.store_hits == cold.stats.store_misses
    assert warm.stats.hit_rate == 1.0
    assert warm.stats.analysis_seconds == 0.0
    import numpy as np

    for a, b in zip(cold.results, warm.results):
        assert np.allclose(a.f, b.f)


def test_tiered_cache_quarantined_entry_recomputed(tmp_path):
    store = _store(tmp_path)
    items = _items()
    BatchAssembler.for_cpu(cache=TieredPatternCache(store)).assemble_batch(items)
    # Corrupt every committed artifact, then re-run warm: each lookup must
    # quarantine and rebuild, never serve garbage.
    paths = list(store.objects_dir.glob("*/*.art"))
    assert paths
    for path in paths:
        path.write_bytes(path.read_bytes()[:-6])
    batch = BatchAssembler.for_cpu(cache=TieredPatternCache(store)).assemble_batch(items)
    assert batch.stats.n_quarantined == len(paths)
    assert batch.stats.store_hits == 0
    ref = BatchAssembler.for_cpu(cache=PatternCache()).assemble_batch(items)
    import numpy as np

    for a, b in zip(batch.results, ref.results):
        assert np.allclose(a.f, b.f)
    # The rebuilt artifacts were re-committed and now verify clean.
    assert store.verify() == (len(paths), 0)


def test_tiered_cache_put_failure_degrades_to_memory_only(tmp_path, monkeypatch):
    store = _store(tmp_path)
    cache = TieredPatternCache(store)

    def broken_put(*args, **kwargs):
        raise OSError("disk full")

    monkeypatch.setattr(store, "put", broken_put)
    value, hit = cache.get_or_build("k", lambda: {"built": True})
    assert value == {"built": True} and not hit
    value2, hit2 = cache.get_or_build("k", lambda: {"built": False})
    assert value2 == {"built": True} and hit2


def test_tiered_cache_respects_lru_bound(tmp_path):
    store = _store(tmp_path)
    cache = TieredPatternCache(store, max_entries=1)
    cache.get_or_build("a", lambda: 1)
    cache.get_or_build("b", lambda: 2)
    assert cache.stats.evictions == 1
    # "a" was evicted from memory but persists on disk: a re-lookup is a
    # store hit, not a rebuild.
    value, hit = cache.get_or_build("a", lambda: (_ for _ in ()).throw(AssertionError))
    assert value == 1 and hit
    assert cache.stats.store_hits == 1
