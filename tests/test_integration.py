"""Cross-module integration tests: decomposition -> assembly -> pipeline ->
solver, plus failure-injection paths."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AssemblyConfig,
    SchurAssembler,
    by_count,
    by_size,
    default_config,
)
from repro.dd import decompose
from repro.fem import heat_transfer_2d, heat_transfer_3d
from repro.feti import estimate_approach_timing, make_approach, solve_feti
from repro.feti.operator import factorize_subdomain
from repro.gpu import A100_40GB, Executor, MemoryPool, OutOfDeviceMemoryError
from repro.runtime import SubdomainWork, run_preprocessing_pipeline
from repro.sparse import cholesky, solve_lower
from tests.conftest import random_spd


def test_whole_decomposition_assembly_through_shared_executor():
    """Assembling every subdomain through one executor accumulates exactly
    the sum of the per-subdomain elapsed times."""
    p = heat_transfer_2d(16, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2))
    asm = SchurAssembler(config=default_config("gpu", 2))
    ex = Executor(A100_40GB)
    total = 0.0
    for sub in dec.subdomains:
        factor = factorize_subdomain(sub)
        res = asm.assemble(factor, sub.bt, executor=ex)
        total += res.breakdown["permute"] + res.breakdown["trsm"] + res.breakdown["syrk"]
    assert ex.elapsed == pytest.approx(total, rel=1e-9)


def test_pipeline_from_estimated_durations():
    """End-to-end: estimate per-subdomain work, run the mix pipeline with a
    realistic memory pool, check makespan bounds."""
    p = heat_transfer_3d(8, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2, 2))
    asm = SchurAssembler(config=default_config("gpu", 3))
    work = []
    from repro.feti.timing import CHOLMOD

    for sub in dec.subdomains:
        factor = factorize_subdomain(sub)
        est = asm.estimate(factor, sub.bt)
        mem = asm.estimate_memory(factor, sub.n_multipliers)
        work.append(
            SubdomainWork(
                factorization=CHOLMOD.factorization_time(factor),
                assembly=est["total"],
                temp_bytes=mem.temporary,
                persistent_bytes=mem.persistent,
            )
        )
    pool = MemoryPool(capacity=A100_40GB.memory_capacity)
    res = run_preprocessing_pipeline(
        work, mode="mix", n_threads=4, n_streams=4, memory_pool=pool
    )
    serial = sum(w.factorization + w.assembly for w in work)
    critical = max(w.factorization + w.assembly for w in work)
    assert critical <= res.makespan <= serial
    assert res.memory_stalls == 0  # 40 GB is plenty for 8 small subdomains
    assert res.memory_high_water > 0


def test_feti_3d_explicit_chain_gluing():
    p = heat_transfer_3d(6, dirichlet=("left",))
    dec = decompose(p, grid=(2, 1, 2), gluing="chain")
    sol = solve_feti(dec, approach="expl_cuda", tol=1e-11)
    assert np.abs(sol.u - p.solve_direct()).max() < 1e-8


def test_fine_grid_drops_empty_subdomains():
    """A subdomain grid finer than the mesh must not create empty subdomains."""
    p = heat_transfer_2d(4, dirichlet=("left",))
    dec = decompose(p, grid=(8, 8))
    assert all(s.element_ids.size > 0 for s in dec.subdomains)
    assert dec.check_consistency()
    sol = solve_feti(dec, approach="impl_mkl", tol=1e-11)
    assert np.abs(sol.u - p.solve_direct()).max() < 1e-7


def test_anisotropic_subdomain_grid():
    p = heat_transfer_2d(12, dirichlet=("left",))
    dec = decompose(p, grid=(4, 1))
    sol = solve_feti(dec, approach="expl_mkl", tol=1e-11)
    assert np.abs(sol.u - p.solve_direct()).max() < 1e-8


def test_variable_conductivity_problem():
    """Heterogeneous coefficient: FETI still matches the direct solve."""
    p = heat_transfer_2d(12, dirichlet=("left",), conductivity=7.5)
    dec = decompose(p, grid=(2, 2))
    sol = solve_feti(dec, approach="impl_mkl", tol=1e-11)
    assert np.abs(sol.u - p.solve_direct()).max() < 1e-8


def test_estimates_consistent_across_decomposition():
    """Per-subdomain estimates summed == executed totals (exactness of the
    dry-run path on a real decomposition, not just a bench workload)."""
    p = heat_transfer_2d(14, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2))
    asm = SchurAssembler(config=default_config("gpu", 2))
    for sub in dec.subdomains:
        factor = factorize_subdomain(sub)
        executed = asm.assemble(factor, sub.bt)
        estimated = asm.estimate(factor, sub.bt)
        assert estimated["total"] == pytest.approx(executed.elapsed, rel=1e-12)


def test_approach_estimate_on_real_subdomain_matches():
    p = heat_transfer_3d(6, dirichlet=("left",))
    dec = decompose(p, grid=(2, 1, 1))
    sub = dec.subdomains[1]
    executed = make_approach("expl_gpu_opt").preprocess_subdomain(sub)
    est = estimate_approach_timing(
        "expl_gpu_opt", executed.local_op.factor, sub.bt, dim=3
    )
    assert est.preprocessing == pytest.approx(executed.preprocessing_time, rel=1e-9)


# ---------------------------------------------------------------------------
# failure injection
# ---------------------------------------------------------------------------


def test_persistent_memory_overflow_for_oversized_sc():
    """A Schur complement larger than device memory must be rejected."""
    pool = MemoryPool(capacity=1e6)
    with pytest.raises(OutOfDeviceMemoryError):
        pool.alloc_persistent(2e6, tag="sc:huge")


def test_assembler_rejects_mismatched_factor_and_bt():
    factor = cholesky(random_spd(30, 0.2, 0))
    bt = sp.random(29, 4, density=0.3, random_state=1, format="csc")
    with pytest.raises(ValueError, match="rows"):
        SchurAssembler().assemble(factor, bt)


def test_solver_rejects_unpreprocessed_operator_misuse():
    p = heat_transfer_2d(8, dirichlet=("left",))
    dec = decompose(p, grid=(2, 1))
    from repro.feti import FetiSolver

    solver = FetiSolver(dec, approach="impl_mkl")
    # solve() auto-preprocesses; calling twice reuses the operator.
    sol1 = solver.solve()
    sol2 = solver.solve()
    assert np.allclose(sol1.u, sol2.u)


def test_nan_rhs_detected_by_trsm():
    """NaNs in B^T propagate to the SC rather than being silently fixed —
    the assembler trusts its inputs, so callers can detect corruption."""
    factor = cholesky(random_spd(20, 0.3, 2))
    bt = sp.random(20, 3, density=0.4, random_state=3, format="csc")
    bt.data[0] = np.nan
    res = SchurAssembler(config=default_config("gpu", 2)).assemble(factor, bt)
    assert np.isnan(res.f).any()


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(10, 40),
    m=st.integers(1, 12),
    seed=st.integers(0, 1000),
    trsm_v=st.sampled_from(["orig", "rhs_split", "factor_split"]),
    syrk_v=st.sampled_from(["orig", "input_split", "output_split"]),
    storage=st.sampled_from(["sparse", "dense"]),
    prune=st.booleans(),
    tb=st.integers(1, 50),
    sb=st.integers(1, 50),
    mode=st.sampled_from(["size", "count"]),
)
def test_property_assembler_any_config_matches_reference(
    n, m, seed, trsm_v, syrk_v, storage, prune, tb, sb, mode
):
    """The full assembler agrees with the dense reference for *any* valid
    configuration — the end-to-end correctness property of the paper's
    optimization space."""
    factory = by_size if mode == "size" else by_count
    stepped = not (trsm_v == "orig" and syrk_v == "orig")
    cfg = AssemblyConfig(
        trsm_variant=trsm_v,
        syrk_variant=syrk_v,
        trsm_blocks=factory(tb),
        syrk_blocks=factory(sb),
        factor_storage=storage,
        prune=prune,
        use_stepped_permutation=stepped,
    )
    factor = cholesky(random_spd(n, min(1.0, 6.0 / n), seed), ordering="amd")
    bt = sp.random(n, m, density=0.25, random_state=seed, format="csc")
    res = SchurAssembler(config=cfg, spec=A100_40GB).assemble(factor, bt)
    y = solve_lower(factor.l, bt.tocsr()[factor.perm].toarray(), method="dense")
    assert np.allclose(res.f, y.T @ y, atol=1e-8)
