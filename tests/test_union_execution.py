"""Value-tolerant union-pattern execution (``execution="union"``).

Property tests of the padded near-class tier: the structural union of the
members' patterns (:func:`repro.sparse.canonical.union_plan`), the
identity-prefix embeddings that map each member in and out of the padded
stack, the fill-ratio cost guard, the kernel-cost parity of the padded
estimates, and — end to end through the engine — exactness of the padded
numerics against per-member execution across the mesh zoo, both graph
partitioners and a range of fill caps.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchAssembler, items_from_decomposition
from repro.batch.engine import build_artifacts, build_union_artifacts
from repro.core import default_config
from repro.core.estimate import padding_fill_ratio, union_padding_overhead
from repro.dd import decompose
from repro.fem import heat_problem
from repro.part import make_mesh
from repro.sparse.canonical import pattern_union, union_plan
from repro.sparse.stacked import stack_into_union

RTOL, ATOL = 1e-10, 1e-12


# ---------------------------------------------------------------------------
# plan-level properties on random member patterns
# ---------------------------------------------------------------------------


def _random_members(rng: np.random.Generator, group: int):
    """Random lower-triangular factors + gluing patterns of varying sizes."""
    n_max = int(rng.integers(4, 10))
    m_max = int(rng.integers(3, 8))
    ls, bts = [], []
    for _ in range(group):
        n = int(rng.integers(3, n_max + 1))
        m = int(rng.integers(2, m_max + 1))
        dense = np.tril(rng.random((n, n)) * (rng.random((n, n)) < 0.4), k=-1)
        np.fill_diagonal(dense, 1.0 + rng.random(n))
        ls.append(sp.csc_matrix(dense))
        bts.append(sp.csc_matrix(rng.random((n, m)) * (rng.random((n, m)) < 0.5)))
    return ls, bts


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), group=st.integers(2, 4))
def test_union_plan_embeddings_and_containment(seed, group):
    """Embeddings are injective identity prefixes, extraction inverts the
    padding, the union contains every member pattern, and the fill ratio
    is the padded/exact stored-entry quotient (always >= 1)."""
    rng = np.random.default_rng(seed)
    ls, bts = _random_members(rng, group)
    plan = union_plan(ls, bts)
    n_u, m_u = plan.shape
    assert n_u == max(l.shape[0] for l in ls)
    assert m_u == max(b.shape[1] for b in bts)

    l_dense = plan.l_union.pattern_csc().toarray() != 0
    bt_dense = plan.bt_union.pattern_csc().toarray() != 0
    for g in range(group):
        emb = plan.embeddings[g]
        n_g, m_g = ls[g].shape[0], bts[g].shape[1]
        # identity-prefix embedding: injective by construction, invertible
        # by slicing the leading block back out
        assert np.array_equal(emb.rows, np.arange(n_g))
        assert np.array_equal(emb.cols, np.arange(m_g))
        assert np.unique(emb.rows).size == emb.rows.size
        f_union = rng.random((m_u, m_u))
        assert np.array_equal(emb.extract_sc(f_union), f_union[:m_g, :m_g])
        # containment: every member entry has a union position (members
        # embed at the identity prefix, so slice the union down first)
        assert l_dense[:n_g, :n_g][ls[g].toarray() != 0].all()
        assert bt_dense[:n_g, :m_g][bts[g].toarray() != 0].all()

    member_nnz = sum(l.nnz for l in ls) + sum(b.nnz for b in bts)
    assert plan.member_nnz == member_nnz
    assert plan.padded_nnz == group * (plan.l_union.nnz + plan.bt_union.nnz)
    assert plan.fill_ratio == padding_fill_ratio(plan.padded_nnz, plan.member_nnz)
    assert plan.fill_ratio >= 1.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), group=st.integers(2, 4))
def test_union_scatter_round_trips_member_values(seed, group):
    """Scattering members into the union stack and reading the leading
    block back reproduces each member exactly; the padding is the
    [[L, 0], [0, I]] block structure."""
    rng = np.random.default_rng(seed)
    ls, bts = _random_members(rng, group)
    plan = union_plan(ls, bts)
    stacked = stack_into_union(ls, plan.l_union, pad_diagonal=True)
    for g in range(group):
        n_g = ls[g].shape[0]
        padded = stacked.member(g).toarray()
        assert np.array_equal(padded[:n_g, :n_g], ls[g].toarray())
        assert np.array_equal(padded[:n_g, n_g:], np.zeros((n_g, padded.shape[1] - n_g)))
        tail = padded[n_g:, :]
        expect = np.zeros_like(tail)
        np.fill_diagonal(expect[:, n_g:], 1.0)
        assert np.array_equal(tail, expect)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), group=st.integers(2, 4))
def test_pattern_union_is_canonical_sorted_csc(seed, group):
    """The union pattern is sorted canonical CSC and exactly the set union
    of the members' entry positions."""
    rng = np.random.default_rng(seed)
    ls, _ = _random_members(rng, group)
    n_u = max(l.shape[0] for l in ls)
    union = pattern_union(ls, (n_u, n_u))
    # sorted within each column, cumulative indptr
    for c in range(n_u):
        rows = union.indices[union.indptr[c] : union.indptr[c + 1]]
        assert np.all(np.diff(rows) > 0)
    expected = set()
    for l in ls:
        lc = l.tocsc()
        cols = np.repeat(np.arange(lc.shape[1]), np.diff(lc.indptr))
        expected |= set(zip(lc.indices.tolist(), cols.tolist()))
    got = set(zip(union.indices.tolist(), union.entry_columns().tolist()))
    assert got == expected


# ---------------------------------------------------------------------------
# end-to-end: union == per-member across the mesh zoo x partitioners x caps
# ---------------------------------------------------------------------------


def _workload(mesh: str, partitioner: str, n_parts: int, seed: int, cells: int = 12):
    problem = heat_problem(make_mesh(mesh, cells, seed=seed))
    decomposition = decompose(
        problem, n_subdomains=n_parts, partitioner=partitioner, seed=seed
    )
    return items_from_decomposition(decomposition)


def _run(items, execution: str, cap: float | None = None):
    engine = BatchAssembler(
        config=default_config("gpu", 2),
        signature_mode="near",
        union_fill_cap=cap,
    )
    return engine.assemble_batch(items, execution=execution)


def _assert_allclose(a, b):
    assert len(a.results) == len(b.results)
    for res_a, res_b in zip(a.results, b.results):
        scale = max(1.0, float(np.abs(res_b.f).max(initial=0.0)))
        assert np.allclose(res_a.f, res_b.f, rtol=RTOL, atol=ATOL * scale)


@settings(max_examples=6, deadline=None)
@given(
    mesh=st.sampled_from(("jittered", "lshape", "strip")),
    partitioner=st.sampled_from(("rcb", "spectral")),
    n_parts=st.sampled_from((6, 8)),
    seed=st.integers(0, 2),
    cap=st.sampled_from((1.5, 4.0, 8.0, float("inf"))),
)
def test_union_matches_per_member_hypothesis(mesh, partitioner, n_parts, seed, cap):
    """Padded union execution is numerically exact against per-member
    execution for every mesh-zoo workload, partitioner and fill cap; the
    union bookkeeping stays consistent."""
    items = _workload(mesh, partitioner, n_parts, seed)
    union = _run(items, "union", cap=cap)
    member = _run(items, "per-member")
    _assert_allclose(union, member)
    stats = union.stats
    assert stats.n_union_members == sum(len(v) for v in union.union_groups.values())
    assert stats.n_union_groups == len(union.union_groups)
    assert stats.n_union_members <= stats.n_subdomains
    if stats.n_union_groups:
        assert stats.union_fill_ratio >= 1.0
        assert stats.union_fill_ratio <= cap
    assert stats.kernel_launches <= member.stats.kernel_launches


# ---------------------------------------------------------------------------
# fill-ratio cost guard at the cap boundary
# ---------------------------------------------------------------------------


def _engine_bt_rows(item) -> sp.csc_matrix:
    """Replicate the engine's normalization of one item's gluing rows."""
    bt_perm = item.bt.tocsr()[item.factor.perm].tocsc()
    if item.relabeling is not None:
        bt_perm = bt_perm[:, item.relabeling.col_perm]
    return bt_perm


@pytest.fixture(scope="module")
def jittered_items():
    return _workload("jittered", "rcb", 8, seed=0, cells=16)


def test_cost_guard_boundary_is_exact(jittered_items):
    """cap == fill keeps a class (the guard is strictly greater-than);
    cap one ulp below the largest fill skips exactly the classes at it."""
    items = jittered_items
    res = _run(items, "union", cap=float("inf"))
    assert res.union_groups, "workload produced no union-eligible near class"
    assert res.stats.n_union_skipped == 0

    fills = {
        geo: union_plan(
            [items[i].factor.l for i in members],
            [_engine_bt_rows(items[i]) for i in members],
        ).fill_ratio
        for geo, members in res.union_groups.items()
    }
    fmax = max(fills.values())
    at_max = sum(1 for f in fills.values() if f == fmax)

    kept = _run(items, "union", cap=fmax)
    assert kept.stats.n_union_groups == len(fills)
    assert kept.stats.n_union_skipped == 0

    below = _run(items, "union", cap=float(np.nextafter(fmax, 0.0)))
    assert below.stats.n_union_skipped == at_max
    assert below.stats.n_union_groups == len(fills) - at_max
    # skipped members fall back to the exact paths and stay correct
    _assert_allclose(below, _run(items, "per-member"))


def test_cost_guard_skips_everything_below_one(jittered_items):
    """A cap below every possible fill ratio disables padding entirely
    (every eligible class skipped, results still exact)."""
    items = jittered_items
    eligible = len(_run(items, "union", cap=float("inf")).union_groups)
    res = _run(items, "union", cap=0.5)
    assert res.stats.n_union_groups == 0 and not res.union_groups
    assert res.stats.n_union_skipped == eligible
    assert res.stats.union_fill_ratio == 1.0  # nothing ran padded
    _assert_allclose(res, _run(items, "per-member"))


# ---------------------------------------------------------------------------
# kernel-cost parity of the padded artifacts
# ---------------------------------------------------------------------------


def test_union_estimate_prices_padding_conservatively(jittered_items):
    """For every executed union class: the padded estimate charges at least
    the exact per-member total (padding overhead >= 0) and the batched
    class launches at most 1/G of the members' per-member launches."""
    items = jittered_items
    res = _run(items, "union", cap=float("inf"))
    member = _run(items, "per-member")
    engine = BatchAssembler(config=default_config("gpu", 2), signature_mode="near")
    spec, transfer = engine.assembler.spec, engine.assembler.transfer
    per_member_launches = member.stats.kernel_launches / member.stats.n_subdomains

    for geo, members in res.union_groups.items():
        plan = union_plan(
            [items[i].factor.l for i in members],
            [_engine_bt_rows(items[i]) for i in members],
        )
        union_art = build_union_artifacts(
            plan, engine.config, spec, transfer, fingerprint=None
        )
        member_arts = [
            build_artifacts(
                items[i].factor,
                items[i].bt,
                engine.config,
                spec,
                transfer,
                fingerprint=None,
                bt_rows=_engine_bt_rows(items[i]),
            )
            for i in members
        ]
        overhead = union_padding_overhead(
            union_art.estimate, [a.estimate for a in member_arts]
        )
        assert overhead >= -1e-15
        # padded flops >= exact per member: the union pattern is a superset
        assert all(
            union_art.estimate["total"] + 1e-15 >= a.estimate["total"]
            for a in member_arts
        )
        # one batched pipeline per class: launches <= 1/G of per-member
        launches = res.stats.group_launches[f"union:{geo}"]
        assert launches * len(members) <= per_member_launches * len(members)
        assert launches <= per_member_launches
