"""Tests for the unstructured mesh zoo and the METIS-like partitioner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse.csgraph import connected_components

from repro.dd import decompose, partition_elements
from repro.fem import Mesh, heat_problem, unit_square_mesh
from repro.part import (
    MESH_ZOO,
    element_dual_graph,
    jittered_square_mesh,
    lshape_mesh,
    make_mesh,
    partition_mesh,
    strip_with_holes_mesh,
    submesh,
)


def _signed_areas(mesh: Mesh) -> np.ndarray:
    a, b, c = (mesh.coords[mesh.elements[:, k]] for k in range(3))
    return 0.5 * ((b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
                  - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0]))


def _parts_connected(mesh: Mesh, owner: np.ndarray, n_parts: int) -> bool:
    graph = element_dual_graph(mesh)
    for p in range(n_parts):
        members = np.flatnonzero(owner == p)
        if members.size == 0:
            return False
        n_comp, _ = connected_components(
            graph[members][:, members], directed=False
        )
        if n_comp != 1:
            return False
    return True


# --- mesh zoo ----------------------------------------------------------------


def test_jittered_mesh_valid_and_deterministic():
    m1 = jittered_square_mesh(10, jitter=0.25, seed=7)
    m2 = jittered_square_mesh(10, jitter=0.25, seed=7)
    m3 = jittered_square_mesh(10, jitter=0.25, seed=8)
    assert np.array_equal(m1.coords, m2.coords)
    assert np.array_equal(m1.elements, m2.elements)
    assert not np.array_equal(m1.coords, m3.coords)
    assert m1.n_elements == 200
    assert _signed_areas(m1).min() > 0  # no inverted triangles
    # the domain is still exactly the unit square
    assert np.allclose(m1.coords.min(axis=0), 0.0)
    assert np.allclose(m1.coords.max(axis=0), 1.0)
    # boundary nodes did not move: group sizes match the structured mesh
    base = unit_square_mesh(10)
    for name in ("left", "right", "bottom", "top"):
        assert m1.boundary_groups[name].size == base.boundary_groups[name].size


def test_jittered_mesh_zero_jitter_keeps_structured_nodes():
    m = jittered_square_mesh(6, jitter=0.0, seed=0)
    assert np.allclose(m.coords, unit_square_mesh(6).coords)


def test_jittered_mesh_validates():
    with pytest.raises(ValueError):
        jittered_square_mesh(8, jitter=0.9)
    with pytest.raises(ValueError):
        jittered_square_mesh(0)


def test_lshape_mesh_drops_quadrant():
    m = lshape_mesh(8)
    assert m.n_elements == 2 * 8 * 8 * 3 // 4
    centroids = m.coords[m.elements].mean(axis=1)
    assert not np.any((centroids[:, 0] > 0.5) & (centroids[:, 1] > 0.5))
    n_comp, _ = connected_components(element_dual_graph(m), directed=False)
    assert n_comp == 1
    # re-entrant corner node is not on the outer box sides but is boundary
    assert m.boundary_groups["boundary"].size > 0
    with pytest.raises(ValueError):
        lshape_mesh(7)  # odd: cut would not fall on mesh lines


def test_strip_mesh_punches_holes_but_stays_connected():
    full = strip_with_holes_mesh(8, holes=0)
    holed = strip_with_holes_mesh(8, holes=2)
    assert holed.n_elements < full.n_elements
    assert np.isclose(holed.coords[:, 0].max(), 3.0)
    n_comp, _ = connected_components(element_dual_graph(holed), directed=False)
    assert n_comp == 1
    # holes create boundary nodes strictly inside the bounding box
    interior_boundary = [
        n
        for n in holed.boundary_groups["boundary"]
        if 0.1 < holed.coords[n, 0] < 2.9 and 0.1 < holed.coords[n, 1] < 0.9
    ]
    assert interior_boundary


def test_submesh_compacts_nodes():
    base = unit_square_mesh(4)
    sub = submesh(base, np.arange(8))
    assert sub.n_elements == 8
    assert sub.elements.max() == sub.n_nodes - 1
    assert sub.n_nodes == np.unique(base.elements[:8]).size


def test_mesh_zoo_builds_everything():
    for name in MESH_ZOO:
        mesh = make_mesh(name, 6, seed=1)
        assert mesh.n_elements > 0
    with pytest.raises(ValueError):
        make_mesh("torus", 6)


def test_mesh_zoo_meshes_run_through_fem():
    problem = heat_problem(make_mesh("lshape", 6), dirichlet=("boundary",))
    u = problem.solve_direct()
    assert np.isfinite(u).all() and np.abs(u).max() > 0


# --- dual graph --------------------------------------------------------------


def test_dual_graph_structured_counts():
    m = unit_square_mesh(4)
    g = element_dual_graph(m)
    assert g.shape == (m.n_elements, m.n_elements)
    assert (g != g.T).nnz == 0
    degrees = np.asarray(g.sum(axis=1)).ravel()
    # triangles have 3 edges; boundary facets reduce the degree
    assert degrees.max() <= 3 and degrees.min() >= 1


# --- partition quality invariants --------------------------------------------


@pytest.mark.parametrize("method", ["rcb", "spectral"])
def test_partition_invariants(method):
    mesh = jittered_square_mesh(12, jitter=0.25, seed=0)
    n_parts = 9
    res = partition_mesh(mesh, n_parts, method=method, seed=0)
    # covers every element with the requested number of non-empty parts
    assert res.owner.size == mesh.n_elements
    assert set(res.owner.tolist()) == set(range(n_parts))
    # every part connected in the dual graph
    assert _parts_connected(mesh, res.owner, n_parts)
    # balance within the stated bound
    cap = int(np.ceil(mesh.n_elements / n_parts * 1.1))
    assert res.counts.max() <= cap
    assert np.isclose(res.balance, res.counts.max() / (mesh.n_elements / n_parts))
    # refinement never worsens the cut
    unrefined = partition_mesh(mesh, n_parts, method=method, refine=False, seed=0)
    assert res.edge_cut <= unrefined.edge_cut
    # deterministic under a fixed seed
    again = partition_mesh(mesh, n_parts, method=method, seed=0)
    assert np.array_equal(res.owner, again.owner)


def test_refined_cut_no_worse_than_coordinate_bisection():
    """The refined partitioner never cuts more than its plain coordinate-
    bisection start (the guarantee: refinement moves are strictly
    cut-reducing), across meshes and part counts."""
    for mesh in (
        jittered_square_mesh(12, jitter=0.25, seed=2),
        lshape_mesh(10),
        strip_with_holes_mesh(6),
    ):
        for n_parts in (4, 8, 11):
            baseline = partition_mesh(
                mesh, n_parts, method="rcb", refine=False
            ).edge_cut
            refined = partition_mesh(mesh, n_parts, method="rcb").edge_cut
            assert refined <= baseline


def test_partition_nonrectangular_domains():
    for mesh in (lshape_mesh(8), strip_with_holes_mesh(6)):
        res = partition_mesh(mesh, 6, method="rcb")
        assert _parts_connected(mesh, res.owner, 6)


def test_partition_validates():
    mesh = unit_square_mesh(3)
    with pytest.raises(ValueError):
        partition_mesh(mesh, 0)
    with pytest.raises(ValueError):
        partition_mesh(mesh, mesh.n_elements + 1)
    with pytest.raises(ValueError):
        partition_mesh(mesh, 2, method="metis")


def test_partition_rejects_disconnected_mesh():
    """The connected-parts guarantee only holds on a connected mesh, so a
    disconnected one is refused loudly instead of silently mis-partitioned."""
    base = unit_square_mesh(4)
    centroids = base.coords[base.elements].mean(axis=1)
    keep = np.flatnonzero((centroids[:, 0] < 0.25) | (centroids[:, 0] > 0.75))
    two_islands = submesh(base, keep)
    with pytest.raises(ValueError, match="connected components"):
        partition_mesh(two_islands, 2)


def test_strip_mesh_validates_hole_size():
    with pytest.raises(ValueError, match="hole_size"):
        strip_with_holes_mesh(4, hole_size=0.8)  # no surviving cell row


def test_mesh_zoo_passes_cells_through_unaltered():
    with pytest.raises(ValueError, match="even"):
        make_mesh("lshape", 7)
    with pytest.raises(ValueError, match="ny must be >= 4"):
        make_mesh("strip", 3)


@settings(max_examples=12, deadline=None)
@given(
    nx=st.integers(min_value=4, max_value=8),
    n_parts=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=3),
)
def test_partition_invariants_hypothesis(nx, n_parts, seed):
    mesh = jittered_square_mesh(nx, jitter=0.2, seed=seed)
    res = partition_mesh(mesh, n_parts, method="rcb", seed=seed)
    assert set(res.owner.tolist()) == set(range(n_parts))
    assert _parts_connected(mesh, res.owner, n_parts)
    assert np.array_equal(
        res.owner, partition_mesh(mesh, n_parts, method="rcb", seed=seed).owner
    )


# --- satellite: degenerate-span hardening ------------------------------------


def test_partition_elements_rejects_degenerate_axis():
    base = unit_square_mesh(4)
    flat = Mesh(
        coords=np.column_stack([base.coords[:, 0], np.zeros(base.n_nodes)]),
        elements=base.elements,
        dim=2,
        grid_shape=base.grid_shape,
        boundary_groups=base.boundary_groups,
    )
    with pytest.raises(ValueError, match="degenerate along axis 1"):
        partition_elements(flat, (2, 2))
    # a single box along the flat axis is still fine
    owner = partition_elements(flat, (2, 1))
    assert set(owner.tolist()) == {0, 1}


# --- dd integration ----------------------------------------------------------


def test_decompose_with_graph_partitioner():
    mesh = jittered_square_mesh(12, jitter=0.25, seed=1)
    problem = heat_problem(mesh, dirichlet=("left",))
    dec = decompose(problem, n_subdomains=8, partitioner="rcb", seed=1)
    assert dec.n_subdomains == 8
    assert dec.partition is not None and dec.partition.edge_cut > 0
    assert dec.check_consistency()
    # box path records no partition report and grid= sets the part count
    dec_boxes = decompose(problem, grid=(2, 2))
    assert dec_boxes.partition is None
    dec_grid = decompose(problem, grid=(2, 4), partitioner="spectral")
    assert dec_grid.n_subdomains == 8


def test_decompose_graph_partitioner_solves():
    from repro.feti import solve_feti

    mesh = jittered_square_mesh(10, jitter=0.2, seed=3)
    problem = heat_problem(mesh, dirichlet=("left",))
    dec = decompose(problem, n_subdomains=4, partitioner="rcb")
    sol = solve_feti(dec, approach="expl_mkl", tol=1e-10)
    assert np.abs(sol.u - problem.solve_direct()).max() < 1e-6
