"""Tests for the augmented Schur complement, regularization and null spaces."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    NotPositiveDefiniteError,
    cholesky,
    choose_fixing_dofs,
    constant_nullspace,
    nullspace_dense,
    regularize,
    schur_augmented,
    spnorm_inf,
    verify_nullspace,
)
from tests.conftest import laplacian_1d, laplacian_2d, random_spd


def _dense_schur(k, bt):
    return bt.T.toarray() @ np.linalg.solve(k.toarray(), bt.toarray())


@pytest.mark.parametrize("ordering", ["natural", "amd", "nd"])
def test_schur_matches_dense(ordering):
    k = random_spd(80, density=0.06, seed=1)
    bt = sp.random(80, 12, density=0.05, random_state=2, format="csc")
    res = schur_augmented(k, bt, ordering=ordering)
    assert np.allclose(res.schur, _dense_schur(k, bt), atol=1e-8)


def test_schur_is_symmetric():
    k = random_spd(50, seed=3)
    bt = sp.random(50, 9, density=0.1, random_state=4, format="csc")
    res = schur_augmented(k, bt)
    assert np.array_equal(res.schur, res.schur.T)


def test_schur_spd_for_full_rank_b():
    k = laplacian_2d(6, 6)
    m = 5
    rows = np.arange(m)
    bt = sp.csc_matrix((np.ones(m), (rows, np.arange(m))), shape=(36, m))
    res = schur_augmented(k, bt)
    w = np.linalg.eigvalsh(res.schur)
    assert w.min() > 0


def test_schur_factor_reuse():
    k = random_spd(40, seed=5)
    bt = sp.random(40, 6, density=0.1, random_state=6, format="csc")
    f = cholesky(k, ordering="amd")
    res = schur_augmented(k, bt, factor=f)
    assert res.factor is f
    assert np.allclose(res.schur, _dense_schur(k, bt), atol=1e-8)


def test_schur_rejects_dense_b():
    k = random_spd(10)
    with pytest.raises(ValueError, match="sparse"):
        schur_augmented(k, np.ones((10, 2)))


def test_schur_rejects_shape_mismatch():
    k = random_spd(10)
    bt = sp.csc_matrix((9, 2))
    with pytest.raises(ValueError, match="rows"):
        schur_augmented(k, bt)


def test_schur_flop_accounting_positive():
    k = random_spd(30, seed=7)
    bt = sp.random(30, 4, density=0.2, random_state=8, format="csc")
    res = schur_augmented(k, bt)
    assert res.solve_flops > 0
    assert res.syrk_flops > 0
    assert res.total_flops >= res.solve_flops + res.syrk_flops
    assert res.y_nnz > 0


def test_schur_flops_smaller_for_local_b():
    """A B^T touching only late-eliminated DOFs must cost far fewer solve
    flops than one touching everything — the sparsity the paper exploits."""
    k = laplacian_1d(200)
    local = sp.csc_matrix(
        (np.ones(2), ([198, 199], [0, 1])), shape=(200, 2)
    )
    spread = sp.csc_matrix(
        (np.ones(2), ([0, 1], [0, 1])), shape=(200, 2)
    )
    res_local = schur_augmented(k, local, ordering="natural")
    res_spread = schur_augmented(k, spread, ordering="natural")
    assert res_local.solve_flops < res_spread.solve_flops / 10


# ---------------------------------------------------------------------------
# regularization + null spaces
# ---------------------------------------------------------------------------


def test_neumann_laplacian_needs_regularization():
    k = laplacian_1d(30, neumann=True)
    with pytest.raises(NotPositiveDefiniteError):
        cholesky(k, ordering="natural")
    fixing = choose_fixing_dofs(k, 1)
    k_reg = regularize(k, fixing)
    f = cholesky(k_reg, ordering="natural")  # must succeed
    assert f.n == 30


def test_regularized_inverse_is_generalized_inverse():
    """K K_reg^{-1} K == K (the property FETI needs from K^+)."""
    k = laplacian_1d(20, neumann=True)
    fixing = choose_fixing_dofs(k, 1)
    k_reg = regularize(k, fixing)
    f = cholesky(k_reg, ordering="natural")
    kd = k.toarray()
    kplus_k = np.column_stack([f.solve(kd[:, j]) for j in range(20)])
    assert np.allclose(kd @ kplus_k, kd, atol=1e-8)


def test_regularize_noop_for_empty_fixing():
    k = laplacian_1d(10)
    k2 = regularize(k, np.empty(0, dtype=int))
    assert (k != k2).nnz == 0


def test_regularize_validates():
    k = laplacian_1d(10)
    with pytest.raises(ValueError):
        regularize(k, np.array([10]))
    with pytest.raises(ValueError):
        regularize(k, np.array([0]), rho=-1.0)


def test_choose_fixing_dofs_geometric_spread():
    k = laplacian_1d(100, neumann=True)
    coords = np.arange(100, dtype=float)[:, None]
    dofs = choose_fixing_dofs(k, 3, coords=coords)
    assert len(set(dofs.tolist())) == 3
    # Farthest-point sampling should include both extremes.
    assert 0 in dofs and 99 in dofs


def test_choose_fixing_dofs_validates():
    k = laplacian_1d(5)
    with pytest.raises(ValueError):
        choose_fixing_dofs(k, 6)
    assert choose_fixing_dofs(k, 0).size == 0


def test_constant_nullspace_is_kernel():
    k = laplacian_1d(40, neumann=True)
    r = constant_nullspace(40)
    assert verify_nullspace(k, r)
    assert np.isclose(np.linalg.norm(r), 1.0)


def test_nullspace_dense_finds_constant():
    k = laplacian_1d(15, neumann=True)
    kernel = nullspace_dense(k)
    assert kernel.shape == (15, 1)
    # Kernel of the Neumann Laplacian is the constant vector.
    assert np.allclose(kernel / kernel[0], np.ones((15, 1)), atol=1e-8)


def test_nullspace_dense_spd_matrix_empty():
    k = laplacian_1d(15)
    kernel = nullspace_dense(k)
    assert kernel.shape[1] == 0
    assert verify_nullspace(k, kernel)


def test_verify_nullspace_rejects_nonkernel():
    k = laplacian_1d(10)
    bad = np.ones((10, 1))
    assert not verify_nullspace(k, bad)


def test_spnorm_inf():
    a = sp.csr_matrix(np.array([[1.0, -2.0], [0.0, 0.5]]))
    assert spnorm_inf(a) == 3.0
    assert spnorm_inf(sp.csr_matrix((3, 3))) == 0.0


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=5, max_value=40),
    m=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_schur_matches_dense(n, m, seed):
    k = random_spd(n, density=min(1.0, 5.0 / n), seed=seed)
    bt = sp.random(n, m, density=0.3, random_state=seed, format="csc")
    res = schur_augmented(k, bt, ordering="amd")
    assert np.allclose(res.schur, _dense_schur(k, bt), atol=1e-7)
