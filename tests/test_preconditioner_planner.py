"""Tests for the Dirichlet preconditioner, the approach planner, auto mode
and degenerate decompositions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dd import decompose
from repro.fem import heat_transfer_2d, heat_transfer_3d
from repro.feti import (
    DEFAULT_CANDIDATES,
    DirichletPreconditioner,
    FetiSolver,
    LumpedPreconditioner,
    make_preconditioner,
    plan_approach,
    solve_feti,
)
from repro.feti.operator import factorize_subdomain


@pytest.fixture(scope="module")
def problem():
    p = heat_transfer_2d(16, dirichlet=("left",))
    return p, p.solve_direct()


@pytest.fixture(scope="module")
def decomposition(problem):
    return decompose(problem[0], grid=(3, 3))


# ---------------------------------------------------------------------------
# Dirichlet preconditioner
# ---------------------------------------------------------------------------


def test_dirichlet_preconditioner_converges_to_direct(problem, decomposition):
    p, u_direct = problem
    sol = solve_feti(decomposition, approach="impl_mkl", preconditioner="dirichlet", tol=1e-11)
    assert sol.info.converged
    assert np.abs(sol.u - u_direct).max() < 1e-8


def test_dirichlet_beats_unpreconditioned(problem, decomposition):
    p, _ = problem
    none = solve_feti(decomposition, approach="impl_mkl", preconditioner="none", tol=1e-10)
    diri = solve_feti(decomposition, approach="impl_mkl", preconditioner="dirichlet", tol=1e-10)
    assert diri.iterations < none.iterations


def test_dirichlet_apply_symmetric_psd(decomposition, rng):
    pc = DirichletPreconditioner(decomposition)
    m = decomposition.n_multipliers
    # Symmetry: <M^{-1}x, y> == <x, M^{-1}y>; PSD: <M^{-1}x, x> >= 0.
    for _ in range(3):
        x = rng.standard_normal(m)
        y = rng.standard_normal(m)
        assert pc.apply(x) @ y == pytest.approx(x @ pc.apply(y), rel=1e-9, abs=1e-12)
        assert x @ pc.apply(x) >= -1e-10


def test_dirichlet_schur_is_interior_complement(decomposition):
    """S must equal K_bb - K_bi K_ii^{-1} K_ib computed densely."""
    pc = DirichletPreconditioner(decomposition)
    sub = decomposition.subdomains[0]
    boundary = np.unique(sub.bt.tocoo().row)
    interior = np.setdiff1d(np.arange(sub.n_dofs), boundary)
    k = sub.k.toarray()
    expected = k[np.ix_(boundary, boundary)] - k[np.ix_(boundary, interior)] @ np.linalg.solve(
        k[np.ix_(interior, interior)], k[np.ix_(interior, boundary)]
    )
    assert np.allclose(pc._schur[0], expected, atol=1e-8)


def test_dirichlet_3d(rng):
    p = heat_transfer_3d(6, dirichlet=("left",))
    dec = decompose(p, grid=(2, 2, 1))
    sol = solve_feti(dec, approach="impl_mkl", preconditioner="dirichlet", tol=1e-11)
    assert np.abs(sol.u - p.solve_direct()).max() < 1e-8


def test_make_preconditioner_factory(decomposition):
    assert isinstance(make_preconditioner("lumped", decomposition), LumpedPreconditioner)
    assert isinstance(make_preconditioner("dirichlet", decomposition), DirichletPreconditioner)
    with pytest.raises(ValueError, match="unknown preconditioner"):
        make_preconditioner("ras", decomposition)


# ---------------------------------------------------------------------------
# planner / auto approach
# ---------------------------------------------------------------------------


def test_plan_approach_monotone_in_iterations(decomposition):
    sub = max(decomposition.subdomains, key=lambda s: s.n_dofs)
    factor = factorize_subdomain(sub)
    few = plan_approach(factor, sub.bt, 2, expected_iterations=0)
    many = plan_approach(factor, sub.bt, 2, expected_iterations=100_000)
    # With zero iterations, preprocessing dominates -> an implicit approach.
    assert few.chosen.startswith("impl")
    # With huge iteration counts, per-iteration cost dominates -> explicit.
    assert many.chosen.startswith("expl")
    assert set(few.timings) == set(DEFAULT_CANDIDATES)
    assert "chosen approach" in many.summary()


def test_plan_approach_validates(decomposition):
    sub = decomposition.subdomains[0]
    factor = factorize_subdomain(sub)
    with pytest.raises(ValueError):
        plan_approach(factor, sub.bt, 2, expected_iterations=-1)
    with pytest.raises(ValueError):
        plan_approach(factor, sub.bt, 2, 10, candidates=())
    with pytest.raises(ValueError, match="unknown approach"):
        plan_approach(factor, sub.bt, 2, 10, candidates=("expl_tpu",))


def test_solver_auto_approach(problem, decomposition):
    p, u_direct = problem
    solver = FetiSolver(decomposition, approach="auto", expected_iterations=50)
    assert solver.approach.name in DEFAULT_CANDIDATES
    sol = solver.solve()
    assert np.abs(sol.u - u_direct).max() < 1e-7


def test_solver_auto_prefers_implicit_for_zero_iterations(decomposition):
    solver = FetiSolver(decomposition, approach="auto", expected_iterations=0)
    assert solver.approach.name.startswith("impl")


# ---------------------------------------------------------------------------
# degenerate decompositions
# ---------------------------------------------------------------------------


def test_single_subdomain_no_multipliers(problem):
    p, u_direct = problem
    dec = decompose(p, grid=(1, 1))
    assert dec.n_multipliers == 0
    sol = solve_feti(dec, approach="impl_mkl")
    assert sol.iterations == 0
    assert sol.info.converged
    assert np.abs(sol.u - u_direct).max() < 1e-8


def test_single_subdomain_auto(problem):
    p, _ = problem
    dec = decompose(p, grid=(1, 1))
    solver = FetiSolver(dec, approach="auto")
    assert solver.approach.name == "impl_mkl"
