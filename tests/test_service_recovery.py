"""Crash-recovery property tests for assembly-as-a-service.

The contract under test: a worker killed at *any* fault point loses at
most its current attempt — after a "restart" (a fresh worker against the
same service root), every job completes, the recomputed Schur complements
are identical to an uninterrupted run's, and no corrupted store entry is
ever served.
"""

from __future__ import annotations

import pytest

from repro.store import (
    FAULT_POINTS,
    ArtifactStore,
    FaultInjector,
    InjectedCrash,
    JobQueue,
    run_worker,
)

#: Small assemble payload every recovery test runs (one warm-up friendly
#: structured grid; deterministic digest with n_workers=1 per-member).
PAYLOAD = {"cells": 8, "grid": "2x2", "execution": "per-member", "device": "cpu"}


@pytest.fixture(scope="module")
def expected_digest():
    from repro.store import reference_digest

    return reference_digest(PAYLOAD)


def _service(tmp_path, clock=None, faults=None):
    kwargs = {} if clock is None else {"clock": clock}
    queue = JobQueue(tmp_path / "queue.db", backoff_base=0.0, **kwargs)
    store = ArtifactStore(tmp_path / "store", faults=faults)
    return queue, store


class SteppableClock:
    def __init__(self) -> None:
        import time

        self._time = time
        self.offset = 0.0

    def __call__(self) -> float:
        return self._time.time() + self.offset


@pytest.mark.parametrize("point", FAULT_POINTS)
def test_crash_at_every_fault_point_recovers_bit_identical(
    tmp_path, point, expected_digest
):
    """Inject each fault once, 'kill' the worker if it crashes, then drain
    with a fresh worker and compare digests against the reference run."""
    clock = SteppableClock()
    faults = FaultInjector(f"{point}:1")
    queue, store = _service(tmp_path, clock=clock, faults=faults)
    queue.faults = faults
    n_jobs = 2
    for _ in range(n_jobs):
        queue.submit("assemble", PAYLOAD)

    crashed = False
    try:
        run_worker(queue, store, owner="w1", lease_seconds=5.0, faults=faults)
    except InjectedCrash:
        crashed = True
    if point in ("store.put.crash", "queue.claim.crash", "queue.complete.crash",
                 "worker.job.crash"):
        assert crashed, f"{point} should have killed the worker"
        assert faults.fired.get(point) == 1
    # "Restart": expire any stale lease instead of sleeping, then drain
    # with a clean worker sharing the same service root.
    clock.offset += 6.0
    queue2, store2 = _service(tmp_path, clock=clock)
    stats = run_worker(queue2, store2, owner="w2", lease_seconds=5.0)
    counts = queue2.counts()
    assert counts["done"] == n_jobs, (point, counts, stats.summary())
    assert counts["open"] == counts["leased"] == counts["failed"] == 0
    for job in queue2.jobs(status="done"):
        assert job.result["sc_digest"] == expected_digest, point
        assert job.result["n_quarantined"] == 0 or point == "store.put.torn"
    queue.close()
    queue2.close()


def test_torn_write_is_quarantined_not_served(tmp_path, expected_digest):
    """A torn store commit must never reach a consumer: the warm run
    quarantines it, recomputes, and still produces the exact digest."""
    clock = SteppableClock()
    faults = FaultInjector("store.put.torn:1")
    queue, store = _service(tmp_path, clock=clock, faults=faults)
    queue.submit("assemble", PAYLOAD)
    run_worker(queue, store, owner="w1", lease_seconds=5.0, faults=faults)
    assert faults.fired.get("store.put.torn") == 1

    # Second job against the same (partially torn) store.
    queue.submit("assemble", PAYLOAD)
    queue2, store2 = _service(tmp_path, clock=clock)
    run_worker(queue2, store2, owner="w2", lease_seconds=5.0)
    jobs = queue2.jobs(status="done")
    assert len(jobs) == 2
    for job in jobs:
        assert job.result["sc_digest"] == expected_digest
    # Exactly the torn entry was quarantined on the warm read.
    assert sum(j.result["n_quarantined"] for j in jobs) == 1
    assert store2.verify()[1] == 0  # everything left in the store is clean
    queue.close()
    queue2.close()


def test_repeated_crashes_eventually_dead_letter(tmp_path):
    """A job that crashes the worker on every attempt burns through its
    attempts and dead-letters instead of looping forever."""
    clock = SteppableClock()
    queue, store = _service(tmp_path, clock=clock)
    job_id = queue.submit("assemble", PAYLOAD, max_attempts=2)
    for attempt in range(2):
        faults = FaultInjector("worker.job.crash:1")
        with pytest.raises(InjectedCrash):
            run_worker(queue, store, owner=f"w{attempt}", lease_seconds=5.0,
                       faults=faults)
        clock.offset += 6.0
    # Both attempts died mid-job; the next claim reaps the second lease
    # and, with attempts exhausted, dead-letters the job.
    stats = run_worker(queue, store, owner="w-final", lease_seconds=5.0)
    assert stats.n_claimed == 0
    job = queue.get(job_id)
    assert job.status == "dead"
    assert queue.pending() == 0
    queue.close()


def test_lost_lease_drops_result(tmp_path):
    """A worker that stalls past its lease must drop the result: the job
    is completed by whoever re-leased it, never double-completed."""
    clock = SteppableClock()
    queue, store = _service(tmp_path, clock=clock)
    job_id = queue.submit("assemble", PAYLOAD)
    job = queue.claim("slow", lease_seconds=5.0)
    assert job.id == job_id
    # The slow worker stalls; its lease expires and w2 drains the queue.
    clock.offset += 6.0
    stats = run_worker(queue, store, owner="w2", lease_seconds=5.0)
    assert stats.n_done == 1
    # The stalled worker wakes up and tries to finish: LostLease.
    from repro.store import LostLease

    with pytest.raises(LostLease):
        queue.complete(job_id, "slow", {"stale": True})
    assert queue.get(job_id).result["sc_digest"]
    queue.close()


def test_two_workers_share_one_warm_store(tmp_path, expected_digest):
    """Workers draining the same root reuse each other's artifacts: the
    second worker's jobs see store hits, and digests agree throughout."""
    queue, store = _service(tmp_path)
    for _ in range(3):
        queue.submit("assemble", PAYLOAD)
    run_worker(queue, store, owner="w1", lease_seconds=30.0, max_jobs=1)
    stats2 = run_worker(queue, store, owner="w2", lease_seconds=30.0)
    assert stats2.n_done == 2
    jobs = queue.jobs(status="done")
    assert [j.result["sc_digest"] for j in jobs] == [expected_digest] * 3
    # Jobs after the first hit the persistent tier for every pattern.
    later = [j for j in jobs if j.result["store_hits"] > 0]
    assert len(later) == 2
    for job in later:
        assert job.result["store_misses"] == 0
        assert job.result["hit_rate"] == 1.0
    queue.close()
