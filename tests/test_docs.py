"""Documentation health: links resolve, documented CLI flags exist, and the
public modules described by ``docs/`` carry real docstrings."""

from __future__ import annotations

import importlib
import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_docs_pages_exist():
    for page in ("architecture.md", "pipeline.md", "batching.md"):
        assert (REPO / "docs" / page).is_file(), f"docs/{page} missing"
    readme = (REPO / "README.md").read_text()
    assert "docs/architecture.md" in readme
    assert "docs/pipeline.md" in readme
    assert "docs/batching.md" in readme


def test_intra_repo_links_resolve():
    check_docs = _load_check_docs()
    assert check_docs.check_links() == []


def test_documented_flags_exist_in_cli(capsys):
    """Every --flag the docs mention exists in one of the checked helps
    (`repro batch`, `repro work ...`, `repro store ...`)."""
    check_docs = _load_check_docs()
    flags = check_docs.documented_flags()
    assert "--execution" in flags and "--no-canonicalize" in flags
    assert "--faults" in flags and "--strict" in flags

    from repro.__main__ import main

    helps = []
    for command in check_docs.HELP_COMMANDS:
        try:
            main(list(command))
        except SystemExit as exc:  # argparse exits 0 after printing help
            assert exc.code == 0
        helps.append(capsys.readouterr().out)
    help_text = "\n".join(helps)
    missing = sorted(f for f in flags if f not in help_text)
    assert not missing, f"documented flags missing from CLI help: {missing}"


#: Module-level docstrings promised by the docs pages (the public batching
#: surface of docs/batching.md); each must exist and say something.
DOCUMENTED_MODULES = (
    "repro.batch",
    "repro.batch.engine",
    "repro.batch.cache",
    "repro.batch.fingerprint",
    "repro.batch.stats",
    "repro.sparse.canonical",
    "repro.sparse.stacked",
    "repro.gpu.kernels",
)


def test_documented_modules_have_docstrings():
    for name in DOCUMENTED_MODULES:
        mod = importlib.import_module(name)
        doc = mod.__doc__ or ""
        assert len(doc.strip().splitlines()) >= 3, f"{name} docstring too thin"


def test_batching_doc_mentions_the_docstringed_modules():
    text = (REPO / "docs" / "batching.md").read_text()
    for path in (
        "src/repro/batch/fingerprint.py",
        "src/repro/batch/cache.py",
        "src/repro/batch/engine.py",
        "src/repro/sparse/canonical.py",
        "src/repro/sparse/stacked.py",
        "src/repro/gpu/kernels.py",
    ):
        assert path in text, f"docs/batching.md does not reference {path}"
