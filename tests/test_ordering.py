"""Tests for the fill-reducing orderings."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    amd_ordering,
    compute_ordering,
    natural_ordering,
    nd_ordering,
    rcm_ordering,
    symbolic_factorize,
)
from tests.conftest import grid_coords, laplacian_2d, random_spd

ALL_METHODS = ["natural", "rcm", "amd", "nd"]


@pytest.mark.parametrize("method", ALL_METHODS)
def test_ordering_is_permutation(method):
    a = random_spd(60, density=0.08, seed=3)
    perm = compute_ordering(a, method=method)
    assert sorted(perm.tolist()) == list(range(60))


@pytest.mark.parametrize("method", ALL_METHODS)
def test_ordering_empty_matrix(method):
    a = sp.csr_matrix((0, 0))
    perm = compute_ordering(a, method=method)
    assert perm.size == 0


def test_natural_is_identity():
    a = random_spd(17, seed=1)
    assert np.array_equal(natural_ordering(a), np.arange(17))


def test_unknown_method_raises():
    a = random_spd(5)
    with pytest.raises(ValueError, match="unknown ordering"):
        compute_ordering(a, method="metis")


def test_rcm_reduces_bandwidth():
    a = laplacian_2d(12, 12)
    rng = np.random.default_rng(0)
    shuffle = rng.permutation(a.shape[0])
    scrambled = sp.csr_matrix(a[shuffle][:, shuffle])
    perm = rcm_ordering(scrambled)
    reordered = scrambled[perm][:, perm].tocoo()
    bw_after = int(np.abs(reordered.row - reordered.col).max())
    coo = scrambled.tocoo()
    bw_before = int(np.abs(coo.row - coo.col).max())
    assert bw_after < bw_before


@pytest.mark.parametrize("method", ["amd", "nd"])
def test_fill_reducing_beats_natural_on_grid(method):
    """AMD/ND must produce less fill than the natural order on a 2-D grid."""
    a = laplacian_2d(14, 14)
    coords = grid_coords(14, 14)
    perm = compute_ordering(a, method=method, coords=coords)
    ap = sp.csr_matrix(a[perm][:, perm])
    nnz_method = symbolic_factorize(ap, with_pattern=False).nnz_l
    nnz_natural = symbolic_factorize(a, with_pattern=False).nnz_l
    assert nnz_method < nnz_natural


def test_nd_geometric_vs_graph_both_valid():
    a = laplacian_2d(10, 10)
    coords = grid_coords(10, 10)
    perm_geo = nd_ordering(a, coords=coords, leaf_size=16)
    perm_graph = nd_ordering(a, coords=None, leaf_size=16)
    n = a.shape[0]
    assert sorted(perm_geo.tolist()) == list(range(n))
    assert sorted(perm_graph.tolist()) == list(range(n))


def test_nd_leaf_method_natural():
    a = laplacian_2d(8, 8)
    perm = nd_ordering(a, leaf_size=10, leaf_method="natural")
    assert sorted(perm.tolist()) == list(range(64))


def test_nd_rejects_bad_args():
    a = laplacian_2d(4, 4)
    with pytest.raises(ValueError):
        nd_ordering(a, leaf_size=0)
    with pytest.raises(ValueError):
        nd_ordering(a, leaf_method="bogus")
    with pytest.raises(ValueError):
        nd_ordering(a, coords=np.zeros((3, 2)))


def test_amd_on_dense_block():
    """A fully dense matrix: any order is fine, must still be a permutation."""
    a = sp.csr_matrix(np.ones((9, 9)))
    perm = amd_ordering(a)
    assert sorted(perm.tolist()) == list(range(9))


def test_amd_on_diagonal_matrix():
    a = sp.eye(25, format="csr")
    perm = amd_ordering(a)
    assert sorted(perm.tolist()) == list(range(25))


def test_nd_on_disconnected_graph():
    blocks = sp.block_diag([laplacian_2d(5, 5), laplacian_2d(4, 4)], format="csr")
    perm = nd_ordering(blocks, leaf_size=8)
    assert sorted(perm.tolist()) == list(range(blocks.shape[0]))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    method=st.sampled_from(ALL_METHODS),
)
def test_property_orderings_are_permutations(n, seed, method):
    a = random_spd(n, density=min(1.0, 4.0 / max(n, 1)), seed=seed)
    perm = compute_ordering(a, method=method)
    assert sorted(perm.tolist()) == list(range(n))
