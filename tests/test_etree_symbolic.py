"""Tests for the elimination tree and symbolic factorization."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    cholesky,
    elimination_tree,
    factor_pattern_csc,
    postorder,
    symbolic_factorize,
)
from tests.conftest import laplacian_1d, laplacian_2d, random_spd


def test_etree_tridiagonal_is_a_path():
    a = laplacian_1d(10)
    parent = elimination_tree(a)
    assert np.array_equal(parent[:-1], np.arange(1, 10))
    assert parent[-1] == -1


def test_etree_diagonal_matrix_is_forest_of_roots():
    a = sp.eye(7, format="csr")
    parent = elimination_tree(a)
    assert np.all(parent == -1)


def test_etree_arrow_matrix():
    """Arrow matrix (dense last row/col): every column's parent is n-1... or
    the next column on the path to it."""
    n = 6
    a = sp.lil_matrix((n, n))
    a[np.arange(n), np.arange(n)] = 4.0
    a[n - 1, :] = 1.0
    a[:, n - 1] = 1.0
    parent = elimination_tree(sp.csr_matrix(a))
    assert np.all(parent[:-1] == n - 1)
    assert parent[-1] == -1


def test_postorder_children_before_parents():
    a = laplacian_2d(6, 6)
    parent = elimination_tree(a)
    order = postorder(parent)
    position = np.empty_like(order)
    position[order] = np.arange(order.size)
    for v, p in enumerate(parent):
        if p != -1:
            assert position[v] < position[p]


def test_postorder_is_permutation():
    a = random_spd(40, seed=7)
    order = postorder(elimination_tree(a))
    assert sorted(order.tolist()) == list(range(40))


def test_symbolic_matches_numeric_pattern():
    """Symbolic nnz(L) must equal the numeric factor's nnz (no cancellation)."""
    a = random_spd(80, density=0.05, seed=11)
    f = cholesky(a, ordering="natural", engine="native")
    sym = symbolic_factorize(a)
    assert sym.nnz_l == f.l.nnz
    assert np.array_equal(sym.col_counts, np.diff(f.l.tocsc().indptr))


def test_symbolic_pattern_csc_contains_matrix_pattern():
    a = random_spd(50, density=0.06, seed=2)
    sym = symbolic_factorize(a)
    patt = factor_pattern_csc(sym)
    lower_a = sp.tril(a).tocoo()
    patt_set = set(zip(patt.tocoo().row.tolist(), patt.tocoo().col.tolist()))
    for i, j in zip(lower_a.row.tolist(), lower_a.col.tolist()):
        assert (i, j) in patt_set


def test_symbolic_without_pattern_has_counts_only():
    a = random_spd(30, seed=5)
    sym = symbolic_factorize(a, with_pattern=False)
    assert sym.row_indptr is None
    with pytest.raises(ValueError):
        sym.row(0)
    with pytest.raises(ValueError):
        factor_pattern_csc(sym)


def test_symbolic_flops_positive_and_consistent():
    a = laplacian_2d(8, 8)
    sym = symbolic_factorize(a)
    assert sym.flops >= sym.nnz_l  # at least one op per stored entry
    # Dense lower bound: factoring a dense matrix costs ~n^3/3.
    assert sym.flops <= a.shape[0] ** 3


def test_supernodes_partition_columns():
    a = laplacian_2d(7, 7)
    sym = symbolic_factorize(a)
    s = sym.supernodes
    assert s[0] == 0 and s[-1] == a.shape[0]
    assert np.all(np.diff(s) >= 1)


def test_supernodes_dense_matrix_single_supernode():
    a = sp.csr_matrix(np.ones((8, 8)) + 8 * np.eye(8))
    sym = symbolic_factorize(a)
    assert len(sym.supernodes) == 2  # one supernode covering all columns


def test_tridiagonal_symbolic_no_fill():
    a = laplacian_1d(25)
    sym = symbolic_factorize(a)
    assert sym.nnz_l == 25 + 24  # diagonal + one subdiagonal


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_symbolic_nnz_matches_native_numeric(n, seed):
    a = random_spd(n, density=min(1.0, 5.0 / n), seed=seed)
    sym = symbolic_factorize(a)
    f = cholesky(a, ordering="natural", engine="native")
    assert sym.nnz_l == f.l.nnz


def test_postorder_rejects_cyclic_parent():
    parent = np.array([1, 0], dtype=np.intp)  # cycle
    with pytest.raises(ValueError):
        postorder(parent)
